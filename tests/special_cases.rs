//! Integration tests: the gang-scheduling solver against closed-form
//! queueing limits.
//!
//! When the machine is effectively dedicated to one class (huge quantum,
//! negligible overhead) the model collapses to classical queues with known
//! answers: M/M/1, M/M/c, and M/Er/1. These tests drive the *full* public
//! pipeline — model → vacations → QBD → fixed point → measures.

use gang_scheduling::model::{ClassParams, GangModel};
use gang_scheduling::phase::{erlang, exponential};
use gang_scheduling::solver::{solve, SolverOptions};

fn dedicated(
    arrival: f64,
    service: gang_scheduling::phase::PhaseType,
    g: usize,
    p: usize,
) -> GangModel {
    GangModel::new(
        p,
        vec![ClassParams {
            partition_size: g,
            arrival: exponential(arrival),
            service,
            quantum: exponential(1e-4), // mean 10^4: essentially always running
            switch_overhead: exponential(1e5), // mean 10^-5: negligible
        }],
    )
    .unwrap()
}

fn factorial(n: usize) -> f64 {
    (1..=n).map(|i| i as f64).product::<f64>().max(1.0)
}

/// Erlang-C mean number in system for M/M/c.
fn mmc_mean(lambda: f64, mu: f64, c: usize) -> f64 {
    let a = lambda / mu;
    let rho = a / c as f64;
    let mut p0_inv = 0.0;
    for k in 0..c {
        p0_inv += a.powi(k as i32) / factorial(k);
    }
    p0_inv += a.powi(c as i32) / (factorial(c) * (1.0 - rho));
    let p0 = 1.0 / p0_inv;
    let erlc = a.powi(c as i32) / (factorial(c) * (1.0 - rho)) * p0;
    erlc * rho / (1.0 - rho) + a
}

#[test]
fn mm1_limit() {
    for &rho in &[0.2, 0.5, 0.8] {
        let m = dedicated(rho, exponential(1.0), 4, 4);
        let sol = solve(&m, &SolverOptions::default()).unwrap();
        let want = rho / (1.0 - rho);
        let got = sol.classes[0].mean_jobs;
        assert!(
            (got - want).abs() / want < 0.02,
            "rho={rho}: N = {got}, M/M/1 = {want}"
        );
        // Little's law: T = N / lambda.
        assert!((sol.classes[0].mean_response - got / rho).abs() < 1e-9);
    }
}

#[test]
fn mmc_limit() {
    for &(lambda, c) in &[(1.0f64, 2usize), (2.0, 4), (4.0, 8)] {
        let m = dedicated(lambda, exponential(1.0), 8 / c, 8);
        let sol = solve(&m, &SolverOptions::default()).unwrap();
        let want = mmc_mean(lambda, 1.0, c);
        let got = sol.classes[0].mean_jobs;
        assert!(
            (got - want).abs() / want < 0.02,
            "lambda={lambda}, c={c}: N = {got}, M/M/{c} = {want}"
        );
    }
}

#[test]
fn m_er2_1_limit_pollaczek_khinchine() {
    // M/Er2/1: P-K mean N = rho + rho^2 (1 + scv) / (2 (1 - rho)).
    let rho: f64 = 0.6;
    let m = dedicated(rho, erlang(2, 1.0), 4, 4);
    let sol = solve(&m, &SolverOptions::default()).unwrap();
    let scv = 0.5;
    let want = rho + rho * rho * (1.0 + scv) / (2.0 * (1.0 - rho));
    let got = sol.classes[0].mean_jobs;
    assert!((got - want).abs() / want < 0.02, "N = {got}, P-K = {want}");
}

#[test]
fn overload_is_flagged_not_mangled() {
    let m = dedicated(1.5, exponential(1.0), 4, 4);
    let sol = solve(&m, &SolverOptions::default()).unwrap();
    assert!(!sol.classes[0].stable);
    assert!(sol.classes[0].mean_jobs.is_infinite());
}

#[test]
fn two_symmetric_classes_halve_capacity() {
    // Two identical whole-machine classes with equal quanta: each sees
    // roughly half the machine, so saturation sits near rho_class = 0.5.
    let mk = |lambda: f64| {
        GangModel::new(
            4,
            vec![
                ClassParams {
                    partition_size: 4,
                    arrival: exponential(lambda),
                    service: exponential(1.0),
                    quantum: erlang(2, 1.0),
                    switch_overhead: exponential(1000.0),
                },
                ClassParams {
                    partition_size: 4,
                    arrival: exponential(lambda),
                    service: exponential(1.0),
                    quantum: erlang(2, 1.0),
                    switch_overhead: exponential(1000.0),
                },
            ],
        )
        .unwrap()
    };
    let below = solve(&mk(0.42), &SolverOptions::default()).unwrap();
    assert!(below.all_stable, "rho=0.42 per class should be stable");
    let above = solve(&mk(0.55), &SolverOptions::default()).unwrap();
    assert!(
        !above.all_stable,
        "rho=0.55 per class cannot fit in half the machine"
    );
}

#[test]
fn response_time_grows_with_load() {
    let mut last = 0.0;
    for &rho in &[0.2, 0.4, 0.6, 0.8] {
        let m = dedicated(rho, exponential(1.0), 4, 4);
        let sol = solve(&m, &SolverOptions::default()).unwrap();
        let t = sol.classes[0].mean_response;
        assert!(t > last, "T({rho}) = {t} should exceed {last}");
        last = t;
    }
}
