//! Integration tests: the qualitative shapes of the paper's Figures 2–5 on
//! coarse grids (the full grids run in the `gsched-repro` binaries).

use gang_scheduling::solver::{solve, SolverOptions};
use gang_scheduling::workload::figures::{
    cycle_fraction_sweep_request, quantum_sweep_request, service_rate_sweep_request,
};

fn n_of(model: &gang_scheduling::model::GangModel, class: usize) -> f64 {
    solve(model, &SolverOptions::default()).unwrap().classes[class].mean_jobs
}

#[test]
fn fig2_shape_u_curve_at_rho_04() {
    // Coarse probe: tiny, moderate, huge quantum. Classes 1-3 show the
    // paper's U; class 0 (the wide, slow class) descends to a plateau —
    // behaviour confirmed by the exact-policy simulator (see
    // tests/analysis_vs_simulation.rs and EXPERIMENTS.md).
    // The knee sits further left for the light narrow classes (class 3's
    // minimum is near q = 0.2), so probe two moderate quanta.
    let pts = quantum_sweep_request(0.4, 2, &[0.05, 0.2, 0.75, 6.0]).points;
    for class in 0..4 {
        let n: Vec<f64> = pts.iter().map(|pt| n_of(&pt.model, class)).collect();
        let knee = n[1].min(n[2]);
        assert!(
            n[0] > knee * 1.1,
            "class {class}: tiny quantum ({}) should be penalized vs knee ({knee})",
            n[0]
        );
        if class == 0 {
            // Plateau/decline: the wide slow class keeps benefiting from
            // long uninterrupted quanta (confirmed by simulation).
            assert!(
                n[3] <= knee * 1.1,
                "class 0 should plateau: knee {knee} vs huge {}",
                n[3]
            );
        } else {
            assert!(
                n[3] > knee * 1.05,
                "class {class}: huge quantum ({}) should be worse than knee ({knee})",
                n[3]
            );
        }
    }
}

#[test]
fn fig2_class_ordering() {
    // With service ratios 0.5:1:2:4, class 0 dominates at every quantum.
    let pts = quantum_sweep_request(0.4, 2, &[0.5, 2.0]).points;
    for pt in &pts {
        let sol = solve(&pt.model, &SolverOptions::default()).unwrap();
        for p in 0..3 {
            assert!(
                sol.classes[p].mean_jobs > sol.classes[p + 1].mean_jobs,
                "q={}: N{p} should exceed N{}",
                pt.x,
                p + 1
            );
        }
    }
}

#[test]
fn fig3_heavier_load_amplifies_everything() {
    // Compare classes 1-3 (stable at both loads) between rho=0.4 and 0.9:
    // heavy load dominates pointwise, and the long-quantum penalty is
    // steeper. Class 0 at rho=0.9 is saturated at short quanta (it needs
    // ~68% of the machine) — checked separately below.
    let quanta = [0.75, 4.0];
    let light = quantum_sweep_request(0.4, 2, &quanta).points;
    let heavy = quantum_sweep_request(0.9, 2, &quanta).points;
    let n_of_pt = |pt: &gang_scheduling::workload::figures::SweepPoint, class: usize| -> f64 {
        solve(&pt.model, &SolverOptions::default()).unwrap().classes[class].mean_jobs
    };
    for class in 1..4 {
        let l0 = n_of_pt(&light[0], class);
        let l1 = n_of_pt(&light[1], class);
        let h0 = n_of_pt(&heavy[0], class);
        let h1 = n_of_pt(&heavy[1], class);
        assert!(
            h0 > l0 && h1 > l1,
            "class {class}: heavy load must dominate ({h0} vs {l0}, {h1} vs {l1})"
        );
        assert!(
            h1 / h0 > l1 / l0 * 0.95,
            "class {class}: long-quantum penalty should not soften at rho=0.9"
        );
    }
}

#[test]
fn fig3_class0_saturation_crossover() {
    // At rho = 0.9 class 0 is unstable at short quanta and recovers at
    // long ones — the "worst-case quantum length" the paper's model is
    // meant to compute (§6).
    let pts = quantum_sweep_request(0.9, 2, &[1.0, 6.0]).points;
    let short = solve(&pts[0].model, &SolverOptions::default()).unwrap();
    assert!(
        !short.classes[0].stable,
        "class 0 should saturate at quantum 1 under rho=0.9"
    );
    assert!(short.classes[1].stable, "class 1 stays stable");
    let long = solve(&pts[1].model, &SolverOptions::default()).unwrap();
    assert!(
        long.classes[0].stable,
        "class 0 should recover at quantum 6"
    );
    assert!(long.classes[0].mean_jobs.is_finite());
}

#[test]
fn fig4_service_rate_diminishing_returns() {
    let pts = service_rate_sweep_request(2, &[2.0, 4.0, 10.0, 20.0]).points;
    for class in 0..4 {
        let n: Vec<f64> = pts.iter().map(|pt| n_of(&pt.model, class)).collect();
        // Monotone decreasing…
        for w in n.windows(2) {
            assert!(w[1] <= w[0] * 1.01, "class {class}: {:?}", n);
        }
        // …with the early improvement dominating the late one.
        let early = n[0] - n[1];
        let late = n[2] - n[3];
        assert!(
            early > late,
            "class {class}: early drop {early} should exceed late drop {late}"
        );
    }
}

#[test]
fn fig5_own_fraction_monotone() {
    for class in [0usize, 3] {
        let pts = cycle_fraction_sweep_request(class, 4.0, 2, &[0.2, 0.5, 0.8]).points;
        let n: Vec<f64> = pts.iter().map(|pt| n_of(&pt.model, class)).collect();
        for w in n.windows(2) {
            assert!(
                w[1] <= w[0] * 1.02,
                "class {class}: N should fall with its own fraction: {:?}",
                n
            );
        }
    }
}
