//! Integration tests: the analytic fixed point against the discrete-event
//! simulator on the paper's configuration.
//!
//! The analysis approximates each class's vacation as *independent* of the
//! class's own state (the paper defers the exact conditional treatment to an
//! extended version, §4.3 footnote); the simulator implements the true
//! coupled policy. The approximation is measurably optimistic — about
//! 10–25% low on mean populations at ρ = 0.4 (see the `validate_sim`
//! binary and EXPERIMENTS.md) — while preserving every qualitative shape,
//! so these tests check agreement within that documented margin.

use gang_scheduling::scenario::{cross_validate, registry, XvalOptions};
use gang_scheduling::sim::{GangPolicy, GangSim, SimConfig};
use gang_scheduling::solver::{solve, SolverOptions};
use gang_scheduling::workload::{paper_model, PaperConfig};

fn sim_cfg(seed: u64) -> SimConfig {
    SimConfig {
        horizon: 150_000.0,
        warmup: 15_000.0,
        seed,
        batches: 15,
    }
}

fn compare(lambda: f64, quantum: f64, tolerance: f64) {
    let model = paper_model(&PaperConfig {
        lambda,
        quantum_mean: quantum,
        quantum_stages: 2,
        overhead_mean: 0.01,
    });
    let ana = solve(&model, &SolverOptions::default()).expect("analysis solves");
    assert!(ana.all_stable, "analysis says unstable at rho={lambda}");
    let sim = GangSim::new(&model, GangPolicy::SystemWide, sim_cfg(1234)).run();
    for p in 0..4 {
        let a = ana.classes[p].mean_jobs;
        let s = sim.classes[p].mean_jobs;
        let ci = sim.classes[p].mean_jobs_ci95;
        let gap = (a - s).abs();
        let tol = tolerance * s.max(0.05) + 3.0 * ci;
        assert!(
            gap <= tol,
            "rho={lambda} q={quantum} class {p}: analytic {a:.3} vs sim {s:.3} ± {ci:.3}"
        );
    }
}

#[test]
fn paper_config_moderate_load_short_quantum() {
    compare(0.4, 0.5, 0.30);
}

#[test]
fn paper_config_moderate_load_long_quantum() {
    compare(0.4, 3.0, 0.30);
}

#[test]
fn paper_config_light_load() {
    compare(0.2, 1.0, 0.30);
}

#[test]
fn simulation_sees_u_shape_too() {
    // The qualitative Figure-2 shape is a property of the policy, not the
    // analysis: the simulator must show it as well.
    let totals: Vec<f64> = [0.05, 1.0, 6.0]
        .iter()
        .map(|&q| {
            let model = paper_model(&PaperConfig {
                lambda: 0.5,
                quantum_mean: q,
                quantum_stages: 2,
                overhead_mean: 0.01,
            });
            let sim = GangSim::new(&model, GangPolicy::SystemWide, sim_cfg(777)).run();
            sim.classes.iter().map(|c| c.mean_jobs).sum()
        })
        .collect();
    assert!(
        totals[1] < totals[0],
        "moderate quantum {} should beat tiny quantum {}",
        totals[1],
        totals[0]
    );
    assert!(
        totals[1] < totals[2],
        "moderate quantum {} should beat huge quantum {}",
        totals[1],
        totals[2]
    );
}

#[test]
fn every_registry_scenario_cross_validates() {
    // The acceptance bar for the scenario layer: for every named scenario
    // whose policy the analysis models (gang and its lending variant), the
    // analytic mean response agrees with simulation within the tolerance
    // the scenario itself declares. One representative grid point per
    // scenario keeps the debug-mode runtime bounded; `gsched xval all`
    // covers more points.
    let opts = XvalOptions {
        solver: SolverOptions::default(),
        max_points: 1,
        quick: true,
        horizon_scale: 1.0,
    };
    let mut failed = Vec::new();
    for scenario in registry::all() {
        if !scenario.policy.analysis_comparable() {
            continue;
        }
        let name = scenario.name.clone();
        let report = cross_validate(&scenario, &opts)
            .unwrap_or_else(|e| panic!("{name}: cross-validation errored: {e}"));
        assert!(
            report.compared_points() > 0,
            "{name}: no stable grid point was compared"
        );
        if !report.passed() {
            for row in report.failures() {
                eprintln!(
                    "{name} class {}: analytic {:.3} vs sim {:.3} (gap {:.3} > tol {:.3})",
                    row.class, row.analytic, row.simulated, row.gap, row.tolerance
                );
            }
            failed.push(name);
        }
    }
    assert!(
        failed.is_empty(),
        "scenarios outside their declared tolerance: {failed:?}"
    );
}

#[test]
fn littles_law_in_simulation() {
    let model = paper_model(&PaperConfig {
        lambda: 0.4,
        quantum_mean: 1.0,
        quantum_stages: 2,
        overhead_mean: 0.01,
    });
    let sim = GangSim::new(&model, GangPolicy::SystemWide, sim_cfg(31415)).run();
    for p in 0..4 {
        let gap = sim.littles_law_gap(p);
        assert!(gap < 0.12, "class {p}: Little's-law gap {gap}");
    }
}
