//! Integration tests: the analytic fixed point against the discrete-event
//! simulator on the paper's configuration.
//!
//! The analysis approximates each class's vacation as *independent* of the
//! class's own state (the paper defers the exact conditional treatment to an
//! extended version, §4.3 footnote); the simulator implements the true
//! coupled policy. The approximation is measurably optimistic — about
//! 10–25% low on mean populations at ρ = 0.4 (see the `validate_sim`
//! binary and EXPERIMENTS.md) — while preserving every qualitative shape,
//! so these tests check agreement within that documented margin.

use gang_scheduling::sim::{GangPolicy, GangSim, SimConfig};
use gang_scheduling::solver::{solve, SolverOptions};
use gang_scheduling::workload::{paper_model, PaperConfig};

fn sim_cfg(seed: u64) -> SimConfig {
    SimConfig {
        horizon: 150_000.0,
        warmup: 15_000.0,
        seed,
        batches: 15,
    }
}

fn compare(lambda: f64, quantum: f64, tolerance: f64) {
    let model = paper_model(&PaperConfig {
        lambda,
        quantum_mean: quantum,
        quantum_stages: 2,
        overhead_mean: 0.01,
    });
    let ana = solve(&model, &SolverOptions::default()).expect("analysis solves");
    assert!(ana.all_stable, "analysis says unstable at rho={lambda}");
    let sim = GangSim::new(&model, GangPolicy::SystemWide, sim_cfg(1234)).run();
    for p in 0..4 {
        let a = ana.classes[p].mean_jobs;
        let s = sim.classes[p].mean_jobs;
        let ci = sim.classes[p].mean_jobs_ci95;
        let gap = (a - s).abs();
        let tol = tolerance * s.max(0.05) + 3.0 * ci;
        assert!(
            gap <= tol,
            "rho={lambda} q={quantum} class {p}: analytic {a:.3} vs sim {s:.3} ± {ci:.3}"
        );
    }
}

#[test]
fn paper_config_moderate_load_short_quantum() {
    compare(0.4, 0.5, 0.30);
}

#[test]
fn paper_config_moderate_load_long_quantum() {
    compare(0.4, 3.0, 0.30);
}

#[test]
fn paper_config_light_load() {
    compare(0.2, 1.0, 0.30);
}

#[test]
fn simulation_sees_u_shape_too() {
    // The qualitative Figure-2 shape is a property of the policy, not the
    // analysis: the simulator must show it as well.
    let totals: Vec<f64> = [0.05, 1.0, 6.0]
        .iter()
        .map(|&q| {
            let model = paper_model(&PaperConfig {
                lambda: 0.5,
                quantum_mean: q,
                quantum_stages: 2,
                overhead_mean: 0.01,
            });
            let sim = GangSim::new(&model, GangPolicy::SystemWide, sim_cfg(777)).run();
            sim.classes.iter().map(|c| c.mean_jobs).sum()
        })
        .collect();
    assert!(
        totals[1] < totals[0],
        "moderate quantum {} should beat tiny quantum {}",
        totals[1],
        totals[0]
    );
    assert!(
        totals[1] < totals[2],
        "moderate quantum {} should beat huge quantum {}",
        totals[1],
        totals[2]
    );
}

#[test]
fn littles_law_in_simulation() {
    let model = paper_model(&PaperConfig {
        lambda: 0.4,
        quantum_mean: 1.0,
        quantum_stages: 2,
        overhead_mean: 0.01,
    });
    let sim = GangSim::new(&model, GangPolicy::SystemWide, sim_cfg(31415)).run();
    for p in 0..4 {
        let gap = sim.littles_law_gap(p);
        assert!(gap < 0.12, "class {p}: Little's-law gap {gap}");
    }
}
