//! Integration test: the analytic response-time *distribution* (tagged-job
//! chain) against the simulator's streaming percentile estimates.

use gang_scheduling::core::generator::build_class_chain;
use gang_scheduling::core::response::response_time_distribution;
use gang_scheduling::core::vacation::heavy_traffic_vacation;
use gang_scheduling::model::{ClassParams, GangModel};
use gang_scheduling::phase::{erlang, exponential};
use gang_scheduling::sim::{GangPolicy, GangSim, SimConfig};

/// A single-class system where the heavy-traffic vacation is exact (there is
/// only the class's own overhead), so the analytic tagged-job distribution
/// should match the simulator closely.
fn single_class(lam: f64) -> GangModel {
    GangModel::new(
        2,
        vec![ClassParams {
            partition_size: 1,
            arrival: exponential(lam),
            service: exponential(1.0),
            quantum: erlang(2, 0.5),
            switch_overhead: exponential(50.0),
        }],
    )
    .unwrap()
}

#[test]
fn quantiles_match_simulation_single_class() {
    let m = single_class(0.8); // two partitions: M/M/2-ish with tiny vacations
    let vac = heavy_traffic_vacation(&m, 0);
    let chain = build_class_chain(&m, 0, &vac).unwrap();
    let sol = chain.qbd.solve(&Default::default()).unwrap();
    let rt = response_time_distribution(&chain, &sol, 1e-8, 100).unwrap();

    let sim = GangSim::new(
        &m,
        GangPolicy::SystemWide,
        SimConfig {
            horizon: 300_000.0,
            warmup: 30_000.0,
            seed: 77,
            batches: 20,
        },
    )
    .run();
    let (s50, s90, s95, _s99) = sim.classes[0].response_quantiles;

    for (p, sim_q) in [(0.5, s50), (0.9, s90), (0.95, s95)] {
        let ana_q = rt.distribution.quantile(p);
        let gap = (ana_q - sim_q).abs() / sim_q;
        assert!(
            gap < 0.08,
            "p{}: analytic {ana_q:.4} vs simulated {sim_q:.4} (gap {gap:.3})",
            (p * 100.0) as u32
        );
    }
    // Means agree with both Little's law and the simulator.
    let little = sol.mean_level() / 0.8;
    assert!((rt.distribution.mean() - little).abs() / little < 0.01);
    let sim_mean = sim.classes[0].mean_response;
    assert!(
        (rt.distribution.mean() - sim_mean).abs() / sim_mean < 0.05,
        "analytic mean {} vs sim {sim_mean}",
        rt.distribution.mean()
    );
}

#[test]
fn multi_class_distribution_brackets_simulation() {
    // With competing classes the analysis carries the vacation-independence
    // approximation; quantiles should still land within the documented
    // optimistic margin.
    let mk = |g: usize, lam: f64, mu: f64| ClassParams {
        partition_size: g,
        arrival: exponential(lam),
        service: exponential(mu),
        quantum: erlang(2, 1.0),
        switch_overhead: exponential(100.0),
    };
    let m = GangModel::new(4, vec![mk(4, 0.15, 1.0), mk(1, 0.6, 1.5)]).unwrap();
    // Use the fixed point's converged vacations for the tagged-job analysis.
    let full = gang_scheduling::solver::solve(&m, &Default::default()).unwrap();
    let sim = GangSim::new(
        &m,
        GangPolicy::SystemWide,
        SimConfig {
            horizon: 200_000.0,
            warmup: 20_000.0,
            seed: 13,
            batches: 20,
        },
    )
    .run();
    for p in 0..2 {
        // Rebuild the class chain at the heavy-traffic vacation as a bound
        // check: analytic p95 (optimistic fixed point) should be below the
        // simulated p95 times a generous factor, and above a fraction of it.
        let vac = heavy_traffic_vacation(&m, p);
        let chain = build_class_chain(&m, p, &vac).unwrap();
        let sol = chain.qbd.solve(&Default::default()).unwrap();
        let rt = response_time_distribution(&chain, &sol, 1e-8, 80).unwrap();
        let ana95 = rt.distribution.quantile(0.95);
        let (_, _, sim95, _) = sim.classes[p].response_quantiles;
        assert!(
            ana95 > 0.3 * sim95 && ana95 < 3.0 * sim95,
            "class {p}: analytic p95 {ana95} vs sim {sim95}"
        );
        let _ = &full;
    }
}
