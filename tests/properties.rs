//! Property-based tests spanning the workspace crates.
//!
//! These exercise the algebraic invariants the analysis relies on:
//! phase-type closure properties, QBD stability ↔ spectral radius, GTH
//! correctness, and solver consistency (Little's law, mass conservation).

use gang_scheduling::linalg::{spectral_radius, Matrix};
use gang_scheduling::markov::Ctmc;
use gang_scheduling::model::{ClassParams, GangModel};
use gang_scheduling::phase::{convolve, erlang, exponential, hyperexponential, minimum, PhaseType};
use gang_scheduling::qbd::{drift_condition, solve_r, QbdProcess, RSolverMethod};
use gang_scheduling::solver::{solve, SolverOptions};
use proptest::prelude::*;

fn small_rate() -> impl Strategy<Value = f64> {
    (0.1f64..8.0).prop_map(|r| (r * 1000.0).round() / 1000.0)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn convolution_adds_means_and_variances(a in small_rate(), b in small_rate(), k in 1usize..5) {
        let f = exponential(a);
        let g = erlang(k, b);
        let c = convolve(&f, &g);
        prop_assert!((c.mean() - (f.mean() + g.mean())).abs() < 1e-9);
        prop_assert!((c.variance() - (f.variance() + g.variance())).abs() < 1e-8);
    }

    #[test]
    fn minimum_of_exponentials_is_exponential(a in small_rate(), b in small_rate()) {
        let m = minimum(&exponential(a), &exponential(b));
        prop_assert!((m.mean() - 1.0 / (a + b)).abs() < 1e-9);
        prop_assert!((m.scv() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn ph_cdf_is_monotone(rate in small_rate(), k in 1usize..4) {
        let ph = erlang(k, rate);
        let mut last = 0.0;
        for i in 0..20 {
            let t = i as f64 * 0.3;
            let f = ph.cdf(t);
            prop_assert!(f >= last - 1e-9, "CDF dropped at t={t}");
            prop_assert!((0.0..=1.0 + 1e-9).contains(&f));
            last = f;
        }
    }

    #[test]
    fn ph_moments_match_samples(p in 0.1f64..0.9, r1 in small_rate(), r2 in small_rate()) {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let ph = hyperexponential(&[p, 1.0 - p], &[r1, r2]).unwrap();
        let mut rng = StdRng::seed_from_u64(7);
        let n = 60_000;
        let mean: f64 = ph.sample_n(&mut rng, n).iter().sum::<f64>() / n as f64;
        // 5 sigma tolerance on the sample mean.
        let tol = 5.0 * (ph.variance() / n as f64).sqrt() + 1e-3;
        prop_assert!((mean - ph.mean()).abs() < tol, "sample {mean} vs {} (tol {tol})", ph.mean());
    }

    #[test]
    fn qbd_stability_iff_spectral_radius(lambda in 0.05f64..1.9, mu in 1.0f64..1.00001) {
        prop_assume!((lambda - mu).abs() > 0.05);
        let a0 = Matrix::from_rows(&[&[lambda]]);
        let a1 = Matrix::from_rows(&[&[-(lambda + mu)]]);
        let a2 = Matrix::from_rows(&[&[mu]]);
        let drift = drift_condition(&a0, &a1, &a2).unwrap();
        if drift.is_stable() {
            let r = solve_r(&a0, &a1, &a2, RSolverMethod::LogarithmicReduction, 1e-12, 500).unwrap();
            let sp = spectral_radius(&r, 1e-12, 100_000).unwrap();
            prop_assert!(sp < 1.0, "stable drift but sp(R) = {sp}");
            prop_assert!((sp - lambda / mu).abs() < 1e-6);
        } else {
            prop_assert!(lambda >= mu);
        }
    }

    #[test]
    fn gth_solves_balance_equations(seed in 0u64..500, n in 2usize..7) {
        // Pseudo-random dense irreducible generator.
        let mut s = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
        let mut next = || {
            s ^= s << 13; s ^= s >> 7; s ^= s << 17;
            0.05 + (s % 1000) as f64 / 1000.0
        };
        let mut rates = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..n {
                if i != j {
                    rates[(i, j)] = next();
                }
            }
        }
        let c = Ctmc::from_rates(&rates).unwrap();
        let pi = c.stationary_gth().unwrap();
        let res = c.generator().transpose().mul_vec(&pi).unwrap();
        for r in res {
            prop_assert!(r.abs() < 1e-10);
        }
        prop_assert!((pi.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn mm1_qbd_mean_matches_formula(rho in 0.05f64..0.9) {
        let q = QbdProcess::new(
            vec![],
            vec![Matrix::from_rows(&[&[-rho]])],
            vec![],
            Matrix::from_rows(&[&[rho]]),
            Matrix::from_rows(&[&[-(rho + 1.0)]]),
            Matrix::from_rows(&[&[1.0]]),
        ).unwrap();
        let sol = q.solve(&Default::default()).unwrap();
        prop_assert!((sol.mean_level() - rho / (1.0 - rho)).abs() < 1e-7);
        prop_assert!((sol.total_mass() - 1.0).abs() < 1e-8);
    }
}

proptest! {
    // The full solver is heavier; fewer cases.
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn solver_invariants_hold(lambda in 0.05f64..0.35, q in 0.3f64..3.0) {
        let mk = || ClassParams {
            partition_size: 2,
            arrival: exponential(lambda),
            service: exponential(1.0),
            quantum: erlang(2, 1.0 / q),
            switch_overhead: exponential(100.0),
        };
        let model = GangModel::new(2, vec![mk(), mk()]).unwrap();
        let sol = solve(&model, &SolverOptions::default()).unwrap();
        prop_assert!(sol.converged);
        for c in &sol.classes {
            prop_assert!(c.stable);
            prop_assert!(c.mean_jobs > 0.0 && c.mean_jobs.is_finite());
            // Little's law by construction, but via the public surface:
            let meas = c.measures.as_ref().unwrap();
            prop_assert!((c.mean_response * meas.arrival_rate - c.mean_jobs).abs() < 1e-9);
            // Effective quantum cannot exceed the parameter quantum mean.
            prop_assert!(c.effective_quantum_mean <= q * (1.0 + 1e-6));
            prop_assert!((0.0..=1.0).contains(&c.skip_probability));
            // Sanity on probabilities.
            prop_assert!((0.0..=1.0 + 1e-9).contains(&meas.prob_empty));
            prop_assert!((0.0..=1.0 + 1e-9).contains(&meas.service_fraction));
        }
        // Symmetric classes → symmetric results.
        prop_assert!((sol.classes[0].mean_jobs - sol.classes[1].mean_jobs).abs() < 1e-5);
    }

    #[test]
    fn effective_quantum_shrinks_with_load(q in 0.5f64..2.0) {
        let mk = |lambda: f64| {
            let c = ClassParams {
                partition_size: 2,
                arrival: exponential(lambda),
                service: exponential(1.0),
                quantum: erlang(2, 1.0 / q),
                switch_overhead: exponential(100.0),
            };
            GangModel::new(2, vec![c.clone(), c]).unwrap()
        };
        let light = solve(&mk(0.05), &SolverOptions::default()).unwrap();
        let heavy = solve(&mk(0.35), &SolverOptions::default()).unwrap();
        prop_assert!(
            light.classes[0].effective_quantum_mean < heavy.classes[0].effective_quantum_mean
        );
        prop_assert!(light.classes[0].skip_probability > heavy.classes[0].skip_probability);
    }
}

#[test]
fn zero_phase_type_is_identity_for_convolution() {
    let e = exponential(1.0);
    assert_eq!(convolve(&PhaseType::zero(), &e), e);
}
