//! Offline stand-in for the `parking_lot` crate.
//!
//! Wraps `std::sync` primitives behind the `parking_lot` API surface this
//! workspace uses: non-poisoning `Mutex` and `RwLock` whose lock methods
//! return guards directly. A poisoned std lock (a panic while held) is
//! recovered with `into_inner`, matching parking_lot's no-poisoning
//! semantics.

use std::ops::{Deref, DerefMut};

/// A mutual-exclusion lock that does not poison.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// Guard returned by [`Mutex::lock`].
pub struct MutexGuard<'a, T: ?Sized> {
    inner: std::sync::MutexGuard<'a, T>,
}

impl<T> Mutex<T> {
    /// Create a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking the current thread.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: self
                .inner
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner),
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner
            .get_mut()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

impl<'a, T: ?Sized> Deref for MutexGuard<'a, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<'a, T: ?Sized> DerefMut for MutexGuard<'a, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

/// A reader-writer lock that does not poison.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

/// Shared guard returned by [`RwLock::read`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockReadGuard<'a, T>,
}

/// Exclusive guard returned by [`RwLock::write`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockWriteGuard<'a, T>,
}

impl<T> RwLock<T> {
    /// Create a new reader-writer lock.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard {
            inner: self
                .inner
                .read()
                .unwrap_or_else(std::sync::PoisonError::into_inner),
        }
    }

    /// Acquire an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard {
            inner: self
                .inner
                .write()
                .unwrap_or_else(std::sync::PoisonError::into_inner),
        }
    }
}

impl<'a, T: ?Sized> Deref for RwLockReadGuard<'a, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<'a, T: ?Sized> Deref for RwLockWriteGuard<'a, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<'a, T: ?Sized> DerefMut for RwLockWriteGuard<'a, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_counts_across_threads() {
        let m = Arc::new(Mutex::new(0u64));
        let mut handles = Vec::new();
        for _ in 0..8 {
            let m = Arc::clone(&m);
            handles.push(std::thread::spawn(move || {
                for _ in 0..1000 {
                    *m.lock() += 1;
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 8000);
    }

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(vec![1, 2, 3]);
        assert_eq!(l.read().len(), 3);
        l.write().push(4);
        assert_eq!(l.read().len(), 4);
    }
}
