//! Offline stand-in for the `crossbeam` crate.
//!
//! Provides `crossbeam::scope` (and `crossbeam::thread::scope`) on top of
//! `std::thread::scope`, which has offered the same structured-concurrency
//! guarantee since Rust 1.63. Only the subset used by this workspace is
//! implemented: spawning borrowing worker threads inside a scope.

pub use thread::scope;

/// Scoped-thread module mirroring `crossbeam::thread`.
pub mod thread {
    /// Result type of [`scope`]: `Err` carries a panic payload from a child
    /// thread. With the std backing, child panics propagate when the scope
    /// exits, so in practice this is always `Ok` on return.
    pub type Result<T> = std::result::Result<T, Box<dyn std::any::Any + Send + 'static>>;

    /// A scope handle passed to [`scope`]'s closure and to spawned threads.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawn a thread inside the scope. The closure receives the scope,
        /// matching crossbeam's signature (nested spawns).
        pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let handle = Scope { inner: self.inner };
            self.inner.spawn(move || f(&handle))
        }
    }

    /// Run `f` with a scope in which borrowing threads can be spawned; all
    /// spawned threads are joined before `scope` returns.
    pub fn scope<'env, F, R>(f: F) -> Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scoped_threads_borrow_and_join() {
        let data = [1u64, 2, 3, 4];
        let sum = std::sync::atomic::AtomicU64::new(0);
        let sum_ref = &sum;
        super::scope(|s| {
            for &x in &data {
                s.spawn(move |_| {
                    sum_ref.fetch_add(x, std::sync::atomic::Ordering::Relaxed);
                });
            }
        })
        .unwrap();
        assert_eq!(sum.load(std::sync::atomic::Ordering::Relaxed), 10);
    }

    #[test]
    fn nested_spawn_through_handle() {
        let hit = std::sync::atomic::AtomicU64::new(0);
        super::scope(|s| {
            s.spawn(|inner| {
                inner.spawn(|_| {
                    hit.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                });
            });
        })
        .unwrap();
        assert_eq!(hit.load(std::sync::atomic::Ordering::Relaxed), 1);
    }
}
