//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors a minimal, API-compatible subset of `rand` covering exactly what
//! this repository uses: [`rngs::StdRng`], [`SeedableRng::seed_from_u64`],
//! and uniform sampling through [`RngExt::random`].
//!
//! The generator is xoshiro256++ (Blackman & Vigna), seeded through
//! splitmix64 — a high-quality, well-studied PRNG whose uniform output
//! easily satisfies the statistical tolerances of the simulation tests.

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Next raw 64-bit word.
    fn next_u64(&mut self) -> u64;

    /// Next raw 32-bit word.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Marker trait mirroring `rand::Rng` (blanket-implemented for every
/// [`RngCore`]).
pub trait Rng: RngCore {}
impl<R: RngCore + ?Sized> Rng for R {}

/// Types that can be sampled uniformly from raw generator output.
pub trait Standard: Sized {
    /// Draw one value from `rng`.
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for u64 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Convenience sampling methods (mirrors `rand::RngExt` / `rand::Rng`
/// extension methods).
pub trait RngExt: RngCore {
    /// Uniform sample of `T` (for `f64`: uniform in `[0, 1)`).
    fn random<T: Standard>(&mut self) -> T {
        T::from_rng(self)
    }

    /// Uniform integer in `[0, bound)`.
    fn random_below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            return 0;
        }
        // Rejection-free multiply-shift (Lemire); bias < 2^-64.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }
}
impl<R: RngCore + ?Sized> RngExt for R {}

/// Deterministic construction from a seed.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Named generators.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// The standard generator: xoshiro256++.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for w in &mut s {
                *w = splitmix64(&mut sm);
            }
            // An all-zero state is the one invalid seed for xoshiro.
            if s == [0, 0, 0, 0] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(a.random::<u64>(), b.random::<u64>());
    }

    #[test]
    fn f64_in_unit_interval_with_sane_mean() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let u: f64 = rng.random();
            assert!((0.0..1.0).contains(&u));
            sum += u;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.005, "mean {mean}");
    }

    #[test]
    fn random_below_in_range() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            assert!(rng.random_below(10) < 10);
        }
        assert_eq!(rng.random_below(0), 0);
    }
}
