//! Offline stand-in for the `serde_json` crate.
//!
//! A complete JSON parser and writer over the vendored `serde::Value` data
//! model, exposing the API surface this workspace uses: [`from_str`],
//! [`to_string`], [`to_string_pretty`] and [`Value`]. Non-finite floats are
//! written as `null` (strict JSON has no NaN/inf), and integral floats are
//! written without a decimal point so counts round-trip as integers.

pub use serde::Value;

pub use serde::Error;

/// Parse a JSON document into `T`.
pub fn from_str<T: serde::Deserialize>(s: &str) -> Result<T, Error> {
    let value = parse_value(s)?;
    T::from_value(&value)
}

/// Serialize `value` as compact JSON.
pub fn to_string<T: serde::Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_compact(&value.to_value(), &mut out);
    Ok(out)
}

/// Serialize `value` as pretty-printed JSON (two-space indent).
pub fn to_string_pretty<T: serde::Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_pretty(&value.to_value(), 0, &mut out);
    Ok(out)
}

/// Convert any serializable value into the [`Value`] data model.
pub fn to_value<T: serde::Serialize>(value: &T) -> Result<Value, Error> {
    Ok(value.to_value())
}

/// Rebuild a deserializable type from a [`Value`].
pub fn from_value<T: serde::Deserialize>(value: Value) -> Result<T, Error> {
    T::from_value(&value)
}

// ---- writer ----

fn write_number(x: f64, out: &mut String) {
    use std::fmt::Write;
    if !x.is_finite() {
        out.push_str("null");
    } else if x.fract() == 0.0 && x.abs() < 9.0e15 {
        let _ = write!(out, "{}", x as i64);
    } else {
        let _ = write!(out, "{x}");
    }
}

fn write_string(s: &str, out: &mut String) {
    use std::fmt::Write;
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_compact(v: &Value, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Number(x) => write_number(*x, out),
        Value::String(s) => write_string(s, out),
        Value::Array(a) => {
            out.push('[');
            for (i, item) in a.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_compact(item, out);
            }
            out.push(']');
        }
        Value::Object(o) => {
            out.push('{');
            for (i, (k, item)) in o.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(k, out);
                out.push(':');
                write_compact(item, out);
            }
            out.push('}');
        }
    }
}

fn indent(level: usize, out: &mut String) {
    for _ in 0..level {
        out.push_str("  ");
    }
}

fn write_pretty(v: &Value, level: usize, out: &mut String) {
    match v {
        Value::Array(a) if !a.is_empty() => {
            out.push_str("[\n");
            for (i, item) in a.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                indent(level + 1, out);
                write_pretty(item, level + 1, out);
            }
            out.push('\n');
            indent(level, out);
            out.push(']');
        }
        Value::Object(o) if !o.is_empty() => {
            out.push_str("{\n");
            for (i, (k, item)) in o.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                indent(level + 1, out);
                write_string(k, out);
                out.push_str(": ");
                write_pretty(item, level + 1, out);
            }
            out.push('\n');
            indent(level, out);
            out.push('}');
        }
        other => write_compact(other, out),
    }
}

// ---- parser ----

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse_value(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::msg(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> Error {
        Error::msg(format!("{msg} at byte {}", self.pos))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected `{word}`")))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::String),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Value::Number)
            .map_err(|_| self.err(&format!("invalid number `{text}`")))
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            if self.pos + 4 >= self.bytes.len() {
                                return Err(self.err("truncated \\u escape"));
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos + 1..self.pos + 5])
                                .map_err(|_| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            // Surrogate pairs are not needed for this
                            // workspace's data; map lone surrogates to the
                            // replacement character.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(c) if c < 0x80 => {
                    out.push(c as char);
                    self.pos += 1;
                }
                Some(_) => {
                    // Multi-byte UTF-8: the input is a &str, so this is valid.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..]).unwrap();
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(items));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            items.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(items));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_roundtrip() {
        let text = r#"{"a": [1, 2.5, -3e2], "b": {"nested": true}, "s": "hi\nthere", "n": null}"#;
        let v: Value = from_str(text).unwrap();
        assert_eq!(v["a"][2].as_f64(), Some(-300.0));
        assert_eq!(v["b"]["nested"], Value::Bool(true));
        assert_eq!(v["s"].as_str(), Some("hi\nthere"));
        assert!(v["n"].is_null());
        let compact = to_string(&v).unwrap();
        let v2: Value = from_str(&compact).unwrap();
        assert_eq!(v, v2);
        let pretty = to_string_pretty(&v).unwrap();
        let v3: Value = from_str(&pretty).unwrap();
        assert_eq!(v, v3);
    }

    #[test]
    fn nonfinite_writes_null() {
        assert_eq!(to_string(&f64::NAN).unwrap(), "null");
        assert_eq!(to_string(&f64::INFINITY).unwrap(), "null");
    }

    #[test]
    fn integral_floats_as_integers() {
        assert_eq!(to_string(&vec![1.0f64, 0.25]).unwrap(), "[1,0.25]");
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<Value>("{\"a\": }").is_err());
        assert!(from_str::<Value>("[1, 2,]").is_err());
        assert!(from_str::<Value>("01x").is_err());
    }
}
