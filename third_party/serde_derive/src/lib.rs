//! Offline stand-in for the `serde_derive` crate.
//!
//! Generates impls of the vendored `serde::Serialize` / `serde::Deserialize`
//! traits (which go through `serde::Value` rather than visitors). Written
//! without `syn`/`quote`: the derive input is parsed by walking the raw
//! `TokenStream` and the impl is emitted as a string.
//!
//! Supported input shapes — exactly what this workspace uses:
//! * structs with named fields;
//! * enums whose variants have named fields or no fields, with an
//!   internally-tagged representation via
//!   `#[serde(tag = "...", rename_all = "snake_case")]`;
//! * `#[serde(default = "path")]` on fields.
//!
//! Anything else (tuple structs, generics, other serde attributes) is
//! rejected with a compile-time panic naming the construct, so a future
//! user hits a clear error instead of silently wrong code.

use proc_macro::{Delimiter, TokenStream, TokenTree};
use std::str::FromStr;

/// Derive `serde::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    TokenStream::from_str(&gen_serialize(&item)).expect("serde_derive: generated code parses")
}

/// Derive `serde::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    TokenStream::from_str(&gen_deserialize(&item)).expect("serde_derive: generated code parses")
}

// ---- input model ----

struct Field {
    name: String,
    /// `#[serde(default = "path")]` if present.
    default_path: Option<String>,
}

struct Variant {
    name: String,
    fields: Vec<Field>,
}

enum Shape {
    Struct(Vec<Field>),
    Enum(Vec<Variant>),
}

struct Item {
    name: String,
    /// `#[serde(tag = "...")]` container attribute.
    tag: Option<String>,
    /// `#[serde(rename_all = "snake_case")]` container attribute.
    rename_snake: bool,
    shape: Shape,
}

// ---- parsing ----

/// Key/value pairs found in one `#[serde(...)]` attribute.
fn parse_serde_attr(group: &proc_macro::Group) -> Vec<(String, String)> {
    let mut out = Vec::new();
    let tokens: Vec<TokenTree> = group.stream().into_iter().collect();
    // Expect: Ident("serde") Group(Paren, k = "v", ...)
    if tokens.len() != 2 {
        return out;
    }
    let inner = match &tokens[1] {
        TokenTree::Group(g) if g.delimiter() == Delimiter::Parenthesis => g.stream(),
        _ => return out,
    };
    let items: Vec<TokenTree> = inner.into_iter().collect();
    let mut i = 0;
    while i < items.len() {
        let key = match &items[i] {
            TokenTree::Ident(id) => id.to_string(),
            _ => panic!("serde_derive: unsupported serde attribute syntax"),
        };
        i += 1;
        if i < items.len() && matches!(&items[i], TokenTree::Punct(p) if p.as_char() == '=') {
            i += 1;
            let val = match &items[i] {
                TokenTree::Literal(l) => unquote(&l.to_string()),
                _ => panic!("serde_derive: expected string after `{key} =`"),
            };
            i += 1;
            out.push((key, val));
        } else {
            out.push((key.clone(), String::new()));
        }
        if i < items.len() {
            match &items[i] {
                TokenTree::Punct(p) if p.as_char() == ',' => i += 1,
                _ => panic!("serde_derive: expected `,` in serde attribute"),
            }
        }
    }
    out
}

fn unquote(lit: &str) -> String {
    lit.trim_matches('"').to_string()
}

/// Consume leading `#[...]` attributes from `tokens[i..]`; return the new
/// index and any serde key/value pairs found.
fn skip_attrs(tokens: &[TokenTree], mut i: usize) -> (usize, Vec<(String, String)>) {
    let mut serde_kvs = Vec::new();
    while i + 1 < tokens.len() {
        match (&tokens[i], &tokens[i + 1]) {
            (TokenTree::Punct(p), TokenTree::Group(g))
                if p.as_char() == '#' && g.delimiter() == Delimiter::Bracket =>
            {
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                if matches!(inner.first(), Some(TokenTree::Ident(id)) if id.to_string() == "serde")
                {
                    serde_kvs.extend(parse_serde_attr(g));
                }
                i += 2;
            }
            _ => break,
        }
    }
    (i, serde_kvs)
}

/// Parse the fields of a brace-delimited named-field body.
fn parse_named_fields(group: &proc_macro::Group) -> Vec<Field> {
    let tokens: Vec<TokenTree> = group.stream().into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let (ni, kvs) = skip_attrs(&tokens, i);
        i = ni;
        if i >= tokens.len() {
            break;
        }
        // Optional visibility: `pub` or `pub(...)`.
        if matches!(&tokens[i], TokenTree::Ident(id) if id.to_string() == "pub") {
            i += 1;
            if matches!(&tokens[i], TokenTree::Group(g) if g.delimiter() == Delimiter::Parenthesis)
            {
                i += 1;
            }
        }
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("serde_derive: expected field name, got `{other}`"),
        };
        i += 1;
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == ':' => i += 1,
            other => panic!("serde_derive: expected `:` after field `{name}`, got `{other}`"),
        }
        // Skip the type: everything until a comma at angle-bracket depth 0.
        let mut angle = 0i32;
        while i < tokens.len() {
            match &tokens[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
        let default_path = kvs
            .iter()
            .find(|(k, _)| k == "default")
            .map(|(_, v)| v.clone());
        fields.push(Field { name, default_path });
    }
    fields
}

fn parse_variants(group: &proc_macro::Group, enum_name: &str) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = group.stream().into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let (ni, _) = skip_attrs(&tokens, i);
        i = ni;
        if i >= tokens.len() {
            break;
        }
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("serde_derive: expected variant of `{enum_name}`, got `{other}`"),
        };
        i += 1;
        let mut fields = Vec::new();
        if i < tokens.len() {
            match &tokens[i] {
                TokenTree::Group(g) if g.delimiter() == Delimiter::Brace => {
                    fields = parse_named_fields(g);
                    i += 1;
                }
                TokenTree::Group(g) if g.delimiter() == Delimiter::Parenthesis => {
                    panic!(
                        "serde_derive: tuple variant `{enum_name}::{name}` is not supported; \
                         use named fields"
                    );
                }
                _ => {}
            }
        }
        if i < tokens.len() {
            match &tokens[i] {
                TokenTree::Punct(p) if p.as_char() == ',' => i += 1,
                other => panic!("serde_derive: expected `,` after variant, got `{other}`"),
            }
        }
        variants.push(Variant { name, fields });
    }
    variants
}

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let (mut i, container_kvs) = skip_attrs(&tokens, 0);
    // Optional visibility.
    if matches!(&tokens[i], TokenTree::Ident(id) if id.to_string() == "pub") {
        i += 1;
        if matches!(&tokens[i], TokenTree::Group(g) if g.delimiter() == Delimiter::Parenthesis) {
            i += 1;
        }
    }
    let kw = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde_derive: expected `struct` or `enum`, got `{other}`"),
    };
    i += 1;
    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde_derive: expected type name, got `{other}`"),
    };
    i += 1;
    if matches!(&tokens[i], TokenTree::Punct(p) if p.as_char() == '<') {
        panic!("serde_derive: generic type `{name}` is not supported");
    }
    let body = match &tokens[i] {
        TokenTree::Group(g) if g.delimiter() == Delimiter::Brace => g,
        other => panic!("serde_derive: `{name}` must have a braced body, got `{other}`"),
    };
    let shape = match kw.as_str() {
        "struct" => Shape::Struct(parse_named_fields(body)),
        "enum" => Shape::Enum(parse_variants(body, &name)),
        other => panic!("serde_derive: unsupported item kind `{other}`"),
    };
    let tag = container_kvs
        .iter()
        .find(|(k, _)| k == "tag")
        .map(|(_, v)| v.clone());
    let rename_snake = container_kvs
        .iter()
        .any(|(k, v)| k == "rename_all" && v == "snake_case");
    Item {
        name,
        tag,
        rename_snake,
        shape,
    }
}

// ---- codegen ----

fn snake_case(name: &str) -> String {
    let mut out = String::new();
    for (i, c) in name.chars().enumerate() {
        if c.is_ascii_uppercase() {
            if i > 0 {
                out.push('_');
            }
            out.push(c.to_ascii_lowercase());
        } else {
            out.push(c);
        }
    }
    out
}

fn variant_key(item: &Item, variant: &str) -> String {
    if item.rename_snake {
        snake_case(variant)
    } else {
        variant.to_string()
    }
}

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    match &item.shape {
        Shape::Struct(fields) => {
            let mut pairs = String::new();
            for f in fields {
                pairs.push_str(&format!(
                    "(\"{0}\".to_string(), ::serde::Serialize::to_value(&self.{0})),",
                    f.name
                ));
            }
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         ::serde::Value::Object(vec![{pairs}])\n\
                     }}\n\
                 }}"
            )
        }
        Shape::Enum(variants) => {
            let tag = item
                .tag
                .as_deref()
                .unwrap_or_else(|| panic!("serde_derive: enum `{name}` needs #[serde(tag = ...)]"));
            let mut arms = String::new();
            for v in variants {
                let key = variant_key(item, &v.name);
                let bindings: Vec<&str> = v.fields.iter().map(|f| f.name.as_str()).collect();
                let pattern = if bindings.is_empty() {
                    format!("{name}::{}", v.name)
                } else {
                    format!("{name}::{} {{ {} }}", v.name, bindings.join(", "))
                };
                let mut pairs = format!(
                    "(\"{tag}\".to_string(), ::serde::Value::String(\"{key}\".to_string())),"
                );
                for f in &v.fields {
                    pairs.push_str(&format!(
                        "(\"{0}\".to_string(), ::serde::Serialize::to_value({0})),",
                        f.name
                    ));
                }
                arms.push_str(&format!(
                    "{pattern} => ::serde::Value::Object(vec![{pairs}]),\n"
                ));
            }
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         match self {{\n{arms}}}\n\
                     }}\n\
                 }}"
            )
        }
    }
}

/// Field initializer inside a struct/variant literal being deserialized from
/// object body `__obj`.
fn field_init(f: &Field) -> String {
    match &f.default_path {
        Some(path) => format!(
            "{0}: match ::serde::__private::get(__obj, \"{0}\") {{\n\
                 Some(__v) => ::serde::Deserialize::from_value(__v)\n\
                     .map_err(|e| ::serde::Error::msg(format!(\"field `{0}`: {{e}}\")))?,\n\
                 None => {path}(),\n\
             }},",
            f.name
        ),
        None => format!("{0}: ::serde::__private::field(__obj, \"{0}\")?,", f.name),
    }
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    match &item.shape {
        Shape::Struct(fields) => {
            let inits: String = fields.iter().map(field_init).collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                         let __obj = ::serde::__private::expect_object(__v, \"{name}\")?;\n\
                         Ok({name} {{ {inits} }})\n\
                     }}\n\
                 }}"
            )
        }
        Shape::Enum(variants) => {
            let tag = item
                .tag
                .as_deref()
                .unwrap_or_else(|| panic!("serde_derive: enum `{name}` needs #[serde(tag = ...)]"));
            let mut arms = String::new();
            for v in variants {
                let key = variant_key(item, &v.name);
                let ctor = if v.fields.is_empty() {
                    format!("{name}::{}", v.name)
                } else {
                    let inits: String = v.fields.iter().map(field_init).collect();
                    format!("{name}::{} {{ {inits} }}", v.name)
                };
                arms.push_str(&format!("\"{key}\" => Ok({ctor}),\n"));
            }
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                         let __obj = ::serde::__private::expect_object(__v, \"{name}\")?;\n\
                         match ::serde::__private::expect_tag(__obj, \"{tag}\", \"{name}\")? {{\n\
                             {arms}\
                             other => Err(::serde::Error::msg(format!(\n\
                                 \"unknown `{tag}` value `{{other}}` for `{name}`\"))),\n\
                         }}\n\
                     }}\n\
                 }}"
            )
        }
    }
}
