//! Offline stand-in for the `criterion` crate.
//!
//! Implements the benchmarking API surface this workspace uses —
//! `criterion_group!` / `criterion_main!`, benchmark groups,
//! `bench_function` / `bench_with_input`, `BenchmarkId`, `Bencher::iter` —
//! backed by a simple wall-clock harness: a calibration pass sizes the
//! batch to roughly 50 ms, then the median of several timed batches is
//! reported as ns/iter. No statistics beyond that, no HTML reports, no
//! saved baselines; good enough to compare two variants side by side.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifier for one benchmark within a group.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` style id.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Id that is just a parameter value.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Timing harness handed to benchmark closures.
pub struct Bencher {
    /// Median nanoseconds per iteration, filled by [`Bencher::iter`].
    ns_per_iter: f64,
}

impl Bencher {
    /// Measure `routine`: calibrate a batch size targeting ~50 ms, then
    /// time several batches and keep the median.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Calibration: grow the batch until it takes at least ~10 ms.
        let mut batch: u64 = 1;
        let batch_time = loop {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= Duration::from_millis(10) || batch >= 1 << 24 {
                break elapsed;
            }
            batch *= 4;
        };
        // Aim each sample at ~50 ms, bounded so total stays near 0.5 s.
        let per_iter = batch_time.as_secs_f64() / batch as f64;
        let target = (0.05 / per_iter.max(1e-12)).clamp(1.0, 1e9) as u64;
        let samples = 9usize;
        let mut times: Vec<f64> = Vec::with_capacity(samples);
        for _ in 0..samples {
            let start = Instant::now();
            for _ in 0..target {
                black_box(routine());
            }
            times.push(start.elapsed().as_secs_f64() / target as f64);
        }
        times.sort_by(|a, b| a.partial_cmp(b).unwrap());
        self.ns_per_iter = times[samples / 2] * 1e9;
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    _criterion: &'a mut Criterion,
}

impl<'a> BenchmarkGroup<'a> {
    /// Accepted for API compatibility; the stub harness sizes samples by
    /// time, not count.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    fn run(&mut self, id: String, f: impl FnOnce(&mut Bencher)) {
        let mut bencher = Bencher { ns_per_iter: 0.0 };
        f(&mut bencher);
        let ns = bencher.ns_per_iter;
        let (value, unit) = if ns >= 1e9 {
            (ns / 1e9, "s")
        } else if ns >= 1e6 {
            (ns / 1e6, "ms")
        } else if ns >= 1e3 {
            (ns / 1e3, "µs")
        } else {
            (ns, "ns")
        };
        println!("{}/{:<40} time: {:>10.3} {unit}/iter", self.name, id, value);
    }

    /// Benchmark a closure under `id`.
    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: impl FnOnce(&mut Bencher),
    ) -> &mut Self {
        let id = id.into().id;
        self.run(id, f);
        self
    }

    /// Benchmark a closure that borrows a prepared input.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        f: impl FnOnce(&mut Bencher, &I),
    ) -> &mut Self {
        self.run(id.id, |b| f(b, input));
        self
    }

    /// End the group (prints nothing extra in the stub).
    pub fn finish(self) {}
}

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            _criterion: self,
        }
    }

    /// Benchmark a closure directly under the criterion root.
    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: impl FnOnce(&mut Bencher),
    ) -> &mut Self {
        let id = id.into().id;
        let mut group = BenchmarkGroup {
            name: "bench".to_string(),
            _criterion: self,
        };
        group.run(id, f);
        self
    }
}

/// Collect benchmark functions into a group runner.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emit `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut b = Bencher { ns_per_iter: 0.0 };
        b.iter(|| {
            let mut acc = 0u64;
            for i in 0..100u64 {
                acc = acc.wrapping_add(black_box(i));
            }
            acc
        });
        assert!(b.ns_per_iter > 0.0);
    }

    #[test]
    fn group_api_compiles_and_runs() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("smoke");
        g.sample_size(10);
        g.bench_with_input(BenchmarkId::new("sum", 4), &4u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        g.finish();
    }
}
