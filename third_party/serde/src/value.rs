//! JSON-shaped data model shared by the vendored `serde` and `serde_json`.

/// A JSON-like value.
///
/// Numbers are stored as `f64`, which covers every quantity this workspace
/// serializes (probabilities, rates, counts well below 2^53). Objects keep
/// insertion order as a `Vec` of pairs so emitted JSON is deterministic.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// JSON number (always an `f64` internally).
    Number(f64),
    /// JSON string.
    String(String),
    /// JSON array.
    Array(Vec<Value>),
    /// JSON object, insertion-ordered.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Short name of the value's kind, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Number(_) => "number",
            Value::String(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }

    /// Borrow as a bool, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Borrow as an `f64`, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(x) => Some(*x),
            _ => None,
        }
    }

    /// Borrow as a `u64`, if this is a non-negative integral number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(x) if *x >= 0.0 && x.fract() == 0.0 => Some(*x as u64),
            _ => None,
        }
    }

    /// Borrow as an `i64`, if this is an integral number.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(x) if x.fract() == 0.0 => Some(*x as i64),
            _ => None,
        }
    }

    /// Borrow as a string slice, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// Borrow as an array, if this is one.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// Borrow the object's key/value pairs, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(o) => Some(o),
            _ => None,
        }
    }

    /// True iff this is `Null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Object/array lookup that returns `None` out of range or on kind
    /// mismatch, mirroring `serde_json::Value::get`.
    pub fn get<I: ValueIndex>(&self, index: I) -> Option<&Value> {
        index.get_from(self)
    }
}

/// Index types usable with [`Value::get`] and `value[index]`.
pub trait ValueIndex {
    /// Non-panicking lookup.
    fn get_from<'a>(&self, v: &'a Value) -> Option<&'a Value>;
}

impl ValueIndex for &str {
    fn get_from<'a>(&self, v: &'a Value) -> Option<&'a Value> {
        match v {
            Value::Object(o) => o.iter().find(|(k, _)| k == self).map(|(_, x)| x),
            _ => None,
        }
    }
}

impl ValueIndex for String {
    fn get_from<'a>(&self, v: &'a Value) -> Option<&'a Value> {
        self.as_str().get_from(v)
    }
}

impl ValueIndex for usize {
    fn get_from<'a>(&self, v: &'a Value) -> Option<&'a Value> {
        match v {
            Value::Array(a) => a.get(*self),
            _ => None,
        }
    }
}

impl<I: ValueIndex> std::ops::Index<I> for Value {
    type Output = Value;

    /// Panic-free indexing like `serde_json`: missing keys and kind
    /// mismatches yield `Null` instead of panicking.
    fn index(&self, index: I) -> &Value {
        static NULL: Value = Value::Null;
        index.get_from(self).unwrap_or(&NULL)
    }
}

impl std::fmt::Display for Value {
    /// Compact JSON rendering (delegates to the same writer serde_json
    /// uses is not possible from here, so this is a minimal equivalent).
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Value::Null => f.write_str("null"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Number(x) => {
                if !x.is_finite() {
                    f.write_str("null")
                } else if x.fract() == 0.0 && x.abs() < 9.0e15 {
                    write!(f, "{}", *x as i64)
                } else {
                    write!(f, "{x}")
                }
            }
            Value::String(s) => {
                f.write_str("\"")?;
                for c in s.chars() {
                    match c {
                        '"' => f.write_str("\\\"")?,
                        '\\' => f.write_str("\\\\")?,
                        '\n' => f.write_str("\\n")?,
                        '\r' => f.write_str("\\r")?,
                        '\t' => f.write_str("\\t")?,
                        c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
                        c => write!(f, "{c}")?,
                    }
                }
                f.write_str("\"")
            }
            Value::Array(a) => {
                f.write_str("[")?;
                for (i, v) in a.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{v}")?;
                }
                f.write_str("]")
            }
            Value::Object(o) => {
                f.write_str("{")?;
                for (i, (k, v)) in o.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{}:{v}", Value::String(k.clone()))?;
                }
                f.write_str("}")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_and_get() {
        let v = Value::Object(vec![
            ("a".to_string(), Value::Number(1.0)),
            (
                "b".to_string(),
                Value::Array(vec![Value::Bool(true), Value::Null]),
            ),
        ]);
        assert_eq!(v["a"].as_f64(), Some(1.0));
        assert_eq!(v["b"][0], Value::Bool(true));
        assert!(v["missing"].is_null());
        assert!(v.get("b").is_some());
        assert!(v.get("zzz").is_none());
    }

    #[test]
    fn integral_display() {
        assert_eq!(Value::Number(3.0).to_string(), "3");
        assert_eq!(Value::Number(0.5).to_string(), "0.5");
        assert_eq!(Value::Number(f64::NAN).to_string(), "null");
    }
}
