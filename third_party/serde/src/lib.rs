//! Offline stand-in for the `serde` crate.
//!
//! The build environment has no crates.io access, so the workspace vendors
//! a self-contained serialization framework under serde's name covering the
//! subset this repository uses: the `Serialize`/`Deserialize` traits, their
//! derive macros (including `#[serde(tag = "...", rename_all =
//! "snake_case")]` tagged enums and `#[serde(default = "path")]` fields),
//! and a JSON-shaped [`Value`] data model consumed by the vendored
//! `serde_json`.
//!
//! Unlike real serde there is no visitor machinery: serialization goes
//! through [`Value`] directly. Every format in this workspace is JSON, so
//! nothing is lost, and derived code stays debuggable.

mod value;

pub use value::Value;

pub use serde_derive::{Deserialize, Serialize};

/// Serialization/deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    /// Build an error from any message.
    pub fn msg(m: impl Into<String>) -> Self {
        Error(m.into())
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Types convertible into the [`Value`] data model.
pub trait Serialize {
    /// Convert `self` into a [`Value`].
    fn to_value(&self) -> Value;
}

/// Types reconstructible from the [`Value`] data model.
pub trait Deserialize: Sized {
    /// Rebuild `Self` from a [`Value`].
    fn from_value(v: &Value) -> Result<Self, Error>;
}

// ---- primitive impls ----

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_bool()
            .ok_or_else(|| Error::msg(format!("expected bool, got {}", v.kind())))
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_str()
            .map(str::to_string)
            .ok_or_else(|| Error::msg(format!("expected string, got {}", v.kind())))
    }
}

impl Serialize for &str {
    fn to_value(&self) -> Value {
        Value::String((*self).to_string())
    }
}

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                v.as_f64()
                    .map(|x| x as $t)
                    .ok_or_else(|| Error::msg(format!("expected number, got {}", v.kind())))
            }
        }
    )*};
}
impl_float!(f64, f32);

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let x = v
                    .as_f64()
                    .ok_or_else(|| Error::msg(format!("expected integer, got {}", v.kind())))?;
                if x.fract() != 0.0 {
                    return Err(Error::msg(format!("expected integer, got {x}")));
                }
                Ok(x as $t)
            }
        }
    )*};
}
impl_int!(usize, u64, u32, u16, u8, isize, i64, i32, i16, i8);

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_array()
            .ok_or_else(|| Error::msg(format!("expected array, got {}", v.kind())))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for &T {
    fn to_value(&self) -> Value {
        (*self).to_value()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let arr = v
                    .as_array()
                    .ok_or_else(|| Error::msg(format!("expected array tuple, got {}", v.kind())))?;
                let want = [$($idx),+].len();
                if arr.len() != want {
                    return Err(Error::msg(format!(
                        "expected {want}-tuple, got array of {}",
                        arr.len()
                    )));
                }
                Ok(($($name::from_value(&arr[$idx])?,)+))
            }
        }
    )*};
}
impl_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

/// Support functions referenced by derive-generated code. Not public API.
#[doc(hidden)]
pub mod __private {
    use super::{Deserialize, Error, Value};

    /// Look up `key` in an object body.
    pub fn get<'a>(obj: &'a [(String, Value)], key: &str) -> Option<&'a Value> {
        obj.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Deserialize field `key`, treating a missing key as `Null` (so
    /// `Option` fields default to `None` and everything else reports the
    /// missing field).
    pub fn field<T: Deserialize>(obj: &[(String, Value)], key: &str) -> Result<T, Error> {
        match get(obj, key) {
            Some(v) => T::from_value(v).map_err(|e| Error::msg(format!("field `{key}`: {e}"))),
            None => T::from_value(&Value::Null)
                .map_err(|_| Error::msg(format!("missing field `{key}`"))),
        }
    }

    /// Expect an object body, with a type name for error context.
    pub fn expect_object<'a>(v: &'a Value, ty: &str) -> Result<&'a [(String, Value)], Error> {
        v.as_object()
            .ok_or_else(|| Error::msg(format!("expected object for `{ty}`, got {}", v.kind())))
    }

    /// Expect the tag field of an internally tagged enum.
    pub fn expect_tag<'a>(
        obj: &'a [(String, Value)],
        tag: &str,
        ty: &str,
    ) -> Result<&'a str, Error> {
        get(obj, tag)
            .and_then(Value::as_str)
            .ok_or_else(|| Error::msg(format!("missing `{tag}` tag for `{ty}`")))
    }
}
