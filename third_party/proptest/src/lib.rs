//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset of proptest this workspace's property tests use:
//! range strategies over numeric types, `prop_map`, `collection::vec`, the
//! `proptest!` macro with `#![proptest_config(...)]`, and the
//! `prop_assert!` / `prop_assert_eq!` / `prop_assume!` macros.
//!
//! Differences from real proptest, deliberate for an offline stub:
//! * inputs are drawn from a deterministic per-test PRNG (seeded from the
//!   test path and case index), so runs are reproducible without a
//!   persistence file;
//! * there is no shrinking — a failing case reports the case index so it
//!   can be re-run, but is not minimized.

/// Test-case outcome used by the assertion macros.
#[derive(Debug)]
pub enum TestCaseError {
    /// The case's inputs do not satisfy a `prop_assume!` precondition;
    /// the case is skipped without counting toward the target.
    Reject(String),
    /// A `prop_assert!`-style check failed.
    Fail(String),
}

impl TestCaseError {
    /// Build a failure outcome.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// Build a rejection outcome.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

/// Per-test configuration. Only `cases` is honoured.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of accepted cases each property must pass.
    pub cases: u32,
}

impl ProptestConfig {
    /// Configuration running `cases` accepted cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Deterministic PRNG (splitmix64) for drawing test inputs.
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed from a test path and case index, so each (test, case) pair
    /// draws the same inputs on every run.
    pub fn for_case(test_path: &str, case: u32) -> Self {
        // FNV-1a over the path, mixed with the case index.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_path.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        TestRng {
            state: h ^ ((case as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15)),
        }
    }

    /// Next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A generator of test inputs.
pub trait Strategy {
    /// The type of values produced.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform produced values with `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy producing a fixed value.
#[derive(Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

impl Strategy for std::ops::Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for std::ops::Range<f32> {
    type Value = f32;

    fn generate(&self, rng: &mut TestRng) -> f32 {
        (self.start as f64 + rng.unit_f64() * (self.end - self.start) as f64) as f32
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let span = (self.end - self.start) as u64;
                assert!(span > 0, "empty integer range strategy");
                self.start + (rng.next_u64() % span) as $t
            }
        }
    )*};
}
int_range_strategy!(usize, u64, u32, u16, u8);

macro_rules! signed_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let span = (self.end as i64 - self.start as i64) as u64;
                assert!(span > 0, "empty integer range strategy");
                self.start + (rng.next_u64() % span) as $t
            }
        }
    )*};
}
signed_range_strategy!(isize, i64, i32, i16, i8);

macro_rules! tuple_strategy {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};

    /// Strategy returned by [`vec()`].
    pub struct VecStrategy<S> {
        elem: S,
        len: usize,
    }

    /// Produce `Vec`s of exactly `len` draws from `elem`.
    pub fn vec<S: Strategy>(elem: S, len: usize) -> VecStrategy<S> {
        VecStrategy { elem, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            (0..self.len).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

/// Everything a property-test module needs.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Just, ProptestConfig,
        Strategy, TestCaseError,
    };
}

/// Define property tests. Each `fn name(arg in strategy, ...) { body }`
/// becomes a test running `config.cases` accepted cases. Attributes on the
/// inner fns (including `#[test]`) are passed through unchanged.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = $cfg:expr; $($(#[$attr:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$attr])*
            fn $name() {
                let __config: $crate::ProptestConfig = $cfg;
                let __path = concat!(module_path!(), "::", stringify!($name));
                let mut __passed: u32 = 0;
                let mut __case: u32 = 0;
                let __max_cases = __config.cases.saturating_mul(20).max(100);
                while __passed < __config.cases {
                    __case += 1;
                    assert!(
                        __case <= __max_cases,
                        "proptest `{}`: too many rejected cases ({} accepted of {} wanted)",
                        __path, __passed, __config.cases
                    );
                    let mut __rng = $crate::TestRng::for_case(__path, __case);
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)+
                    let __outcome: ::std::result::Result<(), $crate::TestCaseError> =
                        (|| { $body Ok(()) })();
                    match __outcome {
                        Ok(()) => __passed += 1,
                        Err($crate::TestCaseError::Reject(_)) => {}
                        Err($crate::TestCaseError::Fail(msg)) => {
                            panic!(
                                "proptest `{}` failed on case {}: {}",
                                __path, __case, msg
                            );
                        }
                    }
                }
            }
        )*
    };
}

/// Fail the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Fail the current case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let __l = $left;
        let __r = $right;
        if __l != __r {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} == {} ({:?} vs {:?})",
                stringify!($left),
                stringify!($right),
                __l,
                __r
            )));
        }
    }};
}

/// Fail the current case if `left == right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        if $left == $right {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} != {}",
                stringify!($left),
                stringify!($right)
            )));
        }
    }};
}

/// Skip the current case unless `cond` holds (does not count as a pass).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return Err($crate::TestCaseError::reject(stringify!($cond)));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_respect_bounds(x in 1.5f64..2.5, n in 3usize..9) {
            prop_assert!((1.5..2.5).contains(&x));
            prop_assert!((3..9).contains(&n));
        }

        #[test]
        fn vec_and_map_compose(v in collection::vec(0.0f64..1.0, 5),
                               k in (1u64..10).prop_map(|x| x * 2)) {
            prop_assert_eq!(v.len(), 5);
            prop_assert!(v.iter().all(|x| (0.0..1.0).contains(x)));
            prop_assert!(k % 2 == 0 && (2..20).contains(&k));
        }

        #[test]
        fn assume_rejects_without_failing(a in 0u32..10) {
            prop_assume!(a % 2 == 0);
            prop_assert!(a % 2 == 0);
        }
    }

    #[test]
    fn cases_are_deterministic() {
        let mut r1 = super::TestRng::for_case("x::y", 3);
        let mut r2 = super::TestRng::for_case("x::y", 3);
        assert_eq!(r1.next_u64(), r2.next_u64());
        let mut r3 = super::TestRng::for_case("x::y", 4);
        assert_ne!(r1.next_u64(), r3.next_u64());
    }
}
