//! Ablation benchmarks over the solver's design knobs (cost side of the
//! accuracy/cost trade-offs reported by the `ablation` repro binary):
//! vacation mode, quantum stage count, and fixed-point tolerance.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gsched_core::solver::{solve, SolverOptions, VacationMode};
use gsched_workload::{paper_model, PaperConfig};
use std::hint::black_box;

fn base() -> PaperConfig {
    PaperConfig {
        lambda: 0.5,
        quantum_mean: 1.0,
        quantum_stages: 2,
        overhead_mean: 0.01,
    }
}

fn bench_vacation_mode(c: &mut Criterion) {
    let model = paper_model(&base());
    let mut g = c.benchmark_group("ablation_vacation_mode");
    g.sample_size(10);
    for (name, mode) in [
        ("heavy_traffic", VacationMode::HeavyTraffic),
        ("moment2", VacationMode::MomentMatched { moments: 2 }),
        ("moment3", VacationMode::MomentMatched { moments: 3 }),
        ("exact", VacationMode::Exact),
    ] {
        let opts = SolverOptions::builder().mode(mode.clone()).build().unwrap();
        g.bench_with_input(BenchmarkId::from_parameter(name), &opts, |b, opts| {
            b.iter(|| solve(black_box(&model), opts).unwrap())
        });
    }
    g.finish();
}

fn bench_quantum_stages(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_quantum_stages");
    g.sample_size(10);
    for k in [1usize, 2, 4] {
        let model = paper_model(&PaperConfig {
            quantum_stages: k,
            ..base()
        });
        g.bench_with_input(BenchmarkId::from_parameter(k), &model, |b, m| {
            b.iter(|| solve(black_box(m), &SolverOptions::default()).unwrap())
        });
    }
    g.finish();
}

fn bench_fp_tolerance(c: &mut Criterion) {
    let model = paper_model(&base());
    let mut g = c.benchmark_group("ablation_fp_tolerance");
    g.sample_size(10);
    for tol in [1e-3, 1e-6, 1e-9] {
        let opts = SolverOptions::builder().fp_tol(tol).build().unwrap();
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("{tol:.0e}")),
            &opts,
            |b, opts| b.iter(|| solve(black_box(&model), opts).unwrap()),
        );
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_vacation_mode,
    bench_quantum_stages,
    bench_fp_tolerance
);
criterion_main!(benches);
