//! Instrumentation overhead: the analytic solver with no recorder installed
//! (probes short-circuit on one atomic load) versus with the in-memory
//! recorder capturing everything.
//!
//! The disabled case must be indistinguishable from the pre-instrumentation
//! solver (< 2% overhead target); the enabled case quantifies the cost of
//! full capture.

use criterion::{criterion_group, criterion_main, Criterion};
use gsched_core::solver::{solve, SolverOptions};
use gsched_workload::{paper_model, PaperConfig};
use std::hint::black_box;

fn config() -> PaperConfig {
    PaperConfig {
        lambda: 0.4,
        quantum_mean: 1.0,
        quantum_stages: 2,
        overhead_mean: 0.01,
    }
}

fn bench_solver_no_recorder(c: &mut Criterion) {
    gsched_obs::uninstall();
    let model = paper_model(&config());
    let opts = SolverOptions::default();
    c.bench_function("obs_overhead/solve_no_recorder", |b| {
        b.iter(|| solve(black_box(&model), &opts).unwrap())
    });
}

fn bench_solver_memory_recorder(c: &mut Criterion) {
    let model = paper_model(&config());
    let opts = SolverOptions::default();
    let recorder = gsched_obs::install_memory();
    c.bench_function("obs_overhead/solve_memory_recorder", |b| {
        b.iter(|| solve(black_box(&model), &opts).unwrap())
    });
    gsched_obs::uninstall();
    black_box(recorder.snapshot());
}

criterion_group!(
    obs_overhead,
    bench_solver_no_recorder,
    bench_solver_memory_recorder
);
criterion_main!(obs_overhead);
