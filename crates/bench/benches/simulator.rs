//! Simulator throughput benchmarks: events processed per simulated horizon
//! for the gang policies and the baselines.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gsched_sim::baselines::{SpaceSharingSim, TimeSharingSim};
use gsched_sim::{GangPolicy, GangSim, SimConfig};
use gsched_workload::{paper_model, PaperConfig};
use std::hint::black_box;

fn cfg() -> SimConfig {
    SimConfig {
        horizon: 20_000.0,
        warmup: 2_000.0,
        seed: 0xBEEF,
        batches: 10,
    }
}

fn bench_gang(c: &mut Criterion) {
    let model = paper_model(&PaperConfig {
        lambda: 0.5,
        quantum_mean: 1.0,
        quantum_stages: 2,
        overhead_mean: 0.01,
    });
    let mut g = c.benchmark_group("simulator");
    g.sample_size(10);
    for (name, policy) in [
        ("gang_system_wide", GangPolicy::SystemWide),
        ("gang_per_partition", GangPolicy::PerPartition),
    ] {
        g.bench_with_input(BenchmarkId::from_parameter(name), &policy, |b, &policy| {
            b.iter(|| GangSim::new(black_box(&model), policy, cfg()).run())
        });
    }
    g.bench_function("baseline_time_sharing", |b| {
        b.iter(|| TimeSharingSim::new(black_box(&model), cfg()).run())
    });
    g.bench_function("baseline_space_sharing", |b| {
        b.iter(|| SpaceSharingSim::new(black_box(&model), cfg()).run())
    });
    g.finish();
}

criterion_group!(benches, bench_gang);
criterion_main!(benches);
