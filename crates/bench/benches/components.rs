//! Component benchmarks: the numeric kernels of the analytic solver.
//!
//! * `r_matrix/*` — successive substitution vs logarithmic reduction for the
//!   rate matrix `R` at light and heavy load;
//! * `gth` — stationary solve of a dense generator;
//! * `ph_convolve` — vacation construction (Theorem 2.5 convolutions);
//! * `generator_assembly` — building a class QBD;
//! * `boundary_solve` — one full class solve.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gsched_core::generator::build_class_chain;
use gsched_core::vacation::heavy_traffic_vacation;
use gsched_linalg::Matrix;
use gsched_markov::ctmc::gth_stationary;
use gsched_phase::{convolve_all, erlang, exponential};
use gsched_qbd::solution::SolveOptions;
use gsched_qbd::{solve_r, RSolverMethod};
use gsched_workload::{paper_model, PaperConfig};
use std::hint::black_box;

/// Dense MMPP-style QBD blocks of dimension `d` at utilization `rho`.
fn blocks(d: usize, rho: f64) -> (Matrix, Matrix, Matrix) {
    let mu = 1.0;
    let lam = rho * mu;
    let mut a0 = Matrix::zeros(d, d);
    let mut a1 = Matrix::zeros(d, d);
    let mut a2 = Matrix::zeros(d, d);
    for i in 0..d {
        a0[(i, i)] = lam;
        a2[(i, i)] = mu;
        let switch = 0.2;
        let j = (i + 1) % d;
        if d > 1 {
            a1[(i, j)] = switch;
        }
        a1[(i, i)] = -(lam + mu + if d > 1 { switch } else { 0.0 });
    }
    (a0, a1, a2)
}

fn bench_r_matrix(c: &mut Criterion) {
    let mut group = c.benchmark_group("r_matrix");
    for &(d, rho) in &[(4usize, 0.5), (16, 0.5), (16, 0.95), (64, 0.8)] {
        let (a0, a1, a2) = blocks(d, rho);
        group.bench_with_input(
            BenchmarkId::new("logarithmic_reduction", format!("d{d}_rho{rho}")),
            &(),
            |b, _| {
                b.iter(|| {
                    solve_r(
                        black_box(&a0),
                        &a1,
                        &a2,
                        RSolverMethod::LogarithmicReduction,
                        1e-12,
                        500,
                    )
                    .unwrap()
                })
            },
        );
        if rho < 0.9 {
            group.bench_with_input(
                BenchmarkId::new("successive_substitution", format!("d{d}_rho{rho}")),
                &(),
                |b, _| {
                    b.iter(|| {
                        solve_r(
                            black_box(&a0),
                            &a1,
                            &a2,
                            RSolverMethod::SuccessiveSubstitution,
                            1e-10,
                            2_000_000,
                        )
                        .unwrap()
                    })
                },
            );
        }
    }
    group.finish();
}

fn bench_gth(c: &mut Criterion) {
    let mut group = c.benchmark_group("gth_stationary");
    for &n in &[8usize, 32, 128] {
        // Dense irreducible generator.
        let mut q = Matrix::zeros(n, n);
        for i in 0..n {
            let mut s = 0.0;
            for j in 0..n {
                if i != j {
                    let r = 0.1 + ((i * 31 + j * 17) % 97) as f64 / 97.0;
                    q[(i, j)] = r;
                    s += r;
                }
            }
            q[(i, i)] = -s;
        }
        group.bench_with_input(BenchmarkId::from_parameter(n), &q, |b, q| {
            b.iter(|| gth_stationary(black_box(q)))
        });
    }
    group.finish();
}

fn bench_ph_convolve(c: &mut Criterion) {
    let mut group = c.benchmark_group("ph_convolve");
    for &parts in &[4usize, 8, 16] {
        let dists: Vec<_> = (0..parts)
            .map(|i| {
                if i % 2 == 0 {
                    erlang(2, 1.0)
                } else {
                    exponential(100.0)
                }
            })
            .collect();
        group.bench_with_input(BenchmarkId::from_parameter(parts), &dists, |b, d| {
            b.iter(|| convolve_all(black_box(d)))
        });
    }
    group.finish();
}

fn bench_generator_assembly(c: &mut Criterion) {
    let model = paper_model(&PaperConfig {
        lambda: 0.4,
        quantum_mean: 1.0,
        quantum_stages: 2,
        overhead_mean: 0.01,
    });
    let mut group = c.benchmark_group("generator_assembly");
    for p in 0..4usize {
        let vac = heavy_traffic_vacation(&model, p);
        group.bench_with_input(BenchmarkId::new("class", p), &vac, |b, vac| {
            b.iter(|| build_class_chain(black_box(&model), p, vac).unwrap())
        });
    }
    group.finish();
}

fn bench_class_solve(c: &mut Criterion) {
    // lambda low enough that class 0 is stable even under the pessimistic
    // heavy-traffic vacation (its fair share is only ~25% of the machine).
    let model = paper_model(&PaperConfig {
        lambda: 0.25,
        quantum_mean: 1.0,
        quantum_stages: 2,
        overhead_mean: 0.01,
    });
    let mut group = c.benchmark_group("class_qbd_solve");
    group.sample_size(20);
    for p in [0usize, 3] {
        let vac = heavy_traffic_vacation(&model, p);
        let chain = build_class_chain(&model, p, &vac).unwrap();
        group.bench_with_input(BenchmarkId::new("class", p), &chain, |b, chain| {
            b.iter(|| {
                chain
                    .qbd
                    .solve(black_box(&SolveOptions::default()))
                    .unwrap()
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_r_matrix,
    bench_gth,
    bench_ph_convolve,
    bench_generator_assembly,
    bench_class_solve
);
criterion_main!(benches);
