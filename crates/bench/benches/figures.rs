//! Per-figure benchmarks: time to regenerate each of the paper's figures
//! (one representative point per figure plus a full-grid timing at reduced
//! sample counts).
//!
//! `bench_fig2`/`bench_fig3` — one quantum-sweep point at ρ = 0.4 / 0.9;
//! `bench_fig4` — one service-rate point; `bench_fig5` — one fraction point;
//! `fig*_full_grid` — the whole grid, as the repro binaries run it.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gsched_core::solver::{solve, SolverOptions};
use gsched_workload::figures::{
    cycle_fraction_sweep_request, quantum_sweep_request, service_rate_sweep_request,
};
use std::hint::black_box;

fn bench_fig2(c: &mut Criterion) {
    let pts = quantum_sweep_request(0.4, 2, &[1.0]).points;
    let mut g = c.benchmark_group("fig2");
    g.sample_size(10);
    g.bench_function("point_q1", |b| {
        b.iter(|| solve(black_box(&pts[0].model), &SolverOptions::default()).unwrap())
    });
    g.finish();
}

fn bench_fig3(c: &mut Criterion) {
    let pts = quantum_sweep_request(0.9, 2, &[1.0]).points;
    let mut g = c.benchmark_group("fig3");
    g.sample_size(10);
    g.bench_function("point_q1_rho09", |b| {
        b.iter(|| solve(black_box(&pts[0].model), &SolverOptions::default()).unwrap())
    });
    g.finish();
}

fn bench_fig4(c: &mut Criterion) {
    let pts = service_rate_sweep_request(2, &[8.0]).points;
    let mut g = c.benchmark_group("fig4");
    g.sample_size(10);
    g.bench_function("point_mu8", |b| {
        b.iter(|| solve(black_box(&pts[0].model), &SolverOptions::default()).unwrap())
    });
    g.finish();
}

fn bench_fig5(c: &mut Criterion) {
    let pts = cycle_fraction_sweep_request(0, 4.0, 2, &[0.5]).points;
    let mut g = c.benchmark_group("fig5");
    g.sample_size(10);
    g.bench_function("point_f05_class0", |b| {
        b.iter(|| solve(black_box(&pts[0].model), &SolverOptions::default()).unwrap())
    });
    g.finish();
}

fn bench_full_grids(c: &mut Criterion) {
    let mut g = c.benchmark_group("full_grid");
    g.sample_size(10);
    for (name, lambda) in [("fig2_grid5", 0.4), ("fig3_grid5", 0.9)] {
        let pts = quantum_sweep_request(lambda, 2, &[0.25, 0.5, 1.0, 2.0, 4.0]).points;
        g.bench_with_input(BenchmarkId::from_parameter(name), &pts, |b, pts| {
            b.iter(|| {
                for pt in pts {
                    std::hint::black_box(solve(&pt.model, &SolverOptions::default()).unwrap());
                }
            })
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_fig2,
    bench_fig3,
    bench_fig4,
    bench_fig5,
    bench_full_grids
);
criterion_main!(benches);
