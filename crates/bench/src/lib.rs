//! Benchmark support crate. The benches live in `benches/`; this library
//! only re-exports the pieces they share.

pub use gsched_core::solver::{solve, SolverOptions, VacationMode};
pub use gsched_workload::{paper_model, PaperConfig};
