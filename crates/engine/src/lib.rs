//! Parallel warm-started evaluation of gang-scheduling scenario batches.
//!
//! Every figure in the paper (Figs. 2–5) is a *sweep*: the same model
//! solved at dozens of nearby parameter points. This crate turns such a
//! batch into a [`SweepRequest`] and evaluates it on a work-stealing pool
//! of scoped worker threads ([`run_sweep`]), exploiting two independent
//! levels of parallelism:
//!
//! 1. **across sweep points** — points are grouped into fixed-size
//!    contiguous chunks along the sweep axis; workers steal whole chunks;
//! 2. **across classes** — the `L` per-class QBD solves inside one
//!    fixed-point pass are mutually independent and can run on their own
//!    threads ([`gsched_core::SolverOptions::parallel_classes`], enabled
//!    automatically when there are more workers than chunks).
//!
//! Within a chunk, points are solved left to right and each point
//! *warm-starts* from its neighbour's converged state: the previous `R`
//! matrix seeds the successive-substitution iteration for eq. (23) and the
//! converged effective quanta seed the fixed point of Theorem 4.3.
//! Vacation convolutions (Theorem 4.1) are memoized across the whole sweep
//! in a [`gsched_core::VacationCache`].
//!
//! # Cancellation
//!
//! Long sweeps can be abandoned cooperatively: attach a [`CancelToken`]
//! (optionally carrying a deadline) via [`SweepOptions::with_cancel`] and
//! the pool checks it *between* points — numerical code is never unwound
//! mid-solve. Cancelled points report [`CANCELLED_POINT_ERROR`] and break
//! the warm-start chain. The scenario server (`gsched-service`) uses this
//! to honour per-request deadlines and client disconnects.
//!
//! # Determinism
//!
//! The chunk layout depends only on the point count and
//! [`SweepOptions::chunk_size`] — never on the worker count — and
//! warm-start chaining never crosses a chunk boundary. Every memoized or
//! warm-started computation is a deterministic function of its inputs, so
//! a sweep's results are **bitwise identical** for any `jobs` value; see
//! `points_and_parity` in the test suite and the `gsched sweep
//! --parity-check` CLI flag.

mod cancel;
mod pool;
mod report;
mod request;

pub use cancel::{CancelToken, CANCELLED_POINT_ERROR};
pub use pool::{run_batch, run_sweep, BatchItem, SweepOptions, DEFAULT_CHUNK_SIZE};
pub use report::{PointReport, SweepReport, SweepStats};
pub use request::{ScenarioBase, SweepAxis, SweepPoint, SweepRequest};
