//! Typed description of a scenario batch: which axis is swept, from what
//! base scenario, over which concrete points.

use gsched_core::GangModel;

/// The parameter axis a sweep moves along.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SweepAxis {
    /// Mean of the per-class quantum distributions (Figs. 2–3).
    QuantumMean,
    /// Per-processor service rate of a designated class (Fig. 4).
    ServiceRate,
    /// Common per-class arrival rate `λ` (offered-load sweeps).
    ArrivalRate,
    /// Fraction of the cycle budget given to one class (Fig. 5).
    CycleFraction {
        /// The class whose share of the cycle is swept.
        class: usize,
    },
    /// Machine size `P` at fixed per-class utilization (large-P scaling
    /// sweeps; the coordinate is the processor count).
    Processors,
    /// Any other axis; the string names it in reports and telemetry.
    Custom(String),
}

impl SweepAxis {
    /// Short label for reports and span names.
    pub fn label(&self) -> String {
        match self {
            SweepAxis::QuantumMean => "quantum_mean".to_string(),
            SweepAxis::ServiceRate => "service_rate".to_string(),
            SweepAxis::ArrivalRate => "arrival_rate".to_string(),
            SweepAxis::CycleFraction { class } => format!("cycle_fraction_class{class}"),
            SweepAxis::Processors => "processors".to_string(),
            SweepAxis::Custom(name) => name.clone(),
        }
    }
}

/// One evaluation point: the axis coordinate and the fully built model.
#[derive(Debug, Clone)]
pub struct SweepPoint {
    /// Coordinate along the sweep axis (e.g. the common quantum mean).
    pub x: f64,
    /// The model to solve at this point.
    pub model: GangModel,
}

/// Fixed (non-swept) parameters of the scenario family, carried for
/// labelling and provenance.
#[derive(Debug, Clone, Default)]
pub struct ScenarioBase {
    /// Human-readable scenario name (e.g. `"fig2"`).
    pub label: String,
    /// Named fixed parameters, e.g. `("lambda", 0.1)`.
    pub params: Vec<(String, f64)>,
}

impl ScenarioBase {
    /// A base with a label and no recorded parameters.
    pub fn labeled(label: impl Into<String>) -> Self {
        ScenarioBase {
            label: label.into(),
            params: Vec::new(),
        }
    }

    /// Append a named fixed parameter (chainable).
    #[must_use]
    pub fn with_param(mut self, name: impl Into<String>, value: f64) -> Self {
        self.params.push((name.into(), value));
        self
    }
}

/// A batch of scenarios to evaluate: `base` solved at every point along
/// `axis`. Points should be ordered along the axis — warm starts chain
/// between neighbouring points, and neighbours only help if they are
/// actually close in parameter space.
#[derive(Debug, Clone)]
pub struct SweepRequest {
    /// The swept axis.
    pub axis: SweepAxis,
    /// The fixed part of the scenario family.
    pub base: ScenarioBase,
    /// The evaluation points, ordered along the axis.
    pub points: Vec<SweepPoint>,
}

impl SweepRequest {
    /// Build a request from its parts.
    pub fn new(axis: SweepAxis, base: ScenarioBase, points: Vec<SweepPoint>) -> Self {
        SweepRequest { axis, base, points }
    }

    /// Number of evaluation points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True when the request holds no points.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }
}
