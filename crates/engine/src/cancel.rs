//! Cooperative cancellation for sweep evaluation.
//!
//! A [`CancelToken`] is a cheap, cloneable handle shared between the party
//! that may abort a sweep (a server noticing its client hung up, a
//! deadline monitor) and the worker threads evaluating it. Workers never
//! kill a solve mid-flight — they poll the token between points, so a
//! cancelled sweep finishes the point it is on and marks every remaining
//! point as cancelled. This keeps the engine free of unwinding across
//! numerical code while still bounding the extra work after cancellation
//! to one point per worker.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Rendered error message of a point skipped because its sweep was
/// cancelled (also matched by the service to map points onto error frames).
pub const CANCELLED_POINT_ERROR: &str = "cancelled before evaluation";

#[derive(Debug, Default)]
struct Inner {
    cancelled: AtomicBool,
    /// Cancellation fires implicitly once this instant passes.
    deadline: Option<Instant>,
}

/// Shared cancellation flag with an optional deadline.
///
/// Cloning shares the underlying flag; [`CancelToken::cancel`] is sticky
/// (there is no un-cancel). The default token never cancels.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    inner: Arc<Inner>,
}

impl CancelToken {
    /// A token that only cancels when [`Self::cancel`] is called.
    pub fn new() -> Self {
        CancelToken::default()
    }

    /// A token that additionally reports cancelled once `deadline` passes.
    pub fn with_deadline(deadline: Instant) -> Self {
        CancelToken {
            inner: Arc::new(Inner {
                cancelled: AtomicBool::new(false),
                deadline: Some(deadline),
            }),
        }
    }

    /// Request cancellation. Idempotent and thread-safe.
    pub fn cancel(&self) {
        self.inner.cancelled.store(true, Ordering::Release);
    }

    /// Whether cancellation was requested or the deadline has passed.
    pub fn is_cancelled(&self) -> bool {
        if self.inner.cancelled.load(Ordering::Acquire) {
            return true;
        }
        match self.inner.deadline {
            Some(deadline) => Instant::now() >= deadline,
            None => false,
        }
    }

    /// The deadline, when one was set at construction.
    pub fn deadline(&self) -> Option<Instant> {
        self.inner.deadline
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn default_token_never_cancels() {
        let token = CancelToken::new();
        assert!(!token.is_cancelled());
        assert!(token.deadline().is_none());
    }

    #[test]
    fn cancel_is_sticky_and_shared() {
        let token = CancelToken::new();
        let clone = token.clone();
        clone.cancel();
        assert!(token.is_cancelled());
        assert!(clone.is_cancelled());
    }

    #[test]
    fn past_deadline_reads_cancelled() {
        let token = CancelToken::with_deadline(Instant::now() - Duration::from_millis(1));
        assert!(token.is_cancelled());
        let future = CancelToken::with_deadline(Instant::now() + Duration::from_secs(3600));
        assert!(!future.is_cancelled());
        future.cancel();
        assert!(future.is_cancelled());
    }
}
