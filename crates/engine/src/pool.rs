//! The work-stealing evaluation pool.
//!
//! Points are split into fixed-size contiguous chunks along the sweep
//! axis. Worker threads steal whole chunks off a shared atomic counter and
//! solve each chunk's points left to right, warm-starting every point from
//! its left neighbour's converged state. Because the chunk layout depends
//! only on the point count and chunk size — never on the worker count —
//! and warm chains never cross chunk boundaries, results are bitwise
//! identical for any `jobs` value.
//!
//! [`run_batch`] evaluates several requests on one shared pool: each
//! request is chunked exactly as [`run_sweep`] would chunk it alone, the
//! chunks of all requests feed one work queue, and a single
//! [`VacationCache`] is shared across the batch so repeated distribution
//! constructions amortize across clients. Warm chains still never cross
//! chunk (hence request) boundaries, so every request's results are
//! bitwise identical to a standalone `run_sweep`.

use crate::cancel::{CancelToken, CANCELLED_POINT_ERROR};
use crate::report::{PointReport, SweepReport, SweepStats};
use crate::request::SweepRequest;
use gsched_core::{solve_warm, SolverOptions, VacationCache, WarmStart};
use gsched_obs as obs;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::time::Instant;

/// Default points per work-stealing chunk. Four gives a ~75% warm-start
/// rate on the paper's figure grids while still exposing enough chunks for
/// the pool to balance.
pub const DEFAULT_CHUNK_SIZE: usize = 4;

/// Options for [`run_sweep`].
///
/// `#[non_exhaustive]`: start from `SweepOptions::default()` and adjust via
/// the chainable `with_*` methods (or field assignment).
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct SweepOptions {
    /// Worker threads; `0` (default) uses the machine's available
    /// parallelism. The answer is identical for every value — only the
    /// wall-clock time changes.
    pub jobs: usize,
    /// Warm-start each point from its chunk-neighbour's converged state
    /// (default true).
    pub warm_start: bool,
    /// Points per work-stealing chunk; `0` (default) means
    /// [`DEFAULT_CHUNK_SIZE`]. Changing this changes the warm-start
    /// chains, and therefore the results within solver tolerance.
    pub chunk_size: usize,
    /// Options for each point's solve.
    pub solver: SolverOptions,
    /// Cooperative cancellation: workers poll this token between points
    /// and record every remaining point as a cancelled failure once it
    /// fires (see [`CancelToken`]). `None` (default) never cancels.
    pub cancel: Option<CancelToken>,
}

impl Default for SweepOptions {
    fn default() -> Self {
        SweepOptions {
            jobs: 0,
            warm_start: true,
            chunk_size: 0,
            solver: SolverOptions::default(),
            cancel: None,
        }
    }
}

impl SweepOptions {
    /// Set the worker-thread count (`0` = auto).
    #[must_use]
    pub fn with_jobs(mut self, jobs: usize) -> Self {
        self.jobs = jobs;
        self
    }

    /// Enable or disable warm starting.
    #[must_use]
    pub fn with_warm_start(mut self, warm: bool) -> Self {
        self.warm_start = warm;
        self
    }

    /// Set the chunk size (`0` = default).
    #[must_use]
    pub fn with_chunk_size(mut self, size: usize) -> Self {
        self.chunk_size = size;
        self
    }

    /// Set the per-point solver options.
    #[must_use]
    pub fn with_solver(mut self, solver: SolverOptions) -> Self {
        self.solver = solver;
        self
    }

    /// Attach a cancellation token (deadline and/or explicit cancel).
    #[must_use]
    pub fn with_cancel(mut self, cancel: CancelToken) -> Self {
        self.cancel = Some(cancel);
        self
    }
}

fn effective_jobs(requested: usize) -> usize {
    if requested > 0 {
        requested
    } else {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    }
}

/// Everything a chunk solve needs about its request, shared between
/// [`run_sweep`] and [`run_batch`] so a batched request solves through the
/// same code path (and therefore the same bytes) as a standalone sweep.
struct ChunkScope<'a> {
    req: &'a SweepRequest,
    solver: &'a SolverOptions,
    warm_start: bool,
    cache: &'a VacationCache,
    results: &'a Mutex<Vec<Option<PointReport>>>,
    hits: &'a AtomicU64,
    misses: &'a AtomicU64,
}

/// Solve points `lo..hi` left to right, warm-chaining within the chunk.
/// `cancelled` is polled before every point; once it reports true the
/// remaining points are recorded as cancelled failures without solving.
fn solve_chunk(scope: &ChunkScope<'_>, lo: usize, hi: usize, cancelled: &dyn Fn() -> bool) {
    let mut carry: Option<WarmStart> = None;
    for i in lo..hi {
        let pt = &scope.req.points[i];
        if cancelled() {
            // Finish bookkeeping for every remaining point but
            // never start another solve.
            carry = None;
            obs::counter_add(obs::names::ENGINE_SWEEP_CANCELLED_POINTS, 1);
            scope.results.lock()[i] = Some(PointReport {
                x: pt.x,
                solution: None,
                error: Some(CANCELLED_POINT_ERROR.to_string()),
                warm_started: false,
                wall_ms: 0.0,
            });
            continue;
        }
        let t0 = Instant::now();
        let warm_ref = if scope.warm_start {
            carry.as_ref()
        } else {
            None
        };
        let warm_started = warm_ref.is_some();
        let res = {
            let _pt_span = obs::span(format!("engine.sweep.point{i}"));
            solve_warm(&pt.model, scope.solver, warm_ref, Some(scope.cache))
        };
        let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
        let report = match res {
            Ok(outcome) => {
                if warm_started {
                    scope.hits.fetch_add(1, Ordering::Relaxed);
                    obs::counter_add(obs::names::ENGINE_WARM_HITS, 1);
                } else {
                    scope.misses.fetch_add(1, Ordering::Relaxed);
                    obs::counter_add(obs::names::ENGINE_WARM_MISSES, 1);
                }
                carry = Some(outcome.warm);
                PointReport {
                    x: pt.x,
                    solution: Some(outcome.solution),
                    error: None,
                    warm_started,
                    wall_ms,
                }
            }
            Err(e) => {
                // Do not chain a warm start through a failure.
                carry = None;
                let msg = e.with_sweep_point(pt.x).to_string();
                if obs::enabled() {
                    obs::event(
                        "engine.sweep.point_error",
                        &[
                            ("x", obs::FieldValue::F64(pt.x)),
                            ("error", obs::FieldValue::Str(msg.clone())),
                        ],
                    );
                }
                PointReport {
                    x: pt.x,
                    solution: None,
                    error: Some(msg),
                    warm_started,
                    wall_ms,
                }
            }
        };
        scope.results.lock()[i] = Some(report);
    }
}

/// Evaluate every point of `req` and collect the outcomes.
///
/// Per-point failures are recorded in the corresponding [`PointReport`]
/// (with class and sweep-point context in the message) and never abort the
/// rest of the sweep.
pub fn run_sweep(req: &SweepRequest, opts: &SweepOptions) -> SweepReport {
    let start = Instant::now();
    let _span = obs::span(format!("engine.sweep.{}", req.base.label));
    let n = req.points.len();
    let chunk_size = if opts.chunk_size == 0 {
        DEFAULT_CHUNK_SIZE
    } else {
        opts.chunk_size
    };
    let num_chunks = n.div_ceil(chunk_size);
    let requested = effective_jobs(opts.jobs);
    let jobs = requested.clamp(1, num_chunks.max(1));

    let mut solver = opts.solver.clone();
    // More workers than chunks: spend the spare cores inside each solve.
    // Per-class parallelism is numerics-neutral, so parity is unaffected.
    if requested > num_chunks && !solver.parallel_classes {
        solver.parallel_classes = true;
    }

    if obs::enabled() {
        obs::event(
            "engine.sweep.start",
            &[
                ("label", obs::FieldValue::Str(req.base.label.clone())),
                ("axis", obs::FieldValue::Str(req.axis.label())),
                ("points", obs::FieldValue::U64(n as u64)),
                ("chunks", obs::FieldValue::U64(num_chunks as u64)),
                ("jobs", obs::FieldValue::U64(jobs as u64)),
                ("chunk_size", obs::FieldValue::U64(chunk_size as u64)),
            ],
        );
    }

    let next = AtomicUsize::new(0);
    let results: Mutex<Vec<Option<PointReport>>> = Mutex::new(vec![None; n]);
    let hits = AtomicU64::new(0);
    let misses = AtomicU64::new(0);
    let cache = VacationCache::new();
    let scope = ChunkScope {
        req,
        solver: &solver,
        warm_start: opts.warm_start,
        cache: &cache,
        results: &results,
        hits: &hits,
        misses: &misses,
    };
    let scope_ref = &scope;
    let next_ref = &next;
    let cancelled = move || opts.cancel.as_ref().is_some_and(|c| c.is_cancelled());
    // Worker threads inherit the caller's request context so every chunk
    // and point span stays attributed to the service request (if any)
    // driving this sweep.
    let ctx = obs::current_context();

    crossbeam::scope(|s| {
        for _ in 0..jobs {
            s.spawn(move |_| {
                let _ctx = obs::context_enter(ctx);
                loop {
                    let ci = next_ref.fetch_add(1, Ordering::Relaxed);
                    if ci >= num_chunks {
                        break;
                    }
                    let lo = ci * chunk_size;
                    let hi = (lo + chunk_size).min(n);
                    let _chunk_span = obs::span(format!("engine.sweep.chunk{ci}"));
                    solve_chunk(scope_ref, lo, hi, &cancelled);
                }
            });
        }
    })
    .expect("sweep worker threads join cleanly");

    let points: Vec<PointReport> = results
        .into_inner()
        .into_iter()
        .map(|p| p.expect("every sweep point is evaluated"))
        .collect();
    let stats = SweepStats {
        warm_hits: hits.load(Ordering::Relaxed),
        warm_misses: misses.load(Ordering::Relaxed),
        jobs,
        chunks: num_chunks,
        parallel_classes: solver.parallel_classes,
        wall_ms: start.elapsed().as_secs_f64() * 1e3,
    };
    if obs::enabled() {
        obs::gauge_set(
            obs::names::ENGINE_SWEEP_WARM_HIT_RATE,
            stats.warm_hit_rate(),
        );
        obs::gauge_set(obs::names::ENGINE_SWEEP_JOBS, stats.jobs as f64);
    }
    SweepReport {
        axis: req.axis.clone(),
        label: req.base.label.clone(),
        points,
        stats,
    }
}

/// One request in a [`run_batch`] call: the sweep itself plus its private
/// cancellation token and observability context.
#[derive(Debug)]
pub struct BatchItem<'a> {
    /// The sweep to evaluate.
    pub request: &'a SweepRequest,
    /// Cancels only this item's remaining points; the batch-wide
    /// `SweepOptions::cancel` (if any) cancels every item.
    pub cancel: Option<CancelToken>,
    /// Request context (`gsched_obs::current_context`) to attribute this
    /// item's chunk and point spans to; `0` inherits the batch caller's.
    pub ctx: u64,
}

impl<'a> BatchItem<'a> {
    /// An item with no private cancellation and inherited context.
    pub fn new(request: &'a SweepRequest) -> Self {
        BatchItem {
            request,
            cancel: None,
            ctx: 0,
        }
    }

    /// Attach a private cancellation token.
    #[must_use]
    pub fn with_cancel(mut self, cancel: CancelToken) -> Self {
        self.cancel = Some(cancel);
        self
    }

    /// Attribute this item's spans to a request context.
    #[must_use]
    pub fn with_ctx(mut self, ctx: u64) -> Self {
        self.ctx = ctx;
        self
    }
}

/// Evaluate several sweep requests on one shared worker pool.
///
/// Each request is chunked exactly as [`run_sweep`] would chunk it alone
/// and its points solve through the same code path, so every report is
/// **bitwise identical** to the standalone sweep — the batch only shares
/// the pool and one [`VacationCache`], and memoized vacation constructions
/// are value-deterministic. Reports come back in item order. A cancelled
/// item never stops its batch-mates; per-item tokens compose with the
/// batch-wide `opts.cancel`.
///
/// `opts.jobs` sizes the shared pool (0 = auto), clamped to the total
/// chunk count across the batch. Each report's `stats.jobs` records the
/// shared pool size and `stats.wall_ms` the whole batch's wall time (items
/// interleave on the pool, so per-item wall is not meaningful).
pub fn run_batch(items: &[BatchItem<'_>], opts: &SweepOptions) -> Vec<SweepReport> {
    let start = Instant::now();
    if items.is_empty() {
        return Vec::new();
    }
    let _span = obs::span("engine.batch");
    let chunk_size = if opts.chunk_size == 0 {
        DEFAULT_CHUNK_SIZE
    } else {
        opts.chunk_size
    };
    // Flatten every item's chunk layout into one work list. The layout per
    // item depends only on its point count and the chunk size — identical
    // to what run_sweep would produce.
    struct Task {
        item: usize,
        ci: usize,
        lo: usize,
        hi: usize,
    }
    let mut tasks: Vec<Task> = Vec::new();
    for (item, b) in items.iter().enumerate() {
        let n = b.request.points.len();
        for ci in 0..n.div_ceil(chunk_size) {
            let lo = ci * chunk_size;
            tasks.push(Task {
                item,
                ci,
                lo,
                hi: (lo + chunk_size).min(n),
            });
        }
    }
    let total_chunks = tasks.len();
    let requested = effective_jobs(opts.jobs);
    let jobs = requested.clamp(1, total_chunks.max(1));
    let mut solver = opts.solver.clone();
    if requested > total_chunks && !solver.parallel_classes {
        solver.parallel_classes = true;
    }

    let total_points: usize = items.iter().map(|b| b.request.points.len()).sum();
    obs::counter_add(obs::names::ENGINE_BATCH_REQUESTS, items.len() as u64);
    if obs::enabled() {
        obs::event(
            "engine.batch.start",
            &[
                ("items", obs::FieldValue::U64(items.len() as u64)),
                ("points", obs::FieldValue::U64(total_points as u64)),
                ("chunks", obs::FieldValue::U64(total_chunks as u64)),
                ("jobs", obs::FieldValue::U64(jobs as u64)),
            ],
        );
    }

    let cache = VacationCache::new();
    let results: Vec<Mutex<Vec<Option<PointReport>>>> = items
        .iter()
        .map(|b| Mutex::new(vec![None; b.request.points.len()]))
        .collect();
    let hits: Vec<AtomicU64> = (0..items.len()).map(|_| AtomicU64::new(0)).collect();
    let misses: Vec<AtomicU64> = (0..items.len()).map(|_| AtomicU64::new(0)).collect();
    let next = AtomicUsize::new(0);

    let tasks_ref = &tasks;
    let next_ref = &next;
    let cache_ref = &cache;
    let solver_ref = &solver;
    let results_ref = &results;
    let hits_ref = &hits;
    let misses_ref = &misses;
    let caller_ctx = obs::current_context();

    crossbeam::scope(|s| {
        for _ in 0..jobs {
            s.spawn(move |_| {
                loop {
                    let ti = next_ref.fetch_add(1, Ordering::Relaxed);
                    if ti >= tasks_ref.len() {
                        break;
                    }
                    let task = &tasks_ref[ti];
                    let b = &items[task.item];
                    // Chunk and point spans attribute to the item's own
                    // request, not whichever request triggered the batch.
                    let ctx = if b.ctx != 0 { b.ctx } else { caller_ctx };
                    let _ctx = obs::context_enter(ctx);
                    let scope = ChunkScope {
                        req: b.request,
                        solver: solver_ref,
                        warm_start: opts.warm_start,
                        cache: cache_ref,
                        results: &results_ref[task.item],
                        hits: &hits_ref[task.item],
                        misses: &misses_ref[task.item],
                    };
                    let cancelled = || {
                        opts.cancel.as_ref().is_some_and(|c| c.is_cancelled())
                            || b.cancel.as_ref().is_some_and(|c| c.is_cancelled())
                    };
                    let _chunk_span = obs::span(format!("engine.sweep.chunk{}", task.ci));
                    solve_chunk(&scope, task.lo, task.hi, &cancelled);
                }
            });
        }
    })
    .expect("batch worker threads join cleanly");

    let wall_ms = start.elapsed().as_secs_f64() * 1e3;
    results
        .into_iter()
        .zip(items)
        .enumerate()
        .map(|(i, (res, b))| {
            let points: Vec<PointReport> = res
                .into_inner()
                .into_iter()
                .map(|p| p.expect("every batched point is evaluated"))
                .collect();
            SweepReport {
                axis: b.request.axis.clone(),
                label: b.request.base.label.clone(),
                points,
                stats: SweepStats {
                    warm_hits: hits[i].load(Ordering::Relaxed),
                    warm_misses: misses[i].load(Ordering::Relaxed),
                    jobs,
                    chunks: b.request.points.len().div_ceil(chunk_size),
                    parallel_classes: solver.parallel_classes,
                    wall_ms,
                },
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::{ScenarioBase, SweepAxis, SweepPoint};
    use gsched_core::{ClassParams, GangModel, SolverOptions};
    use gsched_phase::{erlang, exponential};

    /// Tiny two-class model, cheap enough for many debug-mode solves.
    fn model(quantum_mean: f64, lambda: f64) -> GangModel {
        let mk = || ClassParams {
            partition_size: 2,
            arrival: exponential(lambda),
            service: exponential(1.0),
            quantum: erlang(2, 2.0 / quantum_mean),
            switch_overhead: exponential(100.0),
        };
        GangModel::new(2, vec![mk(), mk()]).unwrap()
    }

    fn request(n: usize, lambda: f64) -> SweepRequest {
        let points = (0..n)
            .map(|i| {
                let x = 0.5 + 0.25 * i as f64;
                SweepPoint {
                    x,
                    model: model(x, lambda),
                }
            })
            .collect();
        SweepRequest::new(
            SweepAxis::QuantumMean,
            ScenarioBase::labeled("test").with_param("lambda", lambda),
            points,
        )
    }

    fn response_bits(report: &SweepReport) -> Vec<Vec<u64>> {
        report
            .points
            .iter()
            .map(|p| p.mean_responses(2).into_iter().map(f64::to_bits).collect())
            .collect()
    }

    #[test]
    fn points_and_parity() {
        let req = request(10, 0.15);
        let seq = run_sweep(&req, &SweepOptions::default().with_jobs(1));
        let par = run_sweep(&req, &SweepOptions::default().with_jobs(3));
        assert_eq!(seq.points.len(), 10);
        assert_eq!(seq.failures(), 0);
        assert_eq!(response_bits(&seq), response_bits(&par));
        assert_eq!(seq.stats.chunks, 3);
        assert_eq!(par.stats.jobs, 3);
    }

    #[test]
    fn warm_hit_accounting() {
        let req = request(10, 0.15);
        let warm = run_sweep(&req, &SweepOptions::default().with_jobs(1));
        // 3 chunks of sizes 4+4+2: one cold point each, the rest warm.
        assert_eq!(warm.stats.warm_misses, 3);
        assert_eq!(warm.stats.warm_hits, 7);
        assert!(warm.stats.warm_hit_rate() > 0.5);
        let cold = run_sweep(
            &req,
            &SweepOptions::default().with_jobs(1).with_warm_start(false),
        );
        assert_eq!(cold.stats.warm_hits, 0);
        assert_eq!(cold.stats.warm_misses, 10);
        // Warm and cold sweeps converge to the same fixed point.
        for (w, c) in warm.points.iter().zip(cold.points.iter()) {
            let (wr, cr) = (
                w.solution.as_ref().unwrap().classes[0].mean_response,
                c.solution.as_ref().unwrap().classes[0].mean_response,
            );
            assert!((wr - cr).abs() / cr < 1e-4, "warm {wr} vs cold {cr}");
        }
    }

    #[test]
    fn failed_points_are_isolated() {
        let mut req = request(6, 0.15);
        // Overload the middle point and make instability a hard error.
        req.points[2].model = model(1.0, 2.0);
        let opts = SweepOptions::default().with_jobs(2).with_solver(
            SolverOptions::builder()
                .require_stable(true)
                .build()
                .unwrap(),
        );
        let report = run_sweep(&req, &opts);
        assert_eq!(report.failures(), 1);
        assert!(!report.points[2].is_ok());
        let err = report.first_error().unwrap();
        assert!(err.contains("unstable"), "{err}");
        assert!(report
            .points
            .iter()
            .enumerate()
            .all(|(i, p)| p.is_ok() || i == 2));
        assert!(report.points[2].mean_responses(2)[0].is_nan());
    }

    #[test]
    fn empty_request() {
        let req = SweepRequest::new(
            SweepAxis::Custom("empty".into()),
            ScenarioBase::labeled("empty"),
            Vec::new(),
        );
        let report = run_sweep(&req, &SweepOptions::default());
        assert!(report.points.is_empty());
        assert_eq!(report.stats.warm_hits + report.stats.warm_misses, 0);
    }

    #[test]
    fn pre_cancelled_sweep_solves_nothing() {
        let req = request(8, 0.15);
        let token = CancelToken::new();
        token.cancel();
        let report = run_sweep(
            &req,
            &SweepOptions::default().with_jobs(2).with_cancel(token),
        );
        assert_eq!(report.failures(), 8);
        assert!(report
            .points
            .iter()
            .all(|p| p.error.as_deref() == Some(CANCELLED_POINT_ERROR)));
        assert_eq!(report.stats.warm_hits + report.stats.warm_misses, 0);
    }

    #[test]
    fn expired_deadline_cancels_sweep() {
        let req = request(4, 0.15);
        let token = CancelToken::with_deadline(std::time::Instant::now());
        let report = run_sweep(
            &req,
            &SweepOptions::default().with_jobs(1).with_cancel(token),
        );
        assert_eq!(report.failures(), 4);
    }

    #[test]
    fn unfired_token_changes_nothing() {
        let req = request(6, 0.15);
        let plain = run_sweep(&req, &SweepOptions::default().with_jobs(1));
        let tokened = run_sweep(
            &req,
            &SweepOptions::default()
                .with_jobs(1)
                .with_cancel(CancelToken::new()),
        );
        assert_eq!(response_bits(&plain), response_bits(&tokened));
    }

    #[test]
    fn batched_requests_are_bitwise_identical_to_standalone() {
        let reqs = [request(10, 0.15), request(6, 0.25), request(3, 0.1)];
        let solo_opts = SweepOptions::default().with_jobs(1);
        let solos: Vec<SweepReport> = reqs.iter().map(|r| run_sweep(r, &solo_opts)).collect();
        let items: Vec<BatchItem> = reqs.iter().map(BatchItem::new).collect();
        let batched = run_batch(&items, &SweepOptions::default().with_jobs(3));
        assert_eq!(batched.len(), 3);
        for (solo, batch) in solos.iter().zip(batched.iter()) {
            assert_eq!(response_bits(solo), response_bits(batch));
            assert_eq!(solo.stats.warm_hits, batch.stats.warm_hits);
            assert_eq!(solo.stats.warm_misses, batch.stats.warm_misses);
            assert_eq!(solo.stats.chunks, batch.stats.chunks);
            assert_eq!(solo.label, batch.label);
        }
    }

    #[test]
    fn batch_cancellation_is_per_item() {
        let reqs = [request(4, 0.15), request(4, 0.15)];
        let token = CancelToken::new();
        token.cancel();
        let items = vec![
            BatchItem::new(&reqs[0]),
            BatchItem::new(&reqs[1]).with_cancel(token),
        ];
        let reports = run_batch(&items, &SweepOptions::default().with_jobs(1));
        assert_eq!(reports[0].failures(), 0, "uncancelled item completes");
        assert_eq!(reports[1].failures(), 4, "cancelled item solves nothing");
        assert!(reports[1]
            .points
            .iter()
            .all(|p| p.error.as_deref() == Some(CANCELLED_POINT_ERROR)));
    }

    #[test]
    fn empty_batch_returns_nothing() {
        assert!(run_batch(&[], &SweepOptions::default()).is_empty());
    }

    #[test]
    fn custom_chunk_size_changes_chains() {
        let req = request(6, 0.15);
        let big = run_sweep(
            &req,
            &SweepOptions::default().with_jobs(1).with_chunk_size(6),
        );
        assert_eq!(big.stats.chunks, 1);
        assert_eq!(big.stats.warm_misses, 1);
        assert_eq!(big.stats.warm_hits, 5);
    }
}
