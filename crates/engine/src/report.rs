//! Results of a sweep: per-point outcomes plus engine-level statistics.

use crate::request::SweepAxis;
use gsched_core::GangSolution;

/// Outcome of one sweep point. A failed point records its error and leaves
/// the rest of the sweep untouched — a sweep never fails wholesale.
#[derive(Debug, Clone)]
pub struct PointReport {
    /// Coordinate along the sweep axis.
    pub x: f64,
    /// The solution, when the solve succeeded.
    pub solution: Option<GangSolution>,
    /// Rendered error (with class and sweep-point context) otherwise.
    pub error: Option<String>,
    /// Whether this point was seeded from a neighbour's converged state.
    pub warm_started: bool,
    /// Wall-clock time spent solving this point, in milliseconds.
    pub wall_ms: f64,
}

impl PointReport {
    /// True when the point solved successfully.
    pub fn is_ok(&self) -> bool {
        self.solution.is_some()
    }

    /// Per-class mean response times; `NaN` for a failed point, infinity
    /// for unstable classes (matching [`gsched_core::solver::ClassResult`]).
    pub fn mean_responses(&self, num_classes: usize) -> Vec<f64> {
        match &self.solution {
            Some(sol) => sol.classes.iter().map(|c| c.mean_response).collect(),
            None => vec![f64::NAN; num_classes],
        }
    }
}

/// Engine-level statistics for one sweep.
#[derive(Debug, Clone, Default)]
pub struct SweepStats {
    /// Points solved from a neighbour's converged state.
    pub warm_hits: u64,
    /// Points solved cold (first point of each chunk, failures, or all
    /// points when warm starting is disabled).
    pub warm_misses: u64,
    /// Worker threads used.
    pub jobs: usize,
    /// Work-stealing chunks the points were split into.
    pub chunks: usize,
    /// Whether per-class parallelism was enabled for the solves.
    pub parallel_classes: bool,
    /// Wall-clock time for the whole sweep, in milliseconds.
    pub wall_ms: f64,
}

impl SweepStats {
    /// Fraction of points that were warm-started, in `[0, 1]`.
    pub fn warm_hit_rate(&self) -> f64 {
        let total = self.warm_hits + self.warm_misses;
        if total == 0 {
            0.0
        } else {
            self.warm_hits as f64 / total as f64
        }
    }
}

/// The evaluated sweep.
#[derive(Debug, Clone)]
pub struct SweepReport {
    /// The swept axis.
    pub axis: SweepAxis,
    /// Scenario label copied from the request base.
    pub label: String,
    /// One report per requested point, in request order.
    pub points: Vec<PointReport>,
    /// Engine statistics.
    pub stats: SweepStats,
}

impl SweepReport {
    /// Iterate over the successfully solved points as `(x, solution)`.
    pub fn solutions(&self) -> impl Iterator<Item = (f64, &GangSolution)> {
        self.points
            .iter()
            .filter_map(|p| p.solution.as_ref().map(|s| (p.x, s)))
    }

    /// The first recorded point error, if any point failed.
    pub fn first_error(&self) -> Option<&str> {
        self.points.iter().find_map(|p| p.error.as_deref())
    }

    /// Number of failed points.
    pub fn failures(&self) -> usize {
        self.points.iter().filter(|p| !p.is_ok()).count()
    }

    /// Total fixed-point iterations across all solved points.
    pub fn total_iterations(&self) -> usize {
        self.solutions().map(|(_, s)| s.iterations).sum()
    }
}
