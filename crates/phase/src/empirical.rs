//! Fitting phase-type distributions to measured data.
//!
//! The paper's §3.2 argues its PH assumption is practical because *"a
//! considerable body of research has examined the fitting of phase-type
//! distributions to empirical data"* [2, 5, 15, 16]. This module provides
//! the moment-based entry point of that workflow: summarize a sample of
//! observed durations (interarrival gaps, service demands, measured
//! overheads) and fit a small PH matching its first two or three moments.

use crate::dist::PhaseType;
use crate::fit::{fit_three_moment, fit_two_moment, FitQuality};

/// Summary statistics of a sample of nonnegative durations.
#[derive(Debug, Clone, PartialEq)]
pub struct SampleMoments {
    /// Number of observations.
    pub count: usize,
    /// First raw moment (mean).
    pub m1: f64,
    /// Second raw moment.
    pub m2: f64,
    /// Third raw moment.
    pub m3: f64,
}

impl SampleMoments {
    /// Compute raw moments of a sample.
    ///
    /// # Errors
    /// Fails on an empty sample or on negative/non-finite observations.
    pub fn from_samples(xs: &[f64]) -> Result<SampleMoments, String> {
        if xs.is_empty() {
            return Err("empty sample".to_string());
        }
        let mut m1 = 0.0;
        let mut m2 = 0.0;
        let mut m3 = 0.0;
        for (i, &x) in xs.iter().enumerate() {
            if !x.is_finite() || x < 0.0 {
                return Err(format!("observation {i} is invalid: {x}"));
            }
            m1 += x;
            m2 += x * x;
            m3 += x * x * x;
        }
        let n = xs.len() as f64;
        Ok(SampleMoments {
            count: xs.len(),
            m1: m1 / n,
            m2: m2 / n,
            m3: m3 / n,
        })
    }

    /// Sample variance (biased, i.e. the raw-moment form).
    pub fn variance(&self) -> f64 {
        (self.m2 - self.m1 * self.m1).max(0.0)
    }

    /// Squared coefficient of variation.
    pub fn scv(&self) -> f64 {
        if self.m1 == 0.0 {
            0.0
        } else {
            self.variance() / (self.m1 * self.m1)
        }
    }
}

/// Result of an empirical fit.
#[derive(Debug, Clone)]
pub struct EmpiricalFit {
    /// The fitted distribution.
    pub distribution: PhaseType,
    /// Moments of the data it was fitted to.
    pub moments: SampleMoments,
    /// How many moments were matched exactly.
    pub matched_moments: u8,
}

/// Fit a PH to a sample, matching two moments (and a third when the data
/// falls inside the Coxian-2 feasible region).
///
/// # Errors
/// Fails on an empty/invalid sample or a zero mean (all observations zero).
pub fn fit_from_samples(xs: &[f64]) -> Result<EmpiricalFit, String> {
    let moments = SampleMoments::from_samples(xs)?;
    if moments.m1 <= 0.0 {
        return Err("sample mean must be positive".to_string());
    }
    let (ph, quality) = fit_three_moment(
        moments.m1,
        moments.m2.max(moments.m1 * moments.m1),
        moments.m3,
    );
    let matched = match quality {
        FitQuality::ThreeExact => 3,
        FitQuality::TwoFallback => 2,
    };
    Ok(EmpiricalFit {
        distribution: ph,
        moments,
        matched_moments: matched,
    })
}

/// Fit matching only mean and SCV (more robust for small samples, where the
/// third sample moment is noisy).
pub fn fit_from_samples_two_moment(xs: &[f64]) -> Result<EmpiricalFit, String> {
    let moments = SampleMoments::from_samples(xs)?;
    if moments.m1 <= 0.0 {
        return Err("sample mean must be positive".to_string());
    }
    let ph = fit_two_moment(moments.m1, moments.scv());
    Ok(EmpiricalFit {
        distribution: ph,
        moments,
        matched_moments: 2,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builders::{erlang, exponential, hyperexponential};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn moments_of_constant_sample() {
        let m = SampleMoments::from_samples(&[2.0, 2.0, 2.0]).unwrap();
        assert_eq!(m.m1, 2.0);
        assert_eq!(m.m2, 4.0);
        assert!(m.variance() < 1e-12);
        assert_eq!(m.count, 3);
    }

    #[test]
    fn invalid_samples_rejected() {
        assert!(SampleMoments::from_samples(&[]).is_err());
        assert!(SampleMoments::from_samples(&[1.0, -0.5]).is_err());
        assert!(SampleMoments::from_samples(&[f64::NAN]).is_err());
        assert!(fit_from_samples(&[0.0, 0.0]).is_err());
    }

    #[test]
    fn recovers_exponential_from_its_samples() {
        let src = exponential(2.0);
        let mut rng = StdRng::seed_from_u64(99);
        let xs = src.sample_n(&mut rng, 100_000);
        let fit = fit_from_samples(&xs).unwrap();
        assert!(
            (fit.distribution.mean() - 0.5).abs() < 0.01,
            "mean {}",
            fit.distribution.mean()
        );
        assert!((fit.distribution.scv() - 1.0).abs() < 0.1);
    }

    #[test]
    fn recovers_erlang_shape() {
        let src = erlang(4, 1.0);
        let mut rng = StdRng::seed_from_u64(7);
        let xs = src.sample_n(&mut rng, 100_000);
        let fit = fit_from_samples_two_moment(&xs).unwrap();
        assert!((fit.distribution.mean() - 1.0).abs() < 0.01);
        assert!(
            (fit.distribution.scv() - 0.25).abs() < 0.05,
            "scv {}",
            fit.distribution.scv()
        );
    }

    #[test]
    fn recovers_hyperexponential_three_moments() {
        let src = hyperexponential(&[0.3, 0.7], &[0.5, 4.0]).unwrap();
        let mut rng = StdRng::seed_from_u64(13);
        let xs = src.sample_n(&mut rng, 200_000);
        let fit = fit_from_samples(&xs).unwrap();
        assert_eq!(fit.matched_moments, 3);
        let rel = |a: f64, b: f64| (a - b).abs() / b;
        assert!(rel(fit.distribution.moment(1), src.moment(1)) < 0.02);
        assert!(rel(fit.distribution.moment(2), src.moment(2)) < 0.05);
        assert!(rel(fit.distribution.moment(3), src.moment(3)) < 0.15);
    }

    #[test]
    fn low_variability_falls_back_to_two_moments() {
        // SCV 1/8 is below the Coxian-2 floor (1/2): expect the fallback.
        let src = erlang(8, 1.0);
        let mut rng = StdRng::seed_from_u64(21);
        let xs = src.sample_n(&mut rng, 50_000);
        let fit = fit_from_samples(&xs).unwrap();
        assert_eq!(fit.matched_moments, 2);
        assert!((fit.distribution.mean() - 1.0).abs() < 0.02);
    }
}
