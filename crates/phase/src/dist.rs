//! The validated `PH(α, S)` representation, its moments and point evaluation.

use gsched_linalg::{lu::Lu, Matrix};
use rand::{Rng, RngExt as _};
use serde::{Deserialize, Serialize};

/// Validation errors for phase-type parameters.
#[derive(Debug, Clone, PartialEq)]
pub enum PhaseTypeError {
    /// `α` and `S` have inconsistent dimensions, or `S` is not square.
    Shape {
        /// Length of the initial vector.
        alpha_len: usize,
        /// Shape of the sub-generator.
        s_shape: (usize, usize),
    },
    /// `α` has a negative entry or sums to more than one.
    BadInitialVector(String),
    /// `S` is not a valid sub-generator (negative off-diagonal, positive
    /// diagonal, or positive row sum).
    BadSubGenerator(String),
    /// The representation is non-absorbing: some states can never reach the
    /// absorbing state, so the distribution has infinite mass at `+∞`.
    NotAbsorbing,
}

impl std::fmt::Display for PhaseTypeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PhaseTypeError::Shape { alpha_len, s_shape } => write!(
                f,
                "alpha has length {alpha_len} but S is {}x{}",
                s_shape.0, s_shape.1
            ),
            PhaseTypeError::BadInitialVector(msg) => write!(f, "bad initial vector: {msg}"),
            PhaseTypeError::BadSubGenerator(msg) => write!(f, "bad sub-generator: {msg}"),
            PhaseTypeError::NotAbsorbing => {
                write!(f, "sub-generator has states that cannot reach absorption")
            }
        }
    }
}

impl std::error::Error for PhaseTypeError {}

/// A phase-type distribution `PH(α, S)` of order `m`.
///
/// Invariants (enforced at construction):
/// * `α ≥ 0`, `Σα ≤ 1` (the deficit `1 − Σα` is an atom at zero);
/// * `S` has nonnegative off-diagonal entries, nonpositive diagonal, and
///   nonpositive row sums (`s⁰ = −S e ≥ 0`);
/// * every phase reachable from `α` can reach absorption (finite mean).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PhaseType {
    alpha: Vec<f64>,
    s: MatrixSerde,
}

/// Serde-friendly wrapper around `gsched_linalg::Matrix` (which is
/// dependency-free and does not implement serde traits itself).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct MatrixSerde {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl From<&Matrix> for MatrixSerde {
    fn from(m: &Matrix) -> Self {
        MatrixSerde {
            rows: m.rows(),
            cols: m.cols(),
            data: m.as_slice().to_vec(),
        }
    }
}

impl MatrixSerde {
    fn to_matrix(&self) -> Matrix {
        Matrix::from_vec(self.rows, self.cols, self.data.clone())
    }
}

/// Numerical slack used during validation.
const VTOL: f64 = 1e-9;

impl PhaseType {
    /// Construct and validate a `PH(α, S)`.
    pub fn new(alpha: Vec<f64>, s: Matrix) -> Result<PhaseType, PhaseTypeError> {
        if !s.is_square() || alpha.len() != s.rows() {
            return Err(PhaseTypeError::Shape {
                alpha_len: alpha.len(),
                s_shape: s.shape(),
            });
        }
        let total: f64 = alpha.iter().sum();
        if alpha.iter().any(|&a| a < -VTOL) {
            return Err(PhaseTypeError::BadInitialVector(
                "negative entry".to_string(),
            ));
        }
        if total > 1.0 + VTOL {
            return Err(PhaseTypeError::BadInitialVector(format!(
                "entries sum to {total} > 1"
            )));
        }
        let m = s.rows();
        for i in 0..m {
            if s[(i, i)] > VTOL {
                return Err(PhaseTypeError::BadSubGenerator(format!(
                    "positive diagonal entry at {i}"
                )));
            }
            let mut row_sum = 0.0;
            for j in 0..m {
                if i != j && s[(i, j)] < -VTOL {
                    return Err(PhaseTypeError::BadSubGenerator(format!(
                        "negative off-diagonal entry at ({i},{j})"
                    )));
                }
                row_sum += s[(i, j)];
            }
            if row_sum > VTOL {
                return Err(PhaseTypeError::BadSubGenerator(format!(
                    "row {i} sums to {row_sum} > 0"
                )));
            }
        }
        let ph = PhaseType {
            alpha,
            s: MatrixSerde::from(&s),
        };
        // Absorbing check: -S must be nonsingular on the reachable part. A
        // cheap sufficient test is that (−S) is invertible; Lu::new errors on
        // exact singularity. States unreachable from alpha with no exit are
        // tolerated by first restricting to the reachable set.
        if ph.order() > 0 {
            let reach = ph.reachable_states();
            if reach.is_empty() {
                return Ok(ph); // pure atom at zero
            }
            let sub = ph.restrict(&reach);
            if Lu::new(&sub.sub_generator().scaled(-1.0)).is_err() {
                return Err(PhaseTypeError::NotAbsorbing);
            }
        }
        Ok(ph)
    }

    /// The degenerate distribution that is identically zero (order 0).
    pub fn zero() -> PhaseType {
        PhaseType {
            alpha: Vec::new(),
            s: MatrixSerde::from(&Matrix::zeros(0, 0)),
        }
    }

    /// Order `m` of the representation.
    pub fn order(&self) -> usize {
        self.alpha.len()
    }

    /// Initial probability vector `α` over the transient phases.
    pub fn alpha(&self) -> &[f64] {
        &self.alpha
    }

    /// Atom at zero, `α₀ = 1 − Σα`.
    pub fn atom_at_zero(&self) -> f64 {
        (1.0 - self.alpha.iter().sum::<f64>()).max(0.0)
    }

    /// Sub-generator `S`.
    pub fn sub_generator(&self) -> Matrix {
        self.s.to_matrix()
    }

    /// Exit-rate vector `s⁰ = −S·e`.
    pub fn exit_vector(&self) -> Vec<f64> {
        let s = self.s.to_matrix();
        s.row_sums().iter().map(|&r| (-r).max(0.0)).collect()
    }

    /// Remove phases unreachable from the support of `α`.
    ///
    /// Fitted and mixed representations can carry zero-probability branches
    /// (e.g. a mixed-Erlang fit whose weight lands exactly on 0); embedding
    /// such phases into a larger Markov chain would break its
    /// irreducibility. The pruned representation defines the same
    /// distribution.
    pub fn pruned(&self) -> PhaseType {
        let reach = self.reachable_states();
        if reach.len() == self.order() {
            return self.clone();
        }
        self.restrict(&reach)
    }

    /// Indices of phases reachable from the support of `α`.
    fn reachable_states(&self) -> Vec<usize> {
        let m = self.order();
        let s = self.s.to_matrix();
        let mut seen = vec![false; m];
        let mut stack: Vec<usize> = (0..m).filter(|&i| self.alpha[i] > 0.0).collect();
        for &i in &stack {
            seen[i] = true;
        }
        while let Some(i) = stack.pop() {
            for j in 0..m {
                if i != j && s[(i, j)] > 0.0 && !seen[j] {
                    seen[j] = true;
                    stack.push(j);
                }
            }
        }
        (0..m).filter(|&i| seen[i]).collect()
    }

    /// Restrict the representation to the given phase subset (renormalizing
    /// nothing — probability leaving the subset becomes exit mass).
    fn restrict(&self, keep: &[usize]) -> PhaseType {
        let s = self.s.to_matrix();
        let k = keep.len();
        let mut sub = Matrix::zeros(k, k);
        for (a, &i) in keep.iter().enumerate() {
            for (b, &j) in keep.iter().enumerate() {
                sub[(a, b)] = s[(i, j)];
            }
        }
        let alpha = keep.iter().map(|&i| self.alpha[i]).collect();
        PhaseType {
            alpha,
            s: MatrixSerde::from(&sub),
        }
    }

    /// `k`-th raw moment `E[Xᵏ] = k! · α (−S)^{−k} e` (the atom contributes 0).
    ///
    /// # Panics
    /// Panics if `k == 0` (trivially 1) is requested with an empty
    /// representation — callers should special-case it.
    pub fn moment(&self, k: u32) -> f64 {
        if k == 0 {
            return 1.0;
        }
        if self.order() == 0 {
            return 0.0;
        }
        let neg_s = self.s.to_matrix().scaled(-1.0);
        let lu = Lu::new(&neg_s).expect("validated PH has invertible -S");
        // x_1 = α (−S)^{-1}; x_{j+1} = x_j (−S)^{-1}
        let mut x = lu
            .solve_left_vec(&self.alpha)
            .expect("dimension checked at construction");
        let mut fact = 1.0;
        for j in 2..=k {
            x = lu.solve_left_vec(&x).expect("same dimensions");
            fact *= j as f64;
        }
        fact * x.iter().sum::<f64>()
    }

    /// Mean `E[X] = α(−S)^{-1}e` (paper §2.5).
    pub fn mean(&self) -> f64 {
        self.moment(1)
    }

    /// Variance.
    pub fn variance(&self) -> f64 {
        let m1 = self.moment(1);
        (self.moment(2) - m1 * m1).max(0.0)
    }

    /// Squared coefficient of variation `Var/Mean²` (1 for exponential).
    pub fn scv(&self) -> f64 {
        let m = self.mean();
        if m == 0.0 {
            0.0
        } else {
            self.variance() / (m * m)
        }
    }

    /// Survival function `P(X > t) = α · exp(S t) · e`, evaluated by
    /// uniformization (paper §2.4): with `q ≥ max |S_ii|` and
    /// `P = I + S/q`, `exp(St) e = Σ_k e^{−qt}(qt)^k/k! · Pᵏ e`.
    pub fn survival(&self, t: f64) -> f64 {
        if t < 0.0 {
            return 1.0;
        }
        if self.order() == 0 {
            return 0.0;
        }
        if t == 0.0 {
            return self.alpha.iter().sum();
        }
        let s = self.s.to_matrix();
        let m = self.order();
        let q = (0..m)
            .map(|i| -s[(i, i)])
            .fold(0.0_f64, f64::max)
            .max(1e-300);
        let p = {
            let mut p = s.scaled(1.0 / q);
            for i in 0..m {
                p[(i, i)] += 1.0;
            }
            p
        };
        // v_k = α P^k; survival = Σ poisson(k; qt) * v_k · e
        let qt = q * t;
        let kmax = poisson_truncation(qt, 1e-14);
        let mut v = self.alpha.clone();
        let mut total = 0.0;
        // Poisson weights computed iteratively in log-safe fashion.
        let mut w = (-qt).exp(); // may underflow for large qt; handle below
        if w == 0.0 {
            // Large qt: start the recursion at the mode using Stirling.
            return self.survival_large_qt(&p, qt, kmax);
        }
        for k in 0..=kmax {
            total += w * v.iter().sum::<f64>();
            v = p.left_mul_vec(&v).expect("dimensions fixed");
            w *= qt / (k as f64 + 1.0);
        }
        total.clamp(0.0, 1.0)
    }

    /// Survival evaluation when `e^{−qt}` underflows: weights are computed in
    /// log space around the Poisson mode.
    fn survival_large_qt(&self, p: &Matrix, qt: f64, kmax: usize) -> f64 {
        let mut v = self.alpha.clone();
        let mut total = 0.0;
        for k in 0..=kmax {
            let logw = -qt + k as f64 * qt.ln() - ln_factorial(k);
            if logw > -745.0 {
                total += logw.exp() * v.iter().sum::<f64>();
            }
            v = p.left_mul_vec(&v).expect("dimensions fixed");
        }
        total.clamp(0.0, 1.0)
    }

    /// CDF `F(t) = 1 − survival(t)`.
    pub fn cdf(&self, t: f64) -> f64 {
        1.0 - self.survival(t)
    }

    /// Density `f(t) = α · exp(S t) · s⁰` for `t > 0` (excludes the atom).
    pub fn pdf(&self, t: f64) -> f64 {
        if t < 0.0 || self.order() == 0 {
            return 0.0;
        }
        let s = self.s.to_matrix();
        let m = self.order();
        let s0 = self.exit_vector();
        let q = (0..m)
            .map(|i| -s[(i, i)])
            .fold(0.0_f64, f64::max)
            .max(1e-300);
        let p = {
            let mut p = s.scaled(1.0 / q);
            for i in 0..m {
                p[(i, i)] += 1.0;
            }
            p
        };
        let qt = q * t;
        let kmax = poisson_truncation(qt, 1e-14);
        let mut v = self.alpha.clone();
        let mut total = 0.0;
        for k in 0..=kmax {
            let logw = -qt + if k > 0 { k as f64 * qt.ln() } else { 0.0 } - ln_factorial(k);
            if logw > -745.0 {
                let vd: f64 = v.iter().zip(s0.iter()).map(|(a, b)| a * b).sum();
                total += logw.exp() * vd;
            }
            v = p.left_mul_vec(&v).expect("dimensions fixed");
        }
        total.max(0.0)
    }

    /// `p`-quantile `inf{t : F(t) ≥ p}`, computed by bracketing and
    /// bisection on the CDF.
    ///
    /// For several quantiles of the same distribution prefer
    /// [`PhaseType::quantiles`], which shares one uniformization sweep.
    ///
    /// # Panics
    /// Panics if `p` is outside `[0, 1)`.
    pub fn quantile(&self, p: f64) -> f64 {
        self.quantiles(&[p])[0]
    }

    /// Batch quantile computation sharing a single uniformization sweep.
    ///
    /// The survival function is `S(t) = Σ_k e^{−qt}(qt)^k/k! · s_k` with
    /// `s_k = α Pᵏ e` independent of `t`; the `s_k` sequence is computed
    /// once (extended on demand) and every bisection step costs only a
    /// Poisson-weighted scalar sum.
    ///
    /// # Panics
    /// Panics if any `p` is outside `[0, 1)`.
    pub fn quantiles(&self, ps: &[f64]) -> Vec<f64> {
        for &p in ps {
            assert!(
                (0.0..1.0).contains(&p),
                "quantile requires p in [0,1), got {p}"
            );
        }
        if self.order() == 0 {
            return vec![0.0; ps.len()];
        }
        let m = self.order();
        let s = self.s.to_matrix();
        let q = (0..m)
            .map(|i| -s[(i, i)])
            .fold(0.0_f64, f64::max)
            .max(1e-300);
        let p_mat = {
            let mut p = s.scaled(1.0 / q);
            for i in 0..m {
                p[(i, i)] += 1.0;
            }
            p
        };
        // Cached s_k = alpha P^k e, extended on demand.
        let mut sk: Vec<f64> = Vec::new();
        let mut v = self.alpha.clone();
        sk.push(v.iter().sum());
        let extend_to = |sk: &mut Vec<f64>, v: &mut Vec<f64>, k: usize| {
            while sk.len() <= k {
                *v = p_mat.left_mul_vec(v).expect("dimensions fixed");
                sk.push(v.iter().sum());
            }
        };
        let survival = |sk: &mut Vec<f64>, v: &mut Vec<f64>, t: f64| -> f64 {
            if t <= 0.0 {
                return sk[0];
            }
            let qt = q * t;
            let kmax = poisson_truncation(qt, 1e-13);
            extend_to(sk, v, kmax);
            let mut total = 0.0;
            // Log-space Poisson weights (robust for large qt).
            for (k, &sv) in sk.iter().enumerate().take(kmax + 1) {
                if sv <= 0.0 {
                    continue;
                }
                let logw = -qt + if k > 0 { k as f64 * qt.ln() } else { 0.0 } - ln_factorial(k);
                if logw > -745.0 {
                    total += logw.exp() * sv;
                }
            }
            total.clamp(0.0, 1.0)
        };

        let atom = self.atom_at_zero();
        let mean = self.mean().max(1e-12);
        ps.iter()
            .map(|&p| {
                if p <= atom {
                    return 0.0;
                }
                let mut hi = mean;
                let mut iters = 0;
                while survival(&mut sk, &mut v, hi) > 1.0 - p {
                    hi *= 2.0;
                    iters += 1;
                    if iters > 120 {
                        return f64::INFINITY;
                    }
                }
                let mut lo = 0.0;
                for _ in 0..70 {
                    let mid = 0.5 * (lo + hi);
                    if survival(&mut sk, &mut v, mid) > 1.0 - p {
                        lo = mid;
                    } else {
                        hi = mid;
                    }
                    if hi - lo < 1e-10 * hi.max(1.0) {
                        break;
                    }
                }
                0.5 * (lo + hi)
            })
            .collect()
    }

    /// Draw one sample by simulating the absorbing chain.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let m = self.order();
        if m == 0 {
            return 0.0;
        }
        let s = self.s.to_matrix();
        let s0 = self.exit_vector();
        // Choose initial phase (or instant absorption via the atom).
        let mut u: f64 = rng.random();
        let mut phase = usize::MAX;
        for (i, &a) in self.alpha.iter().enumerate() {
            if u < a {
                phase = i;
                break;
            }
            u -= a;
        }
        if phase == usize::MAX {
            return 0.0; // atom at zero
        }
        let mut t = 0.0;
        loop {
            let rate = -s[(phase, phase)];
            if rate <= 0.0 {
                // Defensive: validated representations cannot trap, but avoid
                // an infinite loop if numerics degenerate.
                return t;
            }
            let u: f64 = rng.random();
            t += -(1.0 - u).ln() / rate;
            // Choose next transition: exit with prob s0/rate, else jump.
            let mut v: f64 = rng.random::<f64>() * rate;
            if v < s0[phase] {
                return t;
            }
            v -= s0[phase];
            let mut next = phase;
            for j in 0..m {
                if j == phase {
                    continue;
                }
                let r = s[(phase, j)];
                if v < r {
                    next = j;
                    break;
                }
                v -= r;
            }
            phase = next;
        }
    }

    /// Draw `n` samples.
    pub fn sample_n<R: Rng + ?Sized>(&self, rng: &mut R, n: usize) -> Vec<f64> {
        (0..n).map(|_| self.sample(rng)).collect()
    }

    /// Rescale time so the mean becomes `new_mean` (shape-preserving).
    ///
    /// # Panics
    /// Panics if the current mean is zero while `new_mean > 0`, or if
    /// `new_mean <= 0`.
    pub fn with_mean(&self, new_mean: f64) -> PhaseType {
        assert!(new_mean > 0.0, "with_mean: target mean must be positive");
        let m = self.mean();
        assert!(
            m > 0.0,
            "with_mean: cannot rescale a zero-mean distribution"
        );
        let factor = m / new_mean; // rates scale by factor
        PhaseType {
            alpha: self.alpha.clone(),
            s: MatrixSerde::from(&self.s.to_matrix().scaled(factor)),
        }
    }
}

/// Truncation point for a Poisson(λ) tail below `tol`: mean plus a generous
/// number of standard deviations (Chernoff-style), floor 32.
pub(crate) fn poisson_truncation(lambda: f64, tol: f64) -> usize {
    let k = lambda + 10.0 * lambda.sqrt().max(1.0) + (-tol.ln()).max(1.0);
    (k.ceil() as usize).max(32)
}

/// `ln(k!)` via Stirling's series for large `k`, exact accumulation for small.
pub(crate) fn ln_factorial(k: usize) -> f64 {
    if k < 2 {
        return 0.0;
    }
    if k < 64 {
        return (2..=k).map(|i| (i as f64).ln()).sum();
    }
    let n = k as f64;
    n * n.ln() - n + 0.5 * (2.0 * std::f64::consts::PI * n).ln() + 1.0 / (12.0 * n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builders::{erlang, exponential, hyperexponential};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn exponential_moments() {
        let ph = exponential(2.0);
        assert!((ph.mean() - 0.5).abs() < 1e-12);
        assert!((ph.moment(2) - 2.0 * 0.25).abs() < 1e-12);
        assert!((ph.scv() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn erlang_moments() {
        let ph = erlang(4, 1.0); // 4 stages, overall mean 1, var 1/4
        assert!((ph.mean() - 1.0).abs() < 1e-12);
        assert!((ph.variance() - 0.25).abs() < 1e-12);
        assert!((ph.scv() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn exponential_cdf_matches_closed_form() {
        let ph = exponential(1.5);
        for &t in &[0.0, 0.1, 0.5, 1.0, 3.0, 10.0] {
            let want = 1.0 - (-1.5_f64 * t).exp();
            assert!(
                (ph.cdf(t) - want).abs() < 1e-10,
                "t={t}: {} vs {want}",
                ph.cdf(t)
            );
        }
    }

    #[test]
    fn erlang_pdf_positive_and_integrates() {
        let ph = erlang(3, 3.0);
        // Crude trapezoid integral of the density should be close to 1.
        let mut acc = 0.0;
        let dt = 0.001;
        let mut t = 0.0;
        while t < 20.0 {
            acc += ph.pdf(t) * dt;
            t += dt;
        }
        assert!((acc - 1.0).abs() < 1e-3, "integral {acc}");
    }

    #[test]
    fn survival_large_t_underflow_path() {
        // q*t = 800 makes e^{-qt} underflow f64; the log-space branch must
        // still return a sane (tiny, nonnegative) value.
        let ph = exponential(1.0);
        let s = ph.survival(800.0);
        assert!((0.0..=1e-100).contains(&s), "survival(800) = {s}");
        // And survival stays monotone across the branch switch.
        assert!(ph.survival(1.0) > ph.survival(5.0));
        assert!(ph.survival(5.0) > ph.survival(50.0));
    }

    #[test]
    fn atom_at_zero_detected() {
        let ph = PhaseType::new(vec![0.5], Matrix::from_rows(&[&[-1.0]])).unwrap();
        assert!((ph.atom_at_zero() - 0.5).abs() < 1e-12);
        assert!((ph.mean() - 0.5).abs() < 1e-12);
        assert!((ph.cdf(0.0) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn zero_distribution() {
        let z = PhaseType::zero();
        assert_eq!(z.order(), 0);
        assert_eq!(z.mean(), 0.0);
        assert_eq!(z.cdf(0.0), 1.0);
        assert_eq!(z.atom_at_zero(), 1.0);
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(z.sample(&mut rng), 0.0);
    }

    #[test]
    fn validation_rejects_bad_alpha() {
        let s = Matrix::from_rows(&[&[-1.0]]);
        assert!(matches!(
            PhaseType::new(vec![1.5], s.clone()),
            Err(PhaseTypeError::BadInitialVector(_))
        ));
        assert!(matches!(
            PhaseType::new(vec![-0.1], s),
            Err(PhaseTypeError::BadInitialVector(_))
        ));
    }

    #[test]
    fn validation_rejects_bad_generator() {
        assert!(matches!(
            PhaseType::new(vec![1.0], Matrix::from_rows(&[&[1.0]])),
            Err(PhaseTypeError::BadSubGenerator(_))
        ));
        let s = Matrix::from_rows(&[&[-1.0, 2.0], &[0.0, -1.0]]);
        assert!(matches!(
            PhaseType::new(vec![0.5, 0.5], s),
            Err(PhaseTypeError::BadSubGenerator(_))
        ));
    }

    #[test]
    fn validation_rejects_non_absorbing() {
        // Two states cycling with no exit: never absorbs.
        let s = Matrix::from_rows(&[&[-1.0, 1.0], &[1.0, -1.0]]);
        assert!(matches!(
            PhaseType::new(vec![1.0, 0.0], s),
            Err(PhaseTypeError::NotAbsorbing)
        ));
    }

    #[test]
    fn shape_mismatch_rejected() {
        assert!(matches!(
            PhaseType::new(vec![1.0, 0.0], Matrix::from_rows(&[&[-1.0]])),
            Err(PhaseTypeError::Shape { .. })
        ));
    }

    #[test]
    fn sampling_mean_close() {
        let ph = hyperexponential(&[0.4, 0.6], &[1.0, 5.0]).unwrap();
        let mut rng = StdRng::seed_from_u64(42);
        let xs = ph.sample_n(&mut rng, 200_000);
        let emp: f64 = xs.iter().sum::<f64>() / xs.len() as f64;
        assert!(
            (emp - ph.mean()).abs() < 0.01,
            "empirical {emp} vs {}",
            ph.mean()
        );
    }

    #[test]
    fn with_mean_rescales() {
        let ph = erlang(3, 1.0).with_mean(2.0);
        assert!((ph.mean() - 2.0).abs() < 1e-12);
        assert!((ph.scv() - 1.0 / 3.0).abs() < 1e-12); // shape preserved
    }

    #[test]
    fn quantile_inverts_exponential_cdf() {
        let ph = exponential(2.0);
        for &p in &[0.1, 0.5, 0.9, 0.99] {
            let want = -(1.0f64 - p).ln() / 2.0;
            let got = ph.quantile(p);
            assert!((got - want).abs() < 1e-6, "p={p}: {got} vs {want}");
        }
    }

    #[test]
    fn quantile_respects_atom() {
        let ph = PhaseType::new(vec![0.4], Matrix::from_rows(&[&[-1.0]])).unwrap();
        assert_eq!(ph.quantile(0.3), 0.0); // inside the atom
        assert!(ph.quantile(0.9) > 0.0);
        assert_eq!(PhaseType::zero().quantile(0.5), 0.0);
    }

    #[test]
    fn quantile_monotone() {
        let ph = erlang(3, 1.0);
        let q1 = ph.quantile(0.25);
        let q2 = ph.quantile(0.5);
        let q3 = ph.quantile(0.95);
        assert!(q1 < q2 && q2 < q3);
        // Median of Erlang-3 with mean 1 is around 0.89.
        assert!((q2 - 0.8913).abs() < 0.01, "median {q2}");
    }

    #[test]
    fn ln_factorial_consistent() {
        // Boundary between exact and Stirling branches.
        let exact: f64 = (2..=70).map(|i| (i as f64).ln()).sum();
        assert!((ln_factorial(70) - exact).abs() < 1e-6);
        assert_eq!(ln_factorial(0), 0.0);
        assert_eq!(ln_factorial(1), 0.0);
    }

    #[test]
    fn clone_eq_roundtrip() {
        // Full JSON round-trips are exercised in the workload crate, which
        // depends on serde_json; here we check structural equality semantics.
        let ph = erlang(2, 3.0);
        let copy = ph.clone();
        assert_eq!(copy, ph);
    }
}
