//! Closure operations on phase-type distributions.
//!
//! Theorem 2.5 of the paper gives the convolution construction used to build
//! the "vacation" distribution `Z_p = C_p * G_{p+1} * C_{p+1} * … * C_{p−1}`
//! (Theorems 4.1 and 4.3). Mixture, minimum and maximum are standard PH
//! closure results (Neuts 1981) provided for workload modelling.
//!
//! All operations handle *defective* representations, where `α·e < 1` leaves
//! an atom at zero — these arise naturally for effective quanta that can be
//! skipped entirely.

use crate::dist::{PhaseType, PhaseTypeError};
use gsched_linalg::{kron::kron_vec, kron_sum, Matrix};

/// Convolution `F * G` — the distribution of `X + Y` for independent
/// `X ~ F`, `Y ~ G` (Theorem 2.5).
///
/// The result has order `n_F + n_G`, sub-generator
/// `[[S_F, s⁰_F β], [0, S_G]]`, initial vector `[α, α₀ β]`, and atom
/// `α₀ β₀`.
pub fn convolve(f: &PhaseType, g: &PhaseType) -> PhaseType {
    let nf = f.order();
    let ng = g.order();
    if nf == 0 {
        // F is identically its atom: X + Y = Y scaled by the atom structure.
        // atom_F is 1, so F * G = G.
        return g.clone();
    }
    if ng == 0 {
        return f.clone();
    }
    let sf = f.sub_generator();
    let sg = g.sub_generator();
    let s0f = f.exit_vector();
    let beta = g.alpha();
    let alpha0 = f.atom_at_zero();

    let n = nf + ng;
    let mut s = Matrix::zeros(n, n);
    s.set_block(0, 0, &sf);
    s.set_block(nf, nf, &sg);
    for i in 0..nf {
        for (j, &b) in beta.iter().enumerate() {
            s[(i, nf + j)] = s0f[i] * b;
        }
    }
    let mut alpha = Vec::with_capacity(n);
    alpha.extend_from_slice(f.alpha());
    alpha.extend(beta.iter().map(|&b| alpha0 * b));
    PhaseType::new(alpha, s).expect("convolution of valid PH is valid")
}

/// Convolution of a sequence of distributions, in order.
///
/// Returns [`PhaseType::zero`] for an empty slice.
pub fn convolve_all(parts: &[PhaseType]) -> PhaseType {
    parts
        .iter()
        .fold(PhaseType::zero(), |acc, p| convolve(&acc, p))
}

/// Finite mixture `Σ wᵢ Fᵢ`.
///
/// # Errors
/// Fails if weights and components differ in number, any weight is negative,
/// or the weights do not sum to one (tolerance `1e-9`).
pub fn mixture(weights: &[f64], parts: &[PhaseType]) -> Result<PhaseType, PhaseTypeError> {
    if weights.len() != parts.len() || parts.is_empty() {
        return Err(PhaseTypeError::Shape {
            alpha_len: weights.len(),
            s_shape: (parts.len(), parts.len()),
        });
    }
    if weights.iter().any(|&w| w < 0.0) {
        return Err(PhaseTypeError::BadInitialVector(
            "mixture weights must be nonnegative".to_string(),
        ));
    }
    let total: f64 = weights.iter().sum();
    if (total - 1.0).abs() > 1e-9 {
        return Err(PhaseTypeError::BadInitialVector(format!(
            "mixture weights sum to {total}, expected 1"
        )));
    }
    let n: usize = parts.iter().map(|p| p.order()).sum();
    let mut s = Matrix::zeros(n, n);
    let mut alpha = Vec::with_capacity(n);
    let mut offset = 0;
    for (w, p) in weights.iter().zip(parts.iter()) {
        let order = p.order();
        if order > 0 {
            s.set_block(offset, offset, &p.sub_generator());
            alpha.extend(p.alpha().iter().map(|&a| w * a));
            offset += order;
        }
        // A zero-order part contributes only to the atom (deficit of alpha).
    }
    PhaseType::new(alpha, s)
}

/// Distribution of `min(X, Y)` for independent PH variables.
///
/// Transient space is the Kronecker product of the two phase spaces with
/// sub-generator `S_F ⊕ S_G`; absorption happens as soon as either component
/// absorbs. The atom at zero is `α₀ + β₀ − α₀β₀`.
pub fn minimum(f: &PhaseType, g: &PhaseType) -> PhaseType {
    if f.order() == 0 || g.order() == 0 {
        // One of them is identically 0, so the minimum is identically 0.
        return PhaseType::zero();
    }
    let s = kron_sum(&f.sub_generator(), &g.sub_generator());
    let alpha = kron_vec(f.alpha(), g.alpha());
    PhaseType::new(alpha, s).expect("minimum of valid PH is valid")
}

/// Distribution of `max(X, Y)` for independent PH variables.
///
/// State space: both alive (`n_F·n_G`), only `X` alive (`n_F`), only `Y`
/// alive (`n_G`). The atom at zero is `α₀β₀`.
pub fn maximum(f: &PhaseType, g: &PhaseType) -> PhaseType {
    let nf = f.order();
    let ng = g.order();
    if nf == 0 {
        return g.clone(); // max(0, Y) = Y
    }
    if ng == 0 {
        return f.clone();
    }
    let sf = f.sub_generator();
    let sg = g.sub_generator();
    let s0f = f.exit_vector();
    let s0g = g.exit_vector();
    let both = nf * ng;
    let n = both + nf + ng;
    let mut s = Matrix::zeros(n, n);
    s.set_block(0, 0, &kron_sum(&sf, &sg));
    // G absorbs while both alive -> X-only state with X's current phase.
    for i in 0..nf {
        for j in 0..ng {
            s[(i * ng + j, both + i)] = s0g[j];
        }
    }
    // F absorbs while both alive -> Y-only state with Y's current phase.
    for i in 0..nf {
        for j in 0..ng {
            s[(i * ng + j, both + nf + j)] = s0f[i];
        }
    }
    s.set_block(both, both, &sf);
    s.set_block(both + nf, both + nf, &sg);

    let a0 = f.atom_at_zero();
    let b0 = g.atom_at_zero();
    let mut alpha = kron_vec(f.alpha(), g.alpha());
    alpha.extend(f.alpha().iter().map(|&a| a * b0)); // Y = 0 instantly
    alpha.extend(g.alpha().iter().map(|&b| b * a0)); // X = 0 instantly
    PhaseType::new(alpha, s).expect("maximum of valid PH is valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builders::{erlang, exponential, hyperexponential};
    use gsched_linalg::Matrix;

    #[test]
    fn convolution_of_exponentials_is_hypoexponential() {
        let a = exponential(1.0);
        let b = exponential(2.0);
        let c = convolve(&a, &b);
        assert_eq!(c.order(), 2);
        assert!((c.mean() - 1.5).abs() < 1e-12);
        // Variance adds for independent sums: 1 + 0.25.
        assert!((c.variance() - 1.25).abs() < 1e-12);
    }

    #[test]
    fn convolution_of_equal_exponentials_is_erlang() {
        let e = exponential(3.0);
        let two = convolve(&e, &e);
        let erl = erlang(2, 1.5); // mean 2/3, same as sum of two mean-1/3
        assert!((two.mean() - erl.mean()).abs() < 1e-12);
        assert!((two.moment(2) - erl.moment(2)).abs() < 1e-12);
        assert!((two.moment(3) - erl.moment(3)).abs() < 1e-11);
        for &t in &[0.1, 0.5, 1.0, 2.0] {
            assert!((two.cdf(t) - erl.cdf(t)).abs() < 1e-10, "t={t}");
        }
    }

    #[test]
    fn convolution_means_add_for_chains() {
        let parts = vec![exponential(1.0), erlang(3, 2.0), exponential(5.0)];
        let total = convolve_all(&parts);
        let want: f64 = parts.iter().map(|p| p.mean()).sum();
        assert!((total.mean() - want).abs() < 1e-12);
        assert_eq!(total.order(), 5);
        // Variances add too (independence).
        let var_want: f64 = parts.iter().map(|p| p.variance()).sum();
        assert!((total.variance() - var_want).abs() < 1e-11);
    }

    #[test]
    fn convolution_with_zero_is_identity() {
        let e = erlang(2, 1.0);
        assert_eq!(convolve(&PhaseType::zero(), &e), e);
        assert_eq!(convolve(&e, &PhaseType::zero()), e);
        assert_eq!(convolve_all(&[]), PhaseType::zero());
    }

    #[test]
    fn convolution_with_atom() {
        // F = 0 w.p. 1/2, Exp(1) w.p. 1/2.  F*G mean = E[F] + E[G].
        let f = PhaseType::new(vec![0.5], Matrix::from_rows(&[&[-1.0]])).unwrap();
        let g = exponential(2.0);
        let c = convolve(&f, &g);
        assert!((c.mean() - (0.5 + 0.5)).abs() < 1e-12);
        assert_eq!(c.atom_at_zero(), 0.0); // G has no atom
        let both = convolve(&f, &f);
        assert!((both.atom_at_zero() - 0.25).abs() < 1e-12);
        assert!((both.mean() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn mixture_mean_is_weighted() {
        let parts = [exponential(1.0), exponential(4.0)];
        let mix = mixture(&[0.3, 0.7], &parts).unwrap();
        assert!((mix.mean() - (0.3 + 0.7 * 0.25)).abs() < 1e-12);
        // Same as hyperexponential built directly.
        let hyper = hyperexponential(&[0.3, 0.7], &[1.0, 4.0]).unwrap();
        assert!((mix.moment(2) - hyper.moment(2)).abs() < 1e-12);
    }

    #[test]
    fn mixture_validation() {
        let e = exponential(1.0);
        assert!(mixture(&[0.5, 0.6], &[e.clone(), e.clone()]).is_err());
        assert!(mixture(&[0.5], &[e.clone(), e.clone()]).is_err());
        assert!(mixture(&[-0.1, 1.1], &[e.clone(), e.clone()]).is_err());
        assert!(mixture(&[], &[]).is_err());
    }

    #[test]
    fn minimum_of_exponentials() {
        // min(Exp(a), Exp(b)) = Exp(a+b).
        let m = minimum(&exponential(2.0), &exponential(3.0));
        assert!((m.mean() - 0.2).abs() < 1e-12);
        assert!((m.scv() - 1.0).abs() < 1e-10);
        for &t in &[0.1, 0.3, 1.0] {
            let want = 1.0 - (-5.0_f64 * t).exp();
            assert!((m.cdf(t) - want).abs() < 1e-10);
        }
    }

    #[test]
    fn maximum_of_exponentials() {
        // E[max(Exp(a),Exp(b))] = 1/a + 1/b − 1/(a+b).
        let m = maximum(&exponential(2.0), &exponential(3.0));
        let want = 0.5 + 1.0 / 3.0 - 0.2;
        assert!((m.mean() - want).abs() < 1e-12, "{} vs {want}", m.mean());
    }

    #[test]
    fn min_plus_max_equals_sum() {
        // X + Y = min + max in expectation (and in every moment sum of pairs).
        let f = erlang(2, 1.0);
        let g = exponential(0.7);
        let mn = minimum(&f, &g);
        let mx = maximum(&f, &g);
        assert!((mn.mean() + mx.mean() - (f.mean() + g.mean())).abs() < 1e-10);
    }

    #[test]
    fn extrema_with_zero() {
        let e = exponential(1.0);
        assert_eq!(minimum(&PhaseType::zero(), &e).mean(), 0.0);
        assert_eq!(maximum(&PhaseType::zero(), &e), e);
    }

    #[test]
    fn maximum_with_atoms() {
        let f = PhaseType::new(vec![0.5], Matrix::from_rows(&[&[-1.0]])).unwrap();
        let g = PhaseType::new(vec![0.25], Matrix::from_rows(&[&[-1.0]])).unwrap();
        let mx = maximum(&f, &g);
        assert!((mx.atom_at_zero() - 0.375).abs() < 1e-12); // 0.5 * 0.75
        let mn = minimum(&f, &g);
        // atom of min = 1 - 0.5*0.25 = 0.875
        assert!((mn.atom_at_zero() - 0.875).abs() < 1e-12);
    }
}
