//! Constructors for the common phase-type families.
//!
//! The paper's examples use exactly these: Poisson arrivals are
//! [`exponential`] interarrivals, the quantum-length in Figure 1 is a
//! K-stage [`erlang`], and [`hyperexponential`]/[`coxian`] cover
//! high-variability workloads when fitting empirical data (§3.2).

use crate::dist::{PhaseType, PhaseTypeError};
use gsched_linalg::Matrix;

/// Exponential distribution with the given `rate` (mean `1/rate`).
///
/// # Panics
/// Panics if `rate <= 0`.
pub fn exponential(rate: f64) -> PhaseType {
    assert!(rate > 0.0, "exponential: rate must be positive, got {rate}");
    PhaseType::new(vec![1.0], Matrix::from_rows(&[&[-rate]]))
        .expect("exponential parameters are always valid")
}

/// `k`-stage Erlang with per-stage rate `k·rate`, i.e. mean `1/rate` and
/// squared coefficient of variation `1/k` (the paper's §2.5 example).
///
/// # Panics
/// Panics if `k == 0` or `rate <= 0`.
pub fn erlang(k: usize, rate: f64) -> PhaseType {
    assert!(k > 0, "erlang: stage count must be positive");
    assert!(rate > 0.0, "erlang: rate must be positive, got {rate}");
    let stage_rate = k as f64 * rate;
    let mut s = Matrix::zeros(k, k);
    for i in 0..k {
        s[(i, i)] = -stage_rate;
        if i + 1 < k {
            s[(i, i + 1)] = stage_rate;
        }
    }
    let mut alpha = vec![0.0; k];
    alpha[0] = 1.0;
    PhaseType::new(alpha, s).expect("erlang parameters are always valid")
}

/// Hypoexponential (generalized Erlang): stages in series with individual
/// `rates`. Mean is `Σ 1/rate_i`; SCV is below 1.
///
/// # Errors
/// Fails if `rates` is empty or contains a nonpositive rate.
pub fn hypoexponential(rates: &[f64]) -> Result<PhaseType, PhaseTypeError> {
    if rates.is_empty() || rates.iter().any(|&r| r <= 0.0) {
        return Err(PhaseTypeError::BadSubGenerator(
            "hypoexponential needs nonempty positive rates".to_string(),
        ));
    }
    let k = rates.len();
    let mut s = Matrix::zeros(k, k);
    for (i, &r) in rates.iter().enumerate() {
        s[(i, i)] = -r;
        if i + 1 < k {
            s[(i, i + 1)] = r;
        }
    }
    let mut alpha = vec![0.0; k];
    alpha[0] = 1.0;
    PhaseType::new(alpha, s)
}

/// Hyperexponential: a probabilistic mixture of exponentials — branch `i` is
/// chosen with probability `probs[i]` and then runs at `rates[i]`. SCV ≥ 1.
///
/// # Errors
/// Fails if lengths differ, probabilities are negative or sum above one, or a
/// rate is nonpositive. A probability deficit becomes an atom at zero.
pub fn hyperexponential(probs: &[f64], rates: &[f64]) -> Result<PhaseType, PhaseTypeError> {
    if probs.len() != rates.len() || probs.is_empty() {
        return Err(PhaseTypeError::Shape {
            alpha_len: probs.len(),
            s_shape: (rates.len(), rates.len()),
        });
    }
    if rates.iter().any(|&r| r <= 0.0) {
        return Err(PhaseTypeError::BadSubGenerator(
            "hyperexponential rates must be positive".to_string(),
        ));
    }
    let k = rates.len();
    let mut s = Matrix::zeros(k, k);
    for (i, &r) in rates.iter().enumerate() {
        s[(i, i)] = -r;
    }
    PhaseType::new(probs.to_vec(), s)
}

/// Coxian distribution: stages in series where after stage `i` the process
/// continues to stage `i+1` with probability `cont[i]` (length `k−1`) or
/// absorbs with the complement.
///
/// # Errors
/// Fails on empty/nonpositive rates or continuation probabilities outside
/// `[0, 1]`.
pub fn coxian(rates: &[f64], cont: &[f64]) -> Result<PhaseType, PhaseTypeError> {
    let k = rates.len();
    if k == 0 || rates.iter().any(|&r| r <= 0.0) {
        return Err(PhaseTypeError::BadSubGenerator(
            "coxian needs nonempty positive rates".to_string(),
        ));
    }
    if cont.len() != k.saturating_sub(1) || cont.iter().any(|&p| !(0.0..=1.0).contains(&p)) {
        return Err(PhaseTypeError::BadInitialVector(
            "coxian continuation probabilities must be in [0,1] with length k-1".to_string(),
        ));
    }
    let mut s = Matrix::zeros(k, k);
    for i in 0..k {
        s[(i, i)] = -rates[i];
        if i + 1 < k {
            s[(i, i + 1)] = rates[i] * cont[i];
        }
    }
    let mut alpha = vec![0.0; k];
    alpha[0] = 1.0;
    PhaseType::new(alpha, s)
}

/// Erlang approximation of a deterministic value `d` using `stages` stages
/// (SCV `1/stages`). Useful for near-constant context-switch overheads.
///
/// # Panics
/// Panics if `d <= 0` or `stages == 0`.
pub fn deterministic_approx(d: f64, stages: usize) -> PhaseType {
    assert!(d > 0.0, "deterministic_approx: value must be positive");
    erlang(stages, 1.0 / d)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exponential_basics() {
        let e = exponential(4.0);
        assert_eq!(e.order(), 1);
        assert!((e.mean() - 0.25).abs() < 1e-12);
        assert_eq!(e.atom_at_zero(), 0.0);
        assert_eq!(e.exit_vector(), vec![4.0]);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn exponential_rejects_zero_rate() {
        let _ = exponential(0.0);
    }

    #[test]
    fn erlang_scv() {
        for k in 1..=8 {
            let ph = erlang(k, 2.0);
            assert!((ph.mean() - 0.5).abs() < 1e-12, "k={k}");
            assert!((ph.scv() - 1.0 / k as f64).abs() < 1e-10, "k={k}");
        }
    }

    #[test]
    fn hypoexponential_mean_is_sum() {
        let ph = hypoexponential(&[1.0, 2.0, 4.0]).unwrap();
        assert!((ph.mean() - (1.0 + 0.5 + 0.25)).abs() < 1e-12);
        assert!(ph.scv() < 1.0);
    }

    #[test]
    fn hypoexponential_rejects_bad_rates() {
        assert!(hypoexponential(&[]).is_err());
        assert!(hypoexponential(&[1.0, -1.0]).is_err());
    }

    #[test]
    fn hyperexponential_mean_and_scv() {
        let ph = hyperexponential(&[0.5, 0.5], &[1.0, 10.0]).unwrap();
        assert!((ph.mean() - (0.5 + 0.05)).abs() < 1e-12);
        assert!(ph.scv() > 1.0);
    }

    #[test]
    fn hyperexponential_with_atom() {
        let ph = hyperexponential(&[0.25, 0.25], &[1.0, 1.0]).unwrap();
        assert!((ph.atom_at_zero() - 0.5).abs() < 1e-12);
        assert!((ph.mean() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn hyperexponential_rejects_mismatch() {
        assert!(hyperexponential(&[1.0], &[1.0, 2.0]).is_err());
        assert!(hyperexponential(&[], &[]).is_err());
        assert!(hyperexponential(&[1.0], &[0.0]).is_err());
    }

    #[test]
    fn coxian_reduces_to_erlang() {
        // Continuation probability 1 everywhere = hypoexponential.
        let cox = coxian(&[3.0, 3.0], &[1.0]).unwrap();
        let hypo = hypoexponential(&[3.0, 3.0]).unwrap();
        assert!((cox.mean() - hypo.mean()).abs() < 1e-12);
        assert!((cox.moment(2) - hypo.moment(2)).abs() < 1e-12);
    }

    #[test]
    fn coxian_early_exit_shortens_mean() {
        let cox = coxian(&[1.0, 1.0], &[0.5]).unwrap();
        // Mean = 1 + 0.5 * 1 = 1.5
        assert!((cox.mean() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn coxian_rejects_bad_cont() {
        assert!(coxian(&[1.0, 1.0], &[1.5]).is_err());
        assert!(coxian(&[1.0, 1.0], &[]).is_err());
        assert!(coxian(&[], &[]).is_err());
    }

    #[test]
    fn deterministic_approx_concentrates() {
        let d = deterministic_approx(2.0, 64);
        assert!((d.mean() - 2.0).abs() < 1e-9);
        assert!(d.scv() < 0.02);
        // Most mass within 25% of the target value.
        assert!(d.cdf(2.5) - d.cdf(1.5) > 0.95);
    }
}
