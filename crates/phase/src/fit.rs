//! Moment-matching fits.
//!
//! The paper notes (§3.2) that steady-state means in this class of models
//! depend mostly on the first few moments of the parameter distributions
//! [Schassberger 1977/78; Walrand 1988]. The fixed-point iteration of
//! Theorem 4.3 produces *effective quantum* distributions whose exact PH
//! representation can be large; compressing them to a low-order PH that
//! matches two or three moments keeps the per-class state spaces small. The
//! fits here are the standard ones:
//!
//! * two moments — exponential (SCV = 1), balanced-means two-phase
//!   hyperexponential (SCV > 1), or mixed Erlang `E_{k−1}/E_k` (SCV < 1)
//!   [Tijms, *Stochastic Models*, §7];
//! * three moments — two-phase Coxian solved by a univariate root find, with
//!   graceful fallback to the two-moment fit outside the Coxian-2 feasible
//!   region.

use crate::builders::{coxian, erlang, exponential};
use crate::dist::PhaseType;
use crate::ops::mixture;

/// Tolerance within which an SCV is treated as exactly 1 (exponential).
const SCV_TOL: f64 = 1e-9;

/// Fit a PH distribution matching a `mean` and squared coefficient of
/// variation `scv`.
///
/// * `scv ≈ 1` → exponential;
/// * `scv > 1` → two-phase balanced-means hyperexponential;
/// * `scv < 1` → mixture of Erlang-(k−1) and Erlang-k with common stage rate
///   where `k = ⌈1/scv⌉` (exactly matches both moments).
///
/// # Panics
/// Panics if `mean <= 0` or `scv < 0`.
pub fn fit_two_moment(mean: f64, scv: f64) -> PhaseType {
    assert!(mean > 0.0, "fit_two_moment: mean must be positive");
    assert!(scv >= 0.0, "fit_two_moment: scv must be nonnegative");
    if (scv - 1.0).abs() <= SCV_TOL {
        return exponential(1.0 / mean);
    }
    if scv > 1.0 {
        // Balanced-means H2: p/λ1 = (1-p)/λ2 = m1/2.
        let p = 0.5 * (1.0 + ((scv - 1.0) / (scv + 1.0)).sqrt());
        let l1 = 2.0 * p / mean;
        let l2 = 2.0 * (1.0 - p) / mean;
        return crate::builders::hyperexponential(&[p, 1.0 - p], &[l1, l2])
            .expect("balanced-means H2 parameters are valid");
    }
    // scv < 1: mixed Erlang. Find k with 1/k <= scv <= 1/(k-1). The stage
    // count is capped at 128 (SCV resolution 1/128) so a near-deterministic
    // request cannot allocate an enormous dense representation.
    let scv = scv.max(1.0 / 128.0);
    let k = (1.0 / scv).ceil() as usize;
    let k = k.clamp(2, 128);
    let kf = k as f64;
    // Tijms: p chooses E_{k-1} (k-1 stages) with stage rate mu.
    let p = (kf * scv - (kf * (1.0 + scv) - kf * kf * scv).sqrt()) / (1.0 + scv);
    let mu = (kf - p) / mean; // per-stage rate
                              // Erlang builder takes (stages, overall rate) with stage rate = stages*rate.
    let e_km1 = erlang(k - 1, mu / (kf - 1.0));
    let e_k = erlang(k, mu / kf);
    mixture(&[p, 1.0 - p], &[e_km1, e_k]).expect("mixed-Erlang weights are valid")
}

/// Outcome of a three-moment fit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FitQuality {
    /// All three moments matched exactly (up to numerics).
    ThreeExact,
    /// The target was outside the Coxian-2 feasible region; only the first
    /// two moments are matched.
    TwoFallback,
}

/// Fit a PH distribution matching raw moments `(m1, m2, m3)` when possible.
///
/// Attempts an exact two-phase Coxian: with `x = 1/μ₁`, `u = m₁ − x` and
/// `y(x) = (m₂/2 − m₁x)/(m₁ − x)`, the third-moment equation
/// `m₃/6 = m₁x² + (m₁−x)·y·(x+y)` is solved for `x` by bisection. If no
/// parameters with `μ₁, μ₂ > 0`, `a ∈ [0,1]` exist, falls back to
/// [`fit_two_moment`].
///
/// # Panics
/// Panics if `m1 <= 0` or `m2 <= m1²` is violated so badly that no
/// distribution exists (`m2 < m1²`).
pub fn fit_three_moment(m1: f64, m2: f64, m3: f64) -> (PhaseType, FitQuality) {
    assert!(m1 > 0.0, "fit_three_moment: m1 must be positive");
    assert!(
        m2 >= m1 * m1 * (1.0 - 1e-9),
        "fit_three_moment: m2 < m1^2 is infeasible (negative variance)"
    );
    let scv = (m2 - m1 * m1).max(0.0) / (m1 * m1);

    if let Some((mu1, mu2, a)) = solve_coxian2(m1, m2, m3) {
        if let Ok(ph) = coxian(&[mu1, mu2], &[a]) {
            // Accept only if the moments really match (root-finder sanity).
            let ok = (ph.moment(1) - m1).abs() < 1e-6 * m1.max(1.0)
                && (ph.moment(2) - m2).abs() < 1e-6 * m2.max(1.0)
                && (ph.moment(3) - m3).abs() < 1e-5 * m3.abs().max(1.0);
            if ok {
                return (ph, FitQuality::ThreeExact);
            }
        }
    }
    (fit_two_moment(m1, scv), FitQuality::TwoFallback)
}

/// Solve the Coxian-2 moment equations; returns `(μ1, μ2, a)` on success.
fn solve_coxian2(m1: f64, m2: f64, m3: f64) -> Option<(f64, f64, f64)> {
    // x = 1/mu1 ranges over (0, m1); u = a/mu2 = m1 - x must be > 0 when a>0;
    // y = 1/mu2 = (m2/2 - m1 x) / (m1 - x) must be > 0.
    let y_of = |x: f64| (m2 / 2.0 - m1 * x) / (m1 - x);
    let h = |x: f64| {
        let y = y_of(x);
        m1 * x * x + (m1 - x) * y * (x + y) - m3 / 6.0
    };
    // Valid x must keep y > 0: both numerator and denominator positive means
    // x < min(m1, m2/(2 m1)). (The other sign combination gives y>0 too but
    // then a = (m1-x)/y < 0.)
    let x_hi = (m2 / (2.0 * m1)).min(m1) * (1.0 - 1e-12);
    if x_hi <= 0.0 {
        return None;
    }
    // Scan for a sign change of h on (0, x_hi); h is smooth there.
    const N: usize = 2048;
    let mut prev_x = x_hi * 1e-9;
    let mut prev_h = h(prev_x);
    let mut bracket = None;
    for i in 1..=N {
        let x = x_hi * (i as f64) / (N as f64 + 1.0);
        let hx = h(x);
        if hx == 0.0 {
            bracket = Some((x, x));
            break;
        }
        if prev_h.is_finite() && hx.is_finite() && prev_h * hx < 0.0 {
            bracket = Some((prev_x, x));
            break;
        }
        prev_x = x;
        prev_h = hx;
    }
    let (mut lo, mut hi) = bracket?;
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        let hm = h(mid);
        if hm == 0.0 {
            lo = mid;
            hi = mid;
            break;
        }
        if h(lo) * hm < 0.0 {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    let x = 0.5 * (lo + hi);
    let y = y_of(x);
    if !(x > 0.0 && y > 0.0) {
        return None;
    }
    let a = (m1 - x) / y;
    if !(0.0..=1.0 + 1e-9).contains(&a) {
        return None;
    }
    Some((1.0 / x, 1.0 / y, a.min(1.0)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_moment_exponential_case() {
        let ph = fit_two_moment(2.0, 1.0);
        assert_eq!(ph.order(), 1);
        assert!((ph.mean() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn two_moment_high_variability() {
        let ph = fit_two_moment(1.0, 4.0);
        assert!((ph.mean() - 1.0).abs() < 1e-10);
        assert!((ph.scv() - 4.0).abs() < 1e-8);
        assert_eq!(ph.order(), 2);
    }

    #[test]
    fn two_moment_low_variability() {
        for &scv in &[0.9, 0.5, 0.3, 0.21, 0.125] {
            let ph = fit_two_moment(3.0, scv);
            assert!((ph.mean() - 3.0).abs() < 1e-8, "scv={scv}");
            assert!((ph.scv() - scv).abs() < 1e-6, "scv={scv}: got {}", ph.scv());
        }
    }

    #[test]
    fn two_moment_erlang_boundary() {
        // scv exactly 1/k lands on a pure Erlang.
        let ph = fit_two_moment(1.0, 0.25);
        assert!((ph.scv() - 0.25).abs() < 1e-9);
    }

    #[test]
    fn three_moment_matches_erlang_target() {
        // Erlang-2's moments are inside the Coxian-2 region (it IS a Coxian-2).
        let target = erlang(2, 1.0);
        let (m1, m2, m3) = (target.moment(1), target.moment(2), target.moment(3));
        let (ph, q) = fit_three_moment(m1, m2, m3);
        assert_eq!(q, FitQuality::ThreeExact);
        assert!((ph.moment(1) - m1).abs() < 1e-8);
        assert!((ph.moment(2) - m2).abs() < 1e-8);
        assert!((ph.moment(3) - m3).abs() < 1e-6);
    }

    #[test]
    fn three_moment_matches_hyperexp_target() {
        let target = crate::builders::hyperexponential(&[0.3, 0.7], &[0.5, 3.0]).unwrap();
        let (m1, m2, m3) = (target.moment(1), target.moment(2), target.moment(3));
        let (ph, q) = fit_three_moment(m1, m2, m3);
        assert_eq!(q, FitQuality::ThreeExact);
        assert!((ph.moment(3) - m3).abs() / m3 < 1e-5);
    }

    #[test]
    fn three_moment_falls_back_outside_region() {
        // Erlang-5 has SCV 0.2 — below what Coxian-2 can reach (min 0.5).
        let target = erlang(5, 1.0);
        let (m1, m2, m3) = (target.moment(1), target.moment(2), target.moment(3));
        let (ph, q) = fit_three_moment(m1, m2, m3);
        assert_eq!(q, FitQuality::TwoFallback);
        // Two moments still match.
        assert!((ph.moment(1) - m1).abs() < 1e-8);
        assert!((ph.moment(2) - m2).abs() / m2 < 1e-5);
    }

    #[test]
    fn three_moment_exponential_is_exact() {
        let (ph, q) = fit_three_moment(1.0, 2.0, 6.0);
        // Exponential(1) has exactly these moments; Coxian-2 degenerates.
        assert!((ph.moment(1) - 1.0).abs() < 1e-8);
        assert!((ph.moment(2) - 2.0).abs() < 1e-7);
        assert!((ph.moment(3) - 6.0).abs() < 1e-5, "m3={}", ph.moment(3));
        assert_eq!(q, FitQuality::ThreeExact);
    }

    #[test]
    #[should_panic(expected = "infeasible")]
    fn negative_variance_rejected() {
        let _ = fit_three_moment(2.0, 1.0, 1.0);
    }

    #[test]
    fn two_moment_tiny_scv_does_not_explode() {
        // A deterministic request is clamped to SCV 1/128 (order <= 257).
        let ph = fit_two_moment(1.0, 0.0);
        assert!(ph.order() <= 257, "order {}", ph.order());
        assert!((ph.mean() - 1.0).abs() < 1e-6);
        assert!(ph.scv() <= 1.0 / 64.0);
    }
}
