//! Phase-type (PH) distributions.
//!
//! The SPAA 1996 gang-scheduling model assumes *every* stochastic parameter —
//! interarrival times `A_p`, service requirements `B_p`, quantum lengths
//! `G_p`, and context-switch overheads `C_p` — follows a phase-type
//! distribution `PH(α, S)` (paper §2.5 and §3.2). Phase-type distributions
//! are dense in the distributions on `ℝ₊`, closed under convolution, mixture,
//! minimum and maximum, and keep the overall model Markovian, which is what
//! makes the matrix-geometric analysis possible.
//!
//! A `PH(α, S)` of order `m` is the distribution of the time to absorption of
//! a CTMC on `{1, …, m, m+1}` started with probability vector `(α, α₀)`,
//! where `S` is the `m × m` sub-generator among the transient states,
//! `s⁰ = −S·e` is the exit-rate vector into the absorbing state `m+1`, and
//! `α₀ = 1 − α·e` is an atom at zero.
//!
//! Provided here:
//! * [`PhaseType`] — validated representation, moments, CDF/PDF/survival via
//!   uniformization, sampling.
//! * [`builders`] — exponential, Erlang, hypo-/hyper-exponential, Coxian and
//!   deterministic-approximation constructors.
//! * [`ops`] — convolution (Theorem 2.5), finite mixtures, minimum and
//!   maximum via Kronecker algebra, time scaling.
//! * [`fit`] — two- and three-moment matching used to compress the
//!   "effective quantum" distributions in the fixed-point iteration.

pub mod builders;
pub mod dist;
pub mod empirical;
pub mod fit;
pub mod ops;

pub use builders::{
    coxian, deterministic_approx, erlang, exponential, hyperexponential, hypoexponential,
};
pub use dist::{PhaseType, PhaseTypeError};
pub use empirical::{fit_from_samples, fit_from_samples_two_moment, EmpiricalFit, SampleMoments};
pub use fit::{fit_three_moment, fit_two_moment};
pub use ops::{convolve, convolve_all, maximum, minimum, mixture};
