//! `gsched bench` — canonical benchmark scenarios with telemetry capture
//! and regression gating.
//!
//! Each scenario reruns a workload the repository treats as canonical: the
//! solver sweeps behind the paper's Figures 2–5 plus one simulator run. For
//! every scenario the harness records the median wall time over `reps`
//! repetitions together with the solver/simulator metrics published through
//! `gsched_obs` (R-matrix solves and iterations, residuals, spectral radii,
//! drift margins, fixed-point iterations, simulator event rate). The result
//! is a schema-versioned [`BenchReport`] written as `BENCH_<label>.json`;
//! `--compare <baseline.json>` turns the same run into a regression gate.
//!
//! `--kernels` swaps the scenario set for the kernel microbenchmark: the
//! canonical op mix (matrix products, LU factorizations, triangular
//! solves) timed for every [`BackendKind`] at a ladder of QBD-like block
//! sizes. The rows use the same schema, so the history and `bench trend`
//! gate cover kernel regressions too — on the deterministic nominal flop
//! counters, not wall time.

use gsched_core::model::GangModel;
use gsched_core::qbd::LevelTruncation;
use gsched_core::SolverOptions;
use gsched_engine::{run_sweep, ScenarioBase, SweepOptions, SweepRequest};
use gsched_linalg::{BackendKind, Matrix, WorkCounters};
use gsched_obs as obs;
use gsched_scenario::{registry, Scenario as ScenarioIr};
use gsched_sim::{simulate, Policy, SimConfig};
use gsched_workload::figures::Figure;
use gsched_workload::{paper_model, PaperConfig};
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// Version of the `BENCH_*.json` schema. Bump on incompatible changes.
///
/// v2: solver scenarios run through the `gsched-engine` sweep pool; adds
/// the top-level `jobs` field and the per-scenario `warm_hits`,
/// `warm_misses`, and `parallel_speedup` fields.
///
/// v3: adds the per-scenario dense-kernel work counters (`matmul_calls`,
/// `matmul_flops`, `lu_factorizations`, `lu_flops`, `triangular_solves`,
/// `triangular_flops`) and the `phases` self-time breakdown. The new
/// fields default when absent so a v2 file parses far enough to be
/// rejected with a clean version message.
///
/// v3 also carries the optional `gsched loadtest` fields (`requests`,
/// `request_errors`, `shed`, `cached_hits`, `p50_ms`, `p99_ms`, `rps`);
/// they default when absent, so earlier v3 files keep parsing.
pub const BENCH_SCHEMA_VERSION: u64 = 3;

/// Self-time attribution for one canonical span name within a scenario.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PhaseBreakdown {
    /// Canonical span name (`core.class*`, `qbd.solve_r`, ...).
    pub span: String,
    /// Completed span occurrences.
    pub count: u64,
    /// Self time in milliseconds (cumulative minus direct children).
    pub self_ms: f64,
    /// Cumulative time in milliseconds.
    pub cum_ms: f64,
}

/// Telemetry for one benchmark scenario.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenarioResult {
    /// Scenario identifier (stable across runs; the compare key).
    pub name: String,
    /// `"solver"` or `"sim"`.
    pub kind: String,
    /// Median wall time over the repetitions, in milliseconds.
    pub wall_ms: f64,
    /// Models solved (solver scenarios) or simulated runs (sim scenarios).
    pub points: u64,
    /// Fixed-point iterations across all solves.
    pub fp_iterations: u64,
    /// `R`-matrix solves across all solves.
    pub rmatrix_solves: u64,
    /// Total inner iterations across those `R` solves.
    pub rmatrix_iterations: u64,
    /// Largest `R` residual seen (`None` for sim scenarios).
    pub max_r_residual: Option<f64>,
    /// Largest `sp(R)` seen (`None` for sim scenarios).
    pub max_spectral_radius: Option<f64>,
    /// Smallest drift margin seen (`None` for sim scenarios).
    pub min_drift_margin: Option<f64>,
    /// Simulator events processed (`0` for solver scenarios).
    pub sim_events: u64,
    /// Simulator event rate, events per wall-clock second (`None` for
    /// solver scenarios).
    pub sim_event_rate: Option<f64>,
    /// Sweep points solved from a warm start (`0` for sim scenarios).
    pub warm_hits: u64,
    /// Sweep points solved cold (`0` for sim scenarios).
    pub warm_misses: u64,
    /// Sequential median wall time divided by the parallel median
    /// (`None` for sim scenarios or when the run is sequential-only).
    pub parallel_speedup: Option<f64>,
    /// Matrix products performed during the last sequential repetition.
    #[serde(default = "u64::default")]
    pub matmul_calls: u64,
    /// Nominal matmul flops (`2·m·n·k` per product).
    #[serde(default = "u64::default")]
    pub matmul_flops: u64,
    /// LU factorizations performed.
    #[serde(default = "u64::default")]
    pub lu_factorizations: u64,
    /// Nominal LU flops (`2n³/3` per factorization).
    #[serde(default = "u64::default")]
    pub lu_flops: u64,
    /// Forward+backward substitution pairs performed.
    #[serde(default = "u64::default")]
    pub triangular_solves: u64,
    /// Nominal substitution flops (`2n²` per pair).
    #[serde(default = "u64::default")]
    pub triangular_flops: u64,
    /// Self-time breakdown by canonical span name, sorted by descending
    /// self time (empty for sim scenarios, which record no solver spans).
    #[serde(default = "Vec::new")]
    pub phases: Vec<PhaseBreakdown>,
    /// Replies received during a `gsched loadtest` run (`0` elsewhere).
    #[serde(default = "u64::default")]
    pub requests: u64,
    /// Error replies during a load test, including the expected errors
    /// from cancel traffic (`0` elsewhere).
    #[serde(default = "u64::default")]
    pub request_errors: u64,
    /// `overloaded` (shed) replies during a load test (`0` elsewhere).
    #[serde(default = "u64::default")]
    pub shed: u64,
    /// Cache-hit replies (`"cached":true`) during a load test.
    #[serde(default = "u64::default")]
    pub cached_hits: u64,
    /// Median request latency over the load test (`None` outside one).
    #[serde(default = "Option::default")]
    pub p50_ms: Option<f64>,
    /// 99th-percentile request latency (`None` outside a load test).
    #[serde(default = "Option::default")]
    pub p99_ms: Option<f64>,
    /// Completed replies per wall-clock second (`None` outside a load
    /// test).
    #[serde(default = "Option::default")]
    pub rps: Option<f64>,
}

/// A full benchmark run: schema version, label, and per-scenario telemetry.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BenchReport {
    /// Schema version ([`BENCH_SCHEMA_VERSION`]).
    pub schema_version: u64,
    /// Run label (`--label`), embedded in the output filename.
    pub label: String,
    /// Wall-time repetitions per scenario.
    pub reps: u64,
    /// Whether the reduced `--quick` scenario set was used.
    pub quick: bool,
    /// Worker threads used for the parallel sweep pass.
    pub jobs: u64,
    /// Per-scenario results, in execution order.
    pub scenarios: Vec<ScenarioResult>,
}

impl BenchReport {
    /// Serialize as pretty-printed JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("bench report serializes")
    }

    /// Parse a report back from its JSON form.
    pub fn from_json(text: &str) -> Result<Self, String> {
        let report: BenchReport =
            serde_json::from_str(text).map_err(|e| format!("bad bench JSON: {e}"))?;
        if report.schema_version != BENCH_SCHEMA_VERSION {
            return Err(format!(
                "bench schema version {} (expected {})",
                report.schema_version, BENCH_SCHEMA_VERSION
            ));
        }
        Ok(report)
    }
}

/// What one scenario actually runs.
enum Workload {
    /// Evaluate a sweep on the engine pool (warm-started) with the given
    /// solver options (default for the figure sweeps; certified truncation
    /// for the large-P scaling rows).
    Sweep {
        req: SweepRequest,
        solver: SolverOptions,
    },
    /// One simulator run under `policy` to the given horizon.
    Sim {
        model: GangModel,
        policy: Policy,
        horizon: f64,
    },
}

struct Scenario {
    name: String,
    workload: Workload,
}

/// The canonical scenario set. `quick` shrinks every sweep to a few points
/// and the simulation horizon by 10× — used by CI smoke runs.
fn scenarios(quick: bool) -> Vec<Scenario> {
    let mut out: Vec<Scenario> = Figure::ALL
        .iter()
        .map(|fig| Scenario {
            name: match fig {
                Figure::Fig2 => "fig2_quantum_sweep_rho04",
                Figure::Fig3 => "fig3_quantum_sweep_rho06",
                Figure::Fig4 => "fig4_service_rate_sweep",
                Figure::Fig5 => "fig5_cycle_fraction_sweep",
            }
            .to_string(),
            workload: Workload::Sweep {
                req: fig.request(quick),
                solver: SolverOptions::default(),
            },
        })
        .collect();
    out.push(Scenario {
        name: "sim_gang_rho06".to_string(),
        workload: Workload::Sim {
            model: paper_model(&PaperConfig {
                lambda: 0.6,
                quantum_mean: 1.0,
                quantum_stages: 2,
                overhead_mean: 0.01,
            }),
            policy: Policy::Gang,
            horizon: if quick { 2_000.0 } else { 20_000.0 },
        },
    });
    out
}

/// Bench workload for one scenario-IR entry (`--scenario`): its declared
/// sweep when it has one, otherwise a single simulator run under its
/// policy.
fn ir_scenario(sc: &ScenarioIr, quick: bool) -> Result<Scenario, String> {
    let workload = if sc.sweep.is_some() {
        Workload::Sweep {
            req: sc.sweep_request(quick).map_err(|e| e.to_string())?,
            solver: SolverOptions::default(),
        }
    } else {
        let model = sc.build_model().map_err(|e| e.to_string())?;
        let horizon = sc.sim_config(if quick { 0.1 } else { 1.0 }).horizon;
        Workload::Sim {
            model,
            policy: sc.policy,
            horizon,
        }
    };
    Ok(Scenario {
        name: sc.name.clone(),
        workload,
    })
}

/// `NaN`-free view of a histogram extreme for the JSON schema.
fn hist_max(snap: &obs::Snapshot, name: &str) -> Option<f64> {
    snap.histogram(name)
        .map(|h| h.max)
        .filter(|v| v.is_finite())
}

fn hist_min(snap: &obs::Snapshot, name: &str) -> Option<f64> {
    snap.histogram(name)
        .map(|h| h.min)
        .filter(|v| v.is_finite())
}

fn median(mut xs: Vec<f64>) -> f64 {
    xs.sort_by(|a, b| a.partial_cmp(b).expect("finite wall times"));
    xs[xs.len() / 2]
}

/// Run one scenario `reps` times; wall time is the median, metrics come
/// from the last repetition's snapshot.
///
/// Sweep scenarios run sequentially (`jobs = 1`) for the recorded wall
/// time — keeping the regression gate comparable across machines — and,
/// when `jobs > 1`, once more in parallel to record the speedup. Both
/// passes warm-start and return bitwise-identical results, so the
/// telemetry describes the same numerical work.
fn run_scenario(sc: &Scenario, reps: u64, jobs: usize) -> ScenarioResult {
    let mut wall_ms = Vec::with_capacity(reps as usize);
    let mut last_snap = None;
    let mut work = WorkCounters::default();
    let mut points = 0u64;
    for _ in 0..reps {
        let recorder = obs::install_memory();
        let base = WorkCounters::snapshot();
        let start = Instant::now();
        points = 0;
        match &sc.workload {
            Workload::Sweep { req, solver } => {
                // Sweep endpoints may be unstable or non-convergent; the
                // engine records those per point, they are not errors.
                let opts = SweepOptions::default()
                    .with_jobs(1)
                    .with_solver(solver.clone());
                let report = run_sweep(req, &opts);
                points = report.points.len() as u64;
            }
            Workload::Sim {
                model,
                policy,
                horizon,
            } => {
                let cfg = SimConfig {
                    horizon: *horizon,
                    warmup: horizon / 10.0,
                    seed: 7,
                    batches: 20,
                };
                let _ = simulate(model, *policy, cfg);
                points += 1;
            }
        }
        wall_ms.push(start.elapsed().as_secs_f64() * 1e3);
        work = base.delta_since();
        obs::uninstall();
        last_snap = Some(recorder.snapshot());
    }
    let seq_ms = median(wall_ms);
    let mut parallel_speedup = None;
    if let Workload::Sweep { req, solver } = &sc.workload {
        if jobs > 1 {
            let par_opts = SweepOptions::default()
                .with_jobs(jobs)
                .with_solver(solver.clone());
            let mut par_ms = Vec::with_capacity(reps as usize);
            for _ in 0..reps {
                let start = Instant::now();
                let _ = run_sweep(req, &par_opts);
                par_ms.push(start.elapsed().as_secs_f64() * 1e3);
            }
            let par = median(par_ms);
            if par > 0.0 {
                parallel_speedup = Some(seq_ms / par);
            }
        }
    }
    let snap = last_snap.expect("reps >= 1");
    let kind = match sc.workload {
        Workload::Sweep { .. } => "solver",
        Workload::Sim { .. } => "sim",
    };
    ScenarioResult {
        name: sc.name.clone(),
        kind: kind.to_string(),
        wall_ms: seq_ms,
        points,
        fp_iterations: snap.counter("core.solver.fp_iterations").unwrap_or(0),
        rmatrix_solves: snap.counter("qbd.rmatrix.solves").unwrap_or(0),
        rmatrix_iterations: snap.counter("qbd.rmatrix.iterations").unwrap_or(0),
        max_r_residual: hist_max(&snap, "qbd.rmatrix.residual"),
        max_spectral_radius: hist_max(&snap, "qbd.spectral_radius"),
        min_drift_margin: hist_min(&snap, "qbd.drift_margin"),
        sim_events: snap.counter("sim.events_processed").unwrap_or(0),
        sim_event_rate: snap.gauge("sim.event_rate_per_sec"),
        warm_hits: snap.counter("engine.warm.hits").unwrap_or(0),
        warm_misses: snap.counter("engine.warm.misses").unwrap_or(0),
        parallel_speedup,
        matmul_calls: work.matmul_calls,
        matmul_flops: work.matmul_flops,
        lu_factorizations: work.lu_factorizations,
        lu_flops: work.lu_flops,
        triangular_solves: work.triangular_solves,
        triangular_flops: work.triangular_flops,
        phases: phase_breakdown(&snap),
        requests: 0,
        request_errors: 0,
        shed: 0,
        cached_hits: 0,
        p50_ms: None,
        p99_ms: None,
        rps: None,
    }
}

/// Collapse a snapshot's span tree into the per-canonical-name self-time
/// rows stored in the report (also the raw phase table of `gsched
/// profile`).
pub fn phase_breakdown(snap: &obs::Snapshot) -> Vec<PhaseBreakdown> {
    let att = snap.attribution();
    att.by_name()
        .into_iter()
        .map(|(span, count, self_nanos)| {
            let cum_nanos: u64 = att
                .rows
                .iter()
                .filter(|r| obs::canonical_span_name(&r.name) == span)
                .map(|r| r.cum_nanos)
                .sum();
            PhaseBreakdown {
                span,
                count,
                self_ms: self_nanos as f64 / 1e6,
                cum_ms: cum_nanos as f64 / 1e6,
            }
        })
        .collect()
}

/// Run the canonical scenario set, or just `only` when a `--scenario` was
/// given. `jobs = 0` picks `min(4, cores)` for the parallel sweep pass.
pub fn run_bench(
    label: &str,
    reps: u64,
    quick: bool,
    jobs: usize,
    only: Option<&ScenarioIr>,
) -> Result<BenchReport, String> {
    let reps = reps.max(1);
    let jobs = if jobs == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get().min(4))
            .unwrap_or(1)
    } else {
        jobs
    };
    let set = match only {
        Some(sc) => vec![ir_scenario(sc, quick)?],
        None => scenarios(quick),
    };
    let mut results = Vec::new();
    for sc in set {
        eprintln!("bench: running {} ({} reps)...", sc.name, reps);
        results.push(run_scenario(&sc, reps, jobs));
    }
    Ok(BenchReport {
        schema_version: BENCH_SCHEMA_VERSION,
        label: label.to_string(),
        reps,
        quick,
        jobs: jobs as u64,
        scenarios: results,
    })
}

/// Entry point for `gsched bench --scaling`: the `p_sweep` registry
/// scenario solved point by point under automatic certified level
/// truncation, one scenario row per machine size (`scaling_p0008` …
/// `scaling_p4096`). The rows share the solver-bench schema, so the
/// history and `bench trend` gate cover how solve cost — wall time and
/// the deterministic work counters — scales with `P`.
pub fn run_scaling_bench(label: &str, reps: u64, quick: bool) -> Result<BenchReport, String> {
    let reps = reps.max(1);
    let sc = registry::lookup("p_sweep").ok_or("registry scenario `p_sweep` is missing")?;
    let req = sc.sweep_request(quick).map_err(|e| e.to_string())?;
    let mut solver = SolverOptions::default();
    solver.qbd.truncation = LevelTruncation::Auto {
        target_tail: sc.tolerance.certified_tail.unwrap_or(1e-8),
        min_levels: 4,
    };
    let mut results = Vec::new();
    for point in req.points {
        let name = format!("scaling_p{:04}", point.x as u64);
        eprintln!("bench: running {name} ({reps} reps)...");
        let single = SweepRequest::new(
            req.axis.clone(),
            ScenarioBase::labeled(name.clone()),
            vec![point],
        );
        let row = Scenario {
            name,
            workload: Workload::Sweep {
                req: single,
                solver: solver.clone(),
            },
        };
        // Single-point rows have no parallel pass (jobs = 1): the scaling
        // curve compares machine sizes, not worker counts.
        results.push(run_scenario(&row, reps, 1));
    }
    Ok(BenchReport {
        schema_version: BENCH_SCHEMA_VERSION,
        label: label.to_string(),
        reps,
        quick,
        jobs: 1,
        scenarios: results,
    })
}

/// Matrix products per kernel-microbenchmark repetition.
const KERNEL_MATMULS: usize = 6;
/// LU factorizations per repetition.
const KERNEL_FACTORS: usize = 4;
/// Forward+backward vector solves per repetition (against one factor).
const KERNEL_SOLVES: usize = 16;

/// Block sizes exercised by `gsched bench --kernels`. The quick ladder tops
/// out at the largest block a truncated multi-class QBD generator produces
/// in practice; the full set adds one cache-pressure point where tiling
/// pays off most.
fn kernel_sizes(quick: bool) -> &'static [usize] {
    if quick {
        &[16, 48, 96]
    } else {
        &[16, 48, 96, 192]
    }
}

/// Operand shapes the microbenchmark exercises: a fully dense block (where
/// tiling pays) and a QBD-like narrow band, `kl = ku = max(2, n/8)` (where
/// band storage pays). The two shapes bracket the block profiles the
/// solver actually produces.
const KERNEL_SHAPES: [(&str, bool); 2] = [("dense", false), ("band", true)];

/// Deterministic diagonally dominant operand with the requested bandwidth.
fn kernel_operand(n: usize, bw: usize, seed: u64) -> Matrix {
    let mut state = seed | 1;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state >> 11) as f64 / (1u64 << 53) as f64 * 2.0 - 1.0
    };
    let mut m = Matrix::zeros(n, n);
    for i in 0..n {
        let lo = i.saturating_sub(bw);
        let hi = (i + bw).min(n - 1);
        for j in lo..=hi {
            m[(i, j)] = next();
        }
        m[(i, i)] += 2.0 * bw as f64 + 2.0;
    }
    m
}

/// Time the canonical kernel op mix for one backend at one block size and
/// operand shape. Wall time is the median over `reps`; the flop counters
/// come from the last repetition and are deterministic (equal nominal
/// attribution across backends), which is what `bench trend` gates on.
fn run_kernel_case(kind: BackendKind, n: usize, shape: (&str, bool), reps: u64) -> ScenarioResult {
    let be = kind.instance();
    let (shape_name, banded) = shape;
    let bw = if banded { (n / 8).max(2) } else { n };
    let a = kernel_operand(n, bw, 0x5eed + n as u64);
    let b = kernel_operand(n, bw, 0xfeed + n as u64);
    let rhs: Vec<f64> = (0..n).map(|i| (i as f64 * 0.37).sin() + 1.5).collect();
    let mut wall_ms = Vec::with_capacity(reps as usize);
    let mut work = WorkCounters::default();
    for _ in 0..reps {
        let _recorder = obs::install_memory();
        let base = WorkCounters::snapshot();
        let start = Instant::now();
        for _ in 0..KERNEL_MATMULS {
            let c = be.matmul(&a, &b).expect("kernel operands conform");
            std::hint::black_box(&c);
        }
        for i in 0..KERNEL_FACTORS {
            let f = be.factor(&a).expect("operand is diagonally dominant");
            if i == 0 {
                for _ in 0..KERNEL_SOLVES {
                    let x = f.solve_vec(&rhs).expect("factor solves");
                    std::hint::black_box(&x);
                }
            }
            std::hint::black_box(&f);
        }
        wall_ms.push(start.elapsed().as_secs_f64() * 1e3);
        work = base.delta_since();
        obs::uninstall();
    }
    ScenarioResult {
        name: format!("kernel_{}_{}_n{:03}", kind.as_str(), shape_name, n),
        kind: "kernel".to_string(),
        wall_ms: median(wall_ms),
        points: (KERNEL_MATMULS + KERNEL_FACTORS + KERNEL_SOLVES) as u64,
        fp_iterations: 0,
        rmatrix_solves: 0,
        rmatrix_iterations: 0,
        max_r_residual: None,
        max_spectral_radius: None,
        min_drift_margin: None,
        sim_events: 0,
        sim_event_rate: None,
        warm_hits: 0,
        warm_misses: 0,
        parallel_speedup: None,
        matmul_calls: work.matmul_calls,
        matmul_flops: work.matmul_flops,
        lu_factorizations: work.lu_factorizations,
        lu_flops: work.lu_flops,
        triangular_solves: work.triangular_solves,
        triangular_flops: work.triangular_flops,
        phases: Vec::new(),
        requests: 0,
        request_errors: 0,
        shed: 0,
        cached_hits: 0,
        p50_ms: None,
        p99_ms: None,
        rps: None,
    }
}

/// Kernel rows for every backend at every size and shape, grouped by
/// (size, shape) so neighbouring table rows compare backends directly.
fn kernel_rows(sizes: &[usize], reps: u64) -> Vec<ScenarioResult> {
    let mut rows = Vec::new();
    for &n in sizes {
        for shape in KERNEL_SHAPES {
            for kind in BackendKind::ALL {
                rows.push(run_kernel_case(kind, n, shape, reps));
            }
        }
    }
    rows
}

/// Entry point for `gsched bench --kernels`: the backend microbenchmark
/// set instead of the canonical scenarios, same report schema and history.
pub fn run_kernel_bench(label: &str, reps: u64, quick: bool) -> Result<BenchReport, String> {
    let reps = reps.max(1);
    eprintln!("bench: running kernel microbenchmarks ({reps} reps)...");
    Ok(BenchReport {
        schema_version: BENCH_SCHEMA_VERSION,
        label: label.to_string(),
        reps,
        quick,
        jobs: 1,
        scenarios: kernel_rows(kernel_sizes(quick), reps),
    })
}

/// Outcome of comparing a run against a baseline.
pub struct CompareOutcome {
    /// Per-scenario delta table rows (aligned, human-readable).
    pub lines: Vec<String>,
    /// One entry per wall-time regression beyond the threshold.
    pub regressions: Vec<String>,
}

/// Compare `current` against `baseline`: wall-time deltas per scenario, a
/// regression recorded when a scenario slowed down by more than
/// `threshold` (a fraction, e.g. `0.25` = 25%). Scenarios present on only
/// one side are reported but never count as regressions.
pub fn compare_reports(
    baseline: &BenchReport,
    current: &BenchReport,
    threshold: f64,
) -> CompareOutcome {
    let mut lines = Vec::new();
    let mut regressions = Vec::new();
    lines.push(format!(
        "{:<28} {:>12} {:>12} {:>9}  status",
        "scenario", "base ms", "current ms", "delta"
    ));
    for cur in &current.scenarios {
        let Some(base) = baseline.scenarios.iter().find(|b| b.name == cur.name) else {
            lines.push(format!(
                "{:<28} {:>12} {:>12.2} {:>9}  new (no baseline)",
                cur.name, "-", cur.wall_ms, "-"
            ));
            continue;
        };
        let delta = if base.wall_ms > 0.0 {
            cur.wall_ms / base.wall_ms - 1.0
        } else {
            0.0
        };
        let status = if delta > threshold {
            regressions.push(format!(
                "{}: {:.2} ms -> {:.2} ms ({:+.1}% > {:.1}% allowed)",
                cur.name,
                base.wall_ms,
                cur.wall_ms,
                delta * 100.0,
                threshold * 100.0
            ));
            "REGRESSED"
        } else {
            "ok"
        };
        lines.push(format!(
            "{:<28} {:>12.2} {:>12.2} {:>+8.1}%  {status}",
            cur.name,
            base.wall_ms,
            cur.wall_ms,
            delta * 100.0
        ));
    }
    for base in &baseline.scenarios {
        if !current.scenarios.iter().any(|c| c.name == base.name) {
            lines.push(format!(
                "{:<28} {:>12.2} {:>12} {:>9}  missing from current run",
                base.name, base.wall_ms, "-", "-"
            ));
        }
    }
    CompareOutcome { lines, regressions }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_scenario(name: &str, wall_ms: f64) -> ScenarioResult {
        ScenarioResult {
            name: name.to_string(),
            kind: "solver".to_string(),
            wall_ms,
            points: 3,
            fp_iterations: 42,
            rmatrix_solves: 12,
            rmatrix_iterations: 900,
            max_r_residual: Some(3.2e-13),
            max_spectral_radius: Some(0.81),
            min_drift_margin: Some(0.12),
            sim_events: 0,
            sim_event_rate: None,
            warm_hits: 9,
            warm_misses: 3,
            parallel_speedup: Some(1.8),
            matmul_calls: 5_000,
            matmul_flops: 9_000_000,
            lu_factorizations: 40,
            lu_flops: 120_000,
            triangular_solves: 800,
            triangular_flops: 64_000,
            phases: vec![PhaseBreakdown {
                span: "qbd.solve_r".to_string(),
                count: 12,
                self_ms: 6.5,
                cum_ms: 6.5,
            }],
            requests: 0,
            request_errors: 0,
            shed: 0,
            cached_hits: 0,
            p50_ms: None,
            p99_ms: None,
            rps: None,
        }
    }

    fn sample_report(wall_ms: f64) -> BenchReport {
        BenchReport {
            schema_version: BENCH_SCHEMA_VERSION,
            label: "test".to_string(),
            reps: 3,
            quick: true,
            jobs: 4,
            scenarios: vec![
                sample_scenario("fig2", wall_ms),
                sample_scenario("sim", 5.0),
            ],
        }
    }

    #[test]
    fn report_json_round_trips() {
        let report = sample_report(10.0);
        let text = report.to_json();
        let back = BenchReport::from_json(&text).unwrap();
        assert_eq!(back, report);
    }

    #[test]
    fn wrong_schema_version_is_rejected() {
        let mut report = sample_report(10.0);
        report.schema_version = BENCH_SCHEMA_VERSION + 1;
        let err = BenchReport::from_json(&report.to_json()).unwrap_err();
        assert!(err.contains("schema version"), "{err}");
    }

    #[test]
    fn nullable_metrics_survive_round_trip() {
        let mut report = sample_report(10.0);
        report.scenarios[0].max_r_residual = None;
        report.scenarios[0].min_drift_margin = None;
        report.scenarios[0].parallel_speedup = None;
        let back = BenchReport::from_json(&report.to_json()).unwrap();
        assert_eq!(back.scenarios[0].max_r_residual, None);
        assert_eq!(back.scenarios[0].min_drift_margin, None);
        assert_eq!(back.scenarios[0].parallel_speedup, None);
        assert_eq!(back.scenarios[0].max_spectral_radius, Some(0.81));
    }

    #[test]
    fn v2_fields_round_trip() {
        let report = sample_report(10.0);
        let text = report.to_json();
        for field in [
            "\"jobs\"",
            "\"warm_hits\"",
            "\"warm_misses\"",
            "\"parallel_speedup\"",
        ] {
            assert!(text.contains(field), "missing {field} in {text}");
        }
        let back = BenchReport::from_json(&text).unwrap();
        assert_eq!(back.jobs, 4);
        assert_eq!(back.scenarios[0].warm_hits, 9);
        assert_eq!(back.scenarios[0].warm_misses, 3);
        assert_eq!(back.scenarios[0].parallel_speedup, Some(1.8));
    }

    #[test]
    fn v3_work_counters_round_trip_and_default() {
        let report = sample_report(10.0);
        let text = report.to_json();
        let back = BenchReport::from_json(&text).unwrap();
        assert_eq!(back.scenarios[0].matmul_flops, 9_000_000);
        assert_eq!(back.scenarios[0].phases.len(), 1);
        assert_eq!(back.scenarios[0].phases[0].span, "qbd.solve_r");
        // A v2-shaped document (no work counters) still parses far enough
        // for the version check to reject it cleanly.
        let mut old = report.clone();
        old.schema_version = 2;
        let v2ish = old
            .to_json()
            .lines()
            .filter(|l| {
                !(l.contains("matmul")
                    || l.contains("lu_fact")
                    || l.contains("lu_flops")
                    || l.contains("triangular"))
            })
            .collect::<Vec<_>>()
            .join("\n");
        let err = BenchReport::from_json(&v2ish).unwrap_err();
        assert!(err.contains("schema version 2"), "{err}");
    }

    #[test]
    fn loadtest_fields_default_when_absent() {
        // A v3 file written before the loadtest fields existed still
        // parses, with the load metrics defaulting to zero/None.
        let report = sample_report(10.0);
        let mut v: serde_json::Value = serde_json::from_str(&report.to_json()).unwrap();
        let load_keys = [
            "requests",
            "request_errors",
            "shed",
            "cached_hits",
            "p50_ms",
            "p99_ms",
            "rps",
        ];
        let serde_json::Value::Object(top) = &mut v else {
            panic!("report is not an object");
        };
        let scenarios = &mut top
            .iter_mut()
            .find(|(k, _)| k == "scenarios")
            .expect("scenarios key")
            .1;
        let serde_json::Value::Array(rows) = scenarios else {
            panic!("scenarios is not an array");
        };
        for row in rows {
            let serde_json::Value::Object(fields) = row else {
                panic!("scenario row is not an object");
            };
            let before = fields.len();
            fields.retain(|(k, _)| !load_keys.contains(&k.as_str()));
            assert_eq!(before - fields.len(), load_keys.len());
        }
        let back = BenchReport::from_json(&v.to_string()).unwrap();
        assert_eq!(back.scenarios[0].requests, 0);
        assert_eq!(back.scenarios[0].shed, 0);
        assert_eq!(back.scenarios[0].p99_ms, None);
        assert_eq!(back.scenarios[0].rps, None);
    }

    #[test]
    fn compare_flags_regressions_beyond_threshold() {
        let base = sample_report(10.0);
        let cur = sample_report(14.0); // +40% on fig2, sim unchanged
        let out = compare_reports(&base, &cur, 0.25);
        assert_eq!(out.regressions.len(), 1, "{:?}", out.regressions);
        assert!(out.regressions[0].contains("fig2"));
        assert!(out.lines.iter().any(|l| l.contains("REGRESSED")));
        assert!(out.lines.iter().any(|l| l.contains("ok")));
    }

    #[test]
    fn compare_within_threshold_is_clean() {
        let base = sample_report(10.0);
        let cur = sample_report(11.0); // +10%
        let out = compare_reports(&base, &cur, 0.25);
        assert!(out.regressions.is_empty(), "{:?}", out.regressions);
    }

    #[test]
    fn compare_handles_scenario_set_drift() {
        let mut base = sample_report(10.0);
        base.scenarios.push(sample_scenario("retired", 3.0));
        let mut cur = sample_report(10.0);
        cur.scenarios.push(sample_scenario("brand_new", 2.0));
        let out = compare_reports(&base, &cur, 0.25);
        assert!(out.regressions.is_empty());
        assert!(out.lines.iter().any(|l| l.contains("new (no baseline)")));
        assert!(out
            .lines
            .iter()
            .any(|l| l.contains("missing from current run")));
    }

    #[test]
    fn kernel_rows_cover_all_backends_with_equal_nominal_work() {
        let n = 12u64;
        let want = [
            (KERNEL_MATMULS as u64) * 2 * n.pow(3),
            (KERNEL_FACTORS as u64) * (2 * n.pow(3) / 3),
            (KERNEL_SOLVES as u64) * 2 * n.pow(2),
        ];
        // The flop counters are process-global and other tests in this
        // binary run solves concurrently; retry until a quiet window gives
        // the exact textbook charge on all three backends.
        let mut clean = None;
        'attempt: for _ in 0..100 {
            let rows = kernel_rows(&[n as usize], 1);
            for r in &rows {
                if [r.matmul_flops, r.lu_flops, r.triangular_flops] != want {
                    continue 'attempt;
                }
            }
            clean = Some(rows);
            break;
        }
        let rows = clean.expect("no quiet counter window in 100 attempts");
        assert_eq!(rows.len(), BackendKind::ALL.len() * KERNEL_SHAPES.len());
        let mut it = rows.iter();
        for (shape, _) in KERNEL_SHAPES {
            for kind in BackendKind::ALL {
                let r = it.next().unwrap();
                assert_eq!(r.name, format!("kernel_{kind}_{shape}_n012"));
                assert_eq!(r.kind, "kernel");
                assert!(r.wall_ms >= 0.0 && r.wall_ms.is_finite());
                assert_eq!(r.matmul_calls, KERNEL_MATMULS as u64);
                assert_eq!(r.lu_factorizations, KERNEL_FACTORS as u64);
                assert_eq!(r.triangular_solves, KERNEL_SOLVES as u64);
            }
        }
    }

    #[test]
    fn kernel_size_ladder_is_quick_prefix_of_full() {
        let quick = kernel_sizes(true);
        let full = kernel_sizes(false);
        assert!(full.starts_with(quick));
        assert!(full.len() > quick.len());
        assert!(quick.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn quick_scenarios_cover_fig2_to_fig5_and_sim() {
        let set = scenarios(true);
        let names: Vec<&str> = set.iter().map(|s| s.name.as_str()).collect();
        for want in ["fig2", "fig3", "fig4", "fig5", "sim_"] {
            assert!(
                names.iter().any(|n| n.starts_with(want)),
                "missing scenario {want} in {names:?}"
            );
        }
    }
}
