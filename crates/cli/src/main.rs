//! `gsched` — solve, simulate, and tune gang-scheduled parallel machines.
//!
//! ```text
//! gsched solve     <model.json | --scenario S> [--mode ht|m2|m3|exact]
//!                  [--backend naive|blocked|banded] [--method lr|ss|newton]
//!                  [--asymptotic] [--json]
//! gsched simulate  <model.json | --scenario S> [--policy gang|lend|rr|fcfs]
//!                               [--horizon T] [--warmup T] [--seed N] [--json]
//! gsched sweep     [fig2|fig3|fig4|fig5|all | <scenario> | --scenario S] [--jobs N] [--quick]
//!                  [--no-warm] [--parity-check] [--backend B] [--method M] [--json]
//! gsched validate  [<scenario>...] [--json]
//! gsched xval      <scenario | all> [--points N] [--full]
//!                  [--horizon-scale F] [--json]
//! gsched tune      <model.json> [--lo Q] [--hi Q] [--objective total|max] [--json]
//! gsched stability <model.json> [--class P] [--lo Q] [--hi Q]
//! gsched doctor    <model.json | --scenario S> [--mode ht|m2|m3|exact]
//!                  [--backend B] [--method M] [--convergence] [--json]
//! gsched profile   <scenario | --sweep fig2..fig5|all> [--quick] [--backend B]
//!                  [--method M] [--json] [--trace PATH]
//! gsched bench     [--scenario S | --kernels | --scaling] [--label L] [--reps N] [--jobs N]
//!                  [--quick] [--out DIR] [--compare BENCH.json] [--threshold FRAC]
//!                  [--history PATH] [--no-history]
//! gsched bench trend [--history PATH] [--metric M1,M2] [--window N]
//!                  [--threshold FRAC] [--gate] [--json]
//! gsched paper     [--rho R] [--quantum Q] [--json]
//! gsched serve     [--addr A] [--workers N] [--cache-cap N] [--cache-path PATH]
//!                  [--deadline-ms N] [--queue-limit N] [--batch-max N] [--backend B]
//!                  [--metrics-addr A] [--access-log PATH] [--access-log-max-bytes N]
//! gsched request   [<scenario>] [--addr A] [--op solve|sweep|stats|shutdown]
//!                  [--proto 1|2] [--quick] [--deadline-ms N] [--id ID] [--frame]
//! gsched loadtest  [--addr A] [--clients N] [--requests N] [--quick]
//!                  [--label L] [--out DIR] [--history PATH] [--no-history]
//!                  [--expect-no-shed] [--json]
//! gsched top       [--addr A] [--interval SECS] [--count N] [--once]
//! gsched example-model
//! gsched example-scenario
//! ```
//!
//! A `--scenario S` (or a bare `<scenario>` argument to `validate`/`xval`)
//! is either a registry name (`fig2` … `near_instability`; see
//! `gsched-scenario`) or a path to a scenario JSON file. The same scenario
//! drives the analytic solver, the engine sweeps, and the simulator — one
//! description, every backend.
//!
//! The solving subcommands (`solve`, `sweep`, `doctor`, `profile`, `serve`)
//! accept `--backend naive|blocked|banded` to pick the `gsched-linalg`
//! kernel implementation under the whole solver stack, and (except `serve`)
//! `--method lr|ss|newton` to pick the QBD `R`-matrix solver. Every
//! backend/method combination agrees within each scenario's declared
//! tolerance; the defaults (`naive`, `lr`) reproduce the historical results
//! bit-for-bit. The active pair is surfaced by `doctor`, `profile --json`,
//! and the service `stats` verb, and sweeps record the backend in their
//! provenance parameters.
//!
//! `gsched sweep` evaluates the paper's figure sweeps on the
//! `gsched-engine` work-stealing pool: `--jobs N` sets the worker count
//! (0 = all cores), `--no-warm` disables neighbour warm starting, and
//! `--parity-check` re-runs the sweep single-threaded and fails unless the
//! parallel results match to 1e-10. A sweep-capable registry scenario also
//! works positionally (`gsched sweep p_sweep`); on the Processors axis the
//! solver automatically enables certified level truncation, checks every
//! point's certified tail mass against the scenario's declared ceiling, and
//! cross-checks the largest point against the zero-queueing asymptotic
//! limit (`gsched solve --asymptotic`) — see `docs/LARGE_P.md`.
//!
//! `gsched validate` lints scenarios (schema, grids, solvability) and
//! reports per-class stability with drift margins; it exits non-zero when
//! any scenario has an error-level issue. With no arguments it validates
//! the whole registry. `gsched xval` cross-validates the analytic solver
//! against the discrete-event simulator from the same scenario and fails
//! when any class's mean response disagrees beyond the scenario's declared
//! tolerance.
//!
//! Every subcommand also accepts the diagnostics flags:
//!
//! * `--diag <path>` — capture solver/simulator instrumentation through
//!   `gsched_obs` and write the JSON snapshot to `<path>`;
//! * `--trace <path>` — write the span tree as a Chrome Trace Event file,
//!   loadable in Perfetto (<https://ui.perfetto.dev>) or `chrome://tracing`;
//! * `-v` — print the human-readable diagnostics report (span tree, metric
//!   tables) to stderr after the run; `-vv` additionally prints every
//!   structured event.
//!
//! `gsched serve` runs the long-lived solve server from `gsched-service`:
//! scenario requests arrive as newline-delimited JSON over TCP, repeated
//! questions are answered from a result cache, and SIGINT (or a
//! `shutdown` frame) stops it cleanly. Under concurrent traffic the
//! server coalesces identical in-flight requests (singleflight), batches
//! compatible queued sweeps, and — with `--queue-limit` — sheds overflow
//! with `overloaded` errors; `--cache-path` makes the result cache
//! persistent across restarts. `gsched request` is the matching client;
//! by default it speaks protocol v2 (`--proto 1` sends legacy frames) and
//! prints just the `result` document, which is byte-identical to the
//! corresponding `gsched solve --json` output. See the `gsched-service`
//! crate docs for the wire protocol. `gsched loadtest` drives a server —
//! self-hosted, or a live one via `--addr` — with mixed concurrent
//! hit/miss/duplicate/cancel traffic and records p50/p99 latency and
//! throughput into the bench schema and history.
//!
//! A running server is observable three ways: the `stats` verb returns the
//! full telemetry report (per-op latency percentiles, queue/occupancy
//! gauges, cache behaviour), `--metrics-addr` serves the same numbers as
//! Prometheus text exposition over HTTP, and `--access-log` appends one
//! NDJSON line per request. `gsched top` polls `stats` and renders a live
//! terminal dashboard (`--once` prints a single pipeable snapshot).
//!
//! `gsched doctor` solves the model and prints the per-class numerical-health
//! table (drift slack, `sp(R)`, `R` residual, truncated tail mass) with WARN
//! lines when a class is close to instability or under-resolved.
//! `--convergence` adds the per-class convergence section (R-solve counts,
//! method, residual decay rate, stagnation warnings); `--json` always
//! includes it.
//!
//! `gsched profile` runs a scenario's workload single-threaded under the
//! instrumentation layer and prints a phase table (self time per solver
//! phase, attributing ≥90% of wall time), the dense-kernel work counters
//! with achieved GFLOP/s, and the convergence report. `--trace PATH` also
//! writes the Chrome Trace Event timeline of the same run.
//!
//! `gsched bench` runs the canonical Figure 2–5 solver sweeps plus a
//! simulator workload and writes schema-versioned telemetry to
//! `BENCH_<label>.json`; with `--compare` it exits non-zero when a scenario's
//! wall time regresses beyond the threshold. Each run also appends one row
//! to the NDJSON history (`results/bench_history.ndjson` by default;
//! `--no-history` skips), and `gsched bench trend` compares the newest row
//! against the trailing window — `--gate` turns that into a CI failure.
//! `gsched bench --kernels` swaps in the kernel microbenchmark instead:
//! every linalg backend timed on dense and QBD-band operand shapes across
//! a ladder of block sizes, written to the same schema and history so the
//! trend gate covers kernel regressions on the deterministic flop counters.
//! `gsched bench --scaling` swaps in the large-P scaling curve instead: the
//! `p_sweep` registry scenario solved point by point (P = 8 … 4096) under
//! certified truncation, one schema row per machine size, so the history
//! and trend gate track how solve cost scales with P.
//!
//! Model files are JSON (see `gsched_scenario::ModelSpec`); `gsched
//! example-model` and `gsched example-scenario` print templates.

mod bench;
mod convergence;
mod loadtest;
mod profile;
mod top;
mod trend;

use gsched_core::model::GangModel;
use gsched_core::qbd::LevelTruncation;
use gsched_core::solver::{solve, GangSolution, RSolverMethod, SolverOptions, VacationMode};
use gsched_core::tuning::{optimize_common_quantum, stability_threshold_quantum, Objective};
use gsched_core::{solve_asymptotic, AsymptoticSolution};
use gsched_engine::{run_sweep, SweepOptions, SweepReport, SweepRequest};
use gsched_linalg::BackendKind;
use gsched_scenario::{
    cross_validate, registry, validate_report, AxisSpec, LintLevel, ModelSpec, Policy, Scenario,
    XvalOptions, XvalReport,
};
use gsched_service::client::{control_frame_for, frame_for_name, frame_for_scenario, RequestSpec};
// The render module is the single implementation of the solve/sweep JSON
// documents, shared with the scenario server so served results are
// byte-identical to local `--json` output.
use gsched_service::render::{json_f64, json_str, solution_json, sweep_report_json};
use gsched_service::{
    error_frame, extract_result, frame_is_ok, Client, ErrorKind, Op, ServeConfig, Server,
    ServiceError,
};
use gsched_sim::{simulate, SimConfig, SimResult};
use gsched_workload::figures::Figure;
use gsched_workload::{paper_model, PaperConfig};
use std::collections::HashMap;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("gsched: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run(args: &[String]) -> Result<(), String> {
    let Some(cmd) = args.first() else {
        print_usage();
        return Err("missing subcommand".to_string());
    };
    let rest = &args[1..];
    match cmd.as_str() {
        "solve" => cmd_solve(rest),
        "simulate" => cmd_simulate(rest),
        "sweep" => cmd_sweep(rest),
        "validate" => cmd_validate(rest),
        "xval" => cmd_xval(rest),
        "tune" => cmd_tune(rest),
        "stability" => cmd_stability(rest),
        "doctor" => cmd_doctor(rest),
        "profile" => profile::run(rest),
        "bench" => match rest.first().map(String::as_str) {
            Some("trend") => trend::run(&rest[1..]),
            _ => cmd_bench(rest),
        },
        "paper" => cmd_paper(rest),
        "serve" => cmd_serve(rest),
        "request" => cmd_request(rest),
        "loadtest" => loadtest::run(rest),
        "top" => {
            let (pos, flags) = parse_flags(rest)?;
            top::run(&pos, &flags)
        }
        "example-model" => {
            println!("{}", example_model_json());
            Ok(())
        }
        "example-scenario" => {
            let sc = registry::lookup("fig2").expect("fig2 is registered");
            println!("{}", sc.to_json());
            // On stderr so stdout stays parseable JSON.
            eprintln!("field-by-field schema reference: docs/SCENARIO_SCHEMA.md");
            Ok(())
        }
        "--help" | "-h" | "help" => {
            print_usage();
            Ok(())
        }
        other => {
            print_usage();
            Err(format!("unknown subcommand `{other}`"))
        }
    }
}

fn print_usage() {
    eprintln!(
        "usage:\n  gsched solve     <model.json | --scenario S> [--mode ht|m2|m3|exact] [--backend naive|blocked|banded] [--method lr|ss|newton] [--asymptotic] [--json]\n  \
         gsched simulate  <model.json | --scenario S> [--policy gang|lend|rr|fcfs] [--horizon T] [--warmup T] [--seed N] [--json]\n  \
         gsched sweep     [fig2|fig3|fig4|fig5|all | <scenario> | --scenario S] [--jobs N] [--quick] [--no-warm] [--parity-check] [--backend B] [--method M] [--json]\n  \
         gsched validate  [<scenario>...] [--json]\n  \
         gsched xval      <scenario | all> [--points N] [--full] [--horizon-scale F] [--json]\n  \
         gsched tune      <model.json> [--lo Q] [--hi Q] [--objective total|max] [--json]\n  \
         gsched stability <model.json> [--class P] [--lo Q] [--hi Q]\n  \
         gsched doctor    <model.json | --scenario S> [--mode ht|m2|m3|exact] [--backend B] [--method M] [--convergence] [--json]\n  \
         gsched profile   <scenario | --sweep fig2..fig5|all> [--quick] [--backend B] [--method M] [--json] [--trace PATH]\n  \
         gsched bench     [--scenario S | --kernels | --scaling] [--label L] [--reps N] [--jobs N] [--quick] [--out DIR] [--compare BENCH.json] [--threshold FRAC] [--history PATH] [--no-history]\n  \
         gsched bench trend [--history PATH] [--metric M1,M2] [--window N] [--threshold FRAC] [--gate] [--json]\n  \
         gsched paper     [--rho R] [--quantum Q] [--json]\n  \
         gsched serve     [--addr A] [--workers N] [--cache-cap N] [--cache-path PATH] [--deadline-ms N] [--queue-limit N] [--batch-max N] [--backend B] [--metrics-addr A] [--access-log PATH] [--access-log-max-bytes N]\n  \
         gsched request   [<scenario>] [--addr A] [--op solve|sweep|stats|shutdown] [--proto 1|2] [--quick] [--deadline-ms N] [--id ID] [--frame]\n  \
         gsched loadtest  [--addr A] [--clients N] [--requests N] [--quick] [--label L] [--out DIR] [--history PATH] [--no-history] [--expect-no-shed] [--json]\n  \
         gsched top       [--addr A] [--interval SECS] [--count N] [--once]\n  \
         gsched example-model\n  \
         gsched example-scenario\n\
         a scenario S is a registry name ({}) or a scenario JSON file.\n\
         --backend B picks the linalg kernels (naive|blocked|banded); \
         --method M picks the R-matrix solver (lr|ss|newton).\n\
         diagnostics (any subcommand): --diag <path> writes a JSON metrics \
         snapshot; --trace <path> writes a Chrome Trace Event file \
         (Perfetto); -v prints a report to stderr (-vv adds events)",
        registry::NAMES.join("|")
    );
}

/// Split positional arguments from `--flag value` options.
fn parse_flags(args: &[String]) -> Result<(Vec<String>, HashMap<String, String>), String> {
    let mut pos = Vec::new();
    let mut flags = HashMap::new();
    let mut it = args.iter().peekable();
    while let Some(a) = it.next() {
        if a == "-v" || a == "-vv" {
            let level = if a == "-vv" { "2" } else { "1" };
            flags.insert("verbose".to_string(), level.to_string());
            continue;
        }
        if let Some(name) = a.strip_prefix("--") {
            if name == "json"
                || name == "percentiles"
                || name == "quick"
                || name == "full"
                || name == "no-warm"
                || name == "parity-check"
                || name == "frame"
                || name == "once"
                || name == "gate"
                || name == "convergence"
                || name == "no-history"
                || name == "expect-no-shed"
                || name == "kernels"
                || name == "scaling"
                || name == "asymptotic"
            {
                flags.insert(name.to_string(), "true".to_string());
                continue;
            }
            let val = it
                .next()
                .ok_or_else(|| format!("flag --{name} needs a value"))?;
            flags.insert(name.to_string(), val.clone());
        } else {
            pos.push(a.clone());
        }
    }
    Ok((pos, flags))
}

fn flag_f64(flags: &HashMap<String, String>, name: &str, default: f64) -> Result<f64, String> {
    match flags.get(name) {
        None => Ok(default),
        Some(v) => v
            .parse()
            .map_err(|_| format!("--{name} expects a number, got `{v}`")),
    }
}

/// Diagnostics capture requested via `--diag <path>`, `--trace <path>`, and
/// `-v`/`-vv`.
///
/// Installing the recorder is deferred to this struct so that commands only
/// pay for instrumentation when it was asked for.
struct Diagnostics {
    recorder: Option<std::sync::Arc<gsched_obs::MemoryRecorder>>,
    path: Option<String>,
    trace_path: Option<String>,
    verbosity: u8,
}

impl Diagnostics {
    fn from_flags(flags: &HashMap<String, String>) -> Self {
        let path = flags.get("diag").cloned();
        let trace_path = flags.get("trace").cloned();
        let verbosity: u8 = flags
            .get("verbose")
            .and_then(|v| v.parse().ok())
            .unwrap_or(0);
        let recorder = if path.is_some() || trace_path.is_some() || verbosity > 0 {
            Some(gsched_obs::install_memory())
        } else {
            None
        };
        Diagnostics {
            recorder,
            path,
            trace_path,
            verbosity,
        }
    }

    /// Like [`Diagnostics::from_flags`], but guarantee a recorder is
    /// installed — for commands that analyze the snapshot themselves
    /// (e.g. `doctor --convergence`) regardless of the `--diag` flags.
    fn from_flags_recording(flags: &HashMap<String, String>) -> Self {
        let mut diag = Diagnostics::from_flags(flags);
        if diag.recorder.is_none() {
            diag.recorder = Some(gsched_obs::install_memory());
        }
        diag
    }

    /// Snapshot the recorder without stopping it (recording continues
    /// until [`Diagnostics::finish`]).
    fn snapshot(&self) -> Option<gsched_obs::Snapshot> {
        self.recorder.as_ref().map(|r| r.snapshot())
    }

    /// Stop recording and emit the snapshot (JSON file, trace file, and/or
    /// stderr report).
    fn finish(self) -> Result<(), String> {
        let Some(recorder) = self.recorder else {
            return Ok(());
        };
        gsched_obs::uninstall();
        let snap = recorder.snapshot();
        if let Some(path) = &self.path {
            gsched_obs::write_atomic(path, snap.to_json().as_bytes())
                .map_err(|e| format!("cannot write `{path}`: {e}"))?;
        }
        if let Some(path) = &self.trace_path {
            gsched_obs::write_atomic(path, snap.to_chrome_trace().as_bytes())
                .map_err(|e| format!("cannot write `{path}`: {e}"))?;
        }
        if self.verbosity >= 1 {
            eprintln!("{}", snap.render());
        }
        if self.verbosity >= 2 {
            for ev in &snap.events {
                let fields: Vec<String> =
                    ev.fields.iter().map(|(k, v)| format!("{k}={v}")).collect();
                eprintln!("event {} [{}] {}", ev.name, ev.span, fields.join(" "));
            }
        }
        Ok(())
    }
}

fn load_model(path: &str) -> Result<GangModel, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read `{path}`: {e}"))?;
    ModelSpec::from_json(&text)?.build()
}

/// Resolve a `--scenario` argument: an existing path (or anything ending
/// in `.json`) is parsed as a scenario file, anything else is looked up in
/// the registry.
fn load_scenario(arg: &str) -> Result<Scenario, String> {
    if arg.ends_with(".json") || std::path::Path::new(arg).exists() {
        let text = std::fs::read_to_string(arg).map_err(|e| format!("cannot read `{arg}`: {e}"))?;
        Scenario::from_json(&text).map_err(|e| format!("`{arg}`: {e}"))
    } else {
        registry::lookup(arg).ok_or_else(|| {
            format!(
                "unknown scenario `{arg}` (registry: {})",
                registry::NAMES.join(", ")
            )
        })
    }
}

/// A subcommand's model source: either a positional `<model.json>` or
/// `--scenario <name|file>`, never both.
fn resolve_model(
    cmd: &str,
    pos: &[String],
    flags: &HashMap<String, String>,
) -> Result<GangModel, String> {
    match (flags.get("scenario"), pos.first()) {
        (Some(_), Some(_)) => Err(format!(
            "{cmd}: give either <model.json> or --scenario, not both"
        )),
        (Some(arg), None) => load_scenario(arg)?.build_model().map_err(|e| e.to_string()),
        (None, Some(path)) => load_model(path),
        (None, None) => Err(format!(
            "{cmd}: missing <model.json> (or --scenario <name|file>)"
        )),
    }
}

fn solver_options(flags: &HashMap<String, String>) -> Result<SolverOptions, String> {
    let mode = match flags.get("mode").map(|s| s.as_str()) {
        None | Some("m2") => VacationMode::MomentMatched { moments: 2 },
        Some("m3") => VacationMode::MomentMatched { moments: 3 },
        Some("ht") => VacationMode::HeavyTraffic,
        Some("exact") => VacationMode::Exact,
        Some(other) => return Err(format!("unknown --mode `{other}`")),
    };
    let backend = parse_backend(flags)?;
    let mut builder = SolverOptions::builder()
        .mode(mode)
        .backend(backend)
        .response_quantiles(flags.contains_key("percentiles"));
    if let Some(m) = flags.get("method") {
        let method: RSolverMethod = m.parse()?;
        builder = builder.r_method(method);
    }
    builder.build().map_err(|e| e.to_string())
}

/// Parse the `--backend` flag shared by solve/sweep/doctor/profile/bench/serve.
fn parse_backend(flags: &HashMap<String, String>) -> Result<BackendKind, String> {
    match flags.get("backend") {
        None => Ok(BackendKind::default()),
        Some(v) => v.parse(),
    }
}

fn print_solution_human(model: &GangModel, sol: &GangSolution) {
    println!(
        "machine: P = {}, L = {} classes, offered rho = {:.4}",
        model.processors(),
        model.num_classes(),
        model.total_utilization()
    );
    println!(
        "fixed point: {} iterations, converged = {}, all stable = {}",
        sol.iterations, sol.converged, sol.all_stable
    );
    println!(
        "{:>5} {:>8} {:>10} {:>10} {:>10} {:>10} {:>10}",
        "class", "stable", "N", "T", "P(empty)", "svc frac", "P(skip)"
    );
    for (p, c) in sol.classes.iter().enumerate() {
        let (pe, sf) = c
            .measures
            .as_ref()
            .map(|m| (m.prob_empty, m.service_fraction))
            .unwrap_or((f64::NAN, f64::NAN));
        println!(
            "{p:>5} {:>8} {:>10.4} {:>10.4} {:>10.4} {:>10.4} {:>10.4}",
            c.stable, c.mean_jobs, c.mean_response, pe, sf, c.skip_probability
        );
    }
    if sol.classes.iter().any(|c| c.response_quantiles.is_some()) {
        println!("response-time percentiles (tagged-job analysis):");
        println!(
            "{:>5} {:>10} {:>10} {:>10} {:>10}",
            "class", "p50", "p90", "p95", "p99"
        );
        for (p, c) in sol.classes.iter().enumerate() {
            if let Some((p50, p90, p95, p99)) = c.response_quantiles {
                println!("{p:>5} {p50:>10.4} {p90:>10.4} {p95:>10.4} {p99:>10.4}");
            }
        }
    }
}

fn print_asymptotic_human(model: &GangModel, asym: &AsymptoticSolution) {
    println!(
        "zero-queueing limit (P → ∞ at fixed rho; finite machine: P = {}): \
         mean cycle {:.4}, all stable = {}",
        model.processors(),
        asym.mean_cycle,
        asym.all_stable
    );
    println!(
        "{:>5} {:>8} {:>10} {:>10} {:>10} {:>10}",
        "class", "stable", "duty f", "rho", "T_inf", "N_inf"
    );
    for c in &asym.classes {
        println!(
            "{:>5} {:>8} {:>10.4} {:>10.4} {:>10.4} {:>10.4}",
            c.class, c.stable, c.duty_fraction, c.utilization, c.mean_response, c.mean_jobs
        );
    }
}

fn asymptotic_json(asym: &AsymptoticSolution) -> String {
    let classes: Vec<String> = asym
        .classes
        .iter()
        .map(|c| {
            format!(
                r#"{{"class":{},"stable":{},"duty_fraction":{},"utilization":{},"arrival_rate":{},"mean_response":{},"mean_jobs":{}}}"#,
                c.class,
                c.stable,
                json_f64(c.duty_fraction),
                json_f64(c.utilization),
                json_f64(c.arrival_rate),
                json_f64(c.mean_response),
                json_f64(c.mean_jobs)
            )
        })
        .collect();
    format!(
        r#"{{"asymptotic":true,"all_stable":{},"mean_cycle":{},"classes":[{}]}}"#,
        asym.all_stable,
        json_f64(asym.mean_cycle),
        classes.join(",")
    )
}

fn cmd_solve(args: &[String]) -> Result<(), String> {
    let (pos, flags) = parse_flags(args)?;
    let model = resolve_model("solve", &pos, &flags)?;
    // `--asymptotic` swaps the finite-P QBD solve for the zero-queueing
    // large-system limit — the anchor large-P solves are checked against.
    if flags.contains_key("asymptotic") {
        let asym = solve_asymptotic(&model).map_err(|e| e.to_string())?;
        if flags.contains_key("json") {
            println!("{}", asymptotic_json(&asym));
        } else {
            print_asymptotic_human(&model, &asym);
        }
        return Ok(());
    }
    let opts = solver_options(&flags)?;
    let diag = Diagnostics::from_flags(&flags);
    let sol = solve(&model, &opts).map_err(|e| e.to_string());
    diag.finish()?;
    let sol = sol?;
    if flags.contains_key("json") {
        println!("{}", solution_json(&sol));
    } else {
        print_solution_human(&model, &sol);
    }
    Ok(())
}

fn print_sim_human(r: &SimResult) {
    println!(
        "measured {:.0} time units; utilization {:.4}, switch fraction {:.4}",
        r.measured_time, r.processor_utilization, r.switch_overhead_fraction
    );
    println!(
        "{:>5} {:>10} {:>10} {:>10} {:>10} {:>10} {:>10} {:>10}",
        "class", "N", "±95%", "T", "T p50", "T p95", "arrivals", "done"
    );
    for (p, c) in r.classes.iter().enumerate() {
        let (p50, _, p95, _) = c.response_quantiles;
        println!(
            "{p:>5} {:>10.4} {:>10.4} {:>10.4} {:>10.4} {:>10.4} {:>10} {:>10}",
            c.mean_jobs, c.mean_jobs_ci95, c.mean_response, p50, p95, c.arrivals, c.completions
        );
    }
}

fn sim_json(r: &SimResult) -> String {
    let classes: Vec<String> = r
        .classes
        .iter()
        .map(|c| {
            format!(
                r#"{{"mean_jobs":{},"mean_jobs_ci95":{},"mean_response":{},"response_p50":{},"response_p90":{},"response_p95":{},"response_p99":{},"arrivals":{},"completions":{}}}"#,
                json_f64(c.mean_jobs),
                json_f64(c.mean_jobs_ci95),
                json_f64(c.mean_response),
                json_f64(c.response_quantiles.0),
                json_f64(c.response_quantiles.1),
                json_f64(c.response_quantiles.2),
                json_f64(c.response_quantiles.3),
                c.arrivals,
                c.completions
            )
        })
        .collect();
    format!(
        r#"{{"utilization":{},"switch_fraction":{},"classes":[{}]}}"#,
        json_f64(r.processor_utilization),
        json_f64(r.switch_overhead_fraction),
        classes.join(",")
    )
}

fn cmd_simulate(args: &[String]) -> Result<(), String> {
    let (pos, flags) = parse_flags(args)?;
    // A scenario supplies model, policy, and sim config in one place;
    // explicit flags still override its choices.
    let (model, mut cfg, mut policy) = match (flags.get("scenario"), pos.first()) {
        (Some(_), Some(_)) => {
            return Err("simulate: give either <model.json> or --scenario, not both".to_string())
        }
        (Some(arg), None) => {
            let sc = load_scenario(arg)?;
            let model = sc.build_model().map_err(|e| e.to_string())?;
            (model, sc.sim_config(1.0), sc.policy)
        }
        (None, Some(path)) => {
            let cfg = SimConfig {
                horizon: 200_000.0,
                warmup: 20_000.0,
                seed: 1,
                batches: 20,
            };
            (load_model(path)?, cfg, Policy::Gang)
        }
        (None, None) => {
            return Err("simulate: missing <model.json> (or --scenario <name|file>)".to_string())
        }
    };
    if let Some(name) = flags.get("policy") {
        policy = Policy::from_name(name)
            .ok_or_else(|| format!("unknown --policy `{name}` (gang|lend|rr|fcfs)"))?;
    }
    cfg.horizon = flag_f64(&flags, "horizon", cfg.horizon)?;
    let default_warmup = if flags.contains_key("horizon") {
        cfg.horizon / 10.0
    } else {
        cfg.warmup
    };
    cfg.warmup = flag_f64(&flags, "warmup", default_warmup)?;
    cfg.seed = flag_f64(&flags, "seed", cfg.seed as f64)? as u64;
    let diag = Diagnostics::from_flags(&flags);
    let result = simulate(&model, policy, cfg);
    diag.finish()?;
    if flags.contains_key("json") {
        println!("{}", sim_json(&result));
    } else {
        print_sim_human(&result);
    }
    Ok(())
}

/// Largest per-point, per-class difference in mean response between two
/// runs of the same sweep (`NaN`-safe: two failed points agree).
fn sweep_divergence(a: &SweepReport, b: &SweepReport, classes: usize) -> f64 {
    let mut worst: f64 = 0.0;
    for (pa, pb) in a.points.iter().zip(b.points.iter()) {
        for (ra, rb) in pa
            .mean_responses(classes)
            .iter()
            .zip(pb.mean_responses(classes).iter())
        {
            if ra.is_nan() && rb.is_nan() {
                continue;
            }
            worst = worst.max((ra - rb).abs());
        }
    }
    worst
}

fn print_sweep_human(name: &str, report: &SweepReport, classes: usize) {
    println!(
        "{}: {} points, {} jobs, {} chunks, warm hit rate {:.0}%, {:.1} ms",
        name,
        report.points.len(),
        report.stats.jobs,
        report.stats.chunks,
        report.stats.warm_hit_rate() * 100.0,
        report.stats.wall_ms
    );
    let header: Vec<String> = (0..classes).map(|p| format!("N[{p}]")).collect();
    println!(
        "{:>10} {:>5} {}",
        "x",
        "warm",
        header
            .iter()
            .map(|h| format!("{h:>10}"))
            .collect::<Vec<_>>()
            .join(" ")
    );
    for p in &report.points {
        match &p.solution {
            Some(sol) => {
                let cols: Vec<String> = sol
                    .classes
                    .iter()
                    .map(|c| format!("{:>10.4}", c.mean_jobs))
                    .collect();
                println!("{:>10.4} {:>5} {}", p.x, p.warm_started, cols.join(" "));
            }
            None => println!(
                "{:>10.4} {:>5} failed: {}",
                p.x,
                p.warm_started,
                p.error.as_deref().unwrap_or("unknown")
            ),
        }
    }
}

/// One sweep to run: named request plus, for scenario-driven sweeps, the
/// scenario itself (which carries the tolerance contract to enforce).
struct SweepJob {
    name: String,
    req: SweepRequest,
    scenario: Option<Scenario>,
}

/// Solver options for a Processors-axis (large-P) sweep: automatic
/// certified level truncation targeted at the scenario's declared ceiling,
/// with health collection so the certificates are reportable.
fn scaling_solver_options(base: &SolverOptions, target_tail: f64) -> SolverOptions {
    let mut solver = base.clone();
    solver.qbd.truncation = LevelTruncation::Auto {
        target_tail,
        min_levels: 4,
    };
    solver.collect_health = true;
    solver
}

/// Enforce a large-P scenario's tolerance contract on a finished sweep:
/// every truncated point's *certified* tail mass must stay under the
/// scenario's ceiling, and the largest solved point must agree with the
/// zero-queueing asymptotic limit within the declared relative tolerance.
/// Returns human-readable check lines; `Err` lists the violations.
fn check_large_p_contract(sc: &Scenario, report: &SweepReport) -> Result<Vec<String>, String> {
    let mut lines = Vec::new();
    let mut violations = Vec::new();
    if let Some(ceiling) = sc.tolerance.certified_tail {
        let mut worst: f64 = 0.0;
        let mut checked = 0usize;
        for p in &report.points {
            let Some(health) = p.solution.as_ref().and_then(|s| s.health.as_ref()) else {
                continue;
            };
            checked += 1;
            for h in &health.classes {
                worst = worst.max(h.certified_tail);
                if h.certified_tail > ceiling {
                    violations.push(format!(
                        "{}: P = {}, class {}: certified tail {:.3e} exceeds ceiling {ceiling:.3e}",
                        sc.name, p.x, h.class, h.certified_tail
                    ));
                }
            }
        }
        lines.push(format!(
            "{}: certified truncation tail <= {ceiling:.1e} held at {checked} point(s) (worst {worst:.3e})",
            sc.name
        ));
    }
    if let Some(tol) = sc.tolerance.asymptotic_rel {
        // The contract binds at the *largest* solved point, where the
        // finite machine is nearest the limit.
        if let Some(p) = report.points.iter().rev().find(|p| p.solution.is_some()) {
            let sol = p.solution.as_ref().expect("filtered on solution");
            let model = sc.model_at(p.x).map_err(|e| e.to_string())?;
            let asym = solve_asymptotic(&model).map_err(|e| e.to_string())?;
            let gap = sol
                .classes
                .iter()
                .zip(asym.classes.iter())
                .map(|(full, lim)| {
                    (full.mean_response - lim.mean_response).abs() / lim.mean_response
                })
                .fold(0.0_f64, f64::max);
            lines.push(format!(
                "{}: asymptotic cross-check at P = {}: worst class gap {:.2}% (tolerance {:.0}%)",
                sc.name,
                p.x,
                gap * 100.0,
                tol * 100.0
            ));
            if gap > tol {
                violations.push(format!(
                    "{}: P = {}: relative gap {gap:.4} to the zero-queueing limit exceeds {tol}",
                    sc.name, p.x
                ));
            }
        }
    }
    if violations.is_empty() {
        Ok(lines)
    } else {
        Err(violations.join("; "))
    }
}

fn cmd_sweep(args: &[String]) -> Result<(), String> {
    let (pos, flags) = parse_flags(args)?;
    let quick = flags.contains_key("quick");
    let scenario_job = |sc: Scenario| -> Result<SweepJob, String> {
        let req = sc.sweep_request(quick).map_err(|e| e.to_string())?;
        Ok(SweepJob {
            name: sc.name.clone(),
            req,
            scenario: Some(sc),
        })
    };
    let jobs_list: Vec<SweepJob> = if let Some(arg) = flags.get("scenario") {
        if !pos.is_empty() {
            return Err("sweep: give either a figure name or --scenario, not both".to_string());
        }
        vec![scenario_job(load_scenario(arg)?)?]
    } else {
        let which = pos.first().map(String::as_str).unwrap_or("all");
        if which == "all" {
            Figure::ALL
                .iter()
                .map(|fig| SweepJob {
                    name: fig.name().to_string(),
                    req: fig.request(quick),
                    scenario: None,
                })
                .collect()
        } else if let Some(fig) = Figure::from_name(which) {
            vec![SweepJob {
                name: fig.name().to_string(),
                req: fig.request(quick),
                scenario: None,
            }]
        } else {
            // Not a figure: any sweep-capable registry scenario (or a
            // scenario file) works positionally — `gsched sweep p_sweep`.
            vec![scenario_job(load_scenario(which)?)?]
        }
    };
    let jobs = flag_f64(&flags, "jobs", 0.0)? as usize;
    let solver = solver_options(&flags)?;
    // Record the kernel backend in each request's provenance params so
    // archived sweep outputs say which backend produced them.
    let backend = solver.qbd.backend;
    let jobs_list: Vec<SweepJob> = jobs_list
        .into_iter()
        .map(|mut job| {
            job.req.base =
                std::mem::take(&mut job.req.base).with_param("backend", backend.index() as f64);
            job
        })
        .collect();
    let parity = flags.contains_key("parity-check");
    let diag = Diagnostics::from_flags(&flags);
    let mut json_reports = Vec::new();
    let mut failures = 0;
    let mut parity_errors = Vec::new();
    let mut contract_lines = Vec::new();
    let mut contract_errors = Vec::new();
    for job in &jobs_list {
        // Processors-axis sweeps get certified level truncation
        // automatically — large P is intractable without it.
        let is_large_p = job
            .scenario
            .as_ref()
            .and_then(|sc| sc.sweep.as_ref())
            .is_some_and(|sweep| sweep.axis == AxisSpec::Processors);
        let job_solver = if is_large_p {
            let target = job
                .scenario
                .as_ref()
                .and_then(|sc| sc.tolerance.certified_tail)
                .unwrap_or(1e-8);
            scaling_solver_options(&solver, target)
        } else {
            solver.clone()
        };
        let opts = SweepOptions::default()
            .with_jobs(jobs)
            .with_warm_start(!flags.contains_key("no-warm"))
            .with_solver(job_solver);
        let classes = job
            .req
            .points
            .first()
            .map(|p| p.model.num_classes())
            .unwrap_or(0);
        let report = run_sweep(&job.req, &opts);
        failures += report.failures();
        if parity {
            let seq = run_sweep(&job.req, &opts.clone().with_jobs(1));
            let div = sweep_divergence(&report, &seq, classes);
            if div > 1e-10 {
                parity_errors.push(format!(
                    "{}: parallel vs sequential diverge by {div:.3e} (> 1e-10)",
                    job.name
                ));
            }
        }
        if let Some(sc) = job.scenario.as_ref().filter(|_| is_large_p) {
            match check_large_p_contract(sc, &report) {
                Ok(lines) => contract_lines.extend(lines),
                Err(e) => contract_errors.push(e),
            }
        }
        if flags.contains_key("json") {
            json_reports.push(sweep_report_json(&job.name, &report, classes));
        } else {
            print_sweep_human(&job.name, &report, classes);
        }
    }
    diag.finish()?;
    if flags.contains_key("json") {
        println!("[{}]", json_reports.join(","));
        for line in &contract_lines {
            eprintln!("{line}");
        }
    } else {
        for line in &contract_lines {
            println!("{line}");
        }
        if failures > 0 {
            eprintln!("sweep: {failures} point(s) failed to solve");
        }
    }
    if !contract_errors.is_empty() {
        return Err(contract_errors.join("; "));
    }
    if !parity_errors.is_empty() {
        return Err(parity_errors.join("; "));
    }
    if parity && !flags.contains_key("json") {
        println!("parity check passed (sequential vs parallel within 1e-10)");
    }
    Ok(())
}

fn validation_json(rep: &gsched_scenario::ValidationReport) -> String {
    let issues: Vec<String> = rep
        .issues
        .iter()
        .map(|i| {
            let level = match i.level {
                LintLevel::Error => "error",
                LintLevel::Warning => "warning",
            };
            format!(
                r#"{{"level":{},"message":{}}}"#,
                json_str(level),
                json_str(&i.message)
            )
        })
        .collect();
    let classes: Vec<String> = rep
        .classes
        .iter()
        .map(|c| {
            format!(
                r#"{{"class":{},"utilization":{},"stable":{},"drift_margin":{}}}"#,
                c.class,
                json_f64(c.utilization),
                c.stable,
                json_f64(c.drift_margin)
            )
        })
        .collect();
    format!(
        r#"{{"name":{},"ok":{},"issues":[{}],"classes":[{}]}}"#,
        json_str(&rep.name),
        rep.ok(),
        issues.join(","),
        classes.join(",")
    )
}

/// Fail a subcommand with a consistent non-zero exit; with `--json` the
/// failure is also printed to stdout as a service-style error frame, so
/// scripted callers parse one error schema for CLI and server alike.
fn fail(flags: &HashMap<String, String>, kind: ErrorKind, message: String) -> Result<(), String> {
    if flags.contains_key("json") {
        println!(
            "{}",
            error_frame(None, &ServiceError::new(kind, message.clone()))
        );
    }
    Err(message)
}

fn cmd_validate(args: &[String]) -> Result<(), String> {
    let (pos, flags) = parse_flags(args)?;
    let scenarios: Vec<Scenario> = if pos.is_empty() {
        registry::all()
    } else {
        pos.iter()
            .map(|arg| load_scenario(arg))
            .collect::<Result<_, _>>()?
    };
    let solver = solver_options(&flags)?;
    let diag = Diagnostics::from_flags(&flags);
    let reports: Vec<gsched_scenario::ValidationReport> = scenarios
        .iter()
        .map(|sc| validate_report(sc, &solver))
        .collect();
    diag.finish()?;
    let mut errors = 0;
    if flags.contains_key("json") {
        let items: Vec<String> = reports.iter().map(validation_json).collect();
        println!("[{}]", items.join(","));
        errors = reports.iter().filter(|r| !r.ok()).count();
    } else {
        for rep in &reports {
            let verdict = if rep.ok() { "ok" } else { "FAILED" };
            println!("{}: {verdict}", rep.name);
            for c in &rep.classes {
                println!(
                    "  class {}: rho = {:.4}, stable = {}, drift margin = {:+.4}",
                    c.class, c.utilization, c.stable, c.drift_margin
                );
            }
            for issue in &rep.issues {
                let tag = match issue.level {
                    LintLevel::Error => "ERROR",
                    LintLevel::Warning => "warn",
                };
                println!("  {tag}: {}", issue.message);
            }
            if !rep.ok() {
                errors += 1;
            }
        }
    }
    if errors > 0 {
        return fail(
            &flags,
            ErrorKind::ValidationFailed,
            format!("{errors} scenario(s) failed validation"),
        );
    }
    Ok(())
}

fn xval_json(rep: &XvalReport) -> String {
    let points: Vec<String> = rep
        .points
        .iter()
        .map(|p| {
            let rows: Vec<String> = p
                .rows
                .iter()
                .map(|r| {
                    format!(
                        r#"{{"class":{},"analytic":{},"simulated":{},"sim_ci95":{},"gap":{},"tolerance":{},"pass":{}}}"#,
                        r.class,
                        json_f64(r.analytic),
                        json_f64(r.simulated),
                        json_f64(r.sim_ci95),
                        json_f64(r.gap),
                        json_f64(r.tolerance),
                        r.pass
                    )
                })
                .collect();
            format!(
                r#"{{"x":{},"skipped_unstable":{},"rows":[{}]}}"#,
                p.x.map(json_f64).unwrap_or_else(|| "null".to_string()),
                p.skipped_unstable,
                rows.join(",")
            )
        })
        .collect();
    format!(
        r#"{{"scenario":{},"policy":{},"passed":{},"compared_points":{},"points":[{}]}}"#,
        json_str(&rep.scenario),
        json_str(&rep.policy),
        rep.passed(),
        rep.compared_points(),
        points.join(",")
    )
}

fn print_xval_human(rep: &XvalReport) {
    println!(
        "{} ({}): {} point(s) compared, {} failure(s)",
        rep.scenario,
        rep.policy,
        rep.compared_points(),
        rep.failures().len()
    );
    println!(
        "{:>10} {:>5} {:>12} {:>12} {:>10} {:>10} {:>6}",
        "x", "class", "analytic T", "sim T", "gap", "tol", "pass"
    );
    for p in &rep.points {
        let x =
            p.x.map(|x| format!("{x:.4}"))
                .unwrap_or_else(|| "-".to_string());
        if p.skipped_unstable {
            println!("{x:>10} {:>5} analytically unstable; skipped", "-");
            continue;
        }
        for r in &p.rows {
            println!(
                "{x:>10} {:>5} {:>12.4} {:>12.4} {:>10.4} {:>10.4} {:>6}",
                r.class, r.analytic, r.simulated, r.gap, r.tolerance, r.pass
            );
        }
    }
}

fn cmd_xval(args: &[String]) -> Result<(), String> {
    let (pos, flags) = parse_flags(args)?;
    let which = pos
        .first()
        .ok_or("xval: missing <scenario> (registry name, file.json, or `all`)")?;
    let scenarios: Vec<Scenario> = if which == "all" {
        // Only analysis-comparable policies can be cross-validated.
        registry::all()
            .into_iter()
            .filter(|sc| sc.policy.analysis_comparable())
            .collect()
    } else {
        vec![load_scenario(which)?]
    };
    let opts = XvalOptions {
        solver: solver_options(&flags)?,
        max_points: flag_f64(&flags, "points", 2.0)? as usize,
        quick: !flags.contains_key("full"),
        horizon_scale: flag_f64(&flags, "horizon-scale", 1.0)?,
    };
    if !(opts.horizon_scale.is_finite() && opts.horizon_scale > 0.0) {
        return Err("--horizon-scale must be positive".to_string());
    }
    let diag = Diagnostics::from_flags(&flags);
    let mut reports = Vec::new();
    let mut result = Ok(());
    for sc in &scenarios {
        match cross_validate(sc, &opts) {
            Ok(rep) => reports.push(rep),
            Err(e) => {
                result = Err(format!("{}: {e}", sc.name));
                break;
            }
        }
    }
    diag.finish()?;
    if let Err(message) = result {
        return fail(&flags, ErrorKind::SolveFailed, message);
    }
    let failed: Vec<&str> = reports
        .iter()
        .filter(|r| !r.passed())
        .map(|r| r.scenario.as_str())
        .collect();
    if flags.contains_key("json") {
        let items: Vec<String> = reports.iter().map(xval_json).collect();
        println!("[{}]", items.join(","));
    } else {
        for rep in &reports {
            print_xval_human(rep);
        }
    }
    if !failed.is_empty() {
        return fail(
            &flags,
            ErrorKind::ValidationFailed,
            format!(
                "analysis and simulation disagree beyond tolerance for: {}",
                failed.join(", ")
            ),
        );
    }
    Ok(())
}

fn cmd_tune(args: &[String]) -> Result<(), String> {
    let (pos, flags) = parse_flags(args)?;
    let path = pos.first().ok_or("tune: missing <model.json>")?;
    let model = load_model(path)?;
    let lo = flag_f64(&flags, "lo", 0.02)?;
    let hi = flag_f64(&flags, "hi", 20.0)?;
    let objective = match flags.get("objective").map(|s| s.as_str()) {
        None | Some("total") => Objective::TotalMeanJobs,
        Some("max") => Objective::MaxResponse,
        Some(other) => return Err(format!("unknown --objective `{other}` (total|max)")),
    };
    let opts = SolverOptions::default();
    let diag = Diagnostics::from_flags(&flags);
    let res =
        optimize_common_quantum(&model, lo, hi, 11, &objective, &opts).map_err(|e| e.to_string());
    diag.finish()?;
    let res = res?;
    if flags.contains_key("json") {
        println!(
            r#"{{"quantum":{},"objective_value":{},"evaluations":{}}}"#,
            json_f64(res.quantum),
            json_f64(res.objective_value),
            res.evaluations
        );
    } else if res.objective_value.is_finite() {
        println!(
            "optimal common quantum ≈ {:.4} (objective {:.4}, {} model solves)",
            res.quantum, res.objective_value, res.evaluations
        );
    } else {
        println!("no stable quantum found in [{lo}, {hi}]");
    }
    Ok(())
}

fn cmd_stability(args: &[String]) -> Result<(), String> {
    let (pos, flags) = parse_flags(args)?;
    let path = pos.first().ok_or("stability: missing <model.json>")?;
    let model = load_model(path)?;
    let class = flag_f64(&flags, "class", 0.0)? as usize;
    if class >= model.num_classes() {
        return Err(format!(
            "--class {class} out of range (model has {})",
            model.num_classes()
        ));
    }
    let lo = flag_f64(&flags, "lo", 0.01)?;
    let hi = flag_f64(&flags, "hi", 50.0)?;
    let opts = SolverOptions::default();
    let diag = Diagnostics::from_flags(&flags);
    let threshold =
        stability_threshold_quantum(&model, class, lo, hi, &opts).map_err(|e| e.to_string());
    diag.finish()?;
    match threshold? {
        Some(q) if q == lo => println!("class {class} is stable across [{lo}, {hi}]"),
        Some(q) => println!("class {class} stabilizes at common quantum ≈ {q:.4}"),
        None => println!("class {class} is unstable across [{lo}, {hi}]"),
    }
    Ok(())
}

fn cmd_doctor(args: &[String]) -> Result<(), String> {
    let (pos, flags) = parse_flags(args)?;
    let model = resolve_model("doctor", &pos, &flags)?;
    let mut opts = solver_options(&flags)?;
    opts.collect_health = true;
    let defaults = gsched_core::HealthThresholds::default();
    let thresholds = gsched_core::HealthThresholds {
        drift_margin: flag_f64(&flags, "warn-drift", defaults.drift_margin)?,
        spectral_gap: flag_f64(&flags, "warn-gap", defaults.spectral_gap)?,
        r_residual: flag_f64(&flags, "warn-residual", defaults.r_residual)?,
        truncated_mass: flag_f64(&flags, "warn-trunc", defaults.truncated_mass)?,
        certified_tail: flag_f64(&flags, "warn-certified", defaults.certified_tail)?,
    };
    // Convergence analysis needs the R-solve event stream, so those paths
    // always record; `--json` includes the section unconditionally.
    let want_convergence = flags.contains_key("convergence") || flags.contains_key("json");
    let diag = if want_convergence {
        Diagnostics::from_flags_recording(&flags)
    } else {
        Diagnostics::from_flags(&flags)
    };
    let sol = solve(&model, &opts).map_err(|e| e.to_string());
    let conv = if want_convergence {
        diag.snapshot().map(|s| convergence::analyze(&s))
    } else {
        None
    };
    diag.finish()?;
    let sol = sol?;
    let health = sol.health.as_ref().expect("collect_health was set");
    if flags.contains_key("json") {
        let classes: Vec<String> = health
            .classes
            .iter()
            .map(|c| {
                format!(
                    r#"{{"class":{},"stable":{},"drift_margin":{},"spectral_radius":{},"r_residual":{},"truncated_mass":{},"truncation_level":{},"certified_tail":{}}}"#,
                    c.class,
                    c.stable,
                    json_f64(c.drift_margin),
                    json_f64(c.spectral_radius),
                    json_f64(c.r_residual),
                    json_f64(c.truncated_mass),
                    c.truncation_level
                        .map(|l| l.to_string())
                        .unwrap_or_else(|| "null".to_string()),
                    json_f64(c.certified_tail),
                )
            })
            .collect();
        let warnings: Vec<String> = health
            .warnings(&thresholds)
            .iter()
            .map(|w| json_str(w))
            .collect();
        let convergence_json = conv
            .as_ref()
            .map(|c| serde_json::to_string(c).expect("convergence report serializes"))
            .unwrap_or_else(|| "null".to_string());
        println!(
            r#"{{"all_stable":{},"converged":{},"backend":{},"r_solver":{},"classes":[{}],"warnings":[{}],"convergence":{}}}"#,
            sol.all_stable,
            sol.converged,
            json_str(opts.qbd.backend.as_str()),
            json_str(opts.qbd.method.as_str()),
            classes.join(","),
            warnings.join(","),
            convergence_json
        );
    } else {
        println!(
            "numerical health: {} classes, converged = {}, all stable = {}",
            health.classes.len(),
            sol.converged,
            sol.all_stable
        );
        println!(
            "kernel backend = {}, R solver = {}",
            opts.qbd.backend, opts.qbd.method
        );
        print!("{}", health.render(&thresholds));
        if let Some(c) = &conv {
            println!("convergence:");
            print!("{}", c.render());
        }
    }
    Ok(())
}

fn cmd_bench(args: &[String]) -> Result<(), String> {
    let (_, flags) = parse_flags(args)?;
    let quick = flags.contains_key("quick");
    let kernels = flags.contains_key("kernels");
    let scaling = flags.contains_key("scaling");
    if kernels && flags.contains_key("scenario") {
        return Err("--kernels and --scenario are mutually exclusive".to_string());
    }
    if scaling && (kernels || flags.contains_key("scenario")) {
        return Err("--scaling excludes --kernels and --scenario".to_string());
    }
    let label = flags.get("label").cloned().unwrap_or_else(|| {
        match (kernels, scaling, quick) {
            (true, _, true) => "kernels-quick",
            (true, _, false) => "kernels",
            (false, true, true) => "scaling-quick",
            (false, true, false) => "scaling",
            (false, false, true) => "quick",
            (false, false, false) => "local",
        }
        .to_string()
    });
    if !label
        .chars()
        .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-')
    {
        return Err(format!(
            "--label `{label}` must be alphanumeric (plus `_` and `-`); it names the output file"
        ));
    }
    let reps = flag_f64(&flags, "reps", if quick { 1.0 } else { 3.0 })? as u64;
    let jobs = flag_f64(&flags, "jobs", 0.0)? as usize;
    let only = flags
        .get("scenario")
        .map(|arg| load_scenario(arg))
        .transpose()?;
    let report = if kernels {
        bench::run_kernel_bench(&label, reps, quick)?
    } else if scaling {
        bench::run_scaling_bench(&label, reps, quick)?
    } else {
        bench::run_bench(&label, reps, quick, jobs, only.as_ref())?
    };
    let dir = flags.get("out").map(String::as_str).unwrap_or(".");
    let out_path = format!("{dir}/BENCH_{label}.json");
    gsched_obs::write_atomic(&out_path, report.to_json().as_bytes())
        .map_err(|e| format!("cannot write `{out_path}`: {e}"))?;
    if kernels {
        println!(
            "{:<26} {:>12} {:>8} {:>14} {:>10}",
            "kernel", "wall ms", "ops", "nominal flops", "gflop/s"
        );
        for s in &report.scenarios {
            let flops = (s.matmul_flops + s.lu_flops + s.triangular_flops) as f64;
            let gflops = if s.wall_ms > 0.0 {
                format!("{:.2}", flops / (s.wall_ms * 1e6))
            } else {
                "-".to_string()
            };
            println!(
                "{:<26} {:>12.3} {:>8} {:>14} {:>10}",
                s.name, s.wall_ms, s.points, flops as u64, gflops
            );
        }
        write_and_gate_bench(&report, &flags, &out_path)?;
        return Ok(());
    }
    println!(
        "{:<28} {:>12} {:>8} {:>10} {:>12} {:>14} {:>9} {:>9}",
        "scenario", "wall ms", "points", "fp iters", "R solves", "max residual", "warm", "speedup"
    );
    for s in &report.scenarios {
        let warm = if s.warm_hits + s.warm_misses > 0 {
            format!(
                "{:.0}%",
                100.0 * s.warm_hits as f64 / (s.warm_hits + s.warm_misses) as f64
            )
        } else {
            "-".to_string()
        };
        println!(
            "{:<28} {:>12.2} {:>8} {:>10} {:>12} {:>14} {:>9} {:>9}",
            s.name,
            s.wall_ms,
            s.points,
            s.fp_iterations,
            s.rmatrix_solves,
            s.max_r_residual
                .map(|v| format!("{v:.3e}"))
                .unwrap_or_else(|| "-".to_string()),
            warm,
            s.parallel_speedup
                .map(|v| format!("{v:.2}x"))
                .unwrap_or_else(|| "-".to_string()),
        );
    }
    write_and_gate_bench(&report, &flags, &out_path)
}

/// Shared tail of `gsched bench`: report the output path, append the
/// history row, and run the `--compare` wall-time gate when requested.
fn write_and_gate_bench(
    report: &bench::BenchReport,
    flags: &HashMap<String, String>,
    out_path: &str,
) -> Result<(), String> {
    println!("wrote {out_path}");
    if !flags.contains_key("no-history") {
        let history_path = flags
            .get("history")
            .map(String::as_str)
            .unwrap_or(trend::DEFAULT_HISTORY_PATH);
        trend::append_history(history_path, report)?;
        println!("appended history row to {history_path}");
    }
    if let Some(baseline_path) = flags.get("compare") {
        let text = std::fs::read_to_string(baseline_path)
            .map_err(|e| format!("cannot read `{baseline_path}`: {e}"))?;
        let baseline = bench::BenchReport::from_json(&text)?;
        let threshold = flag_f64(flags, "threshold", 0.25)?;
        let outcome = bench::compare_reports(&baseline, report, threshold);
        for line in &outcome.lines {
            println!("{line}");
        }
        if !outcome.regressions.is_empty() {
            for r in &outcome.regressions {
                eprintln!("regression: {r}");
            }
            return Err(format!(
                "{} scenario(s) regressed beyond the {:.0}% wall-time threshold",
                outcome.regressions.len(),
                threshold * 100.0
            ));
        }
        println!(
            "no wall-time regressions against {baseline_path} (threshold {:.0}%)",
            threshold * 100.0
        );
    }
    Ok(())
}

fn cmd_paper(args: &[String]) -> Result<(), String> {
    let (_, flags) = parse_flags(args)?;
    let rho = flag_f64(&flags, "rho", 0.4)?;
    let quantum = flag_f64(&flags, "quantum", 1.0)?;
    let model = paper_model(&PaperConfig {
        lambda: rho,
        quantum_mean: quantum,
        quantum_stages: 2,
        overhead_mean: 0.01,
    });
    let diag = Diagnostics::from_flags(&flags);
    let sol = solve(&model, &SolverOptions::default()).map_err(|e| e.to_string());
    diag.finish()?;
    let sol = sol?;
    if flags.contains_key("json") {
        println!("{}", solution_json(&sol));
    } else {
        println!("paper configuration: rho = {rho}, quantum mean = {quantum}");
        print_solution_human(&model, &sol);
    }
    Ok(())
}

fn cmd_serve(args: &[String]) -> Result<(), String> {
    let (pos, flags) = parse_flags(args)?;
    if !pos.is_empty() {
        return Err(format!("serve: unexpected argument `{}`", pos[0]));
    }
    let defaults = ServeConfig::default();
    let mut builder = ServeConfig::builder()
        .addr(
            flags
                .get("addr")
                .cloned()
                .unwrap_or_else(|| "127.0.0.1:7070".to_string()),
        )
        .workers(flag_f64(&flags, "workers", 0.0)? as usize)
        .backend(parse_backend(&flags)?)
        .cache_capacity(flag_f64(&flags, "cache-cap", 256.0)? as usize)
        .default_deadline_ms(flag_f64(&flags, "deadline-ms", 30_000.0)? as u64)
        .queue_limit(flag_f64(&flags, "queue-limit", defaults.queue_limit as f64)? as usize)
        .batch_max(flag_f64(&flags, "batch-max", defaults.batch_max as f64)? as usize)
        .access_log_max_bytes(flag_f64(
            &flags,
            "access-log-max-bytes",
            defaults.access_log_max_bytes as f64,
        )? as u64);
    if let Some(path) = flags.get("cache-path") {
        builder = builder.cache_path(path);
    }
    if let Some(addr) = flags.get("metrics-addr") {
        builder = builder.metrics_addr(addr);
    }
    if let Some(path) = flags.get("access-log") {
        builder = builder.access_log(path);
    }
    let opts = builder
        .build()
        .map_err(|e| format!("serve: {}", e.message))?;
    let diag = Diagnostics::from_flags(&flags);
    let server = Server::bind(&opts).map_err(|e| format!("cannot bind `{}`: {e}", opts.addr))?;
    gsched_service::install_ctrl_c_handler();
    let addr = server.local_addr().map_err(|e| e.to_string())?;
    // Scripts (and the CI smoke test) parse this line for the bound port.
    println!(
        "listening on {addr} ({} workers, cache {} entries)",
        server.worker_count(),
        opts.cache_capacity
    );
    if let Some(maddr) = server.metrics_local_addr() {
        println!("metrics on http://{maddr}/metrics");
    }
    if let Some(path) = &opts.access_log {
        println!("access log at {}", path.display());
    }
    if let Some(path) = &opts.cache_path {
        // The warm-restart smoke test greps for "entries replayed".
        println!(
            "persistent cache at {} ({} entries replayed)",
            path.display(),
            server.cache_replayed()
        );
    }
    let result = server.run().map_err(|e| e.to_string());
    diag.finish()?;
    result
}

fn cmd_request(args: &[String]) -> Result<(), String> {
    let (pos, flags) = parse_flags(args)?;
    let addr = flags
        .get("addr")
        .cloned()
        .unwrap_or_else(|| "127.0.0.1:7070".to_string());
    let op = flags
        .get("op")
        .map(|s| {
            Op::parse(s).ok_or_else(|| format!("unknown --op `{s}` (solve|sweep|stats|shutdown)"))
        })
        .transpose()?;
    let deadline_ms = flags
        .get("deadline-ms")
        .map(|v| {
            v.parse::<u64>()
                .map_err(|_| format!("--deadline-ms expects a non-negative integer, got `{v}`"))
        })
        .transpose()?;
    let proto = match flags.get("proto").map(String::as_str) {
        None => RequestSpec::default().proto,
        Some("1") => 1,
        Some("2") => 2,
        Some(v) => return Err(format!("--proto expects 1 or 2, got `{v}`")),
    };
    let spec = RequestSpec {
        proto,
        id: flags.get("id").cloned(),
        op,
        quick: flags.contains_key("quick"),
        deadline_ms,
    };
    let effective_op = op.unwrap_or(Op::Solve);
    let line = match (pos.first(), effective_op) {
        (Some(arg), Op::Solve | Op::Sweep) => {
            // A file is validated locally and sent inline; anything else
            // is a registry name the server resolves itself.
            if arg.ends_with(".json") || std::path::Path::new(arg).exists() {
                frame_for_scenario(&load_scenario(arg)?, &spec)
            } else {
                frame_for_name(arg, &spec)
            }
        }
        (None, Op::Stats | Op::Shutdown) => control_frame_for(&RequestSpec {
            proto,
            id: spec.id.clone(),
            op: Some(effective_op),
            ..RequestSpec::default()
        }),
        (Some(_), _) => {
            return Err(format!(
                "request: --op {} takes no scenario",
                effective_op.as_str()
            ))
        }
        (None, _) => {
            return Err("request: missing <scenario> (registry name or file.json)".to_string())
        }
    };
    let mut client =
        Client::connect(&addr).map_err(|e| format!("cannot connect to `{addr}`: {e}"))?;
    let reply = client.request_line(&line).map_err(|e| e.to_string())?;
    if flags.contains_key("frame") {
        // The whole response frame, for scripts that want `cached`/`id`.
        println!("{reply}");
    } else if frame_is_ok(&reply) {
        // Just the result document: byte-identical to local `--json` output.
        println!(
            "{}",
            extract_result(&reply).ok_or("malformed ok frame from server")?
        );
    } else {
        println!("{reply}");
    }
    if frame_is_ok(&reply) {
        Ok(())
    } else {
        Err("server replied with an error frame".to_string())
    }
}

fn example_model_json() -> &'static str {
    r#"{
  "processors": 8,
  "classes": [
    {
      "partition_size": 8,
      "arrival": { "type": "exponential", "rate": 0.4 },
      "service": { "type": "exponential", "rate": 1.328125 },
      "quantum": { "type": "erlang", "stages": 2, "rate": 1.0 },
      "switch_overhead": { "type": "exponential", "rate": 100.0 }
    },
    {
      "partition_size": 2,
      "arrival": { "type": "exponential", "rate": 0.4 },
      "service": { "type": "hyperexponential", "probs": [0.4, 0.6], "rates": [2.0, 8.0] },
      "quantum": { "type": "erlang", "stages": 2, "rate": 1.0 },
      "switch_overhead": { "type": "exponential", "rate": 100.0 }
    }
  ]
}"#
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flag_parsing() {
        let args: Vec<String> = ["model.json", "--mode", "exact", "--json"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let (pos, flags) = parse_flags(&args).unwrap();
        assert_eq!(pos, vec!["model.json"]);
        assert_eq!(flags.get("mode").map(|s| s.as_str()), Some("exact"));
        assert!(flags.contains_key("json"));
    }

    #[test]
    fn flag_missing_value_rejected() {
        let args: Vec<String> = ["--mode"].iter().map(|s| s.to_string()).collect();
        assert!(parse_flags(&args).is_err());
    }

    #[test]
    fn example_model_parses_and_solves() {
        let spec = ModelSpec::from_json(example_model_json()).unwrap();
        let model = spec.build().unwrap();
        let sol = solve(&model, &SolverOptions::default()).unwrap();
        assert!(sol.all_stable);
    }

    #[test]
    fn unknown_subcommand_errors() {
        let args: Vec<String> = ["frobnicate"].iter().map(|s| s.to_string()).collect();
        assert!(run(&args).is_err());
    }

    #[test]
    fn json_f64_encodes_nonfinite_as_null() {
        assert_eq!(json_f64(f64::INFINITY), "null");
        assert_eq!(json_f64(1.5), "1.5");
    }
}
