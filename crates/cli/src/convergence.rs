//! Convergence analysis over a diagnostics snapshot.
//!
//! Both `gsched profile` and `gsched doctor --convergence` read the same
//! raw material — the `qbd.rmatrix.solve` events (one per `R` solve, each
//! carrying its per-iteration residual series) and the fixed-point counters
//! from `gsched-core` — and distill it into per-class iteration counts,
//! residual decay rates, and stagnation warnings. Classes are recovered
//! from the span path each event was emitted under: an `R` solve inside
//! `core.solve/core.class1/qbd.solve/qbd.solve_r` belongs to class 1.

use gsched_obs::{EventSnapshot, Snapshot};
use serde::{Deserialize, Serialize};

/// Residual series stop counting as "decaying" above this per-iteration
/// contraction rate.
const STAGNATION_RATE: f64 = 0.95;
/// A slow series shorter than this is noise, not stagnation.
const STAGNATION_MIN_ITERATIONS: usize = 10;

/// Convergence behaviour of one class's `R` solves.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClassConvergence {
    /// Class index, or `None` when the event's span path carried no
    /// `core.class<p>` segment (e.g. a bare `solve_r` call).
    pub class: Option<u64>,
    /// `R` solves attributed to this class.
    pub r_solves: u64,
    /// Total inner iterations across those solves.
    pub r_iterations: u64,
    /// Solver family: `logred`, `substitution`, `warm`, or `mixed`.
    pub r_method: String,
    /// Geometric mean contraction per iteration of the longest residual
    /// series: `(r_last / r_first)^(1/(n-1))`. `None` when no series had
    /// at least two finite, positive entries.
    pub decay_rate: Option<f64>,
    /// Length of the series behind `decay_rate`.
    pub longest_series: u64,
    /// True when the longest series is both long and slow — the solver is
    /// grinding, not converging.
    pub stagnation: bool,
}

/// Snapshot-wide convergence report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ConvergenceReport {
    /// Outer fixed-point iterations (`core.solver.fp_iterations`).
    pub fp_iterations: u64,
    /// Final fixed-point change of the last solve, when recorded.
    pub final_change: Option<f64>,
    /// Per-class rows, sorted by class (unattributed rows last).
    pub classes: Vec<ClassConvergence>,
    /// Human-readable stagnation findings.
    pub warnings: Vec<String>,
}

/// Short display name for a `qbd.rmatrix.solve` method string.
fn method_short(method: &str) -> &'static str {
    match method {
        "logarithmic_reduction" => "logred",
        "successive_substitution" => "substitution",
        "warm_substitution" => "warm",
        _ => "unknown",
    }
}

/// Class index from an event's span path: the digits of the first
/// `core.class<p>` segment, if any.
fn class_of_span(span: &str) -> Option<u64> {
    span.split('/')
        .find_map(|seg| seg.strip_prefix("core.class"))
        .filter(|digits| !digits.is_empty() && digits.bytes().all(|b| b.is_ascii_digit()))
        .and_then(|digits| digits.parse().ok())
}

fn field_u64(ev: &EventSnapshot, key: &str) -> Option<u64> {
    ev.fields
        .iter()
        .find(|(k, _)| k == key)
        .and_then(|(_, v)| v.as_u64())
}

fn field_str<'a>(ev: &'a EventSnapshot, key: &str) -> Option<&'a str> {
    ev.fields
        .iter()
        .find(|(k, _)| k == key)
        .and_then(|(_, v)| v.as_str())
}

fn field_series(ev: &EventSnapshot, key: &str) -> Vec<f64> {
    ev.fields
        .iter()
        .find(|(k, _)| k == key)
        .and_then(|(_, v)| v.as_array())
        .map(|xs| xs.iter().filter_map(|x| x.as_f64()).collect())
        .unwrap_or_default()
}

/// Geometric mean contraction per iteration over a residual series, when
/// the endpoints are finite and positive.
fn decay_rate(series: &[f64]) -> Option<f64> {
    let (first, last) = (*series.first()?, *series.last()?);
    if series.len() < 2 || !(first > 0.0 && last > 0.0) || !first.is_finite() {
        return None;
    }
    Some((last / first).powf(1.0 / (series.len() - 1) as f64))
}

/// Distill the `R`-solve events and fixed-point counters of `snap` into a
/// per-class convergence report.
pub fn analyze(snap: &Snapshot) -> ConvergenceReport {
    let mut classes: Vec<ClassConvergence> = Vec::new();
    // Per entry: methods seen, and the longest residual series so far.
    let mut methods: Vec<Vec<String>> = Vec::new();
    let mut longest: Vec<Vec<f64>> = Vec::new();
    for ev in snap.events_named("qbd.rmatrix.solve") {
        let class = class_of_span(&ev.span);
        let idx = match classes.iter().position(|c| c.class == class) {
            Some(i) => i,
            None => {
                classes.push(ClassConvergence {
                    class,
                    r_solves: 0,
                    r_iterations: 0,
                    r_method: String::new(),
                    decay_rate: None,
                    longest_series: 0,
                    stagnation: false,
                });
                methods.push(Vec::new());
                longest.push(Vec::new());
                classes.len() - 1
            }
        };
        classes[idx].r_solves += 1;
        classes[idx].r_iterations += field_u64(ev, "iterations").unwrap_or(0);
        let method = method_short(field_str(ev, "method").unwrap_or("")).to_string();
        if !methods[idx].contains(&method) {
            methods[idx].push(method);
        }
        let series = field_series(ev, "residuals");
        if series.len() > longest[idx].len() {
            longest[idx] = series;
        }
    }
    for ((row, ms), series) in classes.iter_mut().zip(&methods).zip(&longest) {
        row.r_method = match ms.as_slice() {
            [] => "unknown".to_string(),
            [one] => one.clone(),
            _ => "mixed".to_string(),
        };
        row.decay_rate = decay_rate(series);
        row.longest_series = series.len() as u64;
        row.stagnation = row.decay_rate.is_some_and(|r| r > STAGNATION_RATE)
            && series.len() >= STAGNATION_MIN_ITERATIONS;
    }
    // Attributed classes in order, unattributed rows last.
    classes.sort_by_key(|c| (c.class.is_none(), c.class));
    let warnings = classes
        .iter()
        .filter(|c| c.stagnation)
        .map(|c| {
            let who = match c.class {
                Some(p) => format!("class {p}"),
                None => "unattributed solves".to_string(),
            };
            format!(
                "{who}: R residuals contract by only {:.3}x per iteration over {} iterations — \
                 near-stagnant convergence (drift margin likely small)",
                c.decay_rate.unwrap_or(f64::NAN),
                c.longest_series
            )
        })
        .collect();
    ConvergenceReport {
        fp_iterations: snap.counter("core.solver.fp_iterations").unwrap_or(0),
        final_change: snap.gauge("core.solver.final_change"),
        classes,
        warnings,
    }
}

impl ConvergenceReport {
    /// Render the human-readable convergence section (`gsched doctor
    /// --convergence`, `gsched profile`).
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "fixed point: {} iteration(s), final change {}\n",
            self.fp_iterations,
            self.final_change
                .map(|c| format!("{c:.3e}"))
                .unwrap_or_else(|| "-".to_string())
        ));
        out.push_str(&format!(
            "{:>7} {:>9} {:>9} {:>13} {:>11} {:>9}\n",
            "class", "R solves", "R iters", "method", "decay/iter", "longest"
        ));
        for c in &self.classes {
            out.push_str(&format!(
                "{:>7} {:>9} {:>9} {:>13} {:>11} {:>9}\n",
                c.class
                    .map(|p| p.to_string())
                    .unwrap_or_else(|| "-".to_string()),
                c.r_solves,
                c.r_iterations,
                c.r_method,
                c.decay_rate
                    .map(|r| format!("{r:.4}"))
                    .unwrap_or_else(|| "-".to_string()),
                c.longest_series,
            ));
        }
        for w in &self.warnings {
            out.push_str(&format!("WARN {w}\n"));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gsched_obs as obs;

    #[test]
    fn class_extraction_from_span_paths() {
        assert_eq!(
            class_of_span("core.solve/core.class1/qbd.solve/qbd.solve_r"),
            Some(1)
        );
        assert_eq!(class_of_span("core.solve/core.class12/qbd.solve"), Some(12));
        assert_eq!(class_of_span("qbd.solve_r"), None);
        assert_eq!(class_of_span("core.solve/core.classless"), None);
    }

    #[test]
    fn decay_rate_basics() {
        // 1e-1 -> 1e-9 over 5 iterations: rate = (1e-8)^(1/4) = 1e-2.
        let rate = decay_rate(&[1e-1, 1e-3, 1e-5, 1e-7, 1e-9]).unwrap();
        assert!((rate - 1e-2).abs() < 1e-12, "{rate}");
        assert_eq!(decay_rate(&[1e-3]), None);
        assert_eq!(decay_rate(&[0.0, 1e-4]), None);
        assert_eq!(decay_rate(&[]), None);
    }

    fn solve_event(span: &str, method: &str, residuals: Vec<f64>) -> obs::EventSnapshot {
        obs::EventSnapshot {
            name: "qbd.rmatrix.solve".to_string(),
            span: span.to_string(),
            fields: vec![
                (
                    "method".to_string(),
                    serde_json::Value::String(method.to_string()),
                ),
                (
                    "iterations".to_string(),
                    serde_json::Value::Number(residuals.len() as f64),
                ),
                (
                    "residuals".to_string(),
                    serde_json::Value::Array(
                        residuals
                            .into_iter()
                            .map(serde_json::Value::Number)
                            .collect(),
                    ),
                ),
            ],
        }
    }

    fn snapshot_with(events: Vec<obs::EventSnapshot>) -> Snapshot {
        Snapshot {
            counters: vec![gsched_obs::MetricU64 {
                name: "core.solver.fp_iterations".to_string(),
                value: 7,
            }],
            gauges: Vec::new(),
            histograms: Vec::new(),
            spans: Vec::new(),
            span_intervals: Vec::new(),
            span_intervals_dropped: 0,
            events,
            events_dropped: 0,
        }
    }

    #[test]
    fn analyze_groups_by_class_and_flags_stagnation() {
        let healthy: Vec<f64> = (0..5).map(|i| 10f64.powi(-1 - 2 * i)).collect();
        let stagnant: Vec<f64> = (0..40).map(|i| 0.1 * 0.99f64.powi(i)).collect();
        let snap = snapshot_with(vec![
            solve_event(
                "core.solve/core.class0/qbd.solve/qbd.solve_r",
                "logarithmic_reduction",
                healthy.clone(),
            ),
            solve_event(
                "core.solve/core.class0/qbd.solve/qbd.solve_r",
                "logarithmic_reduction",
                healthy,
            ),
            solve_event(
                "core.solve/core.class1/qbd.solve/qbd.solve_r",
                "successive_substitution",
                stagnant,
            ),
        ]);
        let rep = analyze(&snap);
        assert_eq!(rep.fp_iterations, 7);
        assert_eq!(rep.classes.len(), 2);
        let c0 = &rep.classes[0];
        assert_eq!(c0.class, Some(0));
        assert_eq!(c0.r_solves, 2);
        assert_eq!(c0.r_iterations, 10);
        assert_eq!(c0.r_method, "logred");
        assert!(!c0.stagnation);
        let c1 = &rep.classes[1];
        assert_eq!(c1.r_method, "substitution");
        assert!(c1.stagnation, "{c1:?}");
        assert!(c1.decay_rate.unwrap() > STAGNATION_RATE);
        assert_eq!(rep.warnings.len(), 1);
        assert!(rep.warnings[0].contains("class 1"), "{:?}", rep.warnings);
        let text = rep.render();
        assert!(text.contains("logred"), "{text}");
        assert!(text.contains("WARN"), "{text}");
    }

    #[test]
    fn mixed_methods_are_labelled_mixed() {
        let snap = snapshot_with(vec![
            solve_event(
                "core.solve/core.class0/qbd.solve/qbd.solve_r",
                "warm_substitution",
                vec![1e-2, 1e-6],
            ),
            solve_event(
                "core.solve/core.class0/qbd.solve/qbd.solve_r",
                "logarithmic_reduction",
                vec![1e-2, 1e-8],
            ),
        ]);
        let rep = analyze(&snap);
        assert_eq!(rep.classes[0].r_method, "mixed");
    }
}
