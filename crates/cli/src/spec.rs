//! JSON model specifications for the `gsched` CLI.
//!
//! A model file looks like:
//!
//! ```json
//! {
//!   "processors": 8,
//!   "classes": [
//!     {
//!       "partition_size": 8,
//!       "arrival":  { "type": "exponential", "rate": 0.4 },
//!       "service":  { "type": "exponential", "rate": 1.33 },
//!       "quantum":  { "type": "erlang", "stages": 2, "rate": 1.0 },
//!       "switch_overhead": { "type": "exponential", "rate": 100.0 }
//!     }
//!   ]
//! }
//! ```

use gsched_core::model::{ClassParams, GangModel};
use gsched_phase::{
    coxian, deterministic_approx, erlang, exponential, fit_two_moment, hyperexponential,
    hypoexponential, PhaseType,
};
use serde::{Deserialize, Serialize};

/// A distribution specification.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
#[serde(tag = "type", rename_all = "snake_case")]
pub enum DistSpec {
    /// Exponential with the given rate (mean `1/rate`).
    Exponential {
        /// Rate parameter.
        rate: f64,
    },
    /// Erlang with `stages` stages and overall `rate` (mean `1/rate`).
    Erlang {
        /// Stage count.
        stages: usize,
        /// Overall rate.
        rate: f64,
    },
    /// Hyperexponential mixture of exponentials.
    Hyperexponential {
        /// Branch probabilities.
        probs: Vec<f64>,
        /// Branch rates.
        rates: Vec<f64>,
    },
    /// Hypoexponential (stages in series with individual rates).
    Hypoexponential {
        /// Stage rates.
        rates: Vec<f64>,
    },
    /// Coxian: stage rates plus continuation probabilities (length − 1).
    Coxian {
        /// Stage rates.
        rates: Vec<f64>,
        /// Continuation probabilities between consecutive stages.
        cont: Vec<f64>,
    },
    /// Near-deterministic value (Erlang approximation).
    Deterministic {
        /// Target value.
        value: f64,
        /// Erlang stages used for the approximation (default 32).
        #[serde(default = "default_det_stages")]
        stages: usize,
    },
    /// Fit a PH to a mean and squared coefficient of variation.
    TwoMoment {
        /// Mean.
        mean: f64,
        /// Squared coefficient of variation.
        scv: f64,
    },
    /// Raw phase-type parameters `(alpha, S)`.
    Ph {
        /// Initial probability vector.
        alpha: Vec<f64>,
        /// Sub-generator rows.
        s: Vec<Vec<f64>>,
    },
}

fn default_det_stages() -> usize {
    32
}

impl DistSpec {
    /// Materialize the specification into a validated [`PhaseType`].
    pub fn build(&self) -> Result<PhaseType, String> {
        match self {
            DistSpec::Exponential { rate } => {
                if *rate <= 0.0 {
                    return Err(format!("exponential rate must be positive, got {rate}"));
                }
                Ok(exponential(*rate))
            }
            DistSpec::Erlang { stages, rate } => {
                if *stages == 0 || *rate <= 0.0 {
                    return Err("erlang needs positive stages and rate".to_string());
                }
                Ok(erlang(*stages, *rate))
            }
            DistSpec::Hyperexponential { probs, rates } => {
                hyperexponential(probs, rates).map_err(|e| e.to_string())
            }
            DistSpec::Hypoexponential { rates } => {
                hypoexponential(rates).map_err(|e| e.to_string())
            }
            DistSpec::Coxian { rates, cont } => coxian(rates, cont).map_err(|e| e.to_string()),
            DistSpec::Deterministic { value, stages } => {
                if *value <= 0.0 || *stages == 0 {
                    return Err("deterministic needs positive value and stages".to_string());
                }
                Ok(deterministic_approx(*value, *stages))
            }
            DistSpec::TwoMoment { mean, scv } => {
                if *mean <= 0.0 || *scv < 0.0 {
                    return Err("two_moment needs positive mean and nonnegative scv".to_string());
                }
                Ok(fit_two_moment(*mean, *scv))
            }
            DistSpec::Ph { alpha, s } => {
                let n = s.len();
                if s.iter().any(|row| row.len() != n) {
                    return Err("ph: S must be square".to_string());
                }
                let flat: Vec<f64> = s.iter().flatten().copied().collect();
                let mat = gsched_linalg::Matrix::from_vec(n, n, flat);
                PhaseType::new(alpha.clone(), mat).map_err(|e| e.to_string())
            }
        }
    }
}

/// One job class.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
pub struct ClassSpec {
    /// Processors per job, `g(p)`.
    pub partition_size: usize,
    /// Interarrival distribution.
    pub arrival: DistSpec,
    /// Service distribution.
    pub service: DistSpec,
    /// Quantum distribution.
    pub quantum: DistSpec,
    /// Context-switch overhead distribution.
    pub switch_overhead: DistSpec,
}

/// A whole machine.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
pub struct ModelSpec {
    /// Processor count `P`.
    pub processors: usize,
    /// Job classes.
    pub classes: Vec<ClassSpec>,
}

impl ModelSpec {
    /// Parse from a JSON string.
    pub fn from_json(text: &str) -> Result<ModelSpec, String> {
        serde_json::from_str(text).map_err(|e| format!("invalid model JSON: {e}"))
    }

    /// Materialize into a validated [`GangModel`].
    pub fn build(&self) -> Result<GangModel, String> {
        let mut classes = Vec::with_capacity(self.classes.len());
        for (p, c) in self.classes.iter().enumerate() {
            let err = |field: &str, e: String| format!("class {p}, {field}: {e}");
            classes.push(ClassParams {
                partition_size: c.partition_size,
                arrival: c.arrival.build().map_err(|e| err("arrival", e))?,
                service: c.service.build().map_err(|e| err("service", e))?,
                quantum: c.quantum.build().map_err(|e| err("quantum", e))?,
                switch_overhead: c
                    .switch_overhead
                    .build()
                    .map_err(|e| err("switch_overhead", e))?,
            });
        }
        GangModel::new(self.processors, classes).map_err(|e| e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const EXAMPLE: &str = r#"{
        "processors": 8,
        "classes": [
            {
                "partition_size": 8,
                "arrival": { "type": "exponential", "rate": 0.4 },
                "service": { "type": "exponential", "rate": 1.328125 },
                "quantum": { "type": "erlang", "stages": 2, "rate": 1.0 },
                "switch_overhead": { "type": "exponential", "rate": 100.0 }
            },
            {
                "partition_size": 2,
                "arrival": { "type": "two_moment", "mean": 2.5, "scv": 2.0 },
                "service": { "type": "hyperexponential", "probs": [0.4, 0.6], "rates": [1.0, 4.0] },
                "quantum": { "type": "deterministic", "value": 1.0 },
                "switch_overhead": { "type": "exponential", "rate": 100.0 }
            }
        ]
    }"#;

    #[test]
    fn parse_and_build_example() {
        let spec = ModelSpec::from_json(EXAMPLE).unwrap();
        assert_eq!(spec.processors, 8);
        assert_eq!(spec.classes.len(), 2);
        let model = spec.build().unwrap();
        assert_eq!(model.num_classes(), 2);
        assert!((model.class(0).arrival_rate() - 0.4).abs() < 1e-12);
        assert!((model.class(1).arrival.mean() - 2.5).abs() < 1e-9);
        // Deterministic default stage count picked up.
        assert!(model.class(1).quantum.scv() < 0.05);
    }

    #[test]
    fn all_dist_variants_build() {
        let specs = vec![
            DistSpec::Exponential { rate: 1.0 },
            DistSpec::Erlang {
                stages: 3,
                rate: 2.0,
            },
            DistSpec::Hyperexponential {
                probs: vec![0.5, 0.5],
                rates: vec![1.0, 3.0],
            },
            DistSpec::Hypoexponential {
                rates: vec![1.0, 2.0],
            },
            DistSpec::Coxian {
                rates: vec![1.0, 2.0],
                cont: vec![0.5],
            },
            DistSpec::Deterministic {
                value: 2.0,
                stages: 16,
            },
            DistSpec::TwoMoment {
                mean: 1.0,
                scv: 0.5,
            },
            DistSpec::Ph {
                alpha: vec![1.0, 0.0],
                s: vec![vec![-2.0, 2.0], vec![0.0, -2.0]],
            },
        ];
        for s in specs {
            let ph = s.build().unwrap_or_else(|e| panic!("{s:?}: {e}"));
            assert!(ph.mean() > 0.0, "{s:?}");
        }
    }

    #[test]
    fn bad_specs_rejected() {
        assert!(DistSpec::Exponential { rate: 0.0 }.build().is_err());
        assert!(DistSpec::Erlang {
            stages: 0,
            rate: 1.0
        }
        .build()
        .is_err());
        assert!(DistSpec::Ph {
            alpha: vec![1.0],
            s: vec![vec![-1.0, 1.0]],
        }
        .build()
        .is_err());
        assert!(ModelSpec::from_json("{").is_err());
        assert!(ModelSpec::from_json(r#"{"processors":0,"classes":[]}"#)
            .unwrap()
            .build()
            .is_err());
    }

    #[test]
    fn spec_roundtrips_through_json() {
        let spec = ModelSpec::from_json(EXAMPLE).unwrap();
        let text = serde_json::to_string(&spec).unwrap();
        let again = ModelSpec::from_json(&text).unwrap();
        assert_eq!(spec, again);
    }
}
