//! `gsched profile` — where does a solve actually spend its time?
//!
//! Runs a scenario's workload **single-threaded on the calling thread**
//! (a serial warm-started `solve_warm` loop over the sweep points, not the
//! engine pool) so that every span nests under the command's own stack and
//! self-time attribution partitions the measured wall clock. On top of the
//! span tree it reports the dense-kernel work counters from
//! `gsched-linalg` — calls, nominal flops, and achieved GFLOP/s — and the
//! convergence behaviour of the `R` solves and the outer fixed point.
//!
//! The `--json` document is schema-versioned ([`PROFILE_SCHEMA_VERSION`])
//! and consumed by the CI `profile-smoke` job, which asserts the phase
//! table attributes at least 90% of wall time.

use crate::convergence::{self, ConvergenceReport};
use gsched_core::model::GangModel;
use gsched_core::solver::{solve_warm, SolverOptions, WarmStart};
use gsched_core::vacation::VacationCache;
use gsched_linalg::WorkCounters;
use gsched_obs as obs;
use gsched_workload::figures::Figure;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::time::Instant;

/// Version of the `gsched profile --json` document. Bump on incompatible
/// changes.
pub const PROFILE_SCHEMA_VERSION: u64 = 1;

/// One row of the phase table: a canonical span name with its self time.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PhaseRow {
    /// Canonical span name (`core.class*`, `qbd.solve_r`, ...).
    pub span: String,
    /// Human phase label (`R iteration`, `generator build`, ...).
    pub phase: String,
    /// Completed span occurrences.
    pub count: u64,
    /// Self time in milliseconds (cumulative minus direct children).
    pub self_ms: f64,
    /// Cumulative time in milliseconds.
    pub cum_ms: f64,
    /// `self_ms / wall_ms`.
    pub fraction: f64,
}

/// Work and achieved rate for one kernel family.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KernelRow {
    /// Kernel family (`matmul`, `lu_factorization`, `triangular_solve`).
    pub kernel: String,
    /// Kernel invocations.
    pub calls: u64,
    /// Nominal flops across those invocations.
    pub flops: u64,
    /// `flops / wall`, in GFLOP/s — the rate achieved over the whole run,
    /// not a per-kernel microbenchmark.
    pub gflops_per_sec: f64,
}

/// The full `gsched profile` document.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProfileReport {
    /// Document version ([`PROFILE_SCHEMA_VERSION`]).
    pub profile_schema_version: u64,
    /// Workload identifier (scenario or figure set).
    pub workload: String,
    /// Whether the reduced `--quick` point grids were used.
    pub quick: bool,
    /// Kernel backend the run used (`naive`, `blocked`, `banded`).
    /// Defaults when absent so pre-backend documents keep parsing.
    #[serde(default = "String::default")]
    pub backend: String,
    /// R-solver method the run used (`logarithmic_reduction`,
    /// `successive_substitution`, `newton`). Defaults like `backend`.
    #[serde(default = "String::default")]
    pub r_solver: String,
    /// Models solved.
    pub points: u64,
    /// Points that failed to solve (unstable/non-convergent ends of a
    /// sweep; counted, not fatal).
    pub failed_points: u64,
    /// Wall time of the measured loop, in milliseconds.
    pub wall_ms: f64,
    /// Total attributed self time, in milliseconds.
    pub attributed_ms: f64,
    /// `attributed_ms / wall_ms` — the CI invariant is `>= 0.9`.
    pub attributed_fraction: f64,
    /// Phase table, sorted by descending self time.
    pub phases: Vec<PhaseRow>,
    /// Kernel work counters with achieved rates.
    pub kernels: Vec<KernelRow>,
    /// Convergence behaviour of the run.
    pub convergence: ConvergenceReport,
}

/// Human phase label for a canonical span name.
fn phase_label(span: &str) -> &'static str {
    match span {
        "core.solve" => "fixed-point orchestration",
        "core.class*" => "class orchestration",
        "core.vacation" => "vacation analysis",
        "core.generator" => "generator build",
        "core.effective" => "effective quanta",
        "core.measures" => "stationary measures",
        "qbd.solve" => "QBD assembly",
        "qbd.solve_r" => "R iteration",
        "qbd.boundary_solve" => "boundary solve",
        _ => "other",
    }
}

/// The models a profile run solves, in order.
struct Workload {
    name: String,
    models: Vec<GangModel>,
}

/// Resolve the requested workload set: `--sweep fig2..fig5|all` takes the
/// paper-figure sweeps, otherwise the positional scenario (registry name
/// or file) supplies either its declared sweep or its single model.
fn workloads(
    pos: &[String],
    flags: &HashMap<String, String>,
    quick: bool,
) -> Result<Vec<Workload>, String> {
    if let Some(which) = flags.get("sweep") {
        if !pos.is_empty() {
            return Err("profile: give either a scenario or --sweep, not both".to_string());
        }
        let figures: Vec<Figure> = if which == "all" {
            Figure::ALL.to_vec()
        } else {
            vec![Figure::from_name(which)
                .ok_or_else(|| format!("unknown --sweep `{which}` (fig2|fig3|fig4|fig5|all)"))?]
        };
        return Ok(figures
            .into_iter()
            .map(|fig| Workload {
                name: fig.name().to_string(),
                models: fig
                    .request(quick)
                    .points
                    .into_iter()
                    .map(|p| p.model)
                    .collect(),
            })
            .collect());
    }
    let arg = pos
        .first()
        .ok_or("profile: missing <scenario> (registry name or file.json; or --sweep)")?;
    let sc = crate::load_scenario(arg)?;
    let models = if sc.sweep.is_some() {
        sc.sweep_request(quick)
            .map_err(|e| e.to_string())?
            .points
            .into_iter()
            .map(|p| p.model)
            .collect()
    } else {
        vec![sc.build_model().map_err(|e| e.to_string())?]
    };
    Ok(vec![Workload {
        name: sc.name.clone(),
        models,
    }])
}

/// Solve every model of every workload serially with warm starting — the
/// same numerical path the engine takes, confined to this thread so the
/// span tree nests under one stack.
fn run_workloads(workloads: &[Workload], solver: &SolverOptions) -> (u64, u64) {
    let (mut solved, mut failed) = (0u64, 0u64);
    for w in workloads {
        let cache = VacationCache::new();
        let mut warm: Option<WarmStart> = None;
        for model in &w.models {
            match solve_warm(model, solver, warm.as_ref(), Some(&cache)) {
                Ok(out) => {
                    warm = Some(out.warm);
                    solved += 1;
                }
                Err(_) => {
                    // Unstable/non-convergent sweep ends: drop the warm
                    // state so the next point starts cold, keep profiling.
                    warm = None;
                    failed += 1;
                }
            }
        }
    }
    (solved, failed)
}

/// Run the workloads under a fresh recorder, optionally export the Chrome
/// trace, and assemble the report — one instrumented run feeds everything.
fn measure(
    workloads: &[Workload],
    solver: &SolverOptions,
    quick: bool,
    trace_path: Option<&str>,
) -> Result<ProfileReport, String> {
    let recorder = obs::install_memory();
    let base = WorkCounters::snapshot();
    let start = Instant::now();
    let (solved, failed) = run_workloads(workloads, solver);
    let wall = start.elapsed();
    let work = base.delta_since();
    obs::uninstall();
    let snap = recorder.snapshot();
    if let Some(path) = trace_path {
        obs::write_atomic(path, snap.to_chrome_trace().as_bytes())
            .map_err(|e| format!("cannot write `{path}`: {e}"))?;
    }

    let wall_ms = wall.as_secs_f64() * 1e3;
    let attributed_ms = snap.attribution().total_self_nanos() as f64 / 1e6;
    let phases: Vec<PhaseRow> = crate::bench::phase_breakdown(&snap)
        .into_iter()
        .map(|p| PhaseRow {
            phase: phase_label(&p.span).to_string(),
            span: p.span,
            count: p.count,
            self_ms: p.self_ms,
            cum_ms: p.cum_ms,
            fraction: p.self_ms / wall_ms.max(1e-9),
        })
        .collect();
    let secs = wall.as_secs_f64().max(1e-12);
    let kernel = |name: &str, calls: u64, flops: u64| KernelRow {
        kernel: name.to_string(),
        calls,
        flops,
        gflops_per_sec: flops as f64 / secs / 1e9,
    };
    let names: Vec<&str> = workloads.iter().map(|w| w.name.as_str()).collect();
    Ok(ProfileReport {
        profile_schema_version: PROFILE_SCHEMA_VERSION,
        workload: names.join("+"),
        quick,
        backend: solver.qbd.backend.as_str().to_string(),
        r_solver: solver.qbd.method.as_str().to_string(),
        points: solved + failed,
        failed_points: failed,
        wall_ms,
        attributed_ms,
        attributed_fraction: attributed_ms / wall_ms.max(1e-9),
        phases,
        kernels: vec![
            kernel("matmul", work.matmul_calls, work.matmul_flops),
            kernel("lu_factorization", work.lu_factorizations, work.lu_flops),
            kernel(
                "triangular_solve",
                work.triangular_solves,
                work.triangular_flops,
            ),
        ],
        convergence: convergence::analyze(&snap),
    })
}

fn print_human(rep: &ProfileReport) {
    println!(
        "profile: {} — {} point(s) ({} failed), wall {:.2} ms, attributed {:.2} ms ({:.1}%)",
        rep.workload,
        rep.points,
        rep.failed_points,
        rep.wall_ms,
        rep.attributed_ms,
        rep.attributed_fraction * 100.0
    );
    println!(
        "kernel backend = {}, R solver = {}",
        rep.backend, rep.r_solver
    );
    println!(
        "{:<26} {:<24} {:>8} {:>10} {:>10} {:>7}",
        "phase", "span", "count", "self ms", "cum ms", "wall%"
    );
    for p in &rep.phases {
        println!(
            "{:<26} {:<24} {:>8} {:>10.2} {:>10.2} {:>6.1}%",
            p.phase,
            p.span,
            p.count,
            p.self_ms,
            p.cum_ms,
            p.fraction * 100.0
        );
    }
    println!(
        "{:<26} {:>12} {:>16} {:>10}",
        "kernel", "calls", "flops", "GFLOP/s"
    );
    for k in &rep.kernels {
        println!(
            "{:<26} {:>12} {:>16} {:>10.3}",
            k.kernel, k.calls, k.flops, k.gflops_per_sec
        );
    }
    println!("convergence:");
    print!("{}", rep.convergence.render());
}

/// Entry point for `gsched profile`.
pub fn run(args: &[String]) -> Result<(), String> {
    let (pos, flags) = crate::parse_flags(args)?;
    if flags.contains_key("diag") || flags.contains_key("verbose") {
        // Profile owns the recorder for the duration of the measured loop;
        // a second capture of the same run would race with it.
        return Err(
            "profile: --diag/-v are not supported (profile instruments itself; use --trace/--json)"
                .to_string(),
        );
    }
    let quick = flags.contains_key("quick");
    let workloads = workloads(&pos, &flags, quick)?;
    let mut solver = crate::solver_options(&flags)?;
    // The measurement relies on every span nesting under this thread.
    solver.parallel_classes = false;
    let rep = measure(
        &workloads,
        &solver,
        quick,
        flags.get("trace").map(String::as_str),
    )?;
    if flags.contains_key("json") {
        println!(
            "{}",
            serde_json::to_string_pretty(&rep).expect("profile report serializes")
        );
    } else {
        print_human(&rep);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phase_labels_cover_the_instrumented_spans() {
        for span in [
            "core.solve",
            "core.class*",
            "core.vacation",
            "core.generator",
            "core.effective",
            "core.measures",
            "qbd.solve",
            "qbd.solve_r",
            "qbd.boundary_solve",
        ] {
            assert_ne!(phase_label(span), "other", "no label for {span}");
        }
        assert_eq!(phase_label("engine.sweep.chunk*"), "other");
    }

    #[test]
    fn profile_report_json_round_trips() {
        let rep = ProfileReport {
            profile_schema_version: PROFILE_SCHEMA_VERSION,
            workload: "fig2".to_string(),
            quick: true,
            backend: "naive".to_string(),
            r_solver: "logarithmic_reduction".to_string(),
            points: 4,
            failed_points: 1,
            wall_ms: 12.5,
            attributed_ms: 12.0,
            attributed_fraction: 0.96,
            phases: vec![PhaseRow {
                span: "qbd.solve_r".to_string(),
                phase: "R iteration".to_string(),
                count: 40,
                self_ms: 8.0,
                cum_ms: 8.0,
                fraction: 0.64,
            }],
            kernels: vec![KernelRow {
                kernel: "matmul".to_string(),
                calls: 1000,
                flops: 2_000_000,
                gflops_per_sec: 0.16,
            }],
            convergence: ConvergenceReport {
                fp_iterations: 9,
                final_change: Some(1e-9),
                classes: Vec::new(),
                warnings: Vec::new(),
            },
        };
        let text = serde_json::to_string_pretty(&rep).unwrap();
        let back: ProfileReport = serde_json::from_str(&text).unwrap();
        assert_eq!(back, rep);

        // A document written before the backend fields existed still
        // parses (schema version unchanged); the fields default to empty.
        let pre_backend: String = text
            .lines()
            .filter(|l| !l.contains("\"backend\"") && !l.contains("\"r_solver\""))
            .collect::<Vec<_>>()
            .join("\n");
        let old: ProfileReport = serde_json::from_str(&pre_backend).unwrap();
        assert_eq!(old.profile_schema_version, PROFILE_SCHEMA_VERSION);
        assert!(old.backend.is_empty());
        assert!(old.r_solver.is_empty());
    }
}
