//! `gsched top` — a live terminal dashboard over the solve server's
//! `stats` verb.
//!
//! Polls `{"op":"stats"}` on an interval and redraws a compact screen:
//! request throughput (computed from counter deltas between polls),
//! per-op latency percentiles (cumulative and the last-minute window),
//! worker occupancy, queue depth, and cache behaviour. `--once` prints a
//! single snapshot without clearing the terminal, for scripts and CI.

use gsched_service::client::control_frame;
use gsched_service::{frame_is_ok, Client, Op};
use serde_json::Value;
use std::collections::HashMap;
use std::io::Write;
use std::time::{Duration, Instant};

pub fn run(pos: &[String], flags: &HashMap<String, String>) -> Result<(), String> {
    if !pos.is_empty() {
        return Err(format!("top: unexpected argument `{}`", pos[0]));
    }
    let addr = flags
        .get("addr")
        .cloned()
        .unwrap_or_else(|| "127.0.0.1:7070".to_string());
    let interval: f64 =
        match flags.get("interval") {
            None => 2.0,
            Some(v) => v.parse().ok().filter(|x: &f64| *x > 0.0).ok_or_else(|| {
                format!("--interval expects a positive number of seconds, got `{v}`")
            })?,
        };
    let count: u64 = if flags.contains_key("once") {
        1
    } else {
        match flags.get("count") {
            None => 0, // forever
            Some(v) => v
                .parse()
                .map_err(|_| format!("--count expects a non-negative integer, got `{v}`"))?,
        }
    };

    let mut client =
        Client::connect(&addr).map_err(|e| format!("cannot connect to `{addr}`: {e}"))?;
    let mut prev: Option<(u64, Instant)> = None;
    let mut polls: u64 = 0;
    loop {
        let reply = client
            .request_line(&control_frame(Op::Stats, None))
            .map_err(|e| format!("stats request failed: {e}"))?;
        if !frame_is_ok(&reply) {
            return Err(format!("server replied with an error frame: {reply}"));
        }
        let frame: Value =
            serde_json::from_str(&reply).map_err(|e| format!("bad stats frame: {e}"))?;
        let stats = &frame["result"];
        let now = Instant::now();
        let requests = stats["requests"].as_u64().unwrap_or(0);
        let throughput = prev.and_then(|(r0, t0)| {
            let dt = now.duration_since(t0).as_secs_f64();
            (dt > 0.0).then(|| requests.saturating_sub(r0) as f64 / dt)
        });
        prev = Some((requests, now));
        polls += 1;

        let screen = render(&addr, stats, throughput);
        let mut out = std::io::stdout().lock();
        if count != 1 {
            // Clear and home between redraws (skipped for single snapshots
            // so `--once` output stays pipeable).
            let _ = out.write_all(b"\x1b[2J\x1b[H");
        }
        let _ = out.write_all(screen.as_bytes());
        let _ = out.flush();

        if count > 0 && polls >= count {
            return Ok(());
        }
        std::thread::sleep(Duration::from_secs_f64(interval));
    }
}

/// Format one statistic cell: numbers to two decimals, `null` (an empty
/// histogram) as `-`.
fn cell(v: &Value) -> String {
    match v.as_f64() {
        Some(x) => format!("{x:.2}"),
        None => "-".to_string(),
    }
}

/// Render the dashboard for one stats document. Pure, so tests can feed a
/// canned report and assert on the exact screen.
fn render(addr: &str, stats: &Value, throughput: Option<f64>) -> String {
    let mut out = String::with_capacity(1024);
    let uptime_s = stats["uptime_ms"].as_f64().unwrap_or(0.0) / 1e3;
    out.push_str(&format!("gsched top — {addr}   uptime {uptime_s:.1}s\n\n"));

    let rate = match throughput {
        Some(r) => format!("{r:.1}/s"),
        None => "–/s".to_string(),
    };
    out.push_str(&format!(
        "requests {} ({rate})   errors {}   connections {}\n",
        stats["requests"], stats["errors"], stats["connections"],
    ));
    out.push_str(&format!(
        "workers  {} busy of {}   queue depth {}\n",
        stats["workers_busy"], stats["workers"], stats["queue_depth"],
    ));
    let ratio = match stats["cache_hit_ratio"].as_f64() {
        Some(r) => format!("{:.1}%", 100.0 * r),
        None => "-".to_string(),
    };
    out.push_str(&format!(
        "cache    {} hits / {} misses ({ratio})   entries {}/{}\n\n",
        stats["cache_hits"], stats["cache_misses"], stats["cache_entries"], stats["cache_capacity"],
    ));

    out.push_str(&format!(
        "{:<10}{:>8}{:>7}{:>9}{:>9}{:>9}  {:>9}{:>9}\n",
        "op", "reqs", "errs", "p50", "p95", "p99", "60s p50", "60s p99",
    ));
    if let Some(ops) = stats["ops"].as_object() {
        for (label, op) in ops {
            let lat = &op["latency_ms"];
            let recent = &op["recent_latency_ms"];
            // `Value`'s Display ignores width specifiers, so counters are
            // unwrapped to integers before padding.
            out.push_str(&format!(
                "{label:<10}{:>8}{:>7}{:>9}{:>9}{:>9}  {:>9}{:>9}\n",
                op["requests"].as_u64().unwrap_or(0),
                op["errors"].as_u64().unwrap_or(0),
                cell(&lat["p50"]),
                cell(&lat["p95"]),
                cell(&lat["p99"]),
                cell(&recent["p50"]),
                cell(&recent["p99"]),
            ));
        }
    }

    let qw = &stats["queue_wait_ms"];
    let sv = &stats["solve_ms"];
    out.push_str(&format!(
        "\nqueue wait ms  p50 {}  p95 {}  max {}   ({} jobs)\n",
        cell(&qw["p50"]),
        cell(&qw["p95"]),
        cell(&qw["max"]),
        qw["count"],
    ));
    out.push_str(&format!(
        "solve ms       p50 {}  p95 {}  max {}   ({} jobs)\n",
        cell(&sv["p50"]),
        cell(&sv["p95"]),
        cell(&sv["max"]),
        sv["count"],
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn canned_stats() -> Value {
        serde_json::from_str(
            r#"{
              "workers":2,"queue_depth":0,"requests":10,"errors":1,
              "cache_hits":4,"cache_misses":2,"cache_entries":2,"cache_capacity":64,
              "uptime_ms":12500,"workers_busy":1,"connections":3,"cache_hit_ratio":0.6666666,
              "queue_wait_ms":{"count":2,"mean":0.4,"min":0.1,"max":0.7,"p50":0.3,"p90":0.6,"p95":0.65,"p99":0.7},
              "solve_ms":{"count":2,"mean":5.0,"min":4.0,"max":6.0,"p50":5.0,"p90":5.8,"p95":5.9,"p99":6.0},
              "ops":{
                "solve":{"requests":6,"errors":0,
                  "latency_ms":{"count":6,"mean":2.0,"min":0.5,"max":6.0,"p50":1.5,"p90":5.0,"p95":5.5,"p99":6.0},
                  "recent_latency_ms":{"count":6,"mean":2.0,"min":0.5,"max":6.0,"p50":1.5,"p90":5.0,"p95":5.5,"p99":6.0}},
                "sweep":{"requests":0,"errors":0,
                  "latency_ms":{"count":0,"mean":null,"min":null,"max":null,"p50":null,"p90":null,"p95":null,"p99":null},
                  "recent_latency_ms":{"count":0,"mean":null,"min":null,"max":null,"p50":null,"p90":null,"p95":null,"p99":null}}
              }
            }"#,
        )
        .expect("canned stats parse")
    }

    #[test]
    fn render_shows_counters_rates_and_percentiles() {
        let screen = render("127.0.0.1:7070", &canned_stats(), Some(2.5));
        assert!(screen.contains("gsched top — 127.0.0.1:7070"), "{screen}");
        assert!(screen.contains("uptime 12.5s"), "{screen}");
        assert!(screen.contains("requests 10 (2.5/s)"), "{screen}");
        assert!(screen.contains("workers  1 busy of 2"), "{screen}");
        assert!(screen.contains("4 hits / 2 misses (66.7%)"), "{screen}");
        // Solve row carries its percentiles; the idle sweep row shows `-`.
        let solve_row = screen.lines().find(|l| l.starts_with("solve ")).unwrap();
        assert!(solve_row.contains("1.50"), "{solve_row}");
        // Counter columns stay padded (Value's Display ignores widths).
        assert!(solve_row.contains("       6      0"), "{solve_row:?}");
        let sweep_row = screen.lines().find(|l| l.starts_with("sweep")).unwrap();
        assert!(sweep_row.contains('-'), "{sweep_row}");
        assert!(!screen.contains("null"), "{screen}");
        assert!(screen.contains("queue wait ms  p50 0.30"), "{screen}");
    }

    #[test]
    fn first_poll_has_no_rate_yet() {
        let screen = render("x", &canned_stats(), None);
        assert!(screen.contains("(–/s)"), "{screen}");
    }
}
