//! Bench history (`results/bench_history.ndjson`) and trend gating.
//!
//! Every `gsched bench` run appends one NDJSON row — label, git revision,
//! timestamp, and the full [`BenchReport`] — via the atomic append in
//! `gsched-obs`, building a machine-readable performance history inside
//! the repository. `gsched bench trend` reads that history back, compares
//! the newest row against the median of a trailing window of comparable
//! rows (same `quick` flag), and with `--gate` exits non-zero when any
//! tracked metric regressed beyond the threshold — the CI gate.
//!
//! CI gates on deterministic *work* metrics (iteration and flop counts),
//! not wall time: counts are bit-stable across machines, so a regression
//! means the code does more work, not that the runner was noisy.

use crate::bench::{BenchReport, ScenarioResult};
use gsched_obs as obs;
use serde::{Deserialize, Serialize};

/// Version of one history row's envelope. Bump on incompatible changes.
pub const HISTORY_SCHEMA_VERSION: u64 = 1;

/// Default history location, relative to the repository root.
pub const DEFAULT_HISTORY_PATH: &str = "results/bench_history.ndjson";

/// One appended line of the bench history.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HistoryRow {
    /// Envelope version ([`HISTORY_SCHEMA_VERSION`]).
    pub history_schema_version: u64,
    /// Run label (duplicated from the report for cheap scanning).
    pub label: String,
    /// Short git revision at run time, or `"unknown"` outside a checkout.
    pub git_rev: String,
    /// Seconds since the Unix epoch at run time.
    pub unix_time_secs: u64,
    /// The full benchmark report.
    pub report: BenchReport,
}

/// `git rev-parse --short HEAD`, or `"unknown"` when git is unavailable.
fn git_rev() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

/// Append `report` as one history row to `path`, creating the parent
/// directory on first use.
pub fn append_history(path: &str, report: &BenchReport) -> Result<(), String> {
    if let Some(dir) = std::path::Path::new(path)
        .parent()
        .filter(|d| !d.as_os_str().is_empty())
    {
        std::fs::create_dir_all(dir)
            .map_err(|e| format!("cannot create `{}`: {e}", dir.display()))?;
    }
    let row = HistoryRow {
        history_schema_version: HISTORY_SCHEMA_VERSION,
        label: report.label.clone(),
        git_rev: git_rev(),
        unix_time_secs: std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_secs())
            .unwrap_or(0),
        report: report.clone(),
    };
    let line = serde_json::to_string(&row).expect("history row serializes");
    obs::append_line_atomic(path, &line).map_err(|e| format!("cannot append `{path}`: {e}"))
}

/// Parse the history file. Rows with an unknown envelope version or an
/// incompatible report schema are skipped (counted in `skipped`), so an
/// old history keeps the file useful instead of poisoning the gate.
pub fn load_history(path: &str) -> Result<(Vec<HistoryRow>, usize), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read `{path}`: {e}"))?;
    let mut rows = Vec::new();
    let mut skipped = 0usize;
    for line in text.lines().filter(|l| !l.trim().is_empty()) {
        match serde_json::from_str::<HistoryRow>(line) {
            Ok(row)
                if row.history_schema_version == HISTORY_SCHEMA_VERSION
                    && row.report.schema_version == crate::bench::BENCH_SCHEMA_VERSION =>
            {
                rows.push(row)
            }
            _ => skipped += 1,
        }
    }
    Ok((rows, skipped))
}

/// Metrics `trend` can track, extracted per scenario. The last six are
/// recorded by `gsched loadtest` rows only.
pub const METRICS: &[&str] = &[
    "wall_ms",
    "fp_iterations",
    "rmatrix_solves",
    "rmatrix_iterations",
    "matmul_flops",
    "lu_flops",
    "triangular_flops",
    "sim_events",
    "requests",
    "request_errors",
    "shed",
    "rps",
    "p50_ms",
    "p99_ms",
];

/// The metric's value in one scenario row, or `None` when the row does
/// not record it (e.g. `p99_ms` on a solver scenario). Unknown metric
/// names are caught by [`analyze`] against [`METRICS`].
fn metric_value(s: &ScenarioResult, metric: &str) -> Option<f64> {
    match metric {
        "wall_ms" => Some(s.wall_ms),
        "fp_iterations" => Some(s.fp_iterations as f64),
        "rmatrix_solves" => Some(s.rmatrix_solves as f64),
        "rmatrix_iterations" => Some(s.rmatrix_iterations as f64),
        "matmul_flops" => Some(s.matmul_flops as f64),
        "lu_flops" => Some(s.lu_flops as f64),
        "triangular_flops" => Some(s.triangular_flops as f64),
        "sim_events" => Some(s.sim_events as f64),
        "requests" => Some(s.requests as f64),
        "request_errors" => Some(s.request_errors as f64),
        "shed" => Some(s.shed as f64),
        "rps" => s.rps,
        "p50_ms" => s.p50_ms,
        "p99_ms" => s.p99_ms,
        _ => None,
    }
}

fn median(mut xs: Vec<f64>) -> f64 {
    xs.sort_by(|a, b| a.partial_cmp(b).expect("finite metric values"));
    xs[xs.len() / 2]
}

/// One (scenario, metric) comparison of the latest row against its
/// trailing window.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrendLine {
    /// Scenario name.
    pub scenario: String,
    /// Tracked metric name.
    pub metric: String,
    /// Latest run's value.
    pub latest: f64,
    /// Median of the trailing window (previous comparable rows).
    pub baseline: f64,
    /// `latest / baseline - 1`, or `0` when the baseline is zero.
    pub delta: f64,
    /// Prior rows the baseline was computed from.
    pub window: u64,
    /// True when `delta` exceeded the threshold.
    pub regressed: bool,
}

/// Outcome of a trend analysis.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrendReport {
    /// Rows inspected (after filtering to the latest row's `quick` flag).
    pub comparable_rows: u64,
    /// Malformed or schema-incompatible history lines skipped.
    pub skipped_rows: u64,
    /// Per-(scenario, metric) comparisons.
    pub lines: Vec<TrendLine>,
    /// Summaries of the regressed lines.
    pub regressions: Vec<String>,
}

/// Compare the newest of `rows` against the median of up to `window`
/// preceding rows with the same `quick` flag. A metric regresses when the
/// latest value exceeds the baseline median by more than `threshold`
/// (fractional, e.g. `0.25`).
pub fn analyze(
    rows: &[HistoryRow],
    metrics: &[String],
    window: usize,
    threshold: f64,
) -> Result<TrendReport, String> {
    let latest = rows.last().ok_or("history is empty")?;
    let prior: Vec<&HistoryRow> = rows[..rows.len() - 1]
        .iter()
        .filter(|r| r.report.quick == latest.report.quick)
        .collect();
    let tail: Vec<&HistoryRow> = prior.iter().rev().take(window).copied().collect();
    let mut lines = Vec::new();
    let mut regressions = Vec::new();
    for metric in metrics {
        if !METRICS.contains(&metric.as_str()) {
            return Err(format!(
                "unknown metric `{metric}` (known: {})",
                METRICS.join(", ")
            ));
        }
    }
    for cur in &latest.report.scenarios {
        for metric in metrics {
            // Rows that don't record the metric (a solver row asked for
            // `p99_ms`, say) are skipped, not an error.
            let Some(latest_v) = metric_value(cur, metric) else {
                continue;
            };
            let history: Vec<f64> = tail
                .iter()
                .filter_map(|r| r.report.scenarios.iter().find(|s| s.name == cur.name))
                .filter_map(|s| metric_value(s, metric))
                .collect();
            if history.is_empty() {
                continue;
            }
            let baseline = median(history.clone());
            let delta = if baseline > 0.0 {
                latest_v / baseline - 1.0
            } else {
                0.0
            };
            let regressed = delta > threshold;
            if regressed {
                regressions.push(format!(
                    "{}/{}: {} -> {} ({:+.1}% > {:.1}% allowed over {} prior run(s))",
                    cur.name,
                    metric,
                    baseline,
                    latest_v,
                    delta * 100.0,
                    threshold * 100.0,
                    history.len()
                ));
            }
            lines.push(TrendLine {
                scenario: cur.name.clone(),
                metric: metric.clone(),
                latest: latest_v,
                baseline,
                delta,
                window: history.len() as u64,
                regressed,
            });
        }
    }
    Ok(TrendReport {
        comparable_rows: (prior.len() + 1) as u64,
        skipped_rows: 0,
        lines,
        regressions,
    })
}

/// Entry point for `gsched bench trend`.
pub fn run(args: &[String]) -> Result<(), String> {
    let (pos, flags) = crate::parse_flags(args)?;
    if !pos.is_empty() {
        return Err(format!("bench trend: unexpected argument `{}`", pos[0]));
    }
    let path = flags
        .get("history")
        .map(String::as_str)
        .unwrap_or(DEFAULT_HISTORY_PATH);
    let metrics: Vec<String> = flags
        .get("metric")
        .map(String::as_str)
        .unwrap_or("wall_ms")
        .split(',')
        .map(|m| m.trim().to_string())
        .filter(|m| !m.is_empty())
        .collect();
    let window = crate::flag_f64(&flags, "window", 5.0)? as usize;
    if window == 0 {
        return Err("--window must be at least 1".to_string());
    }
    let threshold = crate::flag_f64(&flags, "threshold", 0.25)?;
    let (rows, skipped) = load_history(path)?;
    if rows.is_empty() {
        return Err(format!("`{path}` has no parseable history rows"));
    }
    let mut report = analyze(&rows, &metrics, window, threshold)?;
    report.skipped_rows = skipped as u64;
    if flags.contains_key("json") {
        println!(
            "{}",
            serde_json::to_string_pretty(&report).expect("trend report serializes")
        );
    } else {
        println!(
            "trend over {path}: {} comparable row(s), {} skipped, window {}, threshold {:.0}%",
            report.comparable_rows,
            report.skipped_rows,
            window,
            threshold * 100.0
        );
        if report.lines.is_empty() {
            println!("no prior comparable rows yet — nothing to compare");
        } else {
            println!(
                "{:<28} {:<20} {:>14} {:>14} {:>8} {:>7}  status",
                "scenario", "metric", "baseline", "latest", "delta", "window"
            );
            for l in &report.lines {
                println!(
                    "{:<28} {:<20} {:>14.2} {:>14.2} {:>+7.1}% {:>7}  {}",
                    l.scenario,
                    l.metric,
                    l.baseline,
                    l.latest,
                    l.delta * 100.0,
                    l.window,
                    if l.regressed { "REGRESSED" } else { "ok" }
                );
            }
        }
    }
    if !report.regressions.is_empty() {
        for r in &report.regressions {
            eprintln!("regression: {r}");
        }
        if flags.contains_key("gate") {
            return Err(format!(
                "{} metric(s) regressed beyond the {:.0}% trend threshold",
                report.regressions.len(),
                threshold * 100.0
            ));
        }
    } else if flags.contains_key("gate") {
        println!("trend gate passed ({} comparison(s))", report.lines.len());
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scenario(name: &str, wall_ms: f64, fp: u64) -> ScenarioResult {
        ScenarioResult {
            name: name.to_string(),
            kind: "solver".to_string(),
            wall_ms,
            points: 3,
            fp_iterations: fp,
            rmatrix_solves: 10,
            rmatrix_iterations: 500,
            max_r_residual: None,
            max_spectral_radius: None,
            min_drift_margin: None,
            sim_events: 0,
            sim_event_rate: None,
            warm_hits: 0,
            warm_misses: 0,
            parallel_speedup: None,
            matmul_calls: 100,
            matmul_flops: 1_000_000,
            lu_factorizations: 5,
            lu_flops: 10_000,
            triangular_solves: 50,
            triangular_flops: 2_000,
            phases: Vec::new(),
            requests: 0,
            request_errors: 0,
            shed: 0,
            cached_hits: 0,
            p50_ms: None,
            p99_ms: None,
            rps: None,
        }
    }

    fn row(wall_ms: f64, fp: u64, quick: bool) -> HistoryRow {
        HistoryRow {
            history_schema_version: HISTORY_SCHEMA_VERSION,
            label: "t".to_string(),
            git_rev: "abc1234".to_string(),
            unix_time_secs: 1,
            report: BenchReport {
                schema_version: crate::bench::BENCH_SCHEMA_VERSION,
                label: "t".to_string(),
                reps: 1,
                quick,
                jobs: 1,
                scenarios: vec![scenario("fig2", wall_ms, fp)],
            },
        }
    }

    #[test]
    fn stable_history_passes() {
        let rows = vec![
            row(10.0, 40, true),
            row(10.5, 40, true),
            row(10.2, 40, true),
        ];
        let rep = analyze(
            &rows,
            &["wall_ms".to_string(), "fp_iterations".to_string()],
            5,
            0.25,
        )
        .unwrap();
        assert!(rep.regressions.is_empty(), "{:?}", rep.regressions);
        assert_eq!(rep.lines.len(), 2);
        assert_eq!(rep.lines[0].window, 2);
    }

    #[test]
    fn work_regression_is_flagged() {
        let rows = vec![
            row(10.0, 40, true),
            row(10.0, 40, true),
            row(10.0, 80, true),
        ];
        let rep = analyze(&rows, &["fp_iterations".to_string()], 5, 0.25).unwrap();
        assert_eq!(rep.regressions.len(), 1, "{:?}", rep.regressions);
        assert!(rep.regressions[0].contains("fig2/fp_iterations"));
        assert!(rep.lines[0].regressed);
    }

    #[test]
    fn quick_and_full_rows_never_mix() {
        // Latest is quick; the slow full row must not poison the baseline.
        let rows = vec![
            row(100.0, 400, false),
            row(10.0, 40, true),
            row(10.0, 40, true),
        ];
        let rep = analyze(&rows, &["wall_ms".to_string()], 5, 0.25).unwrap();
        assert_eq!(rep.comparable_rows, 2);
        assert!(rep.regressions.is_empty(), "{:?}", rep.regressions);
        assert_eq!(rep.lines[0].baseline, 10.0);
    }

    #[test]
    fn first_row_has_nothing_to_compare() {
        let rows = vec![row(10.0, 40, true)];
        let rep = analyze(&rows, &["wall_ms".to_string()], 5, 0.25).unwrap();
        assert!(rep.lines.is_empty());
        assert!(rep.regressions.is_empty());
    }

    #[test]
    fn unknown_metric_is_an_error() {
        let rows = vec![row(10.0, 40, true), row(10.0, 40, true)];
        let err = analyze(&rows, &["warp_factor".to_string()], 5, 0.25).unwrap_err();
        assert!(err.contains("unknown metric"), "{err}");
    }

    fn load_row(requests: u64, p99: f64) -> HistoryRow {
        let mut r = row(10.0, 40, true);
        let s = &mut r.report.scenarios[0];
        s.name = "loadtest_mixed".to_string();
        s.kind = "loadtest".to_string();
        s.requests = requests;
        s.p99_ms = Some(p99);
        s.rps = Some(30.0);
        r
    }

    #[test]
    fn absent_metrics_are_skipped_not_errors() {
        // Solver rows record no p99_ms; asking for it yields no
        // comparisons rather than an error.
        let rows = vec![row(10.0, 40, true), row(10.0, 40, true)];
        let rep = analyze(&rows, &["p99_ms".to_string()], 5, 0.25).unwrap();
        assert!(rep.lines.is_empty());
        assert!(rep.regressions.is_empty());
    }

    #[test]
    fn loadtest_counters_gate_like_work_metrics() {
        let rows = vec![load_row(18, 10.0), load_row(18, 11.0), load_row(40, 10.5)];
        let rep = analyze(
            &rows,
            &["requests".to_string(), "p99_ms".to_string()],
            5,
            0.25,
        )
        .unwrap();
        assert_eq!(rep.regressions.len(), 1, "{:?}", rep.regressions);
        assert!(rep.regressions[0].contains("loadtest_mixed/requests"));
    }

    #[test]
    fn history_rows_round_trip_through_ndjson() {
        let dir = std::env::temp_dir().join(format!("gsched-trend-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("history.ndjson");
        let path_s = path.to_str().unwrap();
        let _ = std::fs::remove_file(&path);
        append_history(path_s, &row(10.0, 40, true).report).unwrap();
        append_history(path_s, &row(11.0, 40, true).report).unwrap();
        // A malformed line and a wrong-version row are skipped, not fatal.
        let mut old = row(12.0, 40, true);
        old.history_schema_version = 99;
        std::fs::OpenOptions::new()
            .append(true)
            .open(&path)
            .and_then(|mut f| {
                use std::io::Write;
                writeln!(f, "not json")?;
                writeln!(f, "{}", serde_json::to_string(&old).unwrap())
            })
            .unwrap();
        let (rows, skipped) = load_history(path_s).unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(skipped, 2);
        assert_eq!(rows[1].report.scenarios[0].wall_ms, 11.0);
        assert!(rows[0].git_rev.len() >= 4 || rows[0].git_rev == "unknown");
    }
}
