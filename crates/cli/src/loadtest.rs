//! `gsched loadtest` — drive a solve server with mixed concurrent
//! traffic and record latency/throughput into the bench schema.
//!
//! The harness spins up `--clients` threads, each holding one TCP
//! connection, and replays a deterministic script that mixes the four
//! traffic shapes the server's concurrency control exists for:
//!
//! * **hit** — every client re-solves `fig2`, so the first wave
//!   coalesces onto one engine solve and later waves are cache hits;
//! * **miss** — each client walks its own rotation of registry
//!   scenarios, populating the cache;
//! * **duplicate** — all clients solve `fig3` in the same wave,
//!   exercising singleflight under contention;
//! * **cancel** (skipped with `--quick`) — a full `fig3_heavy` sweep
//!   with a 1 ms deadline, whose `deadline_exceeded` reply is the
//!   *expected* outcome and whose departure must cancel the flight.
//!
//! Without `--addr` the harness self-hosts: it binds an in-process
//! server on an ephemeral port, runs the load, and shuts it down again,
//! capturing the solver work counters for deterministic trend gating.
//! With `--addr` it drives a live server (the CI smoke test does this)
//! and records client-side observations only.
//!
//! Results land in the `BENCH_<label>.json` schema (kind `"loadtest"`,
//! scenario `loadtest_mixed`) and append one row to the bench history,
//! so `gsched bench trend --metric requests,request_errors,shed --gate`
//! gates load behaviour the same way solver work metrics are gated.

use crate::bench::{self, BenchReport, ScenarioResult, BENCH_SCHEMA_VERSION};
use crate::trend;
use gsched_obs as obs;
use gsched_service::client::{control_frame, frame_for_name, RequestSpec};
use gsched_service::{frame_is_ok, Client, Op, ServeConfig, Server};
use std::sync::Barrier;
use std::time::Instant;

/// Scenario name under which load results are recorded in the bench
/// history (the trend compare key).
pub const SCENARIO_NAME: &str = "loadtest_mixed";

/// Registry scenarios the miss traffic rotates through. Kept to the
/// cheaper entries so a debug-build self-hosted run stays fast.
const MISS_ROTATION: &[&str] = &["fig4", "fig5", "sp2", "ablation"];

/// What one reply turned out to be.
enum Outcome {
    Ok {
        cached: bool,
    },
    /// An error reply that the script predicted (cancel traffic).
    Expected,
    /// An `overloaded` reply — counted, fatal only with
    /// `--expect-no-shed`.
    Shed,
    Unexpected(String),
}

/// One scripted request: the frame to send and whether an error reply
/// is the predicted outcome (cancel traffic).
struct Step {
    frame: String,
    expect_error: bool,
}

/// The deterministic per-client script. `quick` drops the cancel
/// category, leaving only traffic that must succeed.
fn client_script(client: usize, per_client: usize, quick: bool) -> Vec<Step> {
    let categories = if quick { 3 } else { 4 };
    let solve = |name: &str| {
        frame_for_name(
            name,
            &RequestSpec {
                deadline_ms: Some(120_000),
                ..RequestSpec::default()
            },
        )
    };
    (0..per_client)
        .map(|j| match j % categories {
            0 => Step {
                frame: solve("fig2"),
                expect_error: false,
            },
            1 => Step {
                frame: solve(MISS_ROTATION[(client + j) % MISS_ROTATION.len()]),
                expect_error: false,
            },
            2 => Step {
                frame: solve("fig3"),
                expect_error: false,
            },
            _ => Step {
                frame: frame_for_name(
                    "fig3_heavy",
                    &RequestSpec {
                        op: Some(Op::Sweep),
                        deadline_ms: Some(1),
                        ..RequestSpec::default()
                    },
                ),
                expect_error: true,
            },
        })
        .collect()
}

fn classify(reply: &str, expect_error: bool) -> Outcome {
    if frame_is_ok(reply) {
        return Outcome::Ok {
            cached: reply.contains(r#""cached":true"#),
        };
    }
    if reply.contains(r#""kind":"overloaded""#) {
        return Outcome::Shed;
    }
    if expect_error
        && (reply.contains(r#""kind":"deadline_exceeded""#)
            || reply.contains(r#""kind":"cancelled""#))
    {
        return Outcome::Expected;
    }
    Outcome::Unexpected(reply.to_string())
}

/// Client-side tallies across every thread.
struct LoadTally {
    ok: u64,
    cached: u64,
    expected_errors: u64,
    shed: u64,
    unexpected: Vec<String>,
    latencies_ms: Vec<f64>,
    wall_ms: f64,
}

fn percentile(sorted: &[f64], p: f64) -> Option<f64> {
    if sorted.is_empty() {
        return None;
    }
    let idx = ((sorted.len() as f64 * p).floor() as usize).min(sorted.len() - 1);
    Some(sorted[idx])
}

/// Run the scripted load against `addr` and collect the tallies.
fn drive(addr: &str, clients: usize, per_client: usize, quick: bool) -> Result<LoadTally, String> {
    let barrier = Barrier::new(clients);
    let start = Instant::now();
    let per_thread: Vec<Vec<(f64, Outcome)>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..clients)
            .map(|i| {
                let barrier = &barrier;
                s.spawn(move || -> Result<Vec<(f64, Outcome)>, String> {
                    // Reach the barrier even when the connect fails, so a
                    // refused connection can't strand the other clients.
                    let connected = Client::connect(addr)
                        .map_err(|e| format!("cannot connect to `{addr}`: {e}"));
                    let script = client_script(i, per_client, quick);
                    barrier.wait();
                    let mut client = connected?;
                    let mut out = Vec::with_capacity(script.len());
                    for step in script {
                        let sent = Instant::now();
                        let reply = client
                            .request_line(&step.frame)
                            .map_err(|e| format!("client {i}: {e}"))?;
                        let latency = sent.elapsed().as_secs_f64() * 1e3;
                        out.push((latency, classify(&reply, step.expect_error)));
                    }
                    Ok(out)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client thread panicked"))
            .collect::<Result<Vec<_>, String>>()
    })?;
    let wall_ms = start.elapsed().as_secs_f64() * 1e3;
    let mut tally = LoadTally {
        ok: 0,
        cached: 0,
        expected_errors: 0,
        shed: 0,
        unexpected: Vec::new(),
        latencies_ms: Vec::new(),
        wall_ms,
    };
    for (latency, outcome) in per_thread.into_iter().flatten() {
        tally.latencies_ms.push(latency);
        match outcome {
            Outcome::Ok { cached } => {
                tally.ok += 1;
                tally.cached += u64::from(cached);
            }
            Outcome::Expected => tally.expected_errors += 1,
            Outcome::Shed => tally.shed += 1,
            Outcome::Unexpected(reply) => tally.unexpected.push(reply),
        }
    }
    tally
        .latencies_ms
        .sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    Ok(tally)
}

/// Entry point for `gsched loadtest`.
pub fn run(args: &[String]) -> Result<(), String> {
    let (pos, flags) = crate::parse_flags(args)?;
    if !pos.is_empty() {
        return Err(format!("loadtest: unexpected argument `{}`", pos[0]));
    }
    let quick = flags.contains_key("quick");
    let clients =
        (crate::flag_f64(&flags, "clients", if quick { 3.0 } else { 4.0 })? as usize).max(1);
    let per_client =
        (crate::flag_f64(&flags, "requests", if quick { 6.0 } else { 8.0 })? as usize).max(1);
    let label = flags.get("label").cloned().unwrap_or_else(|| {
        if quick {
            "loadtest_quick".to_string()
        } else {
            "loadtest".to_string()
        }
    });
    if !label
        .chars()
        .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-')
    {
        return Err(format!(
            "--label `{label}` must be alphanumeric (plus `_` and `-`); it names the output file"
        ));
    }

    // External mode drives a live server; self-hosted mode binds one
    // in-process and captures its solver telemetry.
    let external = flags.get("addr").cloned();
    let mut recorder = None;
    let (addr, hosted) = match &external {
        Some(addr) => (addr.clone(), None),
        None => {
            recorder = Some(obs::install_memory());
            let config = ServeConfig::builder()
                .addr("127.0.0.1:0")
                .workers(crate::flag_f64(&flags, "workers", 2.0)? as usize)
                .cache_capacity(256)
                .queue_limit(crate::flag_f64(&flags, "queue-limit", 0.0)? as usize)
                .build()
                .map_err(|e| format!("loadtest: {}", e.message))?;
            let server =
                Server::bind(&config).map_err(|e| format!("cannot bind `{}`: {e}", config.addr))?;
            let addr = server.local_addr().map_err(|e| e.to_string())?.to_string();
            (addr, Some(server))
        }
    };
    let tally = if let Some(server) = &hosted {
        let result = std::thread::scope(|s| {
            let running = s.spawn(|| server.run());
            let tally = drive(&addr, clients, per_client, quick);
            // Stop the in-process server whether or not the load
            // succeeded, so the scope always joins.
            if let Ok(mut client) = Client::connect(&addr) {
                let _ = client.request_line(&control_frame(Op::Shutdown, None));
            }
            running.join().expect("server thread panicked").ok();
            tally
        });
        if recorder.is_some() {
            obs::uninstall();
        }
        result?
    } else {
        drive(&addr, clients, per_client, quick)?
    };

    if !tally.unexpected.is_empty() {
        return Err(format!(
            "loadtest: {} unexpected error repl(y/ies); first: {}",
            tally.unexpected.len(),
            tally.unexpected[0]
        ));
    }
    if flags.contains_key("expect-no-shed") && tally.shed > 0 {
        return Err(format!(
            "loadtest: {} request(s) shed at a load that must not shed",
            tally.shed
        ));
    }

    let total = tally.ok + tally.expected_errors + tally.shed;
    let wall_secs = tally.wall_ms / 1e3;
    let rps = if wall_secs > 0.0 {
        Some(total as f64 / wall_secs)
    } else {
        None
    };
    let snap = recorder.map(|r| r.snapshot());
    let counter = |name: &str| snap.as_ref().and_then(|s| s.counter(name)).unwrap_or(0);
    let scenario = ScenarioResult {
        name: SCENARIO_NAME.to_string(),
        kind: "loadtest".to_string(),
        wall_ms: tally.wall_ms,
        points: tally.ok,
        fp_iterations: counter("core.solver.fp_iterations"),
        rmatrix_solves: counter("qbd.rmatrix.solves"),
        rmatrix_iterations: counter("qbd.rmatrix.iterations"),
        max_r_residual: None,
        max_spectral_radius: None,
        min_drift_margin: None,
        sim_events: 0,
        sim_event_rate: None,
        warm_hits: counter("engine.warm.hits"),
        warm_misses: counter("engine.warm.misses"),
        parallel_speedup: None,
        matmul_calls: 0,
        matmul_flops: 0,
        lu_factorizations: 0,
        lu_flops: 0,
        triangular_solves: 0,
        triangular_flops: 0,
        phases: snap
            .as_ref()
            .map(bench::phase_breakdown)
            .unwrap_or_default(),
        requests: total,
        request_errors: tally.expected_errors,
        shed: tally.shed,
        cached_hits: tally.cached,
        p50_ms: percentile(&tally.latencies_ms, 0.50),
        p99_ms: percentile(&tally.latencies_ms, 0.99),
        rps,
    };
    let report = BenchReport {
        schema_version: BENCH_SCHEMA_VERSION,
        label: label.clone(),
        reps: 1,
        quick,
        jobs: clients as u64,
        scenarios: vec![scenario],
    };

    if flags.contains_key("json") {
        println!("{}", report.to_json());
    } else {
        let s = &report.scenarios[0];
        println!(
            "loadtest: {clients} clients x {per_client} requests against {addr}{}",
            if hosted.is_some() {
                " (self-hosted)"
            } else {
                ""
            }
        );
        println!(
            "replies   {} ok ({} cached), {} expected error(s), {} shed",
            s.points, s.cached_hits, s.request_errors, s.shed
        );
        println!(
            "latency   p50 {:.1} ms, p99 {:.1} ms",
            s.p50_ms.unwrap_or(0.0),
            s.p99_ms.unwrap_or(0.0)
        );
        println!(
            "throughput {:.1} req/s over {:.2} s",
            s.rps.unwrap_or(0.0),
            wall_secs
        );
    }
    let dir = flags.get("out").map(String::as_str).unwrap_or(".");
    let out_path = format!("{dir}/BENCH_{label}.json");
    gsched_obs::write_atomic(&out_path, report.to_json().as_bytes())
        .map_err(|e| format!("cannot write `{out_path}`: {e}"))?;
    println!("wrote {out_path}");
    if !flags.contains_key("no-history") {
        let history_path = flags
            .get("history")
            .map(String::as_str)
            .unwrap_or(trend::DEFAULT_HISTORY_PATH);
        trend::append_history(history_path, &report)?;
        println!("appended history row to {history_path}");
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scripts_are_deterministic_and_mix_categories() {
        let a = client_script(1, 8, false);
        let b = client_script(1, 8, false);
        assert_eq!(a.len(), 8);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.frame, y.frame);
            assert_eq!(x.expect_error, y.expect_error);
        }
        // Full scripts carry cancel traffic; quick scripts never do.
        assert!(a.iter().any(|s| s.expect_error));
        assert!(client_script(1, 8, true).iter().all(|s| !s.expect_error));
        // Cancel steps ask for a sweep with a 1 ms deadline.
        let cancel = a.iter().find(|s| s.expect_error).unwrap();
        assert!(cancel.frame.contains(r#""op":"sweep""#), "{}", cancel.frame);
        assert!(
            cancel.frame.contains(r#""deadline_ms":1"#),
            "{}",
            cancel.frame
        );
    }

    #[test]
    fn classify_separates_reply_shapes() {
        assert!(matches!(
            classify(r#"{"status":"ok","cached":true,"result":{}}"#, false),
            Outcome::Ok { cached: true }
        ));
        assert!(matches!(
            classify(
                r#"{"status":"error","error":{"kind":"overloaded","message":"full"}}"#,
                false
            ),
            Outcome::Shed
        ));
        assert!(matches!(
            classify(
                r#"{"status":"error","error":{"kind":"deadline_exceeded","message":"late"}}"#,
                true
            ),
            Outcome::Expected
        ));
        // The same deadline error is NOT acceptable on traffic that was
        // supposed to succeed.
        assert!(matches!(
            classify(
                r#"{"status":"error","error":{"kind":"deadline_exceeded","message":"late"}}"#,
                false
            ),
            Outcome::Unexpected(_)
        ));
    }

    #[test]
    fn percentiles_use_sorted_order() {
        let xs = vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0, 10.0];
        assert_eq!(percentile(&xs, 0.50), Some(6.0));
        assert_eq!(percentile(&xs, 0.99), Some(10.0));
        assert_eq!(percentile(&[], 0.50), None);
    }

    /// End-to-end: a quick self-hosted run completes every scripted
    /// request with zero shed and records latency percentiles.
    #[test]
    fn self_hosted_quick_loadtest_completes() {
        let dir = std::env::temp_dir().join(format!("gsched-loadtest-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let history = dir.join("history.ndjson");
        let _ = std::fs::remove_file(&history);
        let args: Vec<String> = [
            "--quick",
            "--clients",
            "2",
            "--requests",
            "3",
            "--expect-no-shed",
            "--label",
            "unit",
            "--out",
            dir.to_str().unwrap(),
            "--history",
            history.to_str().unwrap(),
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        run(&args).unwrap();
        let text = std::fs::read_to_string(dir.join("BENCH_unit.json")).unwrap();
        let report = BenchReport::from_json(&text).unwrap();
        assert_eq!(report.scenarios.len(), 1);
        let s = &report.scenarios[0];
        assert_eq!(s.name, SCENARIO_NAME);
        assert_eq!(s.kind, "loadtest");
        assert_eq!(s.requests, 6);
        assert_eq!(s.points, 6, "every quick request must succeed");
        assert_eq!(s.request_errors, 0);
        assert_eq!(s.shed, 0);
        assert!(s.p50_ms.unwrap() > 0.0);
        assert!(s.p99_ms.unwrap() >= s.p50_ms.unwrap());
        assert!(s.rps.unwrap() > 0.0);
        // The self-hosted server's solver telemetry was captured.
        assert!(s.fp_iterations > 0, "expected captured solver work");
        // One history row appended and parseable.
        let (rows, skipped) = trend::load_history(history.to_str().unwrap()).unwrap();
        assert_eq!((rows.len(), skipped), (1, 0));
    }
}
