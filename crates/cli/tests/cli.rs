//! End-to-end tests of the `gsched` binary.

use std::io::Write;
use std::process::Command;

fn gsched() -> Command {
    Command::new(env!("CARGO_BIN_EXE_gsched"))
}

fn write_model(dir: &std::path::Path) -> std::path::PathBuf {
    let model = r#"{
      "processors": 4,
      "classes": [
        {
          "partition_size": 4,
          "arrival": { "type": "exponential", "rate": 0.2 },
          "service": { "type": "exponential", "rate": 1.0 },
          "quantum": { "type": "erlang", "stages": 2, "rate": 1.0 },
          "switch_overhead": { "type": "exponential", "rate": 100.0 }
        },
        {
          "partition_size": 1,
          "arrival": { "type": "exponential", "rate": 0.8 },
          "service": { "type": "exponential", "rate": 1.5 },
          "quantum": { "type": "erlang", "stages": 2, "rate": 1.0 },
          "switch_overhead": { "type": "exponential", "rate": 100.0 }
        }
      ]
    }"#;
    let path = dir.join("model.json");
    let mut f = std::fs::File::create(&path).unwrap();
    f.write_all(model.as_bytes()).unwrap();
    path
}

fn tmpdir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("gsched-cli-test-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn solve_human_output() {
    let dir = tmpdir("solve");
    let model = write_model(&dir);
    let out = gsched().arg("solve").arg(&model).output().unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("machine: P = 4"), "{text}");
    assert!(text.contains("all stable = true"), "{text}");
}

#[test]
fn solve_json_output_is_json() {
    let dir = tmpdir("solvejson");
    let model = write_model(&dir);
    let out = gsched()
        .arg("solve")
        .arg(&model)
        .arg("--json")
        .output()
        .unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    let parsed: serde_json::Value = serde_json::from_str(text.trim()).expect("valid JSON");
    assert_eq!(parsed["all_stable"], serde_json::Value::Bool(true));
    assert!(parsed["classes"].as_array().unwrap().len() == 2);
    assert!(parsed["classes"][0]["mean_jobs"].as_f64().unwrap() > 0.0);
}

#[test]
fn simulate_runs_each_policy() {
    let dir = tmpdir("sim");
    let model = write_model(&dir);
    for policy in ["gang", "lend", "rr", "fcfs"] {
        let out = gsched()
            .arg("simulate")
            .arg(&model)
            .args(["--policy", policy, "--horizon", "5000", "--json"])
            .output()
            .unwrap();
        assert!(
            out.status.success(),
            "policy {policy}: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        let text = String::from_utf8_lossy(&out.stdout);
        let parsed: serde_json::Value = serde_json::from_str(text.trim()).unwrap();
        assert!(
            parsed["classes"][0]["completions"].as_u64().unwrap() > 0,
            "policy {policy}"
        );
    }
}

#[test]
fn tune_reports_a_quantum() {
    let dir = tmpdir("tune");
    let model = write_model(&dir);
    let out = gsched()
        .arg("tune")
        .arg(&model)
        .args(["--lo", "0.05", "--hi", "10", "--json"])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let parsed: serde_json::Value =
        serde_json::from_str(String::from_utf8_lossy(&out.stdout).trim()).unwrap();
    let q = parsed["quantum"].as_f64().unwrap();
    assert!((0.05..=10.0).contains(&q));
}

#[test]
fn stability_always_stable_class() {
    let dir = tmpdir("stab");
    let model = write_model(&dir);
    let out = gsched()
        .arg("stability")
        .arg(&model)
        .args(["--class", "1", "--lo", "0.5", "--hi", "5"])
        .output()
        .unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("stable"), "{text}");
}

#[test]
fn paper_subcommand() {
    let out = gsched()
        .arg("paper")
        .args(["--rho", "0.3", "--quantum", "1.0", "--json"])
        .output()
        .unwrap();
    assert!(out.status.success());
    let parsed: serde_json::Value =
        serde_json::from_str(String::from_utf8_lossy(&out.stdout).trim()).unwrap();
    assert_eq!(parsed["classes"].as_array().unwrap().len(), 4);
}

#[test]
fn example_model_roundtrip() {
    let out = gsched().arg("example-model").output().unwrap();
    assert!(out.status.success());
    let dir = tmpdir("roundtrip");
    let path = dir.join("example.json");
    std::fs::write(&path, &out.stdout).unwrap();
    let solved = gsched().arg("solve").arg(&path).output().unwrap();
    assert!(solved.status.success());
}

#[test]
fn doctor_prints_health_table() {
    let dir = tmpdir("doctor");
    let model = write_model(&dir);
    let out = gsched().arg("doctor").arg(&model).output().unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("drift_slack"), "{text}");
    assert!(text.contains("sp(R)"), "{text}");
    assert!(text.contains("R_residual"), "{text}");
    assert!(text.contains("all stable = true"), "{text}");
}

#[test]
fn doctor_json_has_per_class_health() {
    let dir = tmpdir("doctorjson");
    let model = write_model(&dir);
    let out = gsched()
        .arg("doctor")
        .arg(&model)
        .arg("--json")
        .output()
        .unwrap();
    assert!(out.status.success());
    let parsed: serde_json::Value =
        serde_json::from_str(String::from_utf8_lossy(&out.stdout).trim()).unwrap();
    assert_eq!(parsed["all_stable"], serde_json::Value::Bool(true));
    let classes = parsed["classes"].as_array().unwrap();
    assert_eq!(classes.len(), 2);
    for c in classes {
        assert!(c["drift_margin"].as_f64().unwrap() > 0.0);
        let sp = c["spectral_radius"].as_f64().unwrap();
        assert!(sp > 0.0 && sp < 1.0, "sp(R) = {sp}");
        assert!(c["r_residual"].as_f64().unwrap() < 1e-8);
    }
}

#[test]
fn doctor_warns_with_tight_thresholds() {
    // Force warnings by making the thresholds impossible to satisfy.
    let dir = tmpdir("doctorwarn");
    let model = write_model(&dir);
    let out = gsched()
        .arg("doctor")
        .arg(&model)
        .args(["--warn-drift", "1.0", "--warn-gap", "1.0"])
        .output()
        .unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("WARN"), "{text}");
}

#[test]
fn trace_flag_writes_valid_chrome_trace() {
    let dir = tmpdir("trace");
    let model = write_model(&dir);
    let trace = dir.join("trace.json");
    let out = gsched()
        .arg("solve")
        .arg(&model)
        .args(["--trace", trace.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = std::fs::read_to_string(&trace).unwrap();
    let parsed: serde_json::Value = serde_json::from_str(&text).expect("valid trace JSON");
    let events = parsed["traceEvents"].as_array().unwrap();
    // At least the top-level core.solve span plus metadata records.
    let complete: Vec<&serde_json::Value> = events
        .iter()
        .filter(|e| e["ph"] == serde_json::Value::String("X".to_string()))
        .collect();
    assert!(!complete.is_empty(), "{text}");
    for ev in &complete {
        assert!(ev["ts"].as_f64().unwrap() >= 0.0);
        assert!(ev["dur"].as_f64().unwrap() >= 0.0);
        assert!(ev["name"].as_str().is_some());
    }
    assert!(events
        .iter()
        .any(|e| e["ph"] == serde_json::Value::String("M".to_string())));
    assert!(complete
        .iter()
        .any(|e| e["args"]["path"].as_str().unwrap().contains("core.solve")));
}

#[test]
fn bench_quick_writes_schema_versioned_report() {
    let dir = tmpdir("bench");
    let out = gsched()
        .arg("bench")
        .args([
            "--quick",
            "--no-history",
            "--label",
            "smoke",
            "--out",
            dir.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = std::fs::read_to_string(dir.join("BENCH_smoke.json")).unwrap();
    let parsed: serde_json::Value = serde_json::from_str(&text).unwrap();
    assert_eq!(parsed["schema_version"].as_f64().unwrap(), 3.0);
    assert_eq!(parsed["label"].as_str().unwrap(), "smoke");
    assert!(parsed["jobs"].as_u64().unwrap() >= 1);
    let scenarios = parsed["scenarios"].as_array().unwrap();
    let names: Vec<&str> = scenarios
        .iter()
        .map(|s| s["name"].as_str().unwrap())
        .collect();
    for want in ["fig2", "fig3", "fig4", "fig5", "sim_"] {
        assert!(
            names.iter().any(|n| n.starts_with(want)),
            "missing {want} in {names:?}"
        );
    }
    for s in scenarios {
        assert!(s["wall_ms"].as_f64().unwrap() > 0.0);
    }
    // Solver scenarios carry numerical telemetry.
    let fig2 = scenarios
        .iter()
        .find(|s| s["name"].as_str().unwrap().starts_with("fig2"))
        .unwrap();
    assert!(fig2["rmatrix_solves"].as_f64().unwrap() > 0.0);
    assert!(fig2["max_r_residual"].as_f64().unwrap() >= 0.0);
    // Sweep scenarios are warm-started and count hits/misses per point.
    let hits = fig2["warm_hits"].as_u64().unwrap();
    let misses = fig2["warm_misses"].as_u64().unwrap();
    assert_eq!(hits + misses, fig2["points"].as_u64().unwrap());
    assert!(hits > misses, "warm hit rate should exceed 50%");
    // The sim scenario counts events.
    let sim = scenarios
        .iter()
        .find(|s| s["name"].as_str().unwrap().starts_with("sim_"))
        .unwrap();
    assert!(sim["sim_events"].as_f64().unwrap() > 0.0);
}

#[test]
fn bench_compare_gates_on_injected_regression() {
    let dir = tmpdir("benchgate");
    // First run produces the baseline.
    let out = gsched()
        .arg("bench")
        .args([
            "--quick",
            "--no-history",
            "--label",
            "base",
            "--out",
            dir.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let base_path = dir.join("BENCH_base.json");
    let text = std::fs::read_to_string(&base_path).unwrap();
    // Inject a regression: pretend the baseline was 10000x faster.
    let doctored: String = text
        .lines()
        .map(|l| {
            if let Some(idx) = l.find("\"wall_ms\":") {
                format!("{}\"wall_ms\": 0.0001,", &l[..idx])
            } else {
                l.to_string()
            }
        })
        .collect::<Vec<_>>()
        .join("\n");
    let doctored_path = dir.join("doctored.json");
    std::fs::write(&doctored_path, doctored).unwrap();
    let out = gsched()
        .arg("bench")
        .args([
            "--quick",
            "--no-history",
            "--label",
            "gate",
            "--out",
            dir.to_str().unwrap(),
            "--compare",
            doctored_path.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(
        !out.status.success(),
        "compare against a doctored fast baseline must fail"
    );
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("regress"), "{err}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("REGRESSED"), "{stdout}");
    // Comparing a run against itself passes with a generous threshold.
    let self_path = dir.join("BENCH_gate.json");
    let out = gsched()
        .arg("bench")
        .args([
            "--quick",
            "--no-history",
            "--label",
            "selfcheck",
            "--out",
            dir.to_str().unwrap(),
            "--compare",
            self_path.to_str().unwrap(),
            "--threshold",
            "20.0",
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(String::from_utf8_lossy(&out.stdout).contains("no wall-time regressions"));
}

#[test]
fn sweep_parity_check_and_json() {
    let out = gsched()
        .arg("sweep")
        .args(["fig4", "--quick", "--jobs", "2", "--parity-check", "--json"])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let parsed: serde_json::Value =
        serde_json::from_str(String::from_utf8_lossy(&out.stdout).trim()).unwrap();
    let reports = parsed.as_array().unwrap();
    assert_eq!(reports.len(), 1);
    let rep = &reports[0];
    assert_eq!(rep["figure"].as_str().unwrap(), "fig4");
    let points = rep["points"].as_array().unwrap();
    assert_eq!(points.len(), 2);
    for p in points {
        assert_eq!(p["ok"], serde_json::Value::Bool(true));
        assert!(p["mean_response"][0].as_f64().unwrap() > 0.0);
    }
    assert_eq!(
        rep["warm_hits"].as_u64().unwrap() + rep["warm_misses"].as_u64().unwrap(),
        2
    );
}

#[test]
fn sweep_human_output_reports_warm_rate() {
    let out = gsched()
        .arg("sweep")
        .args(["fig5", "--quick", "--jobs", "1"])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("fig5:"), "{text}");
    assert!(text.contains("warm hit rate"), "{text}");
}

#[test]
fn sweep_rejects_unknown_figure() {
    // Non-figure names fall through to scenario resolution (registry name
    // or file), so the failure names the registry rather than the figures.
    let out = gsched().arg("sweep").arg("fig9").output().unwrap();
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("unknown scenario"), "{err}");
}

#[test]
fn bench_rejects_bad_label() {
    let out = gsched()
        .arg("bench")
        .args(["--quick", "--label", "../evil"])
        .output()
        .unwrap();
    assert!(!out.status.success());
}

#[test]
fn solve_scenario_by_registry_name() {
    let out = gsched()
        .args(["solve", "--scenario", "ablation", "--json"])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let parsed: serde_json::Value =
        serde_json::from_str(String::from_utf8_lossy(&out.stdout).trim()).unwrap();
    assert_eq!(parsed["all_stable"], serde_json::Value::Bool(true));
    assert_eq!(parsed["classes"].as_array().unwrap().len(), 4);
}

#[test]
fn simulate_scenario_uses_its_config() {
    let out = gsched()
        .args([
            "simulate",
            "--scenario",
            "ablation",
            "--horizon",
            "5000",
            "--json",
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let parsed: serde_json::Value =
        serde_json::from_str(String::from_utf8_lossy(&out.stdout).trim()).unwrap();
    assert!(parsed["classes"][0]["completions"].as_u64().unwrap() > 0);
}

#[test]
fn sweep_accepts_scenario_flag() {
    let out = gsched()
        .args(["sweep", "--scenario", "fig4", "--quick", "--json"])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let parsed: serde_json::Value =
        serde_json::from_str(String::from_utf8_lossy(&out.stdout).trim()).unwrap();
    let reports = parsed.as_array().unwrap();
    assert_eq!(reports.len(), 1);
    assert_eq!(reports[0]["figure"].as_str().unwrap(), "fig4");
    for p in reports[0]["points"].as_array().unwrap() {
        assert_eq!(p["ok"], serde_json::Value::Bool(true));
    }
}

#[test]
fn validate_registry_scenario_reports_stability() {
    let out = gsched()
        .args(["validate", "fig2", "--json"])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let parsed: serde_json::Value =
        serde_json::from_str(String::from_utf8_lossy(&out.stdout).trim()).unwrap();
    let rep = &parsed.as_array().unwrap()[0];
    assert_eq!(rep["name"].as_str().unwrap(), "fig2");
    assert_eq!(rep["ok"], serde_json::Value::Bool(true));
    let classes = rep["classes"].as_array().unwrap();
    assert_eq!(classes.len(), 4);
    for c in classes {
        assert_eq!(c["stable"], serde_json::Value::Bool(true));
        assert!(c["drift_margin"].as_f64().unwrap() > 0.0);
    }
}

#[test]
fn validate_fails_on_unstable_scenario_file() {
    let dir = tmpdir("validate-unstable");
    let scenario = r#"{
      "name": "overload",
      "machine": {
        "processors": 4,
        "classes": [
          {
            "partition_size": 4,
            "arrival": { "type": "exponential", "rate": 5.0 },
            "service": { "type": "exponential", "rate": 1.0 },
            "quantum": { "type": "erlang", "stages": 2, "rate": 1.0 },
            "switch_overhead": { "type": "exponential", "rate": 100.0 }
          }
        ]
      }
    }"#;
    let path = dir.join("overload.json");
    std::fs::write(&path, scenario).unwrap();
    let out = gsched().arg("validate").arg(&path).output().unwrap();
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("failed validation"), "{err}");
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("ERROR"), "{text}");
}

#[test]
fn xval_scenario_within_tolerance() {
    let out = gsched()
        .args([
            "xval",
            "ablation",
            "--points",
            "1",
            "--horizon-scale",
            "0.2",
            "--json",
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let parsed: serde_json::Value =
        serde_json::from_str(String::from_utf8_lossy(&out.stdout).trim()).unwrap();
    let rep = &parsed.as_array().unwrap()[0];
    assert_eq!(rep["scenario"].as_str().unwrap(), "ablation");
    assert_eq!(rep["passed"], serde_json::Value::Bool(true));
    assert!(rep["compared_points"].as_u64().unwrap() >= 1);
    let rows = rep["points"][0]["rows"].as_array().unwrap();
    assert_eq!(rows.len(), 4);
    for r in rows {
        assert_eq!(r["pass"], serde_json::Value::Bool(true));
        assert!(r["analytic"].as_f64().unwrap() > 0.0);
        assert!(r["simulated"].as_f64().unwrap() > 0.0);
    }
}

#[test]
fn example_scenario_round_trips_through_solve_and_validate() {
    let out = gsched().arg("example-scenario").output().unwrap();
    assert!(out.status.success());
    let dir = tmpdir("scenario-roundtrip");
    let path = dir.join("scenario.json");
    std::fs::write(&path, &out.stdout).unwrap();
    let solved = gsched()
        .arg("solve")
        .args(["--scenario", path.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(
        solved.status.success(),
        "{}",
        String::from_utf8_lossy(&solved.stderr)
    );
    let validated = gsched().arg("validate").arg(&path).output().unwrap();
    assert!(
        validated.status.success(),
        "{}",
        String::from_utf8_lossy(&validated.stderr)
    );
}

#[test]
fn bench_scenario_flag_runs_one_scenario() {
    let dir = tmpdir("bench-scenario");
    let out = gsched()
        .arg("bench")
        .args([
            "--quick",
            "--no-history",
            "--scenario",
            "ablation",
            "--label",
            "one",
            "--out",
            dir.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = std::fs::read_to_string(dir.join("BENCH_one.json")).unwrap();
    let parsed: serde_json::Value = serde_json::from_str(&text).unwrap();
    let scenarios = parsed["scenarios"].as_array().unwrap();
    assert_eq!(scenarios.len(), 1);
    assert_eq!(scenarios[0]["name"].as_str().unwrap(), "ablation");
    assert_eq!(scenarios[0]["kind"].as_str().unwrap(), "sim");
}

#[test]
fn scenario_lookup_rejects_unknown_name() {
    let out = gsched()
        .args(["solve", "--scenario", "no_such_scenario"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("unknown scenario"), "{err}");
    assert!(err.contains("fig2"), "should list registry names: {err}");
}

#[test]
fn missing_file_fails_cleanly() {
    let out = gsched()
        .arg("solve")
        .arg("/nonexistent/nope.json")
        .output()
        .unwrap();
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("cannot read"), "{err}");
}

/// Start `gsched serve` on an ephemeral port and parse the bound address
/// from its "listening on ..." line.
fn spawn_server(diag: Option<&std::path::Path>) -> (std::process::Child, String) {
    use std::io::BufRead;
    let mut cmd = gsched();
    cmd.args(["serve", "--addr", "127.0.0.1:0", "--workers", "2"])
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::piped());
    if let Some(path) = diag {
        cmd.args(["--diag", path.to_str().unwrap()]);
    }
    let mut child = cmd.spawn().unwrap();
    let stdout = child.stdout.take().unwrap();
    let mut lines = std::io::BufReader::new(stdout).lines();
    let banner = lines.next().expect("server banner").unwrap();
    let addr = banner
        .strip_prefix("listening on ")
        .unwrap_or_else(|| panic!("unexpected banner {banner:?}"))
        .split_whitespace()
        .next()
        .unwrap()
        .to_string();
    (child, addr)
}

fn request(addr: &str, args: &[&str]) -> std::process::Output {
    gsched()
        .arg("request")
        .args(args)
        .args(["--addr", addr])
        .output()
        .unwrap()
}

#[test]
fn serve_caches_repeat_requests_and_matches_local_solve() {
    let dir = tmpdir("serve");
    let diag_path = dir.join("serve_diag.json");
    let (mut server, addr) = spawn_server(Some(&diag_path));

    let first = request(&addr, &["fig2"]);
    let second = request(&addr, &["fig2"]);
    assert!(
        first.status.success() && second.status.success(),
        "{}\n{}",
        String::from_utf8_lossy(&first.stderr),
        String::from_utf8_lossy(&second.stderr)
    );
    // The cache replay must be byte-identical to the first answer...
    assert_eq!(first.stdout, second.stdout);
    // ...and both must match solving the same scenario locally.
    let local = gsched()
        .args(["solve", "--scenario", "fig2", "--json"])
        .output()
        .unwrap();
    assert!(local.status.success());
    assert_eq!(first.stdout, local.stdout, "served != local solve --json");

    // The full second frame says it was a cache hit.
    let framed = request(&addr, &["fig2", "--frame", "--id", "check"]);
    assert!(framed.status.success());
    let frame: serde_json::Value =
        serde_json::from_str(String::from_utf8_lossy(&framed.stdout).trim()).unwrap();
    assert_eq!(frame["status"].as_str().unwrap(), "ok");
    assert_eq!(frame["id"].as_str().unwrap(), "check");
    assert_eq!(frame["cached"], serde_json::Value::Bool(true));

    // Server-side stats agree: one miss (the first request), hits after.
    let stats = request(&addr, &["--op", "stats"]);
    assert!(stats.status.success());
    let stats: serde_json::Value =
        serde_json::from_str(String::from_utf8_lossy(&stats.stdout).trim()).unwrap();
    assert_eq!(stats["cache_misses"].as_u64(), Some(1));
    assert_eq!(stats["cache_hits"].as_u64(), Some(2));

    let bye = request(&addr, &["--op", "shutdown"]);
    assert!(bye.status.success());
    let status = server.wait().unwrap();
    assert!(status.success(), "server exited {status:?}");

    // The diagnostics snapshot shows exactly one miss and exactly one
    // engine solve: cache hits never re-ran the solver.
    let diag: serde_json::Value =
        serde_json::from_str(&std::fs::read_to_string(&diag_path).unwrap()).unwrap();
    let counter = |name: &str| {
        diag["counters"]
            .as_array()
            .unwrap()
            .iter()
            .find(|c| c["name"].as_str() == Some(name))
            .unwrap_or_else(|| panic!("missing counter {name}"))["value"]
            .as_u64()
            .unwrap()
    };
    assert_eq!(counter("service.cache.misses"), 1);
    assert_eq!(counter("service.cache.hits"), 2);
    assert_eq!(counter("core.solver.solves"), 1);
}

#[test]
fn serve_returns_structured_errors_and_survives() {
    let (mut server, addr) = spawn_server(None);
    let bad = request(&addr, &["no_such_scenario"]);
    assert!(!bad.status.success());
    let frame: serde_json::Value =
        serde_json::from_str(String::from_utf8_lossy(&bad.stdout).trim()).unwrap();
    assert_eq!(frame["status"].as_str().unwrap(), "error");
    assert_eq!(frame["error"]["kind"].as_str().unwrap(), "unknown_scenario");
    // The server is still alive and serving.
    let ok = request(&addr, &["fig4"]);
    assert!(
        ok.status.success(),
        "{}",
        String::from_utf8_lossy(&ok.stderr)
    );
    let bye = request(&addr, &["--op", "shutdown"]);
    assert!(bye.status.success());
    assert!(server.wait().unwrap().success());
}

#[test]
fn validate_json_failure_emits_error_frame() {
    let dir = tmpdir("validate-frame");
    let scenario = r#"{
      "name": "overload",
      "machine": {
        "processors": 4,
        "classes": [
          {
            "partition_size": 4,
            "arrival": { "type": "exponential", "rate": 5.0 },
            "service": { "type": "exponential", "rate": 1.0 },
            "quantum": { "type": "erlang", "stages": 2, "rate": 1.0 },
            "switch_overhead": { "type": "exponential", "rate": 100.0 }
          }
        ]
      }
    }"#;
    let path = dir.join("overload.json");
    std::fs::write(&path, scenario).unwrap();
    let out = gsched()
        .arg("validate")
        .arg(&path)
        .arg("--json")
        .output()
        .unwrap();
    assert!(!out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    // Last stdout line is a service-style error frame.
    let frame: serde_json::Value =
        serde_json::from_str(text.trim().lines().last().unwrap()).unwrap();
    assert_eq!(frame["status"].as_str().unwrap(), "error");
    assert_eq!(
        frame["error"]["kind"].as_str().unwrap(),
        "validation_failed"
    );
    assert!(frame["error"]["message"]
        .as_str()
        .unwrap()
        .contains("failed validation"));
}

#[test]
fn bad_flags_fail_cleanly() {
    let out = gsched().arg("frobnicate").output().unwrap();
    assert!(!out.status.success());
    let dir = tmpdir("badflag");
    let model = write_model(&dir);
    let out = gsched()
        .arg("simulate")
        .arg(&model)
        .args(["--policy", "bogus"])
        .output()
        .unwrap();
    assert!(!out.status.success());
}

#[test]
fn profile_quick_json_attributes_wall_time() {
    let out = gsched()
        .arg("profile")
        .arg("fig2")
        .args(["--quick", "--json"])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let parsed: serde_json::Value =
        serde_json::from_str(String::from_utf8_lossy(&out.stdout).trim()).unwrap();
    assert_eq!(parsed["profile_schema_version"].as_f64().unwrap(), 1.0);
    // The headline invariant: span attribution accounts for >= 90% of wall time.
    let fraction = parsed["attributed_fraction"].as_f64().unwrap();
    assert!(fraction >= 0.9, "attributed_fraction {fraction} < 0.9");
    // Kernel counters are live: the solve must do real matmul and LU work.
    let kernels = parsed["kernels"].as_array().unwrap();
    let flops_of = |name: &str| -> f64 {
        kernels
            .iter()
            .find(|k| k["kernel"].as_str().unwrap() == name)
            .map(|k| k["flops"].as_f64().unwrap())
            .unwrap()
    };
    assert!(flops_of("matmul") > 0.0);
    assert!(flops_of("lu_factorization") > 0.0);
    // Phase table includes the R-iteration span and convergence has classes.
    let phases = parsed["phases"].as_array().unwrap();
    assert!(phases
        .iter()
        .any(|p| p["span"].as_str().unwrap() == "qbd.solve_r"));
    assert!(!parsed["convergence"]["classes"]
        .as_array()
        .unwrap()
        .is_empty());
}

#[test]
fn doctor_convergence_reports_per_class_r_solves() {
    let out = gsched()
        .arg("doctor")
        .args(["--scenario", "fig2", "--convergence"])
        .output()
        .unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("convergence:"), "{text}");
    assert!(text.contains("fixed point:"), "{text}");

    let out = gsched()
        .arg("doctor")
        .args(["--scenario", "fig2", "--json"])
        .output()
        .unwrap();
    assert!(out.status.success());
    let parsed: serde_json::Value =
        serde_json::from_str(String::from_utf8_lossy(&out.stdout).trim()).unwrap();
    let classes = parsed["convergence"]["classes"].as_array().unwrap();
    assert!(!classes.is_empty());
    assert!(classes[0]["r_solves"].as_f64().unwrap() > 0.0);
    assert!(classes[0]["r_method"].as_str().is_some());
}

#[test]
fn bench_history_append_and_trend_gate() {
    let dir = tmpdir("trend");
    let history = dir.join("h.ndjson");
    for label in ["first", "second"] {
        let out = gsched()
            .arg("bench")
            .args([
                "--quick",
                "--scenario",
                "fig2",
                "--label",
                label,
                "--out",
                dir.to_str().unwrap(),
                "--history",
                history.to_str().unwrap(),
            ])
            .output()
            .unwrap();
        assert!(
            out.status.success(),
            "{}",
            String::from_utf8_lossy(&out.stderr)
        );
        assert!(String::from_utf8_lossy(&out.stdout).contains("appended history row"));
    }
    assert_eq!(
        std::fs::read_to_string(&history).unwrap().lines().count(),
        2
    );

    // Deterministic work metrics are identical across the two runs, so the
    // gate must pass.
    let out = gsched()
        .arg("bench")
        .arg("trend")
        .args([
            "--history",
            history.to_str().unwrap(),
            "--metric",
            "fp_iterations,rmatrix_iterations,matmul_flops",
            "--gate",
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(String::from_utf8_lossy(&out.stdout).contains("trend gate passed"));

    // Inflate fp_iterations in a doctored third row; the gate must now fail.
    let text = std::fs::read_to_string(&history).unwrap();
    let last = text.lines().last().unwrap();
    let key = "\"fp_iterations\":";
    let at = last.find(key).unwrap() + key.len();
    let digits: String = last[at..]
        .trim_start()
        .chars()
        .take_while(|c| c.is_ascii_digit())
        .collect();
    let value: u64 = digits.parse().unwrap();
    let doctored = last.replacen(
        &format!("{key}{digits}"),
        &format!("{key}{}", value * 10),
        1,
    );
    let mut file = std::fs::OpenOptions::new()
        .append(true)
        .open(&history)
        .unwrap();
    writeln!(file, "{doctored}").unwrap();

    let out = gsched()
        .arg("bench")
        .arg("trend")
        .args([
            "--history",
            history.to_str().unwrap(),
            "--metric",
            "fp_iterations",
            "--gate",
        ])
        .output()
        .unwrap();
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("fp_iterations"), "{stderr}");
}
