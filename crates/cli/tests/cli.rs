//! End-to-end tests of the `gsched` binary.

use std::io::Write;
use std::process::Command;

fn gsched() -> Command {
    Command::new(env!("CARGO_BIN_EXE_gsched"))
}

fn write_model(dir: &std::path::Path) -> std::path::PathBuf {
    let model = r#"{
      "processors": 4,
      "classes": [
        {
          "partition_size": 4,
          "arrival": { "type": "exponential", "rate": 0.2 },
          "service": { "type": "exponential", "rate": 1.0 },
          "quantum": { "type": "erlang", "stages": 2, "rate": 1.0 },
          "switch_overhead": { "type": "exponential", "rate": 100.0 }
        },
        {
          "partition_size": 1,
          "arrival": { "type": "exponential", "rate": 0.8 },
          "service": { "type": "exponential", "rate": 1.5 },
          "quantum": { "type": "erlang", "stages": 2, "rate": 1.0 },
          "switch_overhead": { "type": "exponential", "rate": 100.0 }
        }
      ]
    }"#;
    let path = dir.join("model.json");
    let mut f = std::fs::File::create(&path).unwrap();
    f.write_all(model.as_bytes()).unwrap();
    path
}

fn tmpdir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("gsched-cli-test-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn solve_human_output() {
    let dir = tmpdir("solve");
    let model = write_model(&dir);
    let out = gsched().arg("solve").arg(&model).output().unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("machine: P = 4"), "{text}");
    assert!(text.contains("all stable = true"), "{text}");
}

#[test]
fn solve_json_output_is_json() {
    let dir = tmpdir("solvejson");
    let model = write_model(&dir);
    let out = gsched()
        .arg("solve")
        .arg(&model)
        .arg("--json")
        .output()
        .unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    let parsed: serde_json::Value = serde_json::from_str(text.trim()).expect("valid JSON");
    assert_eq!(parsed["all_stable"], serde_json::Value::Bool(true));
    assert!(parsed["classes"].as_array().unwrap().len() == 2);
    assert!(parsed["classes"][0]["mean_jobs"].as_f64().unwrap() > 0.0);
}

#[test]
fn simulate_runs_each_policy() {
    let dir = tmpdir("sim");
    let model = write_model(&dir);
    for policy in ["gang", "lend", "rr", "fcfs"] {
        let out = gsched()
            .arg("simulate")
            .arg(&model)
            .args(["--policy", policy, "--horizon", "5000", "--json"])
            .output()
            .unwrap();
        assert!(
            out.status.success(),
            "policy {policy}: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        let text = String::from_utf8_lossy(&out.stdout);
        let parsed: serde_json::Value = serde_json::from_str(text.trim()).unwrap();
        assert!(
            parsed["classes"][0]["completions"].as_u64().unwrap() > 0,
            "policy {policy}"
        );
    }
}

#[test]
fn tune_reports_a_quantum() {
    let dir = tmpdir("tune");
    let model = write_model(&dir);
    let out = gsched()
        .arg("tune")
        .arg(&model)
        .args(["--lo", "0.05", "--hi", "10", "--json"])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let parsed: serde_json::Value =
        serde_json::from_str(String::from_utf8_lossy(&out.stdout).trim()).unwrap();
    let q = parsed["quantum"].as_f64().unwrap();
    assert!((0.05..=10.0).contains(&q));
}

#[test]
fn stability_always_stable_class() {
    let dir = tmpdir("stab");
    let model = write_model(&dir);
    let out = gsched()
        .arg("stability")
        .arg(&model)
        .args(["--class", "1", "--lo", "0.5", "--hi", "5"])
        .output()
        .unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("stable"), "{text}");
}

#[test]
fn paper_subcommand() {
    let out = gsched()
        .arg("paper")
        .args(["--rho", "0.3", "--quantum", "1.0", "--json"])
        .output()
        .unwrap();
    assert!(out.status.success());
    let parsed: serde_json::Value =
        serde_json::from_str(String::from_utf8_lossy(&out.stdout).trim()).unwrap();
    assert_eq!(parsed["classes"].as_array().unwrap().len(), 4);
}

#[test]
fn example_model_roundtrip() {
    let out = gsched().arg("example-model").output().unwrap();
    assert!(out.status.success());
    let dir = tmpdir("roundtrip");
    let path = dir.join("example.json");
    std::fs::write(&path, &out.stdout).unwrap();
    let solved = gsched().arg("solve").arg(&path).output().unwrap();
    assert!(solved.status.success());
}

#[test]
fn missing_file_fails_cleanly() {
    let out = gsched()
        .arg("solve")
        .arg("/nonexistent/nope.json")
        .output()
        .unwrap();
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("cannot read"), "{err}");
}

#[test]
fn bad_flags_fail_cleanly() {
    let out = gsched().arg("frobnicate").output().unwrap();
    assert!(!out.status.success());
    let dir = tmpdir("badflag");
    let model = write_model(&dir);
    let out = gsched()
        .arg("simulate")
        .arg(&model)
        .args(["--policy", "bogus"])
        .output()
        .unwrap();
    assert!(!out.status.success());
}
