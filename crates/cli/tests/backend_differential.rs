//! Registry-wide differential test for the linalg backends.
//!
//! Every selectable kernel backend — and every R-solver method — must
//! reproduce the default solution for every registered scenario, far
//! inside the scenario's declared cross-validation tolerance. The
//! backends share nominal flop attribution and numerical contracts, so
//! agreement here is tight (1e-6 relative), not merely within the much
//! looser solver-vs-simulator `Tolerance::rel`.

use gsched_core::solver::{solve, RSolverMethod, SolverOptions};
use gsched_linalg::BackendKind;
use gsched_scenario::registry;

/// Relative agreement demanded between backends/methods. Scenario
/// tolerances (`Tolerance::rel`, typically 0.35) bound solver-vs-simulator
/// drift; backend-vs-backend drift is pure floating-point noise.
const REL_TOL: f64 = 1e-6;

fn rel_diff(a: f64, b: f64) -> f64 {
    if a.is_infinite() && b.is_infinite() {
        return 0.0;
    }
    (a - b).abs() / a.abs().max(1e-12)
}

#[test]
fn every_backend_and_method_reproduces_every_registry_scenario() {
    for sc in registry::all() {
        let model = sc
            .build_model()
            .unwrap_or_else(|e| panic!("{}: base model does not build: {e}", sc.name));
        let baseline = match solve(&model, &SolverOptions::default()) {
            Ok(s) => s,
            Err(_) => {
                // A deliberately unsolvable base point must fail on every
                // backend, not just the default one.
                for kind in BackendKind::ALL {
                    let opts = SolverOptions::builder().backend(kind).build().unwrap();
                    assert!(
                        solve(&model, &opts).is_err(),
                        "{}: backend {kind} solved a model the default backend rejects",
                        sc.name
                    );
                }
                continue;
            }
        };
        // Successive substitution is exercised at moderate load in the qbd
        // unit tests; its linear convergence makes it impractically slow on
        // the near-instability registry entries, so the registry-wide sweep
        // covers the superlinear methods. Newton's Sylvester step lifts to
        // an m²×m² Kronecker system, which dominates unoptimized builds —
        // debug runs rely on the qbd Newton tests and leave the registry-wide
        // Newton pass to release builds (the CI test job runs `--release`).
        let methods: &[RSolverMethod] = if cfg!(debug_assertions) {
            &[RSolverMethod::LogarithmicReduction]
        } else {
            &[RSolverMethod::LogarithmicReduction, RSolverMethod::Newton]
        };
        for kind in BackendKind::ALL {
            for &method in methods {
                let opts = SolverOptions::builder()
                    .backend(kind)
                    .r_method(method)
                    .build()
                    .unwrap();
                let got = solve(&model, &opts).unwrap_or_else(|e| {
                    panic!("{}: backend {kind} method {method:?} failed: {e}", sc.name)
                });
                assert_eq!(
                    got.all_stable, baseline.all_stable,
                    "{}: {kind}/{method:?} disagrees on stability",
                    sc.name
                );
                assert!(
                    rel_diff(baseline.mean_cycle, got.mean_cycle) <= REL_TOL,
                    "{}: {kind}/{method:?} mean_cycle {} vs {}",
                    sc.name,
                    got.mean_cycle,
                    baseline.mean_cycle
                );
                for (b, g) in baseline.classes.iter().zip(got.classes.iter()) {
                    let rel = rel_diff(b.mean_response, g.mean_response);
                    assert!(
                        rel <= REL_TOL && rel <= sc.tolerance.rel,
                        "{}: {kind}/{method:?} mean_response {} vs {} (rel {rel:.3e}, \
                         declared tolerance {})",
                        sc.name,
                        g.mean_response,
                        b.mean_response,
                        sc.tolerance.rel
                    );
                }
            }
        }
    }
}
