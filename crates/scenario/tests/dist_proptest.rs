//! Property tests for [`gsched_scenario::DistSpec`]: any valid spec must
//! materialize into a phase-type distribution whose numeric mean matches
//! the spec's closed-form analytic mean, survive a JSON round trip
//! unchanged, and rescale to an arbitrary positive target mean exactly.

use gsched_scenario::DistSpec;
use proptest::prelude::*;

/// Assemble a valid specification of the chosen variant from independently
/// drawn raw parameters. Covers every closed-form variant (raw `Ph` is
/// exercised separately by unit tests).
fn make_spec(
    kind: usize,
    stages: usize,
    rates: &[f64],
    weights: &[f64],
    cont: &[f64],
    mean: f64,
    scv: f64,
) -> DistSpec {
    match kind {
        0 => DistSpec::Exponential { rate: rates[0] },
        1 => DistSpec::Erlang {
            stages,
            rate: rates[0],
        },
        2 => {
            let total: f64 = weights.iter().sum();
            DistSpec::Hyperexponential {
                probs: weights.iter().map(|w| w / total).collect(),
                rates: rates.to_vec(),
            }
        }
        3 => DistSpec::Hypoexponential {
            rates: rates.to_vec(),
        },
        4 => DistSpec::Coxian {
            rates: rates.to_vec(),
            cont: cont.to_vec(),
        },
        5 => DistSpec::Deterministic {
            value: mean,
            stages: stages + 3,
        },
        _ => DistSpec::TwoMoment { mean, scv },
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn valid_spec_builds_with_analytic_mean(
        kind in 0usize..7,
        stages in 1usize..16,
        rates in collection::vec(0.01f64..100.0, 4),
        weights in collection::vec(0.05f64..1.0, 4),
        cont in collection::vec(0.01f64..1.0, 3),
        mean in 0.01f64..50.0,
        scv in 0.05f64..5.0,
    ) {
        let spec = make_spec(kind, stages, &rates, &weights, &cont, mean, scv);
        let analytic = spec.analytic_mean().expect("valid spec has a mean");
        let built = spec.build().expect("valid spec builds").mean();
        prop_assert!(
            (analytic - built).abs() <= 1e-6 * built.max(1.0),
            "{spec:?}: analytic {analytic} vs built {built}"
        );
    }

    #[test]
    fn valid_spec_roundtrips_through_json(
        kind in 0usize..7,
        stages in 1usize..16,
        rates in collection::vec(0.01f64..100.0, 4),
        weights in collection::vec(0.05f64..1.0, 4),
        cont in collection::vec(0.01f64..1.0, 3),
        mean in 0.01f64..50.0,
        scv in 0.05f64..5.0,
    ) {
        let spec = make_spec(kind, stages, &rates, &weights, &cont, mean, scv);
        let text = serde_json::to_string(&spec).expect("spec encodes");
        let again: DistSpec = serde_json::from_str(&text).expect("spec decodes");
        prop_assert!(spec == again, "{text} decoded as {again:?}");
    }

    #[test]
    fn valid_spec_rescales_exactly(
        kind in 0usize..7,
        stages in 1usize..16,
        rates in collection::vec(0.01f64..100.0, 4),
        weights in collection::vec(0.05f64..1.0, 4),
        cont in collection::vec(0.01f64..1.0, 3),
        mean in 0.01f64..50.0,
        scv in 0.05f64..5.0,
        target in 0.01f64..50.0,
    ) {
        let spec = make_spec(kind, stages, &rates, &weights, &cont, mean, scv);
        let scaled = spec.scaled_to_mean(target).expect("valid spec rescales");
        let built = scaled.build().expect("scaled spec builds").mean();
        prop_assert!(
            (built - target).abs() <= 1e-6 * target.max(1.0),
            "{spec:?} → {target}: built mean {built}"
        );
    }
}
