//! Registry-wide cross-validation smoke: every sweep-capable registry
//! scenario (gang/lend policies) is cross-validated analysis-vs-simulation
//! at its quick grid, and the large-P scaling scenario is additionally held
//! to its declared truncation and asymptotic tolerances.

use gsched_core::qbd::LevelTruncation;
use gsched_core::{solve, solve_asymptotic, SolverOptions};
use gsched_scenario::{cross_validate, registry, XvalOptions};

/// Solver options matching what `gsched sweep` uses on the processors axis:
/// automatic certified level truncation plus health collection.
fn scaling_solver() -> SolverOptions {
    SolverOptions::builder()
        .truncation(LevelTruncation::Auto {
            target_tail: 1e-8,
            min_levels: 4,
        })
        .collect_health(true)
        .build()
        .unwrap()
}

#[test]
fn registry_quick_grids_cross_validate() {
    // One xval point per scenario keeps this suite debug-buildable; the
    // endpoints get dedicated coverage below and in CI's scaling-smoke job.
    for sc in registry::all() {
        if !sc.policy.analysis_comparable() {
            continue;
        }
        // near_instability sits on purpose next to the Theorem 4.4 edge,
        // where a smoke-length simulation is noise-dominated — it needs the
        // dedicated long-horizon validation run, not this suite.
        if sc.name == "near_instability" {
            continue;
        }
        let opts = XvalOptions {
            max_points: 1,
            quick: true,
            // Trimmed horizons keep the whole registry debug-runnable; the
            // tolerance band widens with the simulation CI, so shorter runs
            // stay comparable.
            horizon_scale: 0.2,
            solver: if sc.name == "p_sweep" {
                scaling_solver()
            } else {
                SolverOptions::default()
            },
        };
        let report = cross_validate(&sc, &opts)
            .unwrap_or_else(|e| panic!("{}: cross-validation errored: {e}", sc.name));
        assert!(
            report.compared_points() > 0,
            "{}: no point was compared",
            sc.name
        );
        let failures: Vec<String> = report
            .failures()
            .iter()
            .map(|row| {
                format!(
                    "{}: class {} analytic {:.4} vs sim {:.4} (gap {:.4} > tol {:.4})",
                    sc.name, row.class, row.analytic, row.simulated, row.gap, row.tolerance
                )
            })
            .collect();
        assert!(failures.is_empty(), "{}", failures.join("\n"));
    }
}

#[test]
fn p_sweep_spans_8_to_4096_with_certified_truncation() {
    let sc = registry::lookup("p_sweep").unwrap();
    let certified_ceiling = sc
        .tolerance
        .certified_tail
        .expect("p_sweep declares a certified-tail ceiling");
    let opts = scaling_solver();
    let mut saw_truncated = false;
    for &x in sc.grid(true) {
        let model = sc.model_at(x).unwrap();
        let sol = solve(&model, &opts).unwrap_or_else(|e| panic!("P = {x}: {e}"));
        assert!(sol.all_stable, "P = {x} should be stable");
        let health = sol.health.as_ref().expect("health requested");
        for h in &health.classes {
            // Full solves report a zero certified tail; truncated solves
            // must stay within the scenario's declared ceiling.
            assert!(
                h.certified_tail <= certified_ceiling,
                "P = {x}, class {}: certified tail {:.3e} above ceiling {certified_ceiling:.3e}",
                h.class,
                h.certified_tail
            );
            if h.truncation_level.is_some() {
                saw_truncated = true;
            }
        }
    }
    assert!(
        saw_truncated,
        "the large-P end of the grid should engage level truncation"
    );
}

#[test]
fn p_sweep_converges_to_the_zero_queueing_limit() {
    let sc = registry::lookup("p_sweep").unwrap();
    let tol = sc
        .tolerance
        .asymptotic_rel
        .expect("p_sweep declares an asymptotic tolerance");
    let opts = scaling_solver();

    let rel_gap = |p_value: f64| {
        let model = sc.model_at(p_value).unwrap();
        let asym = solve_asymptotic(&model).unwrap();
        assert!(asym.all_stable, "P = {p_value}: limit should be stable");
        let sol = solve(&model, &opts).unwrap();
        sol.classes
            .iter()
            .zip(asym.classes.iter())
            .map(|(full, lim)| (full.mean_response - lim.mean_response).abs() / lim.mean_response)
            .fold(0.0_f64, f64::max)
    };

    let first = *sc.grid(true).first().unwrap();
    let largest = *sc.grid(true).last().unwrap();
    let gap_small = rel_gap(first);
    let gap_large = rel_gap(largest);
    assert!(
        gap_large <= tol,
        "P = {largest}: worst relative gap to the asymptotic limit {gap_large:.4} > {tol}"
    );
    // The finite-P solve approaches the limit from above as P grows.
    assert!(
        gap_large < gap_small,
        "gap should shrink with P: {gap_small:.4} at P = {first} vs {gap_large:.4} at P = {largest}"
    );
}
