//! Distribution specifications: the serializable counterpart of
//! [`gsched_phase::PhaseType`].
//!
//! A [`DistSpec`] is a closed-form description (exponential, Erlang,
//! Coxian, …) that can be materialized into a validated phase-type
//! distribution, queried for its analytic mean, and rescaled to a target
//! mean — the primitive behind sweep axes, which move a distribution's
//! mean while preserving its shape.

use gsched_phase::{
    coxian, deterministic_approx, erlang, exponential, fit_two_moment, hyperexponential,
    hypoexponential, PhaseType,
};
use serde::{Deserialize, Serialize};

/// A distribution specification.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
#[serde(tag = "type", rename_all = "snake_case")]
pub enum DistSpec {
    /// Exponential with the given rate (mean `1/rate`).
    Exponential {
        /// Rate parameter.
        rate: f64,
    },
    /// Erlang with `stages` stages and overall `rate` (mean `1/rate`).
    Erlang {
        /// Stage count.
        stages: usize,
        /// Overall rate.
        rate: f64,
    },
    /// Hyperexponential mixture of exponentials.
    Hyperexponential {
        /// Branch probabilities.
        probs: Vec<f64>,
        /// Branch rates.
        rates: Vec<f64>,
    },
    /// Hypoexponential (stages in series with individual rates).
    Hypoexponential {
        /// Stage rates.
        rates: Vec<f64>,
    },
    /// Coxian: stage rates plus continuation probabilities (length − 1).
    Coxian {
        /// Stage rates.
        rates: Vec<f64>,
        /// Continuation probabilities between consecutive stages.
        cont: Vec<f64>,
    },
    /// Near-deterministic value (Erlang approximation).
    Deterministic {
        /// Target value.
        value: f64,
        /// Erlang stages used for the approximation (default 32).
        #[serde(default = "default_det_stages")]
        stages: usize,
    },
    /// Fit a PH to a mean and squared coefficient of variation.
    TwoMoment {
        /// Mean.
        mean: f64,
        /// Squared coefficient of variation.
        scv: f64,
    },
    /// Raw phase-type parameters `(alpha, S)`.
    Ph {
        /// Initial probability vector.
        alpha: Vec<f64>,
        /// Sub-generator rows.
        s: Vec<Vec<f64>>,
    },
}

fn default_det_stages() -> usize {
    32
}

impl DistSpec {
    /// Materialize the specification into a validated [`PhaseType`].
    pub fn build(&self) -> Result<PhaseType, String> {
        match self {
            DistSpec::Exponential { rate } => {
                if *rate <= 0.0 {
                    return Err(format!("exponential rate must be positive, got {rate}"));
                }
                Ok(exponential(*rate))
            }
            DistSpec::Erlang { stages, rate } => {
                if *stages == 0 || *rate <= 0.0 {
                    return Err("erlang needs positive stages and rate".to_string());
                }
                Ok(erlang(*stages, *rate))
            }
            DistSpec::Hyperexponential { probs, rates } => {
                hyperexponential(probs, rates).map_err(|e| e.to_string())
            }
            DistSpec::Hypoexponential { rates } => {
                hypoexponential(rates).map_err(|e| e.to_string())
            }
            DistSpec::Coxian { rates, cont } => coxian(rates, cont).map_err(|e| e.to_string()),
            DistSpec::Deterministic { value, stages } => {
                if *value <= 0.0 || *stages == 0 {
                    return Err("deterministic needs positive value and stages".to_string());
                }
                Ok(deterministic_approx(*value, *stages))
            }
            DistSpec::TwoMoment { mean, scv } => {
                if *mean <= 0.0 || *scv < 0.0 {
                    return Err("two_moment needs positive mean and nonnegative scv".to_string());
                }
                Ok(fit_two_moment(*mean, *scv))
            }
            DistSpec::Ph { alpha, s } => {
                let n = s.len();
                if s.iter().any(|row| row.len() != n) {
                    return Err("ph: S must be square".to_string());
                }
                let flat: Vec<f64> = s.iter().flatten().copied().collect();
                let mat = gsched_linalg::Matrix::from_vec(n, n, flat);
                PhaseType::new(alpha.clone(), mat).map_err(|e| e.to_string())
            }
        }
    }

    /// The analytic mean of the specified distribution, in closed form for
    /// every variant except [`DistSpec::Ph`] (which is materialized first).
    pub fn analytic_mean(&self) -> Result<f64, String> {
        let mean = match self {
            DistSpec::Exponential { rate } | DistSpec::Erlang { rate, .. } => {
                if *rate <= 0.0 {
                    return Err(format!("rate must be positive, got {rate}"));
                }
                1.0 / rate
            }
            DistSpec::Hyperexponential { probs, rates } => {
                if probs.len() != rates.len() || probs.is_empty() {
                    return Err("hyperexponential needs matching probs/rates".to_string());
                }
                if rates.iter().any(|&r| r <= 0.0) {
                    return Err("hyperexponential rates must be positive".to_string());
                }
                probs.iter().zip(rates.iter()).map(|(p, r)| p / r).sum()
            }
            DistSpec::Hypoexponential { rates } => {
                if rates.is_empty() || rates.iter().any(|&r| r <= 0.0) {
                    return Err("hypoexponential needs positive rates".to_string());
                }
                rates.iter().map(|r| 1.0 / r).sum()
            }
            DistSpec::Coxian { rates, cont } => {
                if rates.is_empty() || rates.iter().any(|&r| r <= 0.0) {
                    return Err("coxian needs positive rates".to_string());
                }
                if cont.len() + 1 != rates.len() {
                    return Err("coxian needs |cont| = |rates| - 1".to_string());
                }
                // Stage i is reached with probability Π_{j<i} cont_j.
                let mut reach = 1.0;
                let mut mean = 0.0;
                for (i, r) in rates.iter().enumerate() {
                    if i > 0 {
                        reach *= cont[i - 1];
                    }
                    mean += reach / r;
                }
                mean
            }
            DistSpec::Deterministic { value, .. } => *value,
            DistSpec::TwoMoment { mean, .. } => *mean,
            DistSpec::Ph { .. } => self.build()?.mean(),
        };
        if !mean.is_finite() || mean <= 0.0 {
            return Err(format!("analytic mean must be positive, got {mean}"));
        }
        Ok(mean)
    }

    /// The same distribution shape rescaled to a target mean: every rate is
    /// multiplied by `current_mean / target`, which preserves the SCV and
    /// (for rate-1 bases) introduces no rounding beyond the division itself.
    pub fn scaled_to_mean(&self, target: f64) -> Result<DistSpec, String> {
        if !target.is_finite() || target <= 0.0 {
            return Err(format!("target mean must be positive, got {target}"));
        }
        let factor = self.analytic_mean()? / target;
        let scaled = match self.clone() {
            DistSpec::Exponential { rate } => DistSpec::Exponential {
                rate: rate * factor,
            },
            DistSpec::Erlang { stages, rate } => DistSpec::Erlang {
                stages,
                rate: rate * factor,
            },
            DistSpec::Hyperexponential { probs, rates } => DistSpec::Hyperexponential {
                probs,
                rates: rates.into_iter().map(|r| r * factor).collect(),
            },
            DistSpec::Hypoexponential { rates } => DistSpec::Hypoexponential {
                rates: rates.into_iter().map(|r| r * factor).collect(),
            },
            DistSpec::Coxian { rates, cont } => DistSpec::Coxian {
                rates: rates.into_iter().map(|r| r * factor).collect(),
                cont,
            },
            DistSpec::Deterministic { stages, .. } => DistSpec::Deterministic {
                value: target,
                stages,
            },
            DistSpec::TwoMoment { scv, .. } => DistSpec::TwoMoment { mean: target, scv },
            DistSpec::Ph { alpha, s } => DistSpec::Ph {
                alpha,
                s: s.into_iter()
                    .map(|row| row.into_iter().map(|v| v * factor).collect())
                    .collect(),
            },
        };
        Ok(scaled)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_variants() -> Vec<DistSpec> {
        vec![
            DistSpec::Exponential { rate: 1.0 },
            DistSpec::Erlang {
                stages: 3,
                rate: 2.0,
            },
            DistSpec::Hyperexponential {
                probs: vec![0.5, 0.5],
                rates: vec![1.0, 3.0],
            },
            DistSpec::Hypoexponential {
                rates: vec![1.0, 2.0],
            },
            DistSpec::Coxian {
                rates: vec![1.0, 2.0],
                cont: vec![0.5],
            },
            DistSpec::Deterministic {
                value: 2.0,
                stages: 16,
            },
            DistSpec::TwoMoment {
                mean: 1.0,
                scv: 0.5,
            },
            DistSpec::Ph {
                alpha: vec![1.0, 0.0],
                s: vec![vec![-2.0, 2.0], vec![0.0, -2.0]],
            },
        ]
    }

    #[test]
    fn all_dist_variants_build() {
        for s in all_variants() {
            let ph = s.build().unwrap_or_else(|e| panic!("{s:?}: {e}"));
            assert!(ph.mean() > 0.0, "{s:?}");
        }
    }

    #[test]
    fn all_dist_variants_roundtrip_through_json() {
        for spec in all_variants() {
            let text = serde_json::to_string(&spec).unwrap();
            let again: DistSpec = serde_json::from_str(&text).unwrap();
            assert_eq!(spec, again, "{text}");
            // The round-tripped spec must also build the same distribution.
            let a = spec.build().unwrap();
            let b = again.build().unwrap();
            assert_eq!(a.mean().to_bits(), b.mean().to_bits(), "{text}");
            assert_eq!(a.scv().to_bits(), b.scv().to_bits(), "{text}");
        }
    }

    #[test]
    fn analytic_means_match_built_means() {
        for spec in all_variants() {
            let analytic = spec.analytic_mean().unwrap();
            let built = spec.build().unwrap().mean();
            // deterministic_approx and fit_two_moment hit the mean exactly;
            // the closed forms are exact for the rest.
            assert!(
                (analytic - built).abs() <= 1e-9 * built.max(1.0),
                "{spec:?}: analytic {analytic} vs built {built}"
            );
        }
    }

    #[test]
    fn scaled_to_mean_hits_target_and_keeps_scv() {
        for spec in all_variants() {
            for &target in &[0.25, 1.0, 7.5] {
                let scaled = spec.scaled_to_mean(target).unwrap();
                let ph = scaled.build().unwrap();
                assert!(
                    (ph.mean() - target).abs() <= 1e-9 * target.max(1.0),
                    "{spec:?} → {target}: mean {}",
                    ph.mean()
                );
                let scv0 = spec.build().unwrap().scv();
                assert!(
                    (ph.scv() - scv0).abs() <= 1e-6 * scv0.abs().max(1.0),
                    "{spec:?} → {target}: scv {} vs {}",
                    ph.scv(),
                    scv0
                );
            }
        }
    }

    #[test]
    fn unit_rate_erlang_scales_exactly() {
        // The registry's quantum specs are rate-1 Erlangs; scaling them to a
        // quantum mean q must give rate exactly 1/q so scenario-built models
        // are bitwise identical to the historical hand-built ones.
        let spec = DistSpec::Erlang {
            stages: 2,
            rate: 1.0,
        };
        for &q in &[0.02, 0.5, 3.0, 6.0] {
            match spec.scaled_to_mean(q).unwrap() {
                DistSpec::Erlang { stages, rate } => {
                    assert_eq!(stages, 2);
                    assert_eq!(rate.to_bits(), (1.0 / q).to_bits());
                }
                other => panic!("shape changed: {other:?}"),
            }
        }
    }

    #[test]
    fn bad_specs_rejected() {
        assert!(DistSpec::Exponential { rate: 0.0 }.build().is_err());
        assert!(DistSpec::Erlang {
            stages: 0,
            rate: 1.0
        }
        .build()
        .is_err());
        assert!(DistSpec::Ph {
            alpha: vec![1.0],
            s: vec![vec![-1.0, 1.0]],
        }
        .build()
        .is_err());
        assert!(DistSpec::Exponential { rate: -1.0 }
            .analytic_mean()
            .is_err());
        assert!(DistSpec::Coxian {
            rates: vec![1.0, 2.0],
            cont: vec![0.5, 0.5],
        }
        .analytic_mean()
        .is_err());
        assert!(DistSpec::Exponential { rate: 1.0 }
            .scaled_to_mean(0.0)
            .is_err());
        assert!(DistSpec::Exponential { rate: 1.0 }
            .scaled_to_mean(f64::NAN)
            .is_err());
    }

    #[test]
    fn deterministic_default_stages_from_json() {
        let spec: DistSpec =
            serde_json::from_str(r#"{ "type": "deterministic", "value": 1.0 }"#).unwrap();
        assert_eq!(
            spec,
            DistSpec::Deterministic {
                value: 1.0,
                stages: 32
            }
        );
    }
}
