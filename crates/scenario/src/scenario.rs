//! The typed scenario IR: one experiment description driving the analytic
//! solver, the sweep engine, and the simulator.
//!
//! A [`Scenario`] bundles a machine ([`ModelSpec`]), a scheduling
//! [`Policy`], an optional sweep (axis + grid), simulation parameters, and
//! the tolerance to which analysis and simulation are expected to agree.
//! Every consumer derives its configuration from the same IR:
//!
//! * `build_model()` — the base [`GangModel`] for `gsched solve`;
//! * `sweep_request()` — a [`SweepRequest`] for the `gsched-engine` pool;
//! * `sim_config()` / `simulate()` — the discrete-event simulator, with the
//!   scenario's policy;
//! * `crate::xval::cross_validate` — analysis vs simulation against the
//!   declared tolerance.

use crate::dist::DistSpec;
use crate::model_spec::ModelSpec;
use gsched_core::{solve, GangModel, HealthThresholds, SolverOptions};
use gsched_engine::{ScenarioBase, SweepAxis, SweepPoint, SweepRequest};
use gsched_sim::{Policy, SimConfig, SimResult};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Errors from parsing, validating, or materializing scenarios.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScenarioError {
    /// The JSON text did not parse into the scenario schema.
    Json(String),
    /// The scenario parsed but fails validation (schema or model level).
    Invalid(String),
}

impl fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScenarioError::Json(m) => write!(f, "invalid scenario JSON: {m}"),
            ScenarioError::Invalid(m) => write!(f, "invalid scenario: {m}"),
        }
    }
}

impl std::error::Error for ScenarioError {}

fn invalid(msg: impl Into<String>) -> ScenarioError {
    ScenarioError::Invalid(msg.into())
}

/// The swept parameter axis, in IR form (serializable, unlike the engine's
/// [`SweepAxis`] which carries no parameters needed to *apply* the axis).
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
#[serde(tag = "axis", rename_all = "snake_case")]
pub enum AxisSpec {
    /// Common mean quantum length `1/γ` (Figs. 2–3).
    QuantumMean,
    /// Common per-processor service rate `μ` (Fig. 4).
    ServiceRate,
    /// Common per-class arrival rate `λ` (offered-load sweeps).
    ArrivalRate,
    /// Fraction of the cycle's quantum budget given to one class (Fig. 5):
    /// the focal class gets `x·budget`, every other class an equal share of
    /// the remainder.
    CycleFraction {
        /// The focal class whose share is swept.
        class: usize,
        /// Total quantum budget per timeplexing cycle.
        budget: f64,
    },
    /// Machine size `P` (large-P scaling sweeps): the grid coordinate is the
    /// processor count. Per-class arrival rates scale `∝ x / P_base` so each
    /// class's offered utilization `ρ_p = λ_p g(p)/(μ_p P)` is held fixed
    /// while the per-class capacity `c_p = x/g(p)` grows — the zero-queueing
    /// scaling regime of `docs/LARGE_P.md`.
    Processors,
}

impl AxisSpec {
    /// The engine-side axis tag for this IR axis.
    pub fn engine_axis(&self) -> SweepAxis {
        match self {
            AxisSpec::QuantumMean => SweepAxis::QuantumMean,
            AxisSpec::ServiceRate => SweepAxis::ServiceRate,
            AxisSpec::ArrivalRate => SweepAxis::ArrivalRate,
            AxisSpec::CycleFraction { class, .. } => SweepAxis::CycleFraction { class: *class },
            AxisSpec::Processors => SweepAxis::Processors,
        }
    }

    /// Check one grid coordinate for validity on this axis.
    fn check_coordinate(&self, x: f64) -> Result<(), ScenarioError> {
        match self {
            AxisSpec::CycleFraction { .. } => {
                if !(x.is_finite() && x > 0.0 && x < 1.0) {
                    return Err(invalid(format!(
                        "cycle_fraction grid values must lie in (0, 1), got {x}"
                    )));
                }
            }
            AxisSpec::Processors => {
                if !(x.is_finite() && x >= 1.0 && x.fract() == 0.0) {
                    return Err(invalid(format!(
                        "processors grid values must be positive integers, got {x}"
                    )));
                }
            }
            _ => {
                if !(x.is_finite() && x > 0.0) {
                    return Err(invalid(format!(
                        "{} grid values must be positive, got {x}",
                        self.engine_axis().label()
                    )));
                }
            }
        }
        Ok(())
    }

    /// Rewrite `machine` so the swept quantity sits at coordinate `x`,
    /// preserving every distribution's shape.
    pub fn apply(&self, machine: &ModelSpec, x: f64) -> Result<ModelSpec, ScenarioError> {
        self.check_coordinate(x)?;
        let mut out = machine.clone();
        let scale = |spec: &DistSpec, mean: f64, what: &str, p: usize| {
            spec.scaled_to_mean(mean)
                .map_err(|e| invalid(format!("class {p}, {what}: {e}")))
        };
        match self {
            AxisSpec::QuantumMean => {
                for (p, c) in out.classes.iter_mut().enumerate() {
                    c.quantum = scale(&c.quantum, x, "quantum", p)?;
                }
            }
            AxisSpec::ServiceRate => {
                for (p, c) in out.classes.iter_mut().enumerate() {
                    c.service = scale(&c.service, 1.0 / x, "service", p)?;
                }
            }
            AxisSpec::ArrivalRate => {
                for (p, c) in out.classes.iter_mut().enumerate() {
                    c.arrival = scale(&c.arrival, 1.0 / x, "arrival", p)?;
                }
            }
            AxisSpec::CycleFraction { class, budget } => {
                let l = out.classes.len();
                if *class >= l {
                    return Err(invalid(format!(
                        "cycle_fraction class {class} out of range (L = {l})"
                    )));
                }
                if l < 2 {
                    return Err(invalid("cycle_fraction needs at least two classes"));
                }
                if !(budget.is_finite() && *budget > 0.0) {
                    return Err(invalid(format!(
                        "cycle_fraction budget must be positive, got {budget}"
                    )));
                }
                let rest = (1.0 - x) * budget / (l - 1) as f64;
                for (p, c) in out.classes.iter_mut().enumerate() {
                    let mean = if p == *class { x * budget } else { rest };
                    c.quantum = scale(&c.quantum, mean, "quantum", p)?;
                }
            }
            AxisSpec::Processors => {
                let p_base = machine.processors as f64;
                out.processors = x as usize;
                // Hold utilization fixed: λ ∝ P, so the interarrival mean
                // shrinks by P_base / x.
                for (p, c) in out.classes.iter_mut().enumerate() {
                    let base_mean = c
                        .arrival
                        .analytic_mean()
                        .map_err(|e| invalid(format!("class {p}, arrival: {e}")))?;
                    c.arrival = scale(&c.arrival, base_mean * p_base / x, "arrival", p)?;
                }
            }
        }
        Ok(out)
    }
}

/// A sweep: which axis moves, over which grid.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
pub struct SweepSpec {
    /// The swept axis.
    pub axis: AxisSpec,
    /// Full grid of axis coordinates, strictly increasing.
    pub grid: Vec<f64>,
    /// Optional reduced grid for smoke tests and benches (`--quick`).
    pub quick_grid: Option<Vec<f64>>,
}

/// Simulation parameters, in IR form (mirrors [`SimConfig`]).
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
pub struct SimSpec {
    /// Total simulated time.
    #[serde(default = "default_sim_horizon")]
    pub horizon: f64,
    /// Initial interval discarded from statistics.
    #[serde(default = "default_sim_warmup")]
    pub warmup: f64,
    /// RNG seed.
    #[serde(default = "default_sim_seed")]
    pub seed: u64,
    /// Number of batches for confidence intervals.
    #[serde(default = "default_sim_batches")]
    pub batches: usize,
}

fn default_sim_horizon() -> f64 {
    150_000.0
}
fn default_sim_warmup() -> f64 {
    15_000.0
}
fn default_sim_seed() -> u64 {
    0x5EED
}
fn default_sim_batches() -> usize {
    15
}

impl Default for SimSpec {
    fn default() -> Self {
        SimSpec {
            horizon: default_sim_horizon(),
            warmup: default_sim_warmup(),
            seed: default_sim_seed(),
            batches: default_sim_batches(),
        }
    }
}

impl SimSpec {
    /// Convert to the simulator's native configuration, optionally scaling
    /// the horizon (and warmup with it) for quick runs.
    pub fn config(&self, horizon_scale: f64) -> SimConfig {
        SimConfig {
            horizon: self.horizon * horizon_scale,
            warmup: self.warmup * horizon_scale,
            seed: self.seed,
            batches: self.batches,
        }
    }
}

/// How closely analysis and simulation must agree for this scenario.
///
/// The acceptance band on each class's mean response time is
/// `rel · max(T_sim, floor) + ci_sigmas · ci(T_sim)`; the relative part
/// absorbs the analysis's documented optimism (the vacation-independence
/// approximation runs ~10–25% optimistic), the CI part absorbs simulation
/// noise.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
pub struct Tolerance {
    /// Relative tolerance on mean response time.
    #[serde(default = "default_tol_rel")]
    pub rel: f64,
    /// Multiples of the simulation 95% CI half-width added on top.
    #[serde(default = "default_tol_sigmas")]
    pub ci_sigmas: f64,
    /// Large-P regimes only: ceiling on the *certified* tail mass a
    /// level-truncated solve may report at any sweep point (the
    /// `TruncationCertificate` bound, not an estimate). `None` means the
    /// scenario makes no truncation claim.
    #[serde(default = "default_tol_none")]
    pub certified_tail: Option<f64>,
    /// Large-P regimes only: relative tolerance within which the full solve
    /// at the *largest* grid point must agree with the zero-queueing
    /// asymptotic limit (`gsched_core::solve_asymptotic`). `None` disables
    /// the differential check.
    #[serde(default = "default_tol_none")]
    pub asymptotic_rel: Option<f64>,
}

fn default_tol_none() -> Option<f64> {
    None
}

fn default_tol_rel() -> f64 {
    0.35
}
fn default_tol_sigmas() -> f64 {
    3.0
}

impl Default for Tolerance {
    fn default() -> Self {
        Tolerance {
            rel: default_tol_rel(),
            ci_sigmas: default_tol_sigmas(),
            certified_tail: None,
            asymptotic_rel: None,
        }
    }
}

/// A complete experiment description.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
pub struct Scenario {
    /// Registry / report name (lowercase identifier).
    pub name: String,
    /// Human description (paper figure, regime, intent).
    #[serde(default = "String::new")]
    pub description: String,
    /// The machine: processors and job classes.
    pub machine: ModelSpec,
    /// Scheduling policy the simulator runs (the analysis always models
    /// system-wide gang scheduling).
    #[serde(default = "Policy::default")]
    pub policy: Policy,
    /// Optional sweep over one axis.
    pub sweep: Option<SweepSpec>,
    /// Simulation parameters.
    #[serde(default = "SimSpec::default")]
    pub sim: SimSpec,
    /// Analysis-vs-simulation agreement tolerance.
    #[serde(default = "Tolerance::default")]
    pub tolerance: Tolerance,
    /// Named fixed parameters for labelling and provenance (e.g.
    /// `("lambda", 0.6)`), carried into sweep reports.
    #[serde(default = "Vec::new")]
    pub params: Vec<(String, f64)>,
}

impl Scenario {
    /// Start building a scenario around a machine.
    ///
    /// # Examples
    ///
    /// Build a scenario, validate it, and solve its model:
    ///
    /// ```
    /// use gsched_scenario::{ModelSpec, Scenario};
    ///
    /// let machine = ModelSpec::from_json(
    ///     r#"{
    ///         "processors": 4,
    ///         "classes": [{
    ///             "partition_size": 4,
    ///             "arrival": { "type": "exponential", "rate": 0.2 },
    ///             "service": { "type": "exponential", "rate": 1.0 },
    ///             "quantum": { "type": "erlang", "stages": 2, "rate": 1.0 },
    ///             "switch_overhead": { "type": "exponential", "rate": 100.0 }
    ///         }]
    ///     }"#,
    /// )?;
    /// let scenario = Scenario::builder("demo", machine)
    ///     .description("one 4-way class at light load")
    ///     .build()?; // `build` runs full structural validation
    ///
    /// let model = scenario.build_model()?;
    /// let solution = gsched_core::solve(&model, &Default::default())?;
    /// assert!(solution.all_stable);
    /// # Ok::<(), Box<dyn std::error::Error>>(())
    /// ```
    pub fn builder(name: impl Into<String>, machine: ModelSpec) -> ScenarioBuilder {
        ScenarioBuilder {
            scenario: Scenario {
                name: name.into(),
                description: String::new(),
                machine,
                policy: Policy::Gang,
                sweep: None,
                sim: SimSpec::default(),
                tolerance: Tolerance::default(),
                params: Vec::new(),
            },
        }
    }

    /// Parse and validate a scenario from JSON text.
    pub fn from_json(text: &str) -> Result<Scenario, ScenarioError> {
        let sc: Scenario =
            serde_json::from_str(text).map_err(|e| ScenarioError::Json(e.to_string()))?;
        sc.validate()?;
        Ok(sc)
    }

    /// Serialize to pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("scenario serialization cannot fail")
    }

    /// Full structural validation: name, machine, sweep grids, simulation
    /// parameters, tolerance. Does not solve anything — see
    /// [`crate::validate_report`] for the numerical (stability) side.
    pub fn validate(&self) -> Result<(), ScenarioError> {
        if self.name.is_empty() {
            return Err(invalid("name must be non-empty"));
        }
        if !self
            .name
            .chars()
            .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_' || c == '-')
        {
            return Err(invalid(format!(
                "name {:?} must be a lowercase identifier ([a-z0-9_-])",
                self.name
            )));
        }
        self.machine.build().map_err(invalid)?;
        if let Some(sweep) = &self.sweep {
            for (which, grid) in [
                ("grid", Some(&sweep.grid)),
                ("quick_grid", sweep.quick_grid.as_ref()),
            ] {
                let Some(grid) = grid else { continue };
                if grid.is_empty() {
                    return Err(invalid(format!("sweep {which} must be non-empty")));
                }
                for &x in grid {
                    sweep.axis.check_coordinate(x)?;
                }
                if grid.windows(2).any(|w| w[0] >= w[1]) {
                    return Err(invalid(format!(
                        "sweep {which} must be strictly increasing"
                    )));
                }
            }
            // Every grid point must materialize into a valid model.
            for &x in sweep.grid.iter().chain(sweep.quick_grid.iter().flatten()) {
                sweep
                    .axis
                    .apply(&self.machine, x)?
                    .build()
                    .map_err(|e| invalid(format!("sweep point x = {x}: {e}")))?;
            }
        }
        if !(self.sim.horizon.is_finite() && self.sim.horizon > 0.0) {
            return Err(invalid(format!(
                "sim horizon must be positive, got {}",
                self.sim.horizon
            )));
        }
        if !(self.sim.warmup.is_finite() && self.sim.warmup >= 0.0)
            || self.sim.warmup >= self.sim.horizon
        {
            return Err(invalid(format!(
                "sim warmup must lie in [0, horizon), got {} (horizon {})",
                self.sim.warmup, self.sim.horizon
            )));
        }
        if self.sim.batches < 2 {
            return Err(invalid("sim batches must be at least 2"));
        }
        if !(self.tolerance.rel.is_finite() && self.tolerance.rel > 0.0) {
            return Err(invalid(format!(
                "tolerance rel must be positive, got {}",
                self.tolerance.rel
            )));
        }
        if !(self.tolerance.ci_sigmas.is_finite() && self.tolerance.ci_sigmas >= 0.0) {
            return Err(invalid(format!(
                "tolerance ci_sigmas must be non-negative, got {}",
                self.tolerance.ci_sigmas
            )));
        }
        if let Some(ct) = self.tolerance.certified_tail {
            if !(ct.is_finite() && ct > 0.0 && ct < 1.0) {
                return Err(invalid(format!(
                    "tolerance certified_tail must lie in (0, 1), got {ct}"
                )));
            }
        }
        if let Some(ar) = self.tolerance.asymptotic_rel {
            if !(ar.is_finite() && ar > 0.0) {
                return Err(invalid(format!(
                    "tolerance asymptotic_rel must be positive, got {ar}"
                )));
            }
        }
        for (k, v) in &self.params {
            if !v.is_finite() {
                return Err(invalid(format!("param {k:?} must be finite, got {v}")));
            }
        }
        Ok(())
    }

    /// The base machine as a validated [`GangModel`].
    pub fn build_model(&self) -> Result<GangModel, ScenarioError> {
        self.machine.build().map_err(invalid)
    }

    /// The machine at sweep coordinate `x`. Errors when the scenario has no
    /// sweep.
    pub fn model_at(&self, x: f64) -> Result<GangModel, ScenarioError> {
        let sweep = self
            .sweep
            .as_ref()
            .ok_or_else(|| invalid(format!("scenario {:?} has no sweep axis", self.name)))?;
        sweep
            .axis
            .apply(&self.machine, x)?
            .build()
            .map_err(|e| invalid(format!("sweep point x = {x}: {e}")))
    }

    /// The grid the scenario sweeps over (`quick` selects the reduced grid
    /// when one is declared). Empty when the scenario has no sweep.
    pub fn grid(&self, quick: bool) -> &[f64] {
        match &self.sweep {
            None => &[],
            Some(sweep) => {
                if quick {
                    sweep.quick_grid.as_deref().unwrap_or(&sweep.grid)
                } else {
                    &sweep.grid
                }
            }
        }
    }

    /// Build the engine request: the scenario's machine materialized at
    /// every grid point, labelled with the scenario's name and parameters.
    pub fn sweep_request(&self, quick: bool) -> Result<SweepRequest, ScenarioError> {
        let sweep = self
            .sweep
            .as_ref()
            .ok_or_else(|| invalid(format!("scenario {:?} has no sweep axis", self.name)))?;
        let mut points = Vec::new();
        for &x in self.grid(quick) {
            points.push(SweepPoint {
                x,
                model: self.model_at(x)?,
            });
        }
        let mut base = ScenarioBase::labeled(self.name.clone());
        base.params = self.params.clone();
        Ok(SweepRequest::new(sweep.axis.engine_axis(), base, points))
    }

    /// The simulator configuration (`horizon_scale` shrinks horizon and
    /// warmup together for quick runs).
    pub fn sim_config(&self, horizon_scale: f64) -> SimConfig {
        self.sim.config(horizon_scale)
    }

    /// Simulate `model` under the scenario's policy and simulation
    /// parameters.
    pub fn simulate(&self, model: &GangModel, horizon_scale: f64) -> SimResult {
        gsched_sim::simulate(model, self.policy, self.sim_config(horizon_scale))
    }

    /// Look up a named provenance parameter.
    pub fn param(&self, name: &str) -> Option<f64> {
        self.params.iter().find(|(k, _)| k == name).map(|(_, v)| *v)
    }
}

/// Chainable validating builder for [`Scenario`] (the registry's authoring
/// surface).
#[derive(Debug, Clone)]
pub struct ScenarioBuilder {
    scenario: Scenario,
}

impl ScenarioBuilder {
    /// Set the human description.
    pub fn description(mut self, d: impl Into<String>) -> Self {
        self.scenario.description = d.into();
        self
    }

    /// Set the simulated scheduling policy.
    pub fn policy(mut self, p: Policy) -> Self {
        self.scenario.policy = p;
        self
    }

    /// Declare the sweep axis and full grid.
    pub fn sweep(mut self, axis: AxisSpec, grid: Vec<f64>) -> Self {
        self.scenario.sweep = Some(SweepSpec {
            axis,
            grid,
            quick_grid: None,
        });
        self
    }

    /// Declare the reduced `--quick` grid (requires [`Self::sweep`] first).
    pub fn quick_grid(mut self, grid: Vec<f64>) -> Self {
        if let Some(sweep) = &mut self.scenario.sweep {
            sweep.quick_grid = Some(grid);
        }
        self
    }

    /// Override the simulation parameters.
    pub fn sim(mut self, sim: SimSpec) -> Self {
        self.scenario.sim = sim;
        self
    }

    /// Override the analysis-vs-simulation tolerance.
    pub fn tolerance(mut self, rel: f64, ci_sigmas: f64) -> Self {
        self.scenario.tolerance.rel = rel;
        self.scenario.tolerance.ci_sigmas = ci_sigmas;
        self
    }

    /// Declare a ceiling on the certified truncation tail mass at every
    /// sweep point (large-P scenarios).
    pub fn certified_tail(mut self, bound: f64) -> Self {
        self.scenario.tolerance.certified_tail = Some(bound);
        self
    }

    /// Declare the relative tolerance for the zero-queueing asymptotic
    /// cross-check at the largest sweep point (large-P scenarios).
    pub fn asymptotic_rel(mut self, rel: f64) -> Self {
        self.scenario.tolerance.asymptotic_rel = Some(rel);
        self
    }

    /// Record a named provenance parameter.
    pub fn param(mut self, name: impl Into<String>, value: f64) -> Self {
        self.scenario.params.push((name.into(), value));
        self
    }

    /// Validate and return the scenario.
    pub fn build(self) -> Result<Scenario, ScenarioError> {
        self.scenario.validate()?;
        Ok(self.scenario)
    }
}

/// Severity of a [`LintIssue`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LintLevel {
    /// Suspicious but usable.
    Warning,
    /// The scenario cannot be trusted (schema failure or unstable class).
    Error,
}

/// One finding from [`validate_report`].
#[derive(Debug, Clone)]
pub struct LintIssue {
    /// Severity.
    pub level: LintLevel,
    /// Human-readable finding.
    pub message: String,
}

/// Per-class stability summary from solving the base model.
#[derive(Debug, Clone)]
pub struct ClassStability {
    /// Class index.
    pub class: usize,
    /// Offered utilization `λ g/(μ P)`.
    pub utilization: f64,
    /// Positive recurrent under the converged vacations?
    pub stable: bool,
    /// Drift-condition slack (Theorem 4.4); negative when unstable.
    pub drift_margin: f64,
}

/// The full `gsched validate` output for one scenario.
#[derive(Debug, Clone)]
pub struct ValidationReport {
    /// Scenario name.
    pub name: String,
    /// Lint findings, errors first.
    pub issues: Vec<LintIssue>,
    /// Per-class stability at the base point (empty when the base model
    /// could not be built or solved).
    pub classes: Vec<ClassStability>,
}

impl ValidationReport {
    /// True when no error-level issue was found.
    pub fn ok(&self) -> bool {
        !self.issues.iter().any(|i| i.level == LintLevel::Error)
    }
}

/// Lint a scenario: structural validation, then a solve of the base model
/// reporting per-class stability and drift margins. Near-instability (drift
/// margin below the [`HealthThresholds`] default) is a warning; an unstable
/// class is an error.
pub fn validate_report(scenario: &Scenario, solver: &SolverOptions) -> ValidationReport {
    let mut report = ValidationReport {
        name: scenario.name.clone(),
        issues: Vec::new(),
        classes: Vec::new(),
    };
    if let Err(e) = scenario.validate() {
        report.issues.push(LintIssue {
            level: LintLevel::Error,
            message: e.to_string(),
        });
        return report;
    }
    let model = match scenario.build_model() {
        Ok(m) => m,
        Err(e) => {
            report.issues.push(LintIssue {
                level: LintLevel::Error,
                message: e.to_string(),
            });
            return report;
        }
    };
    let mut opts = solver.clone();
    opts.collect_health = true;
    opts.require_stable = false;
    match solve(&model, &opts) {
        Err(e) => report.issues.push(LintIssue {
            level: LintLevel::Error,
            message: format!("base model solve failed: {e}"),
        }),
        Ok(sol) => {
            let th = HealthThresholds::default();
            let health = sol.health.unwrap_or_default();
            for (p, h) in health.classes.iter().enumerate() {
                report.classes.push(ClassStability {
                    class: p,
                    utilization: model.class_utilization(p),
                    stable: h.stable,
                    drift_margin: h.drift_margin,
                });
                if !h.stable {
                    report.issues.push(LintIssue {
                        level: LintLevel::Error,
                        message: format!(
                            "class {p} is unstable at the base point (drift margin {:.4})",
                            h.drift_margin
                        ),
                    });
                } else if h.drift_margin < th.drift_margin {
                    report.issues.push(LintIssue {
                        level: LintLevel::Warning,
                        message: format!(
                            "class {p} is near instability (drift margin {:.4} < {:.2})",
                            h.drift_margin, th.drift_margin
                        ),
                    });
                }
            }
            if !sol.converged {
                report.issues.push(LintIssue {
                    level: LintLevel::Warning,
                    message: "fixed point did not converge at the base point".to_string(),
                });
            }
        }
    }
    report.issues.sort_by_key(|i| match i.level {
        LintLevel::Error => 0,
        LintLevel::Warning => 1,
    });
    report
}
