//! Scenario-driven cross-validation: the analytic solver and the
//! discrete-event simulator run from the *identical* IR, and their
//! per-class mean response times are compared against the scenario's
//! declared [`crate::Tolerance`].
//!
//! The acceptance band per class is
//! `|T_analytic − T_sim| ≤ rel · max(T_sim, floor) + ci_sigmas · ci(T_sim)`
//! where `ci(T_sim)` comes from the batch-means CI on the time-average
//! population via Little's law (`T = N/λ`). The relative part absorbs the
//! analysis's documented optimism (the vacation-independence approximation
//! runs ~10–25% optimistic); the CI part absorbs simulation noise.
//!
//! Sweep points where the analysis declares any class unstable are skipped:
//! no finite stationary response time exists on either side there.

use crate::scenario::{Scenario, ScenarioError};
use gsched_core::{solve, SolverOptions};

/// Floor on the simulated response time used for the relative band, so
/// near-zero responses do not collapse the tolerance.
const RESPONSE_FLOOR: f64 = 0.1;

/// Options for [`cross_validate`].
#[derive(Debug, Clone)]
pub struct XvalOptions {
    /// Maximum sweep points compared per scenario (`0` = every grid point).
    /// Points are taken evenly spaced across the grid.
    pub max_points: usize,
    /// Use the scenario's `quick_grid` when it has one.
    pub quick: bool,
    /// Multiplier on the scenario's simulation horizon (and warmup).
    pub horizon_scale: f64,
    /// Solver options for the analytic side.
    pub solver: SolverOptions,
}

impl Default for XvalOptions {
    fn default() -> Self {
        XvalOptions {
            max_points: 2,
            quick: true,
            horizon_scale: 1.0,
            solver: SolverOptions::default(),
        }
    }
}

/// One class's analytic-vs-simulated comparison at one point.
#[derive(Debug, Clone)]
pub struct XvalClassRow {
    /// Class index.
    pub class: usize,
    /// Analytic mean response time.
    pub analytic: f64,
    /// Simulated mean response time.
    pub simulated: f64,
    /// 95% CI half-width on the simulated response (via Little's law).
    pub sim_ci95: f64,
    /// Absolute gap `|analytic − simulated|`.
    pub gap: f64,
    /// The acceptance band this gap was held against.
    pub tolerance: f64,
    /// `gap ≤ tolerance`.
    pub pass: bool,
}

/// The comparison at one sweep point (or the base model).
#[derive(Debug, Clone)]
pub struct XvalPoint {
    /// Sweep coordinate; `None` for the base model of a sweep-less
    /// scenario.
    pub x: Option<f64>,
    /// True when the analysis declared a class unstable here and the
    /// comparison was skipped.
    pub skipped_unstable: bool,
    /// Per-class rows (empty when skipped).
    pub rows: Vec<XvalClassRow>,
}

/// The full cross-validation result for one scenario.
#[derive(Debug, Clone)]
pub struct XvalReport {
    /// Scenario name.
    pub scenario: String,
    /// The simulated policy name.
    pub policy: String,
    /// One entry per evaluated point.
    pub points: Vec<XvalPoint>,
}

impl XvalReport {
    /// Points that were actually compared (not skipped as unstable).
    pub fn compared_points(&self) -> usize {
        self.points.iter().filter(|p| !p.skipped_unstable).count()
    }

    /// Class rows that exceeded the tolerance band.
    pub fn failures(&self) -> Vec<&XvalClassRow> {
        self.points
            .iter()
            .flat_map(|p| p.rows.iter())
            .filter(|r| !r.pass)
            .collect()
    }

    /// True when at least one point was compared and every compared class
    /// stayed within the band.
    pub fn passed(&self) -> bool {
        self.compared_points() > 0 && self.failures().is_empty()
    }
}

/// Pick up to `k` indices evenly spaced across `0..n` (all of them when
/// `k == 0` or `k >= n`; the middle one when `k == 1`).
fn pick_indices(n: usize, k: usize) -> Vec<usize> {
    if n == 0 {
        return Vec::new();
    }
    if k == 0 || k >= n {
        return (0..n).collect();
    }
    if k == 1 {
        return vec![n / 2];
    }
    (0..k).map(|i| i * (n - 1) / (k - 1)).collect()
}

/// Run analysis and simulation for `scenario` from the same IR and compare
/// mean response times against the declared tolerance.
///
/// Errors when the scenario's policy is a baseline the analysis does not
/// model (`rr`/`fcfs`), or when a model fails to build/solve structurally.
pub fn cross_validate(
    scenario: &Scenario,
    opts: &XvalOptions,
) -> Result<XvalReport, ScenarioError> {
    if !scenario.policy.analysis_comparable() {
        return Err(ScenarioError::Invalid(format!(
            "policy {:?} is not covered by the analytic model; cross-validation \
             needs gang or lend",
            scenario.policy.name()
        )));
    }
    let mut solver = opts.solver.clone();
    solver.require_stable = false;
    let xs: Vec<Option<f64>> = if scenario.sweep.is_some() {
        let grid = scenario.grid(opts.quick);
        pick_indices(grid.len(), opts.max_points)
            .into_iter()
            .map(|i| Some(grid[i]))
            .collect()
    } else {
        vec![None]
    };
    let mut report = XvalReport {
        scenario: scenario.name.clone(),
        policy: scenario.policy.name().to_string(),
        points: Vec::new(),
    };
    for x in xs {
        let model = match x {
            Some(x) => scenario.model_at(x)?,
            None => scenario.build_model()?,
        };
        let sol = solve(&model, &solver).map_err(|e| {
            ScenarioError::Invalid(format!(
                "analytic solve failed{}: {e}",
                x.map(|x| format!(" at x = {x}")).unwrap_or_default()
            ))
        })?;
        if sol.classes.iter().any(|c| !c.stable) {
            report.points.push(XvalPoint {
                x,
                skipped_unstable: true,
                rows: Vec::new(),
            });
            continue;
        }
        let sim = scenario.simulate(&model, opts.horizon_scale);
        let mut rows = Vec::new();
        for (p, (a, s)) in sol.classes.iter().zip(sim.classes.iter()).enumerate() {
            let lambda = model.class(p).arrival_rate();
            let sim_ci95 = if lambda > 0.0 {
                s.mean_jobs_ci95 / lambda
            } else {
                f64::INFINITY
            };
            let gap = (a.mean_response - s.mean_response).abs();
            let tolerance = scenario.tolerance.rel * s.mean_response.max(RESPONSE_FLOOR)
                + scenario.tolerance.ci_sigmas * sim_ci95;
            rows.push(XvalClassRow {
                class: p,
                analytic: a.mean_response,
                simulated: s.mean_response,
                sim_ci95,
                gap,
                tolerance,
                pass: gap.is_finite() && gap <= tolerance,
            });
        }
        report.points.push(XvalPoint {
            x,
            skipped_unstable: false,
            rows,
        });
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_picking_covers_edge_cases() {
        assert_eq!(pick_indices(0, 2), Vec::<usize>::new());
        assert_eq!(pick_indices(5, 0), vec![0, 1, 2, 3, 4]);
        assert_eq!(pick_indices(5, 7), vec![0, 1, 2, 3, 4]);
        assert_eq!(pick_indices(5, 1), vec![2]);
        assert_eq!(pick_indices(5, 2), vec![0, 4]);
        assert_eq!(pick_indices(9, 3), vec![0, 4, 8]);
    }

    #[test]
    fn baseline_policies_are_rejected() {
        let mut sc = crate::registry::lookup("ablation").unwrap();
        sc.policy = gsched_sim::Policy::RoundRobin;
        assert!(cross_validate(&sc, &XvalOptions::default()).is_err());
    }
}
