//! JSON machine specifications: the serializable counterpart of
//! [`gsched_core::GangModel`].
//!
//! A model file looks like:
//!
//! ```json
//! {
//!   "processors": 8,
//!   "classes": [
//!     {
//!       "partition_size": 8,
//!       "arrival":  { "type": "exponential", "rate": 0.4 },
//!       "service":  { "type": "exponential", "rate": 1.33 },
//!       "quantum":  { "type": "erlang", "stages": 2, "rate": 1.0 },
//!       "switch_overhead": { "type": "exponential", "rate": 100.0 }
//!     }
//!   ]
//! }
//! ```

use crate::dist::DistSpec;
use gsched_core::model::{ClassParams, GangModel};
use serde::{Deserialize, Serialize};

/// One job class.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
pub struct ClassSpec {
    /// Processors per job, `g(p)`.
    pub partition_size: usize,
    /// Interarrival distribution.
    pub arrival: DistSpec,
    /// Service distribution.
    pub service: DistSpec,
    /// Quantum distribution.
    pub quantum: DistSpec,
    /// Context-switch overhead distribution.
    pub switch_overhead: DistSpec,
}

/// A whole machine.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
pub struct ModelSpec {
    /// Processor count `P`.
    pub processors: usize,
    /// Job classes.
    pub classes: Vec<ClassSpec>,
}

impl ModelSpec {
    /// Parse from a JSON string.
    pub fn from_json(text: &str) -> Result<ModelSpec, String> {
        serde_json::from_str(text).map_err(|e| format!("invalid model JSON: {e}"))
    }

    /// Materialize into a validated [`GangModel`].
    pub fn build(&self) -> Result<GangModel, String> {
        let mut classes = Vec::with_capacity(self.classes.len());
        for (p, c) in self.classes.iter().enumerate() {
            let err = |field: &str, e: String| format!("class {p}, {field}: {e}");
            classes.push(ClassParams {
                partition_size: c.partition_size,
                arrival: c.arrival.build().map_err(|e| err("arrival", e))?,
                service: c.service.build().map_err(|e| err("service", e))?,
                quantum: c.quantum.build().map_err(|e| err("quantum", e))?,
                switch_overhead: c
                    .switch_overhead
                    .build()
                    .map_err(|e| err("switch_overhead", e))?,
            });
        }
        GangModel::new(self.processors, classes).map_err(|e| e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const EXAMPLE: &str = r#"{
        "processors": 8,
        "classes": [
            {
                "partition_size": 8,
                "arrival": { "type": "exponential", "rate": 0.4 },
                "service": { "type": "exponential", "rate": 1.328125 },
                "quantum": { "type": "erlang", "stages": 2, "rate": 1.0 },
                "switch_overhead": { "type": "exponential", "rate": 100.0 }
            },
            {
                "partition_size": 2,
                "arrival": { "type": "two_moment", "mean": 2.5, "scv": 2.0 },
                "service": { "type": "hyperexponential", "probs": [0.4, 0.6], "rates": [1.0, 4.0] },
                "quantum": { "type": "deterministic", "value": 1.0 },
                "switch_overhead": { "type": "exponential", "rate": 100.0 }
            }
        ]
    }"#;

    #[test]
    fn parse_and_build_example() {
        let spec = ModelSpec::from_json(EXAMPLE).unwrap();
        assert_eq!(spec.processors, 8);
        assert_eq!(spec.classes.len(), 2);
        let model = spec.build().unwrap();
        assert_eq!(model.num_classes(), 2);
        assert!((model.class(0).arrival_rate() - 0.4).abs() < 1e-12);
        assert!((model.class(1).arrival.mean() - 2.5).abs() < 1e-9);
        // Deterministic default stage count picked up.
        assert!(model.class(1).quantum.scv() < 0.05);
    }

    #[test]
    fn bad_specs_rejected() {
        assert!(ModelSpec::from_json("{").is_err());
        assert!(ModelSpec::from_json(r#"{"processors":0,"classes":[]}"#)
            .unwrap()
            .build()
            .is_err());
    }

    #[test]
    fn spec_roundtrips_through_json() {
        let spec = ModelSpec::from_json(EXAMPLE).unwrap();
        let text = serde_json::to_string(&spec).unwrap();
        let again = ModelSpec::from_json(&text).unwrap();
        assert_eq!(spec, again);
    }
}
