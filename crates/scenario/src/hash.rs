//! Canonical content hashing of scenarios.
//!
//! The solve service keys its result cache on a digest of the request's
//! [`Scenario`]. Two requests that describe the same experiment must
//! collide — regardless of how the JSON arrived on the wire — and any
//! change to a model parameter must produce a different key. The digest is
//! therefore computed over a *canonical encoding* of the scenario's JSON
//! data model:
//!
//! * object keys are visited in sorted order, so field order (in a file,
//!   or across serializer versions) never matters;
//! * floats are normalized before hashing: `-0.0` hashes like `0.0` and
//!   every NaN bit pattern hashes alike — then encoded via their IEEE-754
//!   bits, so `1.0` and `1` (both `Value::Number(1.0)`) are identical and
//!   no precision is lost to decimal formatting;
//! * every value is prefixed with a type tag, so `"1"` (string) and `1`
//!   (number) cannot collide structurally.
//!
//! The digest itself is 64-bit FNV-1a — tiny, dependency-free, and more
//! than enough for cache keying (collisions only cost a wrong cache hit
//! among a bounded working set, and the service compares canonical bytes
//! only through this digest).

use crate::scenario::Scenario;
use serde_json::Value;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Incremental 64-bit FNV-1a.
#[derive(Debug, Clone)]
struct Fnv1a(u64);

impl Fnv1a {
    fn new() -> Self {
        Fnv1a(FNV_OFFSET)
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

/// Normalize a float for hashing: collapse `-0.0` into `0.0` and all NaN
/// payloads into the one canonical NaN.
fn normalize_f64(x: f64) -> f64 {
    if x == 0.0 {
        0.0
    } else if x.is_nan() {
        f64::NAN
    } else {
        x
    }
}

fn hash_into(v: &Value, h: &mut Fnv1a) {
    match v {
        Value::Null => h.write(b"n"),
        Value::Bool(false) => h.write(b"f"),
        Value::Bool(true) => h.write(b"t"),
        Value::Number(x) => {
            h.write(b"d");
            h.write(&normalize_f64(*x).to_bits().to_le_bytes());
        }
        Value::String(s) => {
            h.write(b"s");
            h.write(&(s.len() as u64).to_le_bytes());
            h.write(s.as_bytes());
        }
        Value::Array(items) => {
            h.write(b"a");
            h.write(&(items.len() as u64).to_le_bytes());
            for item in items {
                hash_into(item, h);
            }
        }
        Value::Object(pairs) => {
            h.write(b"o");
            h.write(&(pairs.len() as u64).to_le_bytes());
            // Sorted key order makes the digest independent of field order.
            let mut order: Vec<usize> = (0..pairs.len()).collect();
            order.sort_by(|&a, &b| pairs[a].0.cmp(&pairs[b].0));
            for i in order {
                let (k, val) = &pairs[i];
                h.write(&(k.len() as u64).to_le_bytes());
                h.write(k.as_bytes());
                hash_into(val, h);
            }
        }
    }
}

/// Canonical 64-bit digest of a JSON value (sorted keys, normalized
/// floats, type-tagged encoding).
pub fn canonical_value_hash(v: &Value) -> u64 {
    let mut h = Fnv1a::new();
    hash_into(v, &mut h);
    h.finish()
}

impl Scenario {
    /// Canonical content hash of this scenario: a stable digest of the
    /// scenario's JSON data model with sorted field order and normalized
    /// floats. Equal scenarios — however their JSON was ordered or
    /// round-tripped — hash equal; any change to a model field, grid,
    /// policy, or tolerance changes the digest.
    pub fn content_hash(&self) -> u64 {
        let value = serde_json::to_value(self).expect("scenario serialization cannot fail");
        canonical_value_hash(&value)
    }

    /// [`Self::content_hash`] rendered as 16 lowercase hex digits, for use
    /// in logs, diagnostics, and wire frames.
    pub fn content_hash_hex(&self) -> String {
        format!("{:016x}", self.content_hash())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry;

    fn obj(pairs: Vec<(&str, Value)>) -> Value {
        Value::Object(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    #[test]
    fn key_order_does_not_matter() {
        let a = obj(vec![
            ("alpha", Value::Number(1.0)),
            ("beta", Value::String("x".into())),
            (
                "nested",
                obj(vec![
                    ("p", Value::Number(2.0)),
                    ("q", Value::Array(vec![Value::Bool(true), Value::Null])),
                ]),
            ),
        ]);
        let b = obj(vec![
            (
                "nested",
                obj(vec![
                    ("q", Value::Array(vec![Value::Bool(true), Value::Null])),
                    ("p", Value::Number(2.0)),
                ]),
            ),
            ("beta", Value::String("x".into())),
            ("alpha", Value::Number(1.0)),
        ]);
        assert_eq!(canonical_value_hash(&a), canonical_value_hash(&b));
    }

    #[test]
    fn array_order_does_matter() {
        let a = Value::Array(vec![Value::Number(1.0), Value::Number(2.0)]);
        let b = Value::Array(vec![Value::Number(2.0), Value::Number(1.0)]);
        assert_ne!(canonical_value_hash(&a), canonical_value_hash(&b));
    }

    #[test]
    fn value_kinds_do_not_collide() {
        let num = obj(vec![("k", Value::Number(1.0))]);
        let s = obj(vec![("k", Value::String("1".into()))]);
        assert_ne!(canonical_value_hash(&num), canonical_value_hash(&s));
    }

    #[test]
    fn floats_are_normalized() {
        let pos = Value::Number(0.0);
        let neg = Value::Number(-0.0);
        assert_eq!(canonical_value_hash(&pos), canonical_value_hash(&neg));
        let nan = Value::Number(f64::NAN);
        assert_eq!(canonical_value_hash(&nan), canonical_value_hash(&nan));
    }

    #[test]
    fn scenario_hash_survives_json_round_trip_with_reordered_keys() {
        let sc = registry::lookup("fig2").unwrap();
        let h = sc.content_hash();

        // Round-trip through JSON: parse back and rehash.
        let again = Scenario::from_json(&sc.to_json()).unwrap();
        assert_eq!(h, again.content_hash());

        // Reorder the top-level keys of the serialized form and rehash the
        // raw value: still identical.
        let value = serde_json::to_value(&sc).unwrap();
        let Value::Object(mut pairs) = value.clone() else {
            panic!("scenario serializes to an object");
        };
        pairs.reverse();
        assert_eq!(
            canonical_value_hash(&value),
            canonical_value_hash(&Value::Object(pairs))
        );
    }

    #[test]
    fn scenario_hash_is_sensitive_to_every_model_field() {
        let base = registry::lookup("fig2").unwrap();
        let h = base.content_hash();

        let mut renamed = base.clone();
        renamed.name = "fig2_b".to_string();
        assert_ne!(h, renamed.content_hash());

        let mut more_procs = base.clone();
        more_procs.machine.processors += 1;
        assert_ne!(h, more_procs.content_hash());

        let mut partition = base.clone();
        partition.machine.classes[0].partition_size += 1;
        assert_ne!(h, partition.content_hash());

        let mut tolerance = base.clone();
        tolerance.tolerance.rel += 0.01;
        assert_ne!(h, tolerance.content_hash());

        let mut seed = base.clone();
        seed.sim.seed += 1;
        assert_ne!(h, seed.content_hash());
    }

    #[test]
    fn registry_hashes_are_pairwise_distinct() {
        let hashes: Vec<u64> = registry::all().iter().map(Scenario::content_hash).collect();
        for i in 0..hashes.len() {
            for j in (i + 1)..hashes.len() {
                assert_ne!(hashes[i], hashes[j], "{} vs {}", i, j);
            }
        }
    }

    #[test]
    fn hex_form_is_16_digits() {
        let sc = registry::lookup("fig2").unwrap();
        let hex = sc.content_hash_hex();
        assert_eq!(hex.len(), 16);
        assert!(hex.chars().all(|c| c.is_ascii_hexdigit()));
        assert_eq!(u64::from_str_radix(&hex, 16).unwrap(), sc.content_hash());
    }
}
