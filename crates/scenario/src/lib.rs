//! Canonical scenario layer: one typed experiment description — machine,
//! policy, sweep axes, simulation parameters, tolerances — driving the
//! analytic solver, the sweep engine, and the discrete-event simulator.
//!
//! The paper evaluates one gang-scheduling model through two lenses, the
//! matrix-geometric analysis (§4) and a simulator (§5). This crate is the
//! single source of truth for *what* gets evaluated:
//!
//! * [`DistSpec`] / [`ModelSpec`] — serializable distribution and machine
//!   descriptions, materialized into validated `GangModel`s;
//! * [`Scenario`] — the full IR with a validating builder and JSON
//!   round-trip, turning into a [`gsched_engine::SweepRequest`], a
//!   [`gsched_sim::SimConfig`] (with policy selection), or a single model;
//! * [`registry`] — the named catalog: the paper's figures (`fig2`–`fig5`),
//!   the SP2 variant, the ablation base point, and stress scenarios
//!   (heavy traffic, high class count, skewed partitions, near
//!   instability);
//! * [`hash`] — a canonical 64-bit content hash over the scenario's JSON
//!   form (order-insensitive, float-normalized), used by `gsched-service`
//!   to key its result cache so that equivalent scenario documents —
//!   however their keys are ordered — share one cache entry;
//! * [`xval`] — the cross-validation harness comparing analysis and
//!   simulation from the identical IR against declared tolerances;
//! * [`validate_report`] — scenario linting with per-class stability and
//!   drift margins (behind `gsched validate`).

pub mod dist;
pub mod hash;
pub mod model_spec;
pub mod registry;
pub mod scenario;
pub mod xval;

pub use dist::DistSpec;
pub use hash::canonical_value_hash;
pub use model_spec::{ClassSpec, ModelSpec};
pub use scenario::{
    validate_report, AxisSpec, ClassStability, LintIssue, LintLevel, Scenario, ScenarioBuilder,
    ScenarioError, SimSpec, SweepSpec, Tolerance, ValidationReport,
};
pub use xval::{cross_validate, XvalClassRow, XvalOptions, XvalPoint, XvalReport};

// Re-exported so scenario consumers need not depend on gsched-sim directly
// for policy selection.
pub use gsched_sim::Policy;
