//! The named scenario registry: every canonical experiment of the paper's
//! §5–§6 plus stress scenarios, as ready-made [`Scenario`] values.
//!
//! The paper's machine (shared by `fig2`–`fig5`, `sp2`, `ablation`, and the
//! `near_instability` stress point):
//!
//! * `P = 8` processors, `L = 4` classes;
//! * class `p` has `2^{3−p}` partitions, i.e. `g = [8, 4, 2, 1]`;
//! * service-rate ratios `μ₀:μ₁:μ₂:μ₃ = 0.5 : 1 : 2 : 4`, normalized so
//!   that with equal per-class arrival rates `λ_p = λ` the total offered
//!   utilization `ρ = Σ_p λ_p g(p)/(μ_p P)` equals `λ` — that is,
//!   `Σ_p g(p)/μ_p = P`, giving the base rates `μ_p = r_p · 21.25/8`;
//! * context-switch overhead mean `0.01`;
//! * Poisson arrivals, exponential service, Erlang quantum (default 2
//!   stages).
//!
//! The stress entries leave the paper's parameter space on purpose:
//! heavier traffic (`heavy_traffic`), more classes on a bigger machine
//! (`high_class_count`), a skewed partition mix (`skewed_partitions`), and
//! a small-quantum drift point close to the Theorem 4.4 stability edge
//! (`near_instability`).

use crate::dist::DistSpec;
use crate::model_spec::{ClassSpec, ModelSpec};
use crate::scenario::{AxisSpec, Scenario, SimSpec};
use gsched_sim::Policy;

/// The paper's service-rate *ratios* `0.5 : 1 : 2 : 4`.
pub const SERVICE_RATIOS: [f64; 4] = [0.5, 1.0, 2.0, 4.0];

/// Partition sizes `g(p) = 2^{3−p}` for the 8-processor machine.
pub const PARTITION_SIZES: [usize; 4] = [8, 4, 2, 1];

/// Machine size used throughout §5.
pub const PROCESSORS: usize = 8;

/// Context-switch overhead mean used throughout §5.
pub const OVERHEAD_MEAN: f64 = 0.01;

/// Base service rates normalized so `Σ_p g(p)/μ_p = P`, which makes the
/// total utilization equal the common per-class arrival rate.
pub fn paper_service_rates() -> [f64; 4] {
    // Σ g_p / (r_p s) = P  =>  s = (Σ g_p/r_p) / P = 21.25 / 8.
    let s: f64 = PARTITION_SIZES
        .iter()
        .zip(SERVICE_RATIOS.iter())
        .map(|(&g, &r)| g as f64 / r)
        .sum::<f64>()
        / PROCESSORS as f64;
    let mut out = [0.0; 4];
    for (o, &r) in out.iter_mut().zip(SERVICE_RATIOS.iter()) {
        *o = r * s;
    }
    out
}

/// The paper's machine as a serializable [`ModelSpec`]: common arrival rate
/// `lambda`, given per-class service rates and quantum means, Erlang
/// quantum with `quantum_stages` stages.
pub fn paper_machine_custom(
    lambda: f64,
    service_rates: &[f64; 4],
    quantum_means: &[f64; 4],
    quantum_stages: usize,
) -> ModelSpec {
    ModelSpec {
        processors: PROCESSORS,
        classes: (0..4)
            .map(|p| ClassSpec {
                partition_size: PARTITION_SIZES[p],
                arrival: DistSpec::Exponential { rate: lambda },
                service: DistSpec::Exponential {
                    rate: service_rates[p],
                },
                quantum: DistSpec::Erlang {
                    stages: quantum_stages,
                    rate: 1.0 / quantum_means[p],
                },
                switch_overhead: DistSpec::Exponential {
                    rate: 1.0 / OVERHEAD_MEAN,
                },
            })
            .collect(),
    }
}

/// The paper's machine with normalized service rates and a common quantum
/// mean.
pub fn paper_machine(lambda: f64, quantum_mean: f64, quantum_stages: usize) -> ModelSpec {
    paper_machine_custom(
        lambda,
        &paper_service_rates(),
        &[quantum_mean; 4],
        quantum_stages,
    )
}

/// The default x-grid for Figures 2–3 (0.02 … 6).
pub fn default_quantum_grid() -> Vec<f64> {
    let mut g = vec![0.02, 0.05, 0.1, 0.2, 0.35, 0.5, 0.75];
    for i in 2..=12 {
        g.push(i as f64 * 0.5);
    }
    g
}

/// The reduced quantum grid used by `--quick` sweeps.
pub fn quick_quantum_grid() -> Vec<f64> {
    vec![0.5, 1.0, 2.0, 3.0, 4.0]
}

/// The default x-grid for Figure 4 (2 … 20).
pub fn default_service_rate_grid() -> Vec<f64> {
    (1..=10).map(|i| 2.0 * i as f64).collect()
}

/// The default fraction grid for Figure 5 (0.1 … 0.9).
pub fn default_fraction_grid() -> Vec<f64> {
    (1..=9).map(|i| i as f64 / 10.0).collect()
}

/// A quantum-mean sweep over the paper's machine (the Figure 2–3 family).
/// The base machine carries quantum mean 1; the axis moves it.
pub fn quantum_scenario(
    name: &str,
    lambda: f64,
    quantum_stages: usize,
    grid: Vec<f64>,
    quick_grid: Option<Vec<f64>>,
) -> Scenario {
    let mut b = Scenario::builder(name, paper_machine(lambda, 1.0, quantum_stages))
        .sweep(AxisSpec::QuantumMean, grid)
        .param("lambda", lambda)
        .param("quantum_stages", quantum_stages as f64);
    if let Some(q) = quick_grid {
        b = b.quick_grid(q);
    }
    b.build().expect("quantum scenario parameters are valid")
}

/// A common-service-rate sweep over the paper's machine at `λ = 0.6`,
/// quantum mean 5 (the Figure 4 family).
pub fn service_rate_scenario(
    name: &str,
    quantum_stages: usize,
    grid: Vec<f64>,
    quick_grid: Option<Vec<f64>>,
) -> Scenario {
    let mut b = Scenario::builder(name, paper_machine(0.6, 5.0, quantum_stages))
        .sweep(AxisSpec::ServiceRate, grid)
        .param("lambda", 0.6)
        .param("quantum_mean", 5.0)
        .param("quantum_stages", quantum_stages as f64);
    if let Some(q) = quick_grid {
        b = b.quick_grid(q);
    }
    b.build()
        .expect("service-rate scenario parameters are valid")
}

/// A cycle-fraction sweep over the paper's machine at `λ = 0.6` (the
/// Figure 5 family): the focal class's share of the quantum budget moves.
pub fn cycle_fraction_scenario(
    name: &str,
    class: usize,
    budget: f64,
    quantum_stages: usize,
    grid: Vec<f64>,
    quick_grid: Option<Vec<f64>>,
) -> Scenario {
    let mut b = Scenario::builder(name, paper_machine(0.6, 1.0, quantum_stages))
        .sweep(AxisSpec::CycleFraction { class, budget }, grid)
        .param("lambda", 0.6)
        .param("class", class as f64)
        .param("budget", budget)
        .param("quantum_stages", quantum_stages as f64);
    if let Some(q) = quick_grid {
        b = b.quick_grid(q);
    }
    b.build()
        .expect("cycle-fraction scenario parameters are valid")
}

fn with_description(mut sc: Scenario, d: &str) -> Scenario {
    sc.description = d.to_string();
    sc
}

fn fig2() -> Scenario {
    with_description(
        quantum_scenario(
            "fig2",
            0.4,
            2,
            default_quantum_grid(),
            Some(quick_quantum_grid()),
        ),
        "Figure 2 (§5): mean jobs vs mean quantum length at ρ = 0.4",
    )
}

fn fig3() -> Scenario {
    let mut sc = quantum_scenario(
        "fig3",
        0.6,
        2,
        default_quantum_grid(),
        Some(quick_quantum_grid()),
    );
    sc.tolerance.rel = 0.4;
    with_description(
        sc,
        "Figure 3 (§5): mean jobs vs mean quantum length at ρ = 0.6",
    )
}

fn fig3_heavy() -> Scenario {
    let mut sc = quantum_scenario(
        "fig3_heavy",
        0.9,
        2,
        default_quantum_grid(),
        Some(vec![4.0, 5.0, 6.0]),
    );
    // At ρ = 0.9 the machine-wide class is unstable below quantum mean ≈ 4
    // (the saturation crossover the figure is about), so the base machine
    // and the quick grid sit on the stable side; the full grid keeps the
    // unstable small-quantum points, which sweeps report as per-point
    // failures.
    sc.machine = paper_machine(0.9, 5.0, 2);
    sc.tolerance.rel = 0.6;
    sc = with_description(
        sc,
        "Figure 3's heavy-traffic companion (§5): quantum sweep at ρ = 0.9, \
         small quanta saturate the wide classes",
    );
    sc.validate().expect("fig3_heavy parameters are valid");
    sc
}

fn fig4() -> Scenario {
    with_description(
        service_rate_scenario(
            "fig4",
            2,
            default_service_rate_grid(),
            Some(vec![4.0, 10.0]),
        ),
        "Figure 4 (§5): mean jobs vs common service rate, quantum mean 5, λ = 0.6",
    )
}

fn fig5() -> Scenario {
    let mut sc = cycle_fraction_scenario(
        "fig5",
        0,
        4.0,
        2,
        default_fraction_grid(),
        Some(vec![0.25, 0.5, 0.75]),
    );
    sc.tolerance.rel = 0.45;
    with_description(
        sc,
        "Figure 5 (§5): mean jobs vs class 0's share of a quantum budget of 4, λ = 0.6",
    )
}

fn sp2() -> Scenario {
    let mut b = Scenario::builder("sp2", paper_machine(0.6, 1.0, 2))
        .description(
            "SP2 implementation variant (§6): idle partitions lent to later \
             classes; analysis models the strict system-wide policy, so the \
             agreement tolerance is wider",
        )
        .policy(Policy::Lend)
        .sweep(AxisSpec::QuantumMean, vec![0.5, 1.0, 2.0, 4.0])
        .sim(SimSpec {
            horizon: 150_000.0,
            warmup: 15_000.0,
            seed: 0xABCD,
            batches: 15,
        })
        .tolerance(0.5, 3.0)
        .param("lambda", 0.6)
        .param("quantum_stages", 2.0);
    b = b.quick_grid(vec![1.0, 2.0]);
    b.build().expect("sp2 parameters are valid")
}

fn ablation() -> Scenario {
    Scenario::builder("ablation", paper_machine(0.5, 1.0, 2))
        .description(
            "Ablation base point (§4–§5): the paper machine at λ = 0.5, \
             quantum mean 1 — the reference configuration for vacation-mode \
             and stage-count ablations",
        )
        .param("lambda", 0.5)
        .param("quantum_stages", 2.0)
        .build()
        .expect("ablation parameters are valid")
}

fn heavy_traffic() -> Scenario {
    Scenario::builder("heavy_traffic", paper_machine(0.8, 1.0, 2))
        .description(
            "Stress: offered-load sweep to ρ = 0.8 on the paper machine, \
             quantum mean 1 — heavy-traffic regime where the vacation \
             independence approximation is weakest",
        )
        .sweep(AxisSpec::ArrivalRate, vec![0.5, 0.6, 0.7, 0.8])
        .quick_grid(vec![0.6, 0.8])
        // The vacation-independence approximation degrades sharply as the
        // machine-wide class approaches saturation; at ρ = 0.8 the analysis
        // runs ~60% optimistic on that class (the point of this scenario).
        .tolerance(0.75, 3.0)
        .param("quantum_mean", 1.0)
        .param("quantum_stages", 2.0)
        .build()
        .expect("heavy_traffic parameters are valid")
}

fn high_class_count() -> Scenario {
    // A 16-processor machine with L = 5 classes, partition sizes
    // g = [16, 8, 4, 2, 1] and service ratios 0.5:1:2:4:8 normalized the
    // same way as the paper machine (Σ g/μ = P so ρ = λ).
    let partitions = [16usize, 8, 4, 2, 1];
    let ratios = [0.5, 1.0, 2.0, 4.0, 8.0];
    let processors = 16usize;
    let s: f64 = partitions
        .iter()
        .zip(ratios.iter())
        .map(|(&g, &r)| g as f64 / r)
        .sum::<f64>()
        / processors as f64;
    let lambda = 0.3;
    let machine = ModelSpec {
        processors,
        classes: partitions
            .iter()
            .zip(ratios.iter())
            .map(|(&g, &r)| ClassSpec {
                partition_size: g,
                arrival: DistSpec::Exponential { rate: lambda },
                service: DistSpec::Exponential { rate: r * s },
                quantum: DistSpec::Erlang {
                    stages: 2,
                    rate: 1.0,
                },
                switch_overhead: DistSpec::Exponential {
                    rate: 1.0 / OVERHEAD_MEAN,
                },
            })
            .collect(),
    };
    Scenario::builder("high_class_count", machine)
        .description(
            "Stress: L = 5 classes on a 16-processor machine (g = 16…1, \
             ratios 0.5:1:2:4:8 normalized so ρ = λ = 0.3), quantum mean 1",
        )
        .sim(SimSpec {
            horizon: 120_000.0,
            warmup: 12_000.0,
            ..SimSpec::default()
        })
        .param("lambda", lambda)
        .param("quantum_stages", 2.0)
        .build()
        .expect("high_class_count parameters are valid")
}

fn skewed_partitions() -> Scenario {
    // One machine-wide class plus two single-processor classes, with the
    // cycle budget skewed 4:1 toward the wide class. ρ = 0.25 + 2·0.075.
    let class = |g: usize, lambda: f64, mu: f64, quantum_mean: f64| ClassSpec {
        partition_size: g,
        arrival: DistSpec::Exponential { rate: lambda },
        service: DistSpec::Exponential { rate: mu },
        quantum: DistSpec::Erlang {
            stages: 2,
            rate: 1.0 / quantum_mean,
        },
        switch_overhead: DistSpec::Exponential {
            rate: 1.0 / OVERHEAD_MEAN,
        },
    };
    let machine = ModelSpec {
        processors: 8,
        classes: vec![
            class(8, 0.25, 1.0, 2.0),
            class(1, 1.2, 2.0, 0.5),
            class(1, 1.2, 2.0, 0.5),
        ],
    };
    Scenario::builder("skewed_partitions", machine)
        .description(
            "Stress: skewed partition mix — one machine-wide class against \
             two single-processor classes with unequal arrival rates and a \
             4:1 quantum skew",
        )
        .param("rho", 0.4)
        .build()
        .expect("skewed_partitions parameters are valid")
}

fn near_instability() -> Scenario {
    // Quantum mean 0.09 at λ = 0.6: each 0.09 quantum pays a 0.01 switch
    // overhead, eroding the machine-wide class's capacity to a drift margin
    // of a few percent (`gsched validate` reports it as near-unstable).
    Scenario::builder("near_instability", paper_machine(0.6, 0.09, 2))
        .description(
            "Stress: the paper machine at λ = 0.6 with quantum mean 0.09 — \
             switch overhead erodes the wide classes' capacity and pushes \
             class 0 within a few percent of the Theorem 4.4 drift boundary",
        )
        .sim(SimSpec {
            horizon: 400_000.0,
            warmup: 40_000.0,
            ..SimSpec::default()
        })
        .tolerance(0.6, 4.0)
        .param("lambda", 0.6)
        .param("quantum_mean", 0.09)
        .param("quantum_stages", 2.0)
        .build()
        .expect("near_instability parameters are valid")
}

/// The default processor grid for `p_sweep` (powers of two, 8 … 4096).
pub fn default_processor_grid() -> Vec<f64> {
    (3..=12).map(|k| (1usize << k) as f64).collect()
}

/// The reduced processor grid used by `--quick` scaling sweeps. It still
/// spans the full 8 → 4096 range — quick trims density, not reach.
pub fn quick_processor_grid() -> Vec<f64> {
    vec![8.0, 64.0, 512.0, 4096.0]
}

fn p_sweep() -> Scenario {
    // Two classes — one 4-wide, one single-processor — each offered a fixed
    // utilization ρ_p = 0.10 while P scales 8 → 4096 (arrival rates scale
    // ∝ P along the axis; the base machine below is the P = 8 anchor).
    // Exponential arrival/service keep m_b = 1 so the frozen-capacity level
    // truncation applies below c_p. The certification level for a tail
    // target ε sits near ρ_p·(T∞ + ln(1/ε)/r_min)·c_p levels, where r_min
    // is the slowest phase exit rate of the class's off-cycle: a heavy
    // (exponential) overhead tail drags r_min down and pushes that level
    // past c_p, so both quantum and overhead are Erlang-4 — light-tailed
    // cycles keep the certified cut near 0.7·c_p and the zero-queueing
    // limit governs the large-P end. See docs/LARGE_P.md.
    let rho = 0.10;
    let class = |g: usize| ClassSpec {
        partition_size: g,
        // λ_p = ρ·μ·P/g at the P = 8 base point.
        arrival: DistSpec::Exponential {
            rate: rho * 8.0 / g as f64,
        },
        service: DistSpec::Exponential { rate: 1.0 },
        quantum: DistSpec::Erlang {
            stages: 4,
            rate: 4.0,
        },
        switch_overhead: DistSpec::Erlang {
            stages: 4,
            rate: 4.0 / OVERHEAD_MEAN,
        },
    };
    let machine = ModelSpec {
        processors: 8,
        classes: vec![class(4), class(1)],
    };
    Scenario::builder("p_sweep", machine)
        .description(
            "Scaling: machine size P = 8 → 4096 at fixed per-class \
             utilization 0.10 — certified level truncation engages at large \
             c_p and the largest point is cross-checked against the \
             zero-queueing asymptotic limit",
        )
        .sweep(AxisSpec::Processors, default_processor_grid())
        .quick_grid(quick_processor_grid())
        // Short horizon: the event rate scales with P, so simulated time is
        // traded for arrival volume at the large end of the grid.
        .sim(SimSpec {
            horizon: 400.0,
            warmup: 40.0,
            seed: 0x5CA1E,
            batches: 8,
        })
        .certified_tail(1e-8)
        .asymptotic_rel(0.05)
        .param("rho_per_class", rho)
        .param("quantum_mean", 1.0)
        .build()
        .expect("p_sweep parameters are valid")
}

/// All registry scenario names, in catalog order.
pub const NAMES: [&str; 12] = [
    "fig2",
    "fig3",
    "fig3_heavy",
    "fig4",
    "fig5",
    "sp2",
    "ablation",
    "heavy_traffic",
    "high_class_count",
    "skewed_partitions",
    "near_instability",
    "p_sweep",
];

/// Look up a registry scenario by name.
pub fn lookup(name: &str) -> Option<Scenario> {
    match name.to_ascii_lowercase().as_str() {
        "fig2" => Some(fig2()),
        "fig3" => Some(fig3()),
        "fig3_heavy" => Some(fig3_heavy()),
        "fig4" => Some(fig4()),
        "fig5" => Some(fig5()),
        "sp2" => Some(sp2()),
        "ablation" => Some(ablation()),
        "heavy_traffic" => Some(heavy_traffic()),
        "high_class_count" => Some(high_class_count()),
        "skewed_partitions" => Some(skewed_partitions()),
        "near_instability" => Some(near_instability()),
        "p_sweep" => Some(p_sweep()),
        _ => None,
    }
}

/// Every registry scenario, in catalog order.
pub fn all() -> Vec<Scenario> {
    NAMES
        .iter()
        .map(|n| lookup(n).expect("NAMES entries all resolve"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_name_resolves_and_validates() {
        for name in NAMES {
            let sc = lookup(name).unwrap_or_else(|| panic!("{name} missing"));
            assert_eq!(sc.name, name);
            assert!(!sc.description.is_empty(), "{name} needs a description");
            sc.validate().unwrap_or_else(|e| panic!("{name}: {e}"));
            sc.build_model().unwrap_or_else(|e| panic!("{name}: {e}"));
        }
        assert_eq!(lookup("no_such_scenario"), None);
        assert_eq!(all().len(), NAMES.len());
    }

    #[test]
    fn registry_scenarios_roundtrip_through_json() {
        for sc in all() {
            let text = sc.to_json();
            let again =
                Scenario::from_json(&text).unwrap_or_else(|e| panic!("{}: {e}\n{text}", sc.name));
            assert_eq!(sc, again, "{}", sc.name);
        }
    }

    #[test]
    fn figure_scenarios_match_paper_machine() {
        let sc = fig2();
        let m = sc.build_model().unwrap();
        assert_eq!(m.num_classes(), 4);
        assert!((m.total_utilization() - 0.4).abs() < 1e-12);
        let mus = paper_service_rates();
        for (p, mu) in mus.iter().enumerate() {
            assert!((m.class(p).service_rate() - mu).abs() < 1e-12);
        }
    }

    #[test]
    fn sweep_scenarios_materialize_every_grid_point() {
        for sc in all() {
            if sc.sweep.is_none() {
                continue;
            }
            for quick in [false, true] {
                let req = sc.sweep_request(quick).unwrap();
                assert_eq!(req.base.label, sc.name);
                assert_eq!(req.len(), sc.grid(quick).len());
                for w in req.points.windows(2) {
                    assert!(w[0].x < w[1].x, "{}: grid ordered", sc.name);
                }
            }
        }
    }

    #[test]
    fn quantum_scenario_tracks_the_axis() {
        let sc = fig2();
        for &q in &[0.02, 0.5, 3.0] {
            let m = sc.model_at(q).unwrap();
            for p in 0..4 {
                assert!((m.class(p).quantum.mean() - q).abs() < 1e-9, "q={q}");
            }
            assert!((m.total_utilization() - 0.4).abs() < 1e-12);
        }
    }

    #[test]
    fn p_sweep_holds_utilization_fixed_while_p_grows() {
        let sc = lookup("p_sweep").unwrap();
        assert_eq!(sc.grid(false).first(), Some(&8.0));
        assert_eq!(sc.grid(false).last(), Some(&4096.0));
        // Quick trims density, not reach: it still spans 8 → 4096.
        assert_eq!(sc.grid(true).first(), Some(&8.0));
        assert_eq!(sc.grid(true).last(), Some(&4096.0));
        assert_eq!(sc.tolerance.certified_tail, Some(1e-8));
        assert!(sc.tolerance.asymptotic_rel.is_some());
        for &x in sc.grid(false) {
            let m = sc.model_at(x).unwrap();
            assert_eq!(m.processors(), x as usize);
            for p in 0..m.num_classes() {
                assert!(
                    (m.class_utilization(p) - 0.10).abs() < 1e-9,
                    "P = {x}, class {p}: utilization {}",
                    m.class_utilization(p)
                );
            }
        }
    }

    #[test]
    fn ablation_has_no_sweep() {
        let sc = ablation();
        assert!(sc.sweep.is_none());
        assert!(sc.sweep_request(false).is_err());
        assert!(sc.model_at(1.0).is_err());
        assert_eq!(sc.grid(false), &[] as &[f64]);
    }
}
