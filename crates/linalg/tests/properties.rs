//! Property-based tests for the dense linear-algebra kernels.

use gsched_linalg::{kron_product, kron_sum, lu, Lu, Matrix};
use proptest::prelude::*;

/// Strategy: a well-conditioned (diagonally dominant) square matrix.
fn dd_matrix(n: usize) -> impl Strategy<Value = Matrix> {
    proptest::collection::vec(-1.0f64..1.0, n * n).prop_map(move |data| {
        let mut m = Matrix::from_vec(n, n, data);
        for i in 0..n {
            m[(i, i)] += n as f64 + 1.0;
        }
        m
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn inverse_roundtrip(n in 1usize..7, seed in 0u64..1000) {
        let mut s = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
        let mut next = || { s ^= s << 13; s ^= s >> 7; s ^= s << 17; (s % 2000) as f64 / 1000.0 - 1.0 };
        let mut a = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..n {
                a[(i, j)] = next();
            }
            a[(i, i)] += n as f64 + 1.0;
        }
        let inv = lu::inverse(&a).unwrap();
        let prod = a.matmul(&inv).unwrap();
        prop_assert!(prod.max_abs_diff(&Matrix::identity(n)) < 1e-9);
    }

    #[test]
    fn solve_matches_multiply(a in dd_matrix(4), b in proptest::collection::vec(-5.0f64..5.0, 4)) {
        let x = lu::solve(&a, &b).unwrap();
        let back = a.mul_vec(&x).unwrap();
        for (got, want) in back.iter().zip(b.iter()) {
            prop_assert!((got - want).abs() < 1e-8);
        }
    }

    #[test]
    fn left_solve_transpose_identity(a in dd_matrix(5), b in proptest::collection::vec(-3.0f64..3.0, 5)) {
        // Solving x·A = b must equal solving Aᵀ·xᵀ = bᵀ.
        let f = Lu::new(&a).unwrap();
        let x = f.solve_left_vec(&b).unwrap();
        let ft = Lu::new(&a.transpose()).unwrap();
        let y = ft.solve_vec(&b).unwrap();
        for (xi, yi) in x.iter().zip(y.iter()) {
            prop_assert!((xi - yi).abs() < 1e-8);
        }
    }

    #[test]
    fn determinant_multiplicative(a in dd_matrix(3), b in dd_matrix(3)) {
        let da = Lu::new(&a).unwrap().det();
        let db = Lu::new(&b).unwrap().det();
        let dab = Lu::new(&a.matmul(&b).unwrap()).unwrap().det();
        prop_assert!((dab - da * db).abs() < 1e-6 * dab.abs().max(1.0));
    }

    #[test]
    fn kron_product_shapes_and_norm(ar in 1usize..4, ac in 1usize..4, br in 1usize..4, bc in 1usize..4) {
        let a = Matrix::from_vec(ar, ac, vec![0.5; ar * ac]);
        let b = Matrix::from_vec(br, bc, vec![2.0; br * bc]);
        let k = kron_product(&a, &b);
        prop_assert_eq!(k.shape(), (ar * br, ac * bc));
        // All entries are 1.0 here.
        prop_assert!((k.max_abs() - 1.0).abs() < 1e-15);
    }

    #[test]
    fn kron_sum_spectrum_additive_for_diagonals(d1 in proptest::collection::vec(-3.0f64..0.0, 2),
                                                d2 in proptest::collection::vec(-3.0f64..0.0, 3)) {
        // For diagonal matrices, eigenvalues of A ⊕ B are all pairwise sums;
        // check the trace identity tr(A⊕B) = nb·tr(A) + na·tr(B).
        let a = Matrix::diag(&d1);
        let b = Matrix::diag(&d2);
        let s = kron_sum(&a, &b);
        let tr = |m: &Matrix| (0..m.rows()).map(|i| m[(i, i)]).sum::<f64>();
        let want = d2.len() as f64 * tr(&a) + d1.len() as f64 * tr(&b);
        prop_assert!((tr(&s) - want).abs() < 1e-10);
    }

    #[test]
    fn transpose_product_identity(a in dd_matrix(3), b in dd_matrix(3)) {
        // (AB)ᵀ = BᵀAᵀ
        let lhs = a.matmul(&b).unwrap().transpose();
        let rhs = b.transpose().matmul(&a.transpose()).unwrap();
        prop_assert!(lhs.max_abs_diff(&rhs) < 1e-12);
    }

    #[test]
    fn row_sums_linear(a in dd_matrix(4), s in -3.0f64..3.0) {
        let scaled = a.scaled(s);
        for (r1, r2) in a.row_sums().iter().zip(scaled.row_sums().iter()) {
            prop_assert!((r1 * s - r2).abs() < 1e-10);
        }
    }
}
