//! Differential property tests: the three kernel backends must agree.
//!
//! Random well-conditioned (diagonally dominant) matrices are pushed
//! through matmul, LU factor/solve, and the triangular substitution passes
//! on [`NaiveDense`], [`Blocked`], and [`BlockBanded`]; results must agree
//! within 1e-10. Band storage must reject out-of-band writes with the typed
//! [`LinalgError::OutOfBand`] error rather than dropping them.
//!
//! [`NaiveDense`]: gsched_linalg::NaiveDense
//! [`Blocked`]: gsched_linalg::Blocked
//! [`BlockBanded`]: gsched_linalg::BlockBanded
//! [`LinalgError::OutOfBand`]: gsched_linalg::LinalgError::OutOfBand

use gsched_linalg::backend::BackendKind;
use gsched_linalg::{BandedMatrix, LinalgError, Matrix};
use proptest::prelude::*;

const TOL: f64 = 1e-10;

/// Build a square matrix from flat entries, made well-conditioned by
/// diagonal dominance (each diagonal gets +n on top of a [-1, 1] fill).
fn dominant(n: usize, entries: &[f64]) -> Matrix {
    let mut m = Matrix::from_vec(n, n, entries[..n * n].to_vec());
    for i in 0..n {
        m[(i, i)] += n as f64;
    }
    m
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn matmul_agrees_within_tolerance(
        n in 1usize..24,
        fill in collection::vec(-1.0f64..1.0, 24 * 24),
        fill2 in collection::vec(-1.0f64..1.0, 24 * 24),
    ) {
        let a = Matrix::from_vec(n, n, fill[..n * n].to_vec());
        let b = Matrix::from_vec(n, n, fill2[..n * n].to_vec());
        let want = BackendKind::Naive.instance().matmul(&a, &b).unwrap();
        for kind in [BackendKind::Blocked, BackendKind::Banded] {
            let got = kind.instance().matmul(&a, &b).unwrap();
            prop_assert!(
                got.max_abs_diff(&want) < TOL,
                "{kind} matmul differs by {} at n={n}",
                got.max_abs_diff(&want)
            );
        }
    }

    #[test]
    fn lu_solve_round_trips_on_all_backends(
        n in 1usize..20,
        fill in collection::vec(-1.0f64..1.0, 20 * 20),
        rhs in collection::vec(-5.0f64..5.0, 20),
    ) {
        let a = dominant(n, &fill);
        let b = &rhs[..n];
        let mut answers = Vec::new();
        for kind in BackendKind::ALL {
            let f = kind.instance().factor(&a).unwrap();
            let x = f.solve_vec(b).unwrap();
            // The solve really solves: A x ≈ b.
            let ax = a.mul_vec(&x).unwrap();
            for (got, want) in ax.iter().zip(b.iter()) {
                prop_assert!((got - want).abs() < TOL, "{kind}: Ax={got} vs b={want}");
            }
            answers.push(x);
        }
        for x in &answers[1..] {
            for (u, v) in x.iter().zip(answers[0].iter()) {
                prop_assert!((u - v).abs() < TOL, "backends disagree: {u} vs {v}");
            }
        }
    }

    #[test]
    fn triangular_left_solves_agree(
        n in 1usize..20,
        fill in collection::vec(-1.0f64..1.0, 20 * 20),
        rhs in collection::vec(-5.0f64..5.0, 20),
    ) {
        let a = dominant(n, &fill);
        let b = &rhs[..n];
        let want = BackendKind::Naive
            .instance()
            .factor(&a)
            .unwrap()
            .solve_left_vec(b)
            .unwrap();
        for kind in [BackendKind::Blocked, BackendKind::Banded] {
            let got = kind.instance().factor(&a).unwrap().solve_left_vec(b).unwrap();
            for (u, v) in got.iter().zip(want.iter()) {
                prop_assert!((u - v).abs() < TOL, "{kind}: {u} vs {v}");
            }
        }
    }

    #[test]
    fn matrix_solves_and_inverse_agree(
        n in 2usize..14,
        fill in collection::vec(-1.0f64..1.0, 14 * 14),
        fill2 in collection::vec(-1.0f64..1.0, 14 * 14),
    ) {
        let a = dominant(n, &fill);
        let b = Matrix::from_vec(n, n, fill2[..n * n].to_vec());
        let naive = BackendKind::Naive.instance();
        let want_solve = naive.solve_matrix(&a, &b).unwrap();
        let want_inv = naive.inverse(&a).unwrap();
        for kind in [BackendKind::Blocked, BackendKind::Banded] {
            let be = kind.instance();
            prop_assert!(be.solve_matrix(&a, &b).unwrap().max_abs_diff(&want_solve) < TOL);
            prop_assert!(be.inverse(&a).unwrap().max_abs_diff(&want_inv) < TOL);
        }
    }

    #[test]
    fn banded_preserves_band_structure_and_rejects_outside(
        n in 3usize..16,
        kl in 0usize..3,
        ku in 0usize..3,
        fill in collection::vec(0.1f64..2.0, 16 * 16),
    ) {
        // Build a matrix with exactly the declared band occupied.
        let mut dense = Matrix::zeros(n, n);
        for i in 0..n {
            let lo = i.saturating_sub(kl);
            let hi = (i + ku).min(n - 1);
            for j in lo..=hi {
                dense[(i, j)] = fill[i * n + j];
            }
            dense[(i, i)] += n as f64;
        }
        let band = BandedMatrix::from_dense(&dense).unwrap();
        let (dkl, dku) = band.bandwidth();
        prop_assert!(dkl <= kl && dku <= ku);
        prop_assert_eq!(band.to_dense(), dense.clone());

        // Any write outside the detected band is the typed error.
        let mut band = band;
        if dku + 1 < n {
            let err = band.set(0, dku + 1, 1.0).unwrap_err();
            prop_assert!(
                matches!(err, LinalgError::OutOfBand { row: 0, .. }),
                "expected OutOfBand, got {err:?}"
            );
        }
        // And the banded backend still solves it exactly like the others.
        let want = BackendKind::Naive
            .instance()
            .factor(&dense)
            .unwrap()
            .solve_vec(&vec![1.0; n])
            .unwrap();
        let got = BackendKind::Banded
            .instance()
            .factor(&dense)
            .unwrap()
            .solve_vec(&vec![1.0; n])
            .unwrap();
        for (u, v) in got.iter().zip(want.iter()) {
            prop_assert!((u - v).abs() < TOL);
        }
    }
}
