//! Row-major dense matrix type and elementwise / algebraic operations.

use crate::{LinalgError, Result};
use std::fmt;
use std::ops::{Add, AddAssign, Index, IndexMut, Mul, Neg, Sub, SubAssign};

/// A dense, row-major `f64` matrix.
///
/// This is the workhorse type of the analytic solver. It is intentionally
/// simple: a shape plus a flat `Vec<f64>`. Rows of generator matrices are
/// contiguous, which makes the row-vector products that dominate the
/// matrix-geometric iteration cache-friendly.
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Create a `rows × cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Create the `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Create a matrix from a flat row-major buffer.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "from_vec: buffer length {} does not match {}x{}",
            data.len(),
            rows,
            cols
        );
        Matrix { rows, cols, data }
    }

    /// Create a matrix from nested row slices.
    ///
    /// # Panics
    /// Panics if the rows have unequal lengths.
    pub fn from_rows(rows: &[&[f64]]) -> Self {
        let r = rows.len();
        let c = if r == 0 { 0 } else { rows[0].len() };
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            assert_eq!(row.len(), c, "from_rows: ragged rows");
            data.extend_from_slice(row);
        }
        Matrix {
            rows: r,
            cols: c,
            data,
        }
    }

    /// Create a square diagonal matrix from the given diagonal entries.
    pub fn diag(entries: &[f64]) -> Self {
        let n = entries.len();
        let mut m = Matrix::zeros(n, n);
        for (i, &v) in entries.iter().enumerate() {
            m[(i, i)] = v;
        }
        m
    }

    /// Create a `1 × n` row vector.
    pub fn row_vector(entries: &[f64]) -> Self {
        Matrix::from_vec(1, entries.len(), entries.to_vec())
    }

    /// Create an `n × 1` column vector.
    pub fn col_vector(entries: &[f64]) -> Self {
        Matrix::from_vec(entries.len(), 1, entries.to_vec())
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// True if the matrix is square.
    #[inline]
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Borrow the flat row-major buffer.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutably borrow the flat row-major buffer.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Borrow row `i` as a slice.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutably borrow row `i` as a slice.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Copy column `j` into a new `Vec`.
    pub fn col(&self, j: usize) -> Vec<f64> {
        (0..self.rows).map(|i| self[(i, j)]).collect()
    }

    /// Transpose.
    pub fn transpose(&self) -> Matrix {
        let mut t = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                t[(j, i)] = self[(i, j)];
            }
        }
        t
    }

    /// Matrix product `self * rhs`.
    pub fn matmul(&self, rhs: &Matrix) -> Result<Matrix> {
        if self.cols != rhs.rows {
            return Err(LinalgError::DimensionMismatch {
                op: "matmul",
                lhs: self.shape(),
                rhs: rhs.shape(),
            });
        }
        crate::counters::record_matmul(self.rows, rhs.cols, self.cols);
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        // i-k-j loop order: streams through rhs rows, friendly to row-major.
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(i, k)];
                if a == 0.0 {
                    continue;
                }
                let rrow = rhs.row(k);
                let orow = out.row_mut(i);
                for (o, &b) in orow.iter_mut().zip(rrow.iter()) {
                    *o += a * b;
                }
            }
        }
        Ok(out)
    }

    /// Row-vector times matrix: returns `x * self` for a row vector `x`.
    pub fn left_mul_vec(&self, x: &[f64]) -> Result<Vec<f64>> {
        if x.len() != self.rows {
            return Err(LinalgError::DimensionMismatch {
                op: "left_mul_vec",
                lhs: (1, x.len()),
                rhs: self.shape(),
            });
        }
        let mut out = vec![0.0; self.cols];
        for (i, &xi) in x.iter().enumerate() {
            if xi == 0.0 {
                continue;
            }
            for (o, &m) in out.iter_mut().zip(self.row(i).iter()) {
                *o += xi * m;
            }
        }
        Ok(out)
    }

    /// Matrix times column vector: returns `self * y` for a column vector `y`.
    pub fn mul_vec(&self, y: &[f64]) -> Result<Vec<f64>> {
        if y.len() != self.cols {
            return Err(LinalgError::DimensionMismatch {
                op: "mul_vec",
                lhs: self.shape(),
                rhs: (y.len(), 1),
            });
        }
        let out = (0..self.rows)
            .map(|i| self.row(i).iter().zip(y.iter()).map(|(&a, &b)| a * b).sum())
            .collect();
        Ok(out)
    }

    /// Row sums, i.e. `self * e` where `e` is the all-ones column vector.
    pub fn row_sums(&self) -> Vec<f64> {
        (0..self.rows).map(|i| self.row(i).iter().sum()).collect()
    }

    /// Multiply every entry by `s` in place.
    pub fn scale_mut(&mut self, s: f64) {
        for v in &mut self.data {
            *v *= s;
        }
    }

    /// Return a scaled copy `s * self`.
    pub fn scaled(&self, s: f64) -> Matrix {
        let mut m = self.clone();
        m.scale_mut(s);
        m
    }

    /// Maximum absolute entry (entrywise infinity norm).
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0_f64, |m, &v| m.max(v.abs()))
    }

    /// Induced infinity norm (maximum absolute row sum).
    pub fn norm_inf(&self) -> f64 {
        (0..self.rows)
            .map(|i| self.row(i).iter().map(|v| v.abs()).sum::<f64>())
            .fold(0.0_f64, f64::max)
    }

    /// Frobenius norm.
    pub fn norm_fro(&self) -> f64 {
        self.data.iter().map(|v| v * v).sum::<f64>().sqrt()
    }

    /// Copy block `src` into `self` with its top-left corner at `(r, c)`.
    ///
    /// # Panics
    /// Panics if the block does not fit.
    pub fn set_block(&mut self, r: usize, c: usize, src: &Matrix) {
        assert!(
            r + src.rows <= self.rows && c + src.cols <= self.cols,
            "set_block: block {}x{} at ({r},{c}) does not fit in {}x{}",
            src.rows,
            src.cols,
            self.rows,
            self.cols
        );
        for i in 0..src.rows {
            let dst = &mut self.data[(r + i) * self.cols + c..(r + i) * self.cols + c + src.cols];
            dst.copy_from_slice(src.row(i));
        }
    }

    /// Extract the `rows × cols` block with top-left corner at `(r, c)`.
    ///
    /// # Panics
    /// Panics if the block exceeds the matrix bounds.
    pub fn block(&self, r: usize, c: usize, rows: usize, cols: usize) -> Matrix {
        assert!(
            r + rows <= self.rows && c + cols <= self.cols,
            "block: {}x{} at ({r},{c}) out of bounds for {}x{}",
            rows,
            cols,
            self.rows,
            self.cols
        );
        let mut out = Matrix::zeros(rows, cols);
        for i in 0..rows {
            out.row_mut(i)
                .copy_from_slice(&self.row(r + i)[c..c + cols]);
        }
        out
    }

    /// True if every entry is finite.
    pub fn is_finite(&self) -> bool {
        self.data.iter().all(|v| v.is_finite())
    }

    /// True if every entry is `>= -tol`.
    pub fn is_nonnegative(&self, tol: f64) -> bool {
        self.data.iter().all(|&v| v >= -tol)
    }

    /// Entrywise maximum absolute difference to `other`.
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn max_abs_diff(&self, other: &Matrix) -> f64 {
        assert_eq!(self.shape(), other.shape(), "max_abs_diff: shape mismatch");
        self.data
            .iter()
            .zip(other.data.iter())
            .fold(0.0_f64, |m, (&a, &b)| m.max((a - b).abs()))
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;
    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        debug_assert!(i < self.rows && j < self.cols);
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        debug_assert!(i < self.rows && j < self.cols);
        &mut self.data[i * self.cols + j]
    }
}

impl Add for &Matrix {
    type Output = Matrix;
    fn add(self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.shape(), rhs.shape(), "add: shape mismatch");
        let data = self
            .data
            .iter()
            .zip(rhs.data.iter())
            .map(|(a, b)| a + b)
            .collect();
        Matrix::from_vec(self.rows, self.cols, data)
    }
}

impl Sub for &Matrix {
    type Output = Matrix;
    fn sub(self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.shape(), rhs.shape(), "sub: shape mismatch");
        let data = self
            .data
            .iter()
            .zip(rhs.data.iter())
            .map(|(a, b)| a - b)
            .collect();
        Matrix::from_vec(self.rows, self.cols, data)
    }
}

impl AddAssign<&Matrix> for Matrix {
    fn add_assign(&mut self, rhs: &Matrix) {
        assert_eq!(self.shape(), rhs.shape(), "add_assign: shape mismatch");
        for (a, b) in self.data.iter_mut().zip(rhs.data.iter()) {
            *a += b;
        }
    }
}

impl SubAssign<&Matrix> for Matrix {
    fn sub_assign(&mut self, rhs: &Matrix) {
        assert_eq!(self.shape(), rhs.shape(), "sub_assign: shape mismatch");
        for (a, b) in self.data.iter_mut().zip(rhs.data.iter()) {
            *a -= b;
        }
    }
}

impl Mul for &Matrix {
    type Output = Matrix;
    fn mul(self, rhs: &Matrix) -> Matrix {
        self.matmul(rhs).expect("mul: dimension mismatch")
    }
}

impl Neg for &Matrix {
    type Output = Matrix;
    fn neg(self) -> Matrix {
        self.scaled(-1.0)
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        for i in 0..self.rows {
            write!(f, "  [")?;
            for j in 0..self.cols {
                if j > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{:10.6}", self[(i, j)])?;
            }
            writeln!(f, "]")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_identity() {
        let z = Matrix::zeros(2, 3);
        assert_eq!(z.shape(), (2, 3));
        assert!(z.as_slice().iter().all(|&v| v == 0.0));
        let i = Matrix::identity(3);
        assert_eq!(i[(0, 0)], 1.0);
        assert_eq!(i[(0, 1)], 0.0);
        assert_eq!(i.row_sums(), vec![1.0, 1.0, 1.0]);
    }

    #[test]
    fn from_rows_and_index() {
        let m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert_eq!(m[(0, 1)], 2.0);
        assert_eq!(m[(1, 0)], 3.0);
        assert_eq!(m.col(1), vec![2.0, 4.0]);
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn from_rows_ragged_panics() {
        let _ = Matrix::from_rows(&[&[1.0, 2.0], &[3.0]]);
    }

    #[test]
    fn matmul_small() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = a.matmul(&b).unwrap();
        assert_eq!(c, Matrix::from_rows(&[&[19.0, 22.0], &[43.0, 50.0]]));
    }

    #[test]
    fn matmul_identity_is_noop() {
        let a = Matrix::from_rows(&[&[1.0, -2.5, 3.0], &[0.0, 4.0, 5.5]]);
        let i3 = Matrix::identity(3);
        assert_eq!(a.matmul(&i3).unwrap(), a);
    }

    #[test]
    fn matmul_dimension_mismatch() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        assert!(matches!(
            a.matmul(&b),
            Err(LinalgError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn left_mul_vec_matches_matmul() {
        let m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let x = vec![0.25, 0.75];
        let y = m.left_mul_vec(&x).unwrap();
        assert!((y[0] - (0.25 + 2.25)).abs() < 1e-15);
        assert!((y[1] - (0.5 + 3.0)).abs() < 1e-15);
    }

    #[test]
    fn mul_vec_matches_row_sums() {
        let m = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        let ones = vec![1.0; 3];
        assert_eq!(m.mul_vec(&ones).unwrap(), m.row_sums());
    }

    #[test]
    fn transpose_involution() {
        let m = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        assert_eq!(m.transpose().transpose(), m);
        assert_eq!(m.transpose().shape(), (3, 2));
        assert_eq!(m.transpose()[(2, 1)], 6.0);
    }

    #[test]
    fn block_roundtrip() {
        let mut big = Matrix::zeros(4, 4);
        let small = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        big.set_block(1, 2, &small);
        assert_eq!(big.block(1, 2, 2, 2), small);
        assert_eq!(big[(0, 0)], 0.0);
        assert_eq!(big[(1, 2)], 1.0);
        assert_eq!(big[(2, 3)], 4.0);
    }

    #[test]
    fn norms() {
        let m = Matrix::from_rows(&[&[3.0, -4.0], &[0.0, 0.0]]);
        assert_eq!(m.norm_inf(), 7.0);
        assert_eq!(m.max_abs(), 4.0);
        assert!((m.norm_fro() - 5.0).abs() < 1e-15);
    }

    #[test]
    fn arithmetic_ops() {
        let a = Matrix::from_rows(&[&[1.0, 2.0]]);
        let b = Matrix::from_rows(&[&[3.0, 5.0]]);
        assert_eq!(&a + &b, Matrix::from_rows(&[&[4.0, 7.0]]));
        assert_eq!(&b - &a, Matrix::from_rows(&[&[2.0, 3.0]]));
        assert_eq!((-&a)[(0, 1)], -2.0);
        let mut c = a.clone();
        c += &b;
        assert_eq!(c, Matrix::from_rows(&[&[4.0, 7.0]]));
        c -= &b;
        assert_eq!(c, a);
    }

    #[test]
    fn diag_and_scale() {
        let d = Matrix::diag(&[1.0, 2.0, 3.0]);
        assert_eq!(d[(1, 1)], 2.0);
        assert_eq!(d[(1, 0)], 0.0);
        let s = d.scaled(2.0);
        assert_eq!(s[(2, 2)], 6.0);
    }

    #[test]
    fn nonneg_and_finite_checks() {
        let m = Matrix::from_rows(&[&[0.0, 1.0], &[-1e-15, 2.0]]);
        assert!(m.is_nonnegative(1e-12));
        assert!(!m.is_nonnegative(0.0));
        assert!(m.is_finite());
        let mut bad = m.clone();
        bad[(0, 0)] = f64::NAN;
        assert!(!bad.is_finite());
    }

    #[test]
    fn max_abs_diff_works() {
        let a = Matrix::from_rows(&[&[1.0, 2.0]]);
        let b = Matrix::from_rows(&[&[1.5, 1.0]]);
        assert_eq!(a.max_abs_diff(&b), 1.0);
    }
}
