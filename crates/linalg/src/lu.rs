//! LU decomposition with partial pivoting, linear solves and inverses.

use crate::{LinalgError, Matrix, Result};

/// LU decomposition of a square matrix with partial (row) pivoting.
///
/// Stores the combined `L\U` factors in a single matrix plus the pivot
/// permutation, in the usual LAPACK-style packed form. Construction is
/// `O(n³)`; each subsequent solve is `O(n²)`, which matters because the QBD
/// boundary solver and the successive-substitution iteration for `R` reuse
/// one factorization for many right-hand (or left-hand) sides.
#[derive(Clone, Debug)]
pub struct Lu {
    lu: Matrix,
    /// `piv[k]` is the row swapped into position `k` at step `k`.
    piv: Vec<usize>,
    /// Sign of the permutation (for determinants).
    sign: f64,
}

impl Lu {
    /// Factor `a` as `P·a = L·U`.
    ///
    /// Returns [`LinalgError::Singular`] if a pivot is exactly zero or not
    /// finite. Near-singular matrices are *not* rejected — callers that care
    /// should inspect [`Lu::min_pivot`].
    pub fn new(a: &Matrix) -> Result<Lu> {
        if !a.is_square() {
            return Err(LinalgError::DimensionMismatch {
                op: "lu",
                lhs: a.shape(),
                rhs: a.shape(),
            });
        }
        let n = a.rows();
        let mut lu = a.clone();
        let mut piv = vec![0usize; n];
        let mut sign = 1.0;

        for k in 0..n {
            // Find pivot: largest |entry| in column k at or below row k.
            let mut p = k;
            let mut pmax = lu[(k, k)].abs();
            for i in (k + 1)..n {
                let v = lu[(i, k)].abs();
                if v > pmax {
                    pmax = v;
                    p = i;
                }
            }
            piv[k] = p;
            if p != k {
                for j in 0..n {
                    let tmp = lu[(k, j)];
                    lu[(k, j)] = lu[(p, j)];
                    lu[(p, j)] = tmp;
                }
                sign = -sign;
            }
            let pivot = lu[(k, k)];
            if pivot == 0.0 || !pivot.is_finite() {
                return Err(LinalgError::Singular);
            }
            for i in (k + 1)..n {
                let f = lu[(i, k)] / pivot;
                lu[(i, k)] = f;
                if f == 0.0 {
                    continue;
                }
                for j in (k + 1)..n {
                    let v = lu[(k, j)];
                    lu[(i, j)] -= f * v;
                }
            }
        }
        crate::counters::record_lu_factorization(n);
        Ok(Lu { lu, piv, sign })
    }

    /// Assemble a factorization from an already-computed packed `L\U`
    /// matrix, pivot vector, and permutation sign. Used by the blocked
    /// backend, whose panel algorithm produces the same packed form.
    pub(crate) fn from_parts(lu: Matrix, piv: Vec<usize>, sign: f64) -> Lu {
        debug_assert!(lu.is_square() && piv.len() == lu.rows());
        Lu { lu, piv, sign }
    }

    /// Dimension of the factored matrix.
    pub fn dim(&self) -> usize {
        self.lu.rows()
    }

    /// Smallest absolute pivot — a cheap conditioning indicator.
    pub fn min_pivot(&self) -> f64 {
        (0..self.dim())
            .map(|k| self.lu[(k, k)].abs())
            .fold(f64::INFINITY, f64::min)
    }

    /// Determinant of the original matrix.
    pub fn det(&self) -> f64 {
        (0..self.dim()).fold(self.sign, |d, k| d * self.lu[(k, k)])
    }

    /// Solve `a x = b` for a column vector `b` (in place on a copy).
    pub fn solve_vec(&self, b: &[f64]) -> Result<Vec<f64>> {
        let n = self.dim();
        if b.len() != n {
            return Err(LinalgError::DimensionMismatch {
                op: "solve_vec",
                lhs: (n, n),
                rhs: (b.len(), 1),
            });
        }
        crate::counters::record_triangular_solve(n);
        let mut x = b.to_vec();
        // Apply permutation.
        for k in 0..n {
            let p = self.piv[k];
            if p != k {
                x.swap(k, p);
            }
        }
        // Forward substitution (L has unit diagonal).
        for i in 1..n {
            let s: f64 = (0..i).map(|j| self.lu[(i, j)] * x[j]).sum();
            x[i] -= s;
        }
        // Backward substitution.
        for i in (0..n).rev() {
            let s: f64 = ((i + 1)..n).map(|j| self.lu[(i, j)] * x[j]).sum();
            x[i] = (x[i] - s) / self.lu[(i, i)];
        }
        Ok(x)
    }

    /// Solve `a X = B` column by column.
    pub fn solve_matrix(&self, b: &Matrix) -> Result<Matrix> {
        let n = self.dim();
        if b.rows() != n {
            return Err(LinalgError::DimensionMismatch {
                op: "solve_matrix",
                lhs: (n, n),
                rhs: b.shape(),
            });
        }
        let mut out = Matrix::zeros(n, b.cols());
        for j in 0..b.cols() {
            let col = b.col(j);
            let x = self.solve_vec(&col)?;
            for i in 0..n {
                out[(i, j)] = x[i];
            }
        }
        Ok(out)
    }

    /// Solve `x a = b` for a row vector `b`, i.e. `aᵀ xᵀ = bᵀ`.
    pub fn solve_left_vec(&self, b: &[f64]) -> Result<Vec<f64>> {
        let n = self.dim();
        if b.len() != n {
            return Err(LinalgError::DimensionMismatch {
                op: "solve_left_vec",
                lhs: (1, b.len()),
                rhs: (n, n),
            });
        }
        crate::counters::record_triangular_solve(n);
        // Solve Uᵀ y = b (forward, Uᵀ lower-triangular with diag of U)...
        let mut y = b.to_vec();
        for i in 0..n {
            let s: f64 = (0..i).map(|j| self.lu[(j, i)] * y[j]).sum();
            y[i] = (y[i] - s) / self.lu[(i, i)];
        }
        // ...then Lᵀ z = y (backward, unit diagonal).
        for i in (0..n).rev() {
            let s: f64 = ((i + 1)..n).map(|j| self.lu[(j, i)] * y[j]).sum();
            y[i] -= s;
        }
        // Undo the permutation: x = z Pᵀ, i.e. apply swaps in reverse.
        for k in (0..n).rev() {
            let p = self.piv[k];
            if p != k {
                y.swap(k, p);
            }
        }
        Ok(y)
    }

    /// Solve `X a = B` row by row.
    pub fn solve_left_matrix(&self, b: &Matrix) -> Result<Matrix> {
        let n = self.dim();
        if b.cols() != n {
            return Err(LinalgError::DimensionMismatch {
                op: "solve_left_matrix",
                lhs: b.shape(),
                rhs: (n, n),
            });
        }
        let mut out = Matrix::zeros(b.rows(), n);
        for i in 0..b.rows() {
            let x = self.solve_left_vec(b.row(i))?;
            out.row_mut(i).copy_from_slice(&x);
        }
        Ok(out)
    }

    /// Inverse of the factored matrix.
    pub fn inverse(&self) -> Result<Matrix> {
        self.solve_matrix(&Matrix::identity(self.dim()))
    }
}

/// Convenience: invert `a` directly.
pub fn inverse(a: &Matrix) -> Result<Matrix> {
    Lu::new(a)?.inverse()
}

/// Convenience: solve `a x = b` directly.
pub fn solve(a: &Matrix, b: &[f64]) -> Result<Vec<f64>> {
    Lu::new(a)?.solve_vec(b)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn approx(a: &Matrix, b: &Matrix, tol: f64) -> bool {
        a.max_abs_diff(b) < tol
    }

    #[test]
    fn solve_2x2() {
        let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 3.0]]);
        let x = solve(&a, &[5.0, 10.0]).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-12);
        assert!((x[1] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn solve_requires_pivoting() {
        // Zero in the (0,0) position forces a row swap.
        let a = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]);
        let x = solve(&a, &[2.0, 3.0]).unwrap();
        assert_eq!(x, vec![3.0, 2.0]);
    }

    #[test]
    fn singular_detected() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]);
        assert!(matches!(Lu::new(&a), Err(LinalgError::Singular)));
    }

    #[test]
    fn inverse_roundtrip() {
        let a = Matrix::from_rows(&[&[4.0, 7.0, 2.0], &[3.0, 6.0, 1.0], &[2.0, 5.0, 3.0]]);
        let inv = inverse(&a).unwrap();
        let prod = a.matmul(&inv).unwrap();
        assert!(approx(&prod, &Matrix::identity(3), 1e-12));
        let prod2 = inv.matmul(&a).unwrap();
        assert!(approx(&prod2, &Matrix::identity(3), 1e-12));
    }

    #[test]
    fn determinant() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let lu = Lu::new(&a).unwrap();
        assert!((lu.det() + 2.0).abs() < 1e-12);
        let i = Lu::new(&Matrix::identity(4)).unwrap();
        assert!((i.det() - 1.0).abs() < 1e-15);
    }

    #[test]
    fn left_solve_matches_transpose_solve() {
        let a = Matrix::from_rows(&[&[4.0, 1.0, 0.0], &[2.0, 5.0, 1.0], &[0.5, 1.0, 3.0]]);
        let b = [1.0, 2.0, 3.0];
        let lu = Lu::new(&a).unwrap();
        let x = lu.solve_left_vec(&b).unwrap();
        // Verify x * a == b.
        let xa = a.left_mul_vec(&x).unwrap();
        for (got, want) in xa.iter().zip(b.iter()) {
            assert!((got - want).abs() < 1e-12, "{got} vs {want}");
        }
    }

    #[test]
    fn solve_matrix_multiple_rhs() {
        let a = Matrix::from_rows(&[&[3.0, 1.0], &[1.0, 2.0]]);
        let b = Matrix::from_rows(&[&[9.0, 5.0], &[8.0, 5.0]]);
        let x = Lu::new(&a).unwrap().solve_matrix(&b).unwrap();
        assert!(approx(&a.matmul(&x).unwrap(), &b, 1e-12));
    }

    #[test]
    fn solve_left_matrix_rows() {
        let a = Matrix::from_rows(&[&[3.0, 1.0], &[1.0, 2.0]]);
        let b = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0], &[2.0, 2.0]]);
        let x = Lu::new(&a).unwrap().solve_left_matrix(&b).unwrap();
        assert!(approx(&x.matmul(&a).unwrap(), &b, 1e-12));
    }

    #[test]
    fn min_pivot_reflects_conditioning() {
        let nice = Lu::new(&Matrix::identity(3)).unwrap();
        assert_eq!(nice.min_pivot(), 1.0);
        let skew = Lu::new(&Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1e-9]])).unwrap();
        assert!(skew.min_pivot() < 1e-8);
    }

    #[test]
    fn non_square_rejected() {
        let a = Matrix::zeros(2, 3);
        assert!(Lu::new(&a).is_err());
    }

    #[test]
    fn random_roundtrip_various_sizes() {
        // Deterministic pseudo-random fill; checks A * A^{-1} = I for n up to 12.
        let mut seed = 0x9E3779B97F4A7C15u64;
        let mut next = || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            (seed as f64 / u64::MAX as f64) * 2.0 - 1.0
        };
        for n in 1..=12 {
            let mut a = Matrix::zeros(n, n);
            for i in 0..n {
                for j in 0..n {
                    a[(i, j)] = next();
                }
                a[(i, i)] += n as f64; // diagonal dominance => well-conditioned
            }
            let inv = inverse(&a).unwrap();
            assert!(
                approx(&a.matmul(&inv).unwrap(), &Matrix::identity(n), 1e-10),
                "failed at n={n}"
            );
        }
    }
}
