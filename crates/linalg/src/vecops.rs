//! Small helpers on `&[f64]` vectors used throughout the solver stack.

/// Dot product.
///
/// # Panics
/// Panics if the slices have different lengths.
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "dot: length mismatch");
    a.iter().zip(b.iter()).map(|(x, y)| x * y).sum()
}

/// Sum of entries.
pub fn sum(a: &[f64]) -> f64 {
    a.iter().sum()
}

/// `y += alpha * x` in place.
///
/// # Panics
/// Panics if the slices have different lengths.
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "axpy: length mismatch");
    for (yi, xi) in y.iter_mut().zip(x.iter()) {
        *yi += alpha * xi;
    }
}

/// Scale a vector in place.
pub fn scale(a: &mut [f64], s: f64) {
    for v in a {
        *v *= s;
    }
}

/// Normalize so entries sum to one; returns the original sum.
///
/// Leaves the vector untouched (and returns 0) if the sum is zero or not
/// finite.
pub fn normalize_l1(a: &mut [f64]) -> f64 {
    let s = sum(a);
    if s != 0.0 && s.is_finite() {
        scale(a, 1.0 / s);
    }
    s
}

/// Maximum absolute entry.
pub fn max_abs(a: &[f64]) -> f64 {
    a.iter().fold(0.0_f64, |m, &v| m.max(v.abs()))
}

/// Maximum absolute difference between two equal-length vectors.
///
/// # Panics
/// Panics if the slices have different lengths.
pub fn max_abs_diff(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "max_abs_diff: length mismatch");
    a.iter()
        .zip(b.iter())
        .fold(0.0_f64, |m, (&x, &y)| m.max((x - y).abs()))
}

/// True if all entries are finite.
pub fn is_finite(a: &[f64]) -> bool {
    a.iter().all(|v| v.is_finite())
}

/// True if all entries are `>= -tol`.
pub fn is_nonnegative(a: &[f64], tol: f64) -> bool {
    a.iter().all(|&v| v >= -tol)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_and_sum() {
        assert_eq!(dot(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]), 32.0);
        assert_eq!(sum(&[1.0, 2.0, 3.0]), 6.0);
        assert_eq!(dot(&[], &[]), 0.0);
    }

    #[test]
    fn axpy_updates() {
        let mut y = vec![1.0, 1.0];
        axpy(2.0, &[3.0, 4.0], &mut y);
        assert_eq!(y, vec![7.0, 9.0]);
    }

    #[test]
    fn normalize_sums_to_one() {
        let mut v = vec![2.0, 6.0];
        let s = normalize_l1(&mut v);
        assert_eq!(s, 8.0);
        assert_eq!(v, vec![0.25, 0.75]);
    }

    #[test]
    fn normalize_zero_vector_is_noop() {
        let mut v = vec![0.0, 0.0];
        assert_eq!(normalize_l1(&mut v), 0.0);
        assert_eq!(v, vec![0.0, 0.0]);
    }

    #[test]
    fn diff_and_bounds() {
        assert_eq!(max_abs_diff(&[1.0, 5.0], &[2.0, 3.0]), 2.0);
        assert_eq!(max_abs(&[-3.0, 2.0]), 3.0);
        assert!(is_nonnegative(&[0.0, -1e-15], 1e-12));
        assert!(!is_nonnegative(&[-1.0], 1e-12));
        assert!(is_finite(&[1.0, 2.0]));
        assert!(!is_finite(&[f64::INFINITY]));
    }
}
