//! Spectral radius estimation for nonnegative matrices.
//!
//! The matrix-geometric solution of a QBD is positive recurrent iff the rate
//! matrix `R` satisfies `sp(R) < 1` (Theorem 4.2/4.4 of the paper). `R` is
//! elementwise nonnegative, so by Perron–Frobenius its spectral radius is a
//! real nonnegative eigenvalue with a nonnegative eigenvector — exactly the
//! regime where power iteration is reliable.

use crate::{LinalgError, Matrix, Result};

/// Estimate the spectral radius of a **nonnegative** square matrix by power
/// iteration.
///
/// Power iteration on a nonnegative matrix converges to the Perron root for
/// any strictly positive start vector. A uniform start vector is used; the
/// iteration stops when successive Rayleigh-style estimates agree to `tol`.
///
/// Returns 0 for the empty matrix. For a matrix whose Perron root is exactly
/// zero (e.g. strictly triangular with zero diagonal) the iterate collapses
/// to zero and 0 is returned.
///
/// # Errors
/// [`LinalgError::NoConvergence`] if the estimate has not stabilized after
/// `max_iter` iterations, and [`LinalgError::DimensionMismatch`] for a
/// non-square input.
pub fn spectral_radius(m: &Matrix, tol: f64, max_iter: usize) -> Result<f64> {
    if !m.is_square() {
        return Err(LinalgError::DimensionMismatch {
            op: "spectral_radius",
            lhs: m.shape(),
            rhs: m.shape(),
        });
    }
    let n = m.rows();
    if n == 0 {
        return Ok(0.0);
    }
    debug_assert!(
        m.is_nonnegative(1e-9),
        "spectral_radius expects a (numerically) nonnegative matrix"
    );

    let mut x = vec![1.0 / n as f64; n];
    let mut est = 0.0;
    for it in 0..max_iter {
        let y = m.left_mul_vec(&x)?;
        let norm: f64 = y.iter().map(|v| v.abs()).sum();
        if norm == 0.0 {
            // Nilpotent-like behaviour: Perron root is 0.
            return Ok(0.0);
        }
        let new_est = norm; // since x was normalized to sum 1
        x = y.iter().map(|v| v / norm).collect();
        if it > 0 && (new_est - est).abs() <= tol * new_est.max(1.0) {
            return Ok(new_est);
        }
        est = new_est;
    }
    // Power iteration converges slowly when sub-dominant eigenvalues are
    // close in modulus; report the last estimate as the residual context.
    Err(LinalgError::NoConvergence {
        method: "spectral_radius(power iteration)",
        iterations: max_iter,
        residual: est,
    })
}

/// Convenience wrapper with default tolerance `1e-12` and 100 000 iterations.
pub fn spectral_radius_default(m: &Matrix) -> Result<f64> {
    spectral_radius(m, 1e-12, 100_000)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn diagonal_matrix() {
        let m = Matrix::diag(&[0.2, 0.9, 0.5]);
        let r = spectral_radius_default(&m).unwrap();
        assert!((r - 0.9).abs() < 1e-9);
    }

    #[test]
    fn stochastic_matrix_has_radius_one() {
        let m = Matrix::from_rows(&[&[0.5, 0.5], &[0.25, 0.75]]);
        let r = spectral_radius_default(&m).unwrap();
        assert!((r - 1.0).abs() < 1e-9);
    }

    #[test]
    fn substochastic_below_one() {
        let m = Matrix::from_rows(&[&[0.4, 0.3], &[0.2, 0.5]]);
        let r = spectral_radius_default(&m).unwrap();
        assert!(r < 1.0);
        // Exact: eigenvalues of [[.4,.3],[.2,.5]] are (0.9 ± sqrt(0.01+0.24))/2
        let exact = (0.9 + (0.01f64 + 0.24).sqrt()) / 2.0;
        assert!((r - exact).abs() < 1e-9, "{r} vs {exact}");
    }

    #[test]
    fn nilpotent_is_zero() {
        let m = Matrix::from_rows(&[&[0.0, 1.0], &[0.0, 0.0]]);
        assert_eq!(spectral_radius_default(&m).unwrap(), 0.0);
    }

    #[test]
    fn empty_matrix() {
        assert_eq!(spectral_radius_default(&Matrix::zeros(0, 0)).unwrap(), 0.0);
    }

    #[test]
    fn scaling_scales_radius() {
        let m = Matrix::from_rows(&[&[0.1, 0.2], &[0.3, 0.1]]);
        let r1 = spectral_radius_default(&m).unwrap();
        let r2 = spectral_radius_default(&m.scaled(3.0)).unwrap();
        assert!((r2 - 3.0 * r1).abs() < 1e-8);
    }

    #[test]
    fn non_square_rejected() {
        assert!(spectral_radius_default(&Matrix::zeros(2, 3)).is_err());
    }
}
