//! Process-global work counters for the dense kernels.
//!
//! The profiler (`gsched profile`) attributes wall time to solver phases
//! via spans, but spans are far too expensive for kernels that run millions
//! of times per solve. Instead the three hot kernels — [`Matrix::matmul`],
//! [`Lu::new`], and the triangular substitution passes behind
//! [`Lu::solve_vec`]/[`Lu::solve_left_vec`] — bump relaxed process-global
//! atomics counting calls and nominal floating-point operations. The
//! counters sit behind the same [`gsched_obs::enabled`] guard as every
//! other probe, so an uninstrumented run pays one relaxed load per kernel
//! call and nothing else.
//!
//! Flop counts are *nominal* (textbook) counts for the requested shapes:
//! `2·m·n·k` for an `m×k · k×n` product, `2n³/3` for an LU factorization,
//! and `2n²` for one forward+backward substitution pair. `matmul` skips
//! zero entries of the left operand, so the counted flops are an upper
//! bound on the arithmetic actually performed — which is the right measure
//! for a GFLOP/s denominator that should be comparable across sparsity
//! patterns.
//!
//! [`Matrix::matmul`]: crate::Matrix::matmul
//! [`Lu::new`]: crate::Lu::new
//! [`Lu::solve_vec`]: crate::Lu::solve_vec
//! [`Lu::solve_left_vec`]: crate::Lu::solve_left_vec

use std::sync::atomic::{AtomicU64, Ordering};

static MATMUL_CALLS: AtomicU64 = AtomicU64::new(0);
static MATMUL_FLOPS: AtomicU64 = AtomicU64::new(0);
static LU_FACTORIZATIONS: AtomicU64 = AtomicU64::new(0);
static LU_FLOPS: AtomicU64 = AtomicU64::new(0);
static TRIANGULAR_SOLVES: AtomicU64 = AtomicU64::new(0);
static TRIANGULAR_FLOPS: AtomicU64 = AtomicU64::new(0);

/// Record an `m×k · k×n` matrix product (`2·m·n·k` nominal flops).
#[inline]
pub(crate) fn record_matmul(m: usize, n: usize, k: usize) {
    if !gsched_obs::enabled() {
        return;
    }
    MATMUL_CALLS.fetch_add(1, Ordering::Relaxed);
    MATMUL_FLOPS.fetch_add(2 * (m as u64) * (n as u64) * (k as u64), Ordering::Relaxed);
}

/// Record one `n×n` LU factorization (`2n³/3` nominal flops).
#[inline]
pub(crate) fn record_lu_factorization(n: usize) {
    if !gsched_obs::enabled() {
        return;
    }
    let n = n as u64;
    LU_FACTORIZATIONS.fetch_add(1, Ordering::Relaxed);
    LU_FLOPS.fetch_add(2 * n * n * n / 3, Ordering::Relaxed);
}

/// Record one forward+backward substitution pair against an `n×n` factor
/// (`2n²` nominal flops). Matrix solves record one pair per right-hand side.
#[inline]
pub(crate) fn record_triangular_solve(n: usize) {
    if !gsched_obs::enabled() {
        return;
    }
    let n = n as u64;
    TRIANGULAR_SOLVES.fetch_add(1, Ordering::Relaxed);
    TRIANGULAR_FLOPS.fetch_add(2 * n * n, Ordering::Relaxed);
}

/// A consistent-enough view of the kernel work counters.
///
/// Values are read individually with relaxed ordering; in a multi-threaded
/// process a snapshot is approximate (each counter is exact, but they may
/// straddle an in-flight kernel). Single-threaded harnesses — `gsched
/// profile` and `gsched bench` both run their measured workloads on one
/// thread — get exact deltas.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WorkCounters {
    /// Matrix products performed.
    pub matmul_calls: u64,
    /// Nominal flops across those products.
    pub matmul_flops: u64,
    /// LU factorizations performed.
    pub lu_factorizations: u64,
    /// Nominal flops across those factorizations.
    pub lu_flops: u64,
    /// Forward+backward substitution pairs performed.
    pub triangular_solves: u64,
    /// Nominal flops across those substitutions.
    pub triangular_flops: u64,
}

impl WorkCounters {
    /// Current totals since process start (or the last [`reset`]).
    pub fn snapshot() -> WorkCounters {
        WorkCounters {
            matmul_calls: MATMUL_CALLS.load(Ordering::Relaxed),
            matmul_flops: MATMUL_FLOPS.load(Ordering::Relaxed),
            lu_factorizations: LU_FACTORIZATIONS.load(Ordering::Relaxed),
            lu_flops: LU_FLOPS.load(Ordering::Relaxed),
            triangular_solves: TRIANGULAR_SOLVES.load(Ordering::Relaxed),
            triangular_flops: TRIANGULAR_FLOPS.load(Ordering::Relaxed),
        }
    }

    /// Work performed since `self` was snapshotted (saturating, so a
    /// concurrent [`reset`] yields zeros rather than wrapped garbage).
    pub fn delta_since(&self) -> WorkCounters {
        let now = WorkCounters::snapshot();
        WorkCounters {
            matmul_calls: now.matmul_calls.saturating_sub(self.matmul_calls),
            matmul_flops: now.matmul_flops.saturating_sub(self.matmul_flops),
            lu_factorizations: now.lu_factorizations.saturating_sub(self.lu_factorizations),
            lu_flops: now.lu_flops.saturating_sub(self.lu_flops),
            triangular_solves: now.triangular_solves.saturating_sub(self.triangular_solves),
            triangular_flops: now.triangular_flops.saturating_sub(self.triangular_flops),
        }
    }

    /// Total nominal flops across all kernel families.
    pub fn total_flops(&self) -> u64 {
        self.matmul_flops + self.lu_flops + self.triangular_flops
    }
}

/// Zero every counter. Intended for single-threaded measurement harnesses
/// that want totals scoped to one workload.
pub fn reset() {
    MATMUL_CALLS.store(0, Ordering::Relaxed);
    MATMUL_FLOPS.store(0, Ordering::Relaxed);
    LU_FACTORIZATIONS.store(0, Ordering::Relaxed);
    LU_FLOPS.store(0, Ordering::Relaxed);
    TRIANGULAR_SOLVES.store(0, Ordering::Relaxed);
    TRIANGULAR_FLOPS.store(0, Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Lu, Matrix};

    // Counters only move while a recorder is installed. The recorder is
    // process-global, so the tests that install one are serialized behind
    // this lock (an uninstall in one test must not disable counting in the
    // other), and every assertion is a `>=` on a delta taken around our own
    // kernel calls.
    static RECORDER_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    #[test]
    fn kernels_accumulate_nominal_flops() {
        let _lock = RECORDER_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let _rec = gsched_obs::install_memory();
        let before = WorkCounters::snapshot();
        let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 3.0]]);
        let b = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0]]);
        let _ = a.matmul(&b).unwrap();
        let lu = Lu::new(&a).unwrap();
        let _ = lu.solve_vec(&[1.0, 2.0]).unwrap();
        let _ = lu.solve_left_vec(&[1.0, 2.0]).unwrap();
        let d = before.delta_since();
        gsched_obs::uninstall();
        assert!(d.matmul_calls >= 1, "{d:?}");
        assert!(d.matmul_flops >= 2 * 2 * 2 * 2, "{d:?}");
        assert!(d.lu_factorizations >= 1, "{d:?}");
        assert!(d.lu_flops >= 2 * 8 / 3, "{d:?}");
        assert!(d.triangular_solves >= 2, "{d:?}");
        assert!(d.triangular_flops >= 2 * (2 * 4), "{d:?}");
        assert!(d.total_flops() >= d.matmul_flops);
    }

    #[test]
    fn backends_charge_equal_nominal_flops() {
        // The same logical operation must cost the same nominal flops on
        // every backend: one matmul record, one LU record, one triangular
        // record per right-hand side — no double-counting inside tiles or
        // band loops, no skipped recorder-enabled check.
        use crate::backend::BackendKind;
        let _lock = RECORDER_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let _rec = gsched_obs::install_memory();
        let n = 10;
        let mut a = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..n {
                a[(i, j)] = ((i * 31 + j * 7) % 13) as f64 - 6.0;
            }
            a[(i, i)] += n as f64;
        }
        let b = Matrix::identity(n);
        let want = WorkCounters {
            matmul_calls: 1,
            matmul_flops: 2 * (n as u64).pow(3),
            lu_factorizations: 1,
            lu_flops: 2 * (n as u64).pow(3) / 3,
            triangular_solves: 2,
            triangular_flops: 2 * 2 * (n as u64).pow(2),
        };
        // Counters are process-global and the recorder-enabled flag turns
        // kernel recording on for every thread, so a concurrent test's
        // kernels can bleed into a delta. Retry until a quiet window gives
        // the exact textbook charge on all three backends.
        let mut ok = false;
        'attempt: for _ in 0..100 {
            for kind in BackendKind::ALL {
                let be = kind.instance();
                let before = WorkCounters::snapshot();
                let _ = be.matmul(&a, &b).unwrap();
                let f = be.factor(&a).unwrap();
                let _ = f.solve_vec(&vec![1.0; n]).unwrap();
                let _ = f.solve_left_vec(&vec![1.0; n]).unwrap();
                if before.delta_since() != want {
                    continue 'attempt;
                }
            }
            ok = true;
            break;
        }
        gsched_obs::uninstall();
        assert!(
            ok,
            "no backend produced the textbook nominal charge {want:?} in 100 attempts"
        );
    }

    #[test]
    fn matrix_solves_count_one_pair_per_rhs() {
        let _lock = RECORDER_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let _rec = gsched_obs::install_memory();
        let a = Matrix::from_rows(&[&[3.0, 1.0], &[1.0, 2.0]]);
        let b = Matrix::from_rows(&[&[9.0, 5.0], &[8.0, 5.0]]);
        let lu = Lu::new(&a).unwrap();
        let before = WorkCounters::snapshot();
        let _ = lu.solve_matrix(&b).unwrap();
        let d = before.delta_since();
        gsched_obs::uninstall();
        assert!(d.triangular_solves >= 2, "{d:?}");
    }
}
