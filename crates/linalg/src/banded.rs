//! Band storage and band LU for block-banded generator matrices.
//!
//! The QBD generators this solver factors are block-tridiagonal: an `n×n`
//! truncated generator with `d×d` phase blocks has lower and upper
//! bandwidths of at most `2d − 1`, so storing the full dense matrix wastes
//! `O(n²)` zeros and the dense LU wastes `O(n³)` work on them. This module
//! provides:
//!
//! * [`BandedMatrix`] — row-major band storage holding only the diagonals
//!   within `(kl, ku)`. Writes outside the band are rejected with the typed
//!   [`LinalgError::OutOfBand`] error rather than silently dropped.
//! * [`BandedLu`] — LU factorization with partial pivoting in LAPACK
//!   `dgbtrf` band form: row pivoting widens the upper bandwidth to
//!   `kl + ku`, so the factor needs `2·kl + ku + 1` diagonals, still far
//!   below `n` for the generators we care about.
//!
//! Flop accounting: band kernels record the same *nominal* (dense textbook)
//! counts as the dense kernels — see [`crate::counters`] — so GFLOP/s and
//! trend metrics stay comparable across backends regardless of how much
//! arithmetic the band structure actually skipped.

use crate::{LinalgError, Matrix, Result};

/// Lower/upper bandwidth of a dense square matrix: the smallest `(kl, ku)`
/// such that `a[(i, j)] == 0` whenever `j < i − kl` or `j > i + ku`.
pub fn detect_bandwidth(a: &Matrix) -> (usize, usize) {
    let n = a.rows();
    let mut kl = 0usize;
    let mut ku = 0usize;
    for i in 0..n {
        let row = a.row(i);
        for (j, &v) in row.iter().enumerate() {
            if v != 0.0 {
                if j < i {
                    kl = kl.max(i - j);
                } else {
                    ku = ku.max(j - i);
                }
            }
        }
    }
    (kl, ku)
}

/// A square matrix stored by its band: entry `(i, j)` is kept only when
/// `i − kl ≤ j ≤ i + ku`; everything outside the band is structurally zero.
#[derive(Clone, Debug, PartialEq)]
pub struct BandedMatrix {
    n: usize,
    kl: usize,
    ku: usize,
    /// Row-major band storage: `(i, j)` lives at
    /// `data[i·(kl+ku+1) + (j + kl − i)]`.
    data: Vec<f64>,
}

impl BandedMatrix {
    /// An `n×n` zero matrix with the given bandwidths (clamped to `n − 1`).
    pub fn zeros(n: usize, kl: usize, ku: usize) -> Self {
        let cap = n.saturating_sub(1);
        let (kl, ku) = (kl.min(cap), ku.min(cap));
        BandedMatrix {
            n,
            kl,
            ku,
            data: vec![0.0; n * (kl + ku + 1)],
        }
    }

    /// Build from a dense square matrix, auto-detecting the bandwidth.
    ///
    /// Never loses entries: the band is chosen to cover every nonzero.
    pub fn from_dense(a: &Matrix) -> Result<Self> {
        if !a.is_square() {
            return Err(LinalgError::DimensionMismatch {
                op: "banded_from_dense",
                lhs: a.shape(),
                rhs: a.shape(),
            });
        }
        let (kl, ku) = detect_bandwidth(a);
        let mut b = BandedMatrix::zeros(a.rows(), kl, ku);
        for i in 0..a.rows() {
            for (j, &v) in a.row(i).iter().enumerate() {
                if v != 0.0 {
                    b.set(i, j, v)?;
                }
            }
        }
        Ok(b)
    }

    /// Build from a dense square matrix with a *declared* bandwidth.
    ///
    /// A nonzero entry outside the declared band is an
    /// [`LinalgError::OutOfBand`] error — the caller claimed structure the
    /// matrix does not have.
    pub fn from_dense_with_bandwidth(a: &Matrix, kl: usize, ku: usize) -> Result<Self> {
        if !a.is_square() {
            return Err(LinalgError::DimensionMismatch {
                op: "banded_from_dense",
                lhs: a.shape(),
                rhs: a.shape(),
            });
        }
        let mut b = BandedMatrix::zeros(a.rows(), kl, ku);
        for i in 0..a.rows() {
            for (j, &v) in a.row(i).iter().enumerate() {
                if v != 0.0 {
                    b.set(i, j, v)?;
                }
            }
        }
        Ok(b)
    }

    /// Matrix dimension.
    #[inline]
    pub fn dim(&self) -> usize {
        self.n
    }

    /// `(kl, ku)` bandwidths.
    #[inline]
    pub fn bandwidth(&self) -> (usize, usize) {
        (self.kl, self.ku)
    }

    #[inline]
    fn in_band(&self, i: usize, j: usize) -> bool {
        j + self.kl >= i && j <= i + self.ku
    }

    #[inline]
    fn idx(&self, i: usize, j: usize) -> usize {
        i * (self.kl + self.ku + 1) + (j + self.kl - i)
    }

    /// Entry `(i, j)`; structurally zero outside the band.
    ///
    /// # Panics
    /// Panics if `i` or `j` is out of range.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        assert!(i < self.n && j < self.n, "banded get out of range");
        if self.in_band(i, j) {
            self.data[self.idx(i, j)]
        } else {
            0.0
        }
    }

    /// Set entry `(i, j)`.
    ///
    /// Returns [`LinalgError::OutOfBand`] when `(i, j)` lies outside the
    /// band — the storage has no slot for it, and silently dropping the
    /// write would corrupt the matrix.
    pub fn set(&mut self, i: usize, j: usize, v: f64) -> Result<()> {
        if i >= self.n || j >= self.n {
            return Err(LinalgError::DimensionMismatch {
                op: "banded_set",
                lhs: (i, j),
                rhs: (self.n, self.n),
            });
        }
        if !self.in_band(i, j) {
            return Err(LinalgError::OutOfBand {
                row: i,
                col: j,
                kl: self.kl,
                ku: self.ku,
            });
        }
        let k = self.idx(i, j);
        self.data[k] = v;
        Ok(())
    }

    /// Expand back to a dense matrix.
    pub fn to_dense(&self) -> Matrix {
        let mut m = Matrix::zeros(self.n, self.n);
        for i in 0..self.n {
            let lo = i.saturating_sub(self.kl);
            let hi = (i + self.ku).min(self.n.saturating_sub(1));
            for j in lo..=hi.min(self.n.saturating_sub(1)) {
                m[(i, j)] = self.data[self.idx(i, j)];
            }
        }
        m
    }

    /// Band-aware `self · y` for a column vector `y`.
    #[allow(clippy::needless_range_loop)] // band index arithmetic
    pub fn mul_vec(&self, y: &[f64]) -> Result<Vec<f64>> {
        if y.len() != self.n {
            return Err(LinalgError::DimensionMismatch {
                op: "banded_mul_vec",
                lhs: (self.n, self.n),
                rhs: (y.len(), 1),
            });
        }
        let mut out = vec![0.0; self.n];
        for i in 0..self.n {
            let lo = i.saturating_sub(self.kl);
            let hi = (i + self.ku).min(self.n - 1);
            let mut s = 0.0;
            for j in lo..=hi {
                s += self.data[self.idx(i, j)] * y[j];
            }
            out[i] = s;
        }
        Ok(out)
    }
}

/// Band LU factorization with partial pivoting (LAPACK `dgbtrf` layout).
///
/// Row pivoting can push fill into `kl` extra superdiagonals, so the factor
/// stores `2·kl + ku + 1` diagonals per column. Solves run in
/// `O(n·(kl + ku))` instead of the dense `O(n²)`.
#[derive(Clone, Debug)]
pub struct BandedLu {
    n: usize,
    kl: usize,
    /// Upper bandwidth of `U` after fill: `kl + ku`.
    ku2: usize,
    /// Column-major band storage with leading dimension `2·kl + ku + 1`:
    /// `(i, j)` lives at `ab[j·ldab + (kl + ku + i − j)]`.
    ab: Vec<f64>,
    ldab: usize,
    /// `piv[k]` is the row swapped into position `k` at step `k`.
    piv: Vec<usize>,
    /// Sign of the permutation (for determinants).
    sign: f64,
}

impl BandedLu {
    /// Factor `P·a = L·U` in band form.
    ///
    /// Returns [`LinalgError::Singular`] if a pivot is exactly zero or not
    /// finite, like the dense [`crate::Lu`].
    pub fn new(a: &BandedMatrix) -> Result<BandedLu> {
        let n = a.dim();
        let (kl, ku) = a.bandwidth();
        let ku2 = kl + ku;
        let ldab = 2 * kl + ku + 1;
        let mut ab = vec![0.0; n * ldab];
        // Copy the original band into the fill-expanded layout.
        for i in 0..n {
            let lo = i.saturating_sub(kl);
            let hi = (i + ku).min(n - 1);
            for j in lo..=hi {
                ab[j * ldab + (kl + ku + i - j)] = a.get(i, j);
            }
        }
        let at = |ab: &[f64], i: usize, j: usize| ab[j * ldab + (kl + ku + i - j)];
        let mut piv = vec![0usize; n];
        let mut sign = 1.0;
        for j in 0..n {
            // Pivot search: rows j..=j+kl in column j.
            let km = kl.min(n - 1 - j);
            let mut p = 0usize;
            let mut pmax = at(&ab, j, j).abs();
            for t in 1..=km {
                let v = at(&ab, j + t, j).abs();
                if v > pmax {
                    pmax = v;
                    p = t;
                }
            }
            piv[j] = j + p;
            let cend = (j + ku2).min(n - 1);
            if p != 0 {
                for c in j..=cend {
                    ab.swap(
                        c * ldab + (kl + ku + j - c),
                        c * ldab + (kl + ku + j + p - c),
                    );
                }
                sign = -sign;
            }
            let pivot = at(&ab, j, j);
            if pivot == 0.0 || !pivot.is_finite() {
                return Err(LinalgError::Singular);
            }
            for t in 1..=km {
                let l = at(&ab, j + t, j) / pivot;
                ab[j * ldab + (kl + ku + t)] = l;
                if l == 0.0 {
                    continue;
                }
                for c in (j + 1)..=cend {
                    let u = at(&ab, j, c);
                    if u != 0.0 {
                        ab[c * ldab + (kl + ku + j + t - c)] -= l * u;
                    }
                }
            }
        }
        Ok(BandedLu {
            n,
            kl,
            ku2,
            ab,
            ldab,
            piv,
            sign,
        })
    }

    /// Dimension of the factored matrix.
    #[inline]
    pub fn dim(&self) -> usize {
        self.n
    }

    #[inline]
    fn at(&self, i: usize, j: usize) -> f64 {
        // Offset kl + ku + i − j with ku2 = kl + ku; valid for |i − j| in band.
        self.ab[j * self.ldab + (self.ku2 + i - j)]
    }

    /// Smallest absolute pivot — the same cheap conditioning indicator as
    /// [`crate::Lu::min_pivot`].
    pub fn min_pivot(&self) -> f64 {
        (0..self.n)
            .map(|k| self.at(k, k).abs())
            .fold(f64::INFINITY, f64::min)
    }

    /// Determinant of the original matrix.
    pub fn det(&self) -> f64 {
        (0..self.n).fold(self.sign, |d, k| d * self.at(k, k))
    }

    /// Solve `a x = b` for a column vector `b`.
    #[allow(clippy::needless_range_loop)] // band index arithmetic
    pub fn solve_vec(&self, b: &[f64]) -> Result<Vec<f64>> {
        let n = self.n;
        if b.len() != n {
            return Err(LinalgError::DimensionMismatch {
                op: "banded_solve_vec",
                lhs: (n, n),
                rhs: (b.len(), 1),
            });
        }
        crate::counters::record_triangular_solve(n);
        let mut x = b.to_vec();
        // Forward: apply pivots and L (unit diagonal, band kl).
        for j in 0..n {
            let p = self.piv[j];
            if p != j {
                x.swap(j, p);
            }
            let km = self.kl.min(n - 1 - j);
            let xj = x[j];
            if xj != 0.0 {
                for t in 1..=km {
                    x[j + t] -= self.at(j + t, j) * xj;
                }
            }
        }
        // Backward: U with upper bandwidth ku2.
        for j in (0..n).rev() {
            x[j] /= self.at(j, j);
            let xj = x[j];
            if xj != 0.0 {
                let lo = j.saturating_sub(self.ku2);
                for i in lo..j {
                    x[i] -= self.at(i, j) * xj;
                }
            }
        }
        Ok(x)
    }

    /// Solve `a X = B` column by column.
    pub fn solve_matrix(&self, b: &Matrix) -> Result<Matrix> {
        let n = self.n;
        if b.rows() != n {
            return Err(LinalgError::DimensionMismatch {
                op: "banded_solve_matrix",
                lhs: (n, n),
                rhs: b.shape(),
            });
        }
        let mut out = Matrix::zeros(n, b.cols());
        for j in 0..b.cols() {
            let x = self.solve_vec(&b.col(j))?;
            for i in 0..n {
                out[(i, j)] = x[i];
            }
        }
        Ok(out)
    }

    /// Solve `x a = b` for a row vector `b`, i.e. `aᵀ xᵀ = bᵀ`.
    #[allow(clippy::needless_range_loop)] // band index arithmetic
    pub fn solve_left_vec(&self, b: &[f64]) -> Result<Vec<f64>> {
        let n = self.n;
        if b.len() != n {
            return Err(LinalgError::DimensionMismatch {
                op: "banded_solve_left_vec",
                lhs: (1, b.len()),
                rhs: (n, n),
            });
        }
        crate::counters::record_triangular_solve(n);
        // aᵀ = Uᵀ·Lᵀ·P: solve Uᵀ y = b forward (Uᵀ is lower, band ku2)...
        let mut y = b.to_vec();
        for i in 0..n {
            let lo = i.saturating_sub(self.ku2);
            let mut s = y[i];
            for j in lo..i {
                s -= self.at(j, i) * y[j];
            }
            y[i] = s / self.at(i, i);
        }
        // ...then Lᵀ z = y backward (unit diagonal, band kl)...
        for i in (0..n).rev() {
            let hi = (i + self.kl).min(n - 1);
            let mut s = y[i];
            for j in (i + 1)..=hi {
                s -= self.at(j, i) * y[j];
            }
            y[i] = s;
        }
        // ...and undo the permutation (swaps in reverse).
        for k in (0..n).rev() {
            let p = self.piv[k];
            if p != k {
                y.swap(k, p);
            }
        }
        Ok(y)
    }

    /// Solve `X a = B` row by row.
    pub fn solve_left_matrix(&self, b: &Matrix) -> Result<Matrix> {
        let n = self.n;
        if b.cols() != n {
            return Err(LinalgError::DimensionMismatch {
                op: "banded_solve_left_matrix",
                lhs: b.shape(),
                rhs: (n, n),
            });
        }
        let mut out = Matrix::zeros(b.rows(), n);
        for i in 0..b.rows() {
            let x = self.solve_left_vec(b.row(i))?;
            out.row_mut(i).copy_from_slice(&x);
        }
        Ok(out)
    }

    /// Inverse of the factored matrix (dense — the inverse of a band matrix
    /// is generally full).
    pub fn inverse(&self) -> Result<Matrix> {
        self.solve_matrix(&Matrix::identity(self.n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Lu;

    fn tridiag(n: usize) -> Matrix {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 4.0 + i as f64 * 0.1;
            if i > 0 {
                m[(i, i - 1)] = -1.0 - 0.01 * i as f64;
            }
            if i + 1 < n {
                m[(i, i + 1)] = -1.5 + 0.02 * i as f64;
            }
        }
        m
    }

    #[test]
    fn bandwidth_detection() {
        let m = tridiag(6);
        assert_eq!(detect_bandwidth(&m), (1, 1));
        assert_eq!(detect_bandwidth(&Matrix::identity(4)), (0, 0));
        let mut full = Matrix::zeros(3, 3);
        full[(2, 0)] = 1.0;
        full[(0, 2)] = 1.0;
        assert_eq!(detect_bandwidth(&full), (2, 2));
    }

    #[test]
    fn dense_round_trip() {
        let m = tridiag(7);
        let b = BandedMatrix::from_dense(&m).unwrap();
        assert_eq!(b.bandwidth(), (1, 1));
        assert_eq!(b.to_dense(), m);
        assert_eq!(b.get(3, 2), m[(3, 2)]);
        assert_eq!(b.get(0, 5), 0.0);
    }

    #[test]
    fn out_of_band_write_is_typed_error() {
        let mut b = BandedMatrix::zeros(5, 1, 1);
        assert!(b.set(2, 3, 1.0).is_ok());
        let err = b.set(0, 4, 1.0).unwrap_err();
        assert_eq!(
            err,
            LinalgError::OutOfBand {
                row: 0,
                col: 4,
                kl: 1,
                ku: 1
            }
        );
        // The rejected write really was dropped.
        assert_eq!(b.get(0, 4), 0.0);
    }

    #[test]
    fn declared_bandwidth_rejects_outside_nonzeros() {
        let mut m = tridiag(5);
        m[(0, 3)] = 0.25;
        assert!(BandedMatrix::from_dense_with_bandwidth(&m, 1, 1).is_err());
        assert!(BandedMatrix::from_dense_with_bandwidth(&m, 1, 3).is_ok());
    }

    #[test]
    fn band_lu_matches_dense_lu() {
        let m = tridiag(9);
        let band = BandedMatrix::from_dense(&m).unwrap();
        let blu = BandedLu::new(&band).unwrap();
        let dlu = Lu::new(&m).unwrap();
        let b: Vec<f64> = (0..9).map(|i| (i as f64).sin() + 1.0).collect();
        let xb = blu.solve_vec(&b).unwrap();
        let xd = dlu.solve_vec(&b).unwrap();
        for (a, b) in xb.iter().zip(xd.iter()) {
            assert!((a - b).abs() < 1e-12, "{a} vs {b}");
        }
        assert!((blu.det() - dlu.det()).abs() < 1e-9 * dlu.det().abs());
        let xl = blu.solve_left_vec(&b).unwrap();
        let xld = dlu.solve_left_vec(&b).unwrap();
        for (a, b) in xl.iter().zip(xld.iter()) {
            assert!((a - b).abs() < 1e-12, "{a} vs {b}");
        }
    }

    #[test]
    fn band_lu_pivots_when_needed() {
        // Diagonal zero forces a row swap within the band.
        let m = Matrix::from_rows(&[&[0.0, 1.0, 0.0], &[2.0, 0.5, 1.0], &[0.0, 1.0, 3.0]]);
        let band = BandedMatrix::from_dense(&m).unwrap();
        let blu = BandedLu::new(&band).unwrap();
        let x = blu.solve_vec(&[1.0, 2.0, 3.0]).unwrap();
        let ax = m.mul_vec(&x).unwrap();
        for (got, want) in ax.iter().zip([1.0, 2.0, 3.0]) {
            assert!((got - want).abs() < 1e-12);
        }
    }

    #[test]
    fn band_inverse_matches_dense() {
        let m = tridiag(6);
        let band = BandedMatrix::from_dense(&m).unwrap();
        let inv = BandedLu::new(&band).unwrap().inverse().unwrap();
        let prod = m.matmul(&inv).unwrap();
        assert!(prod.max_abs_diff(&Matrix::identity(6)) < 1e-12);
    }

    #[test]
    fn singular_band_detected() {
        let mut b = BandedMatrix::zeros(3, 1, 1);
        b.set(0, 0, 1.0).unwrap();
        b.set(1, 1, 0.0).unwrap();
        b.set(2, 2, 1.0).unwrap();
        assert!(matches!(BandedLu::new(&b), Err(LinalgError::Singular)));
    }

    #[test]
    fn mul_vec_band_aware() {
        let m = tridiag(8);
        let band = BandedMatrix::from_dense(&m).unwrap();
        let y: Vec<f64> = (0..8).map(|i| 0.5 + i as f64).collect();
        assert_eq!(band.mul_vec(&y).unwrap(), m.mul_vec(&y).unwrap());
    }
}
