//! Kronecker products and sums.
//!
//! Used by the phase-type algebra: if `X ~ PH(α, S)` and `Y ~ PH(β, T)` then
//! `min(X, Y)` has sub-generator `S ⊕ T = S ⊗ I + I ⊗ T`, and `max(X, Y)` is
//! built from the same Kronecker blocks. Composite generators of independent
//! Markov components are Kronecker sums as well.

use crate::Matrix;

/// Kronecker product `a ⊗ b`.
///
/// The result has shape `(a.rows·b.rows) × (a.cols·b.cols)`, with blocks
/// `a[(i,j)] · b`.
pub fn kron_product(a: &Matrix, b: &Matrix) -> Matrix {
    let (ar, ac) = a.shape();
    let (br, bc) = b.shape();
    let mut out = Matrix::zeros(ar * br, ac * bc);
    for i in 0..ar {
        for j in 0..ac {
            let v = a[(i, j)];
            if v == 0.0 {
                continue;
            }
            for k in 0..br {
                for l in 0..bc {
                    out[(i * br + k, j * bc + l)] = v * b[(k, l)];
                }
            }
        }
    }
    out
}

/// Kronecker sum `a ⊕ b = a ⊗ I + I ⊗ b` for square `a`, `b`.
///
/// # Panics
/// Panics if either matrix is not square.
pub fn kron_sum(a: &Matrix, b: &Matrix) -> Matrix {
    assert!(
        a.is_square() && b.is_square(),
        "kron_sum requires square inputs"
    );
    let left = kron_product(a, &Matrix::identity(b.rows()));
    let right = kron_product(&Matrix::identity(a.rows()), b);
    &left + &right
}

/// Kronecker product of two row vectors given as slices, returned as a `Vec`.
///
/// This is the initial-vector counterpart of [`kron_product`]: if `α` and `β`
/// are initial probability vectors of two independent phase processes, the
/// joint process starts in phase `(i, j)` with probability `α_i β_j`.
pub fn kron_vec(a: &[f64], b: &[f64]) -> Vec<f64> {
    let mut out = Vec::with_capacity(a.len() * b.len());
    for &x in a {
        for &y in b {
            out.push(x * y);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn product_shape_and_values() {
        let a = Matrix::from_rows(&[&[1.0, 2.0]]);
        let b = Matrix::from_rows(&[&[0.0, 3.0], &[4.0, 5.0]]);
        let k = kron_product(&a, &b);
        assert_eq!(k.shape(), (2, 4));
        assert_eq!(k[(0, 1)], 3.0);
        assert_eq!(k[(1, 0)], 4.0);
        assert_eq!(k[(0, 3)], 6.0);
        assert_eq!(k[(1, 2)], 8.0);
    }

    #[test]
    fn product_with_identity_is_block_diag() {
        let b = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let k = kron_product(&Matrix::identity(2), &b);
        assert_eq!(k.block(0, 0, 2, 2), b);
        assert_eq!(k.block(2, 2, 2, 2), b);
        assert_eq!(k.block(0, 2, 2, 2), Matrix::zeros(2, 2));
    }

    #[test]
    fn sum_of_generators_has_zero_row_sums() {
        // Two tiny CTMC generators; their Kronecker sum must be a generator.
        let a = Matrix::from_rows(&[&[-1.0, 1.0], &[2.0, -2.0]]);
        let b = Matrix::from_rows(&[&[-3.0, 3.0], &[0.5, -0.5]]);
        let s = kron_sum(&a, &b);
        for rs in s.row_sums() {
            assert!(rs.abs() < 1e-14);
        }
        assert_eq!(s.shape(), (4, 4));
    }

    #[test]
    fn mixed_product_property() {
        // (A ⊗ B)(C ⊗ D) = (AC) ⊗ (BD)
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[0.0, 1.0]]);
        let b = Matrix::from_rows(&[&[2.0, 0.0], &[1.0, 1.0]]);
        let c = Matrix::from_rows(&[&[0.5, 1.0], &[1.0, 0.0]]);
        let d = Matrix::from_rows(&[&[1.0, 1.0], &[0.0, 2.0]]);
        let lhs = kron_product(&a, &b).matmul(&kron_product(&c, &d)).unwrap();
        let rhs = kron_product(&a.matmul(&c).unwrap(), &b.matmul(&d).unwrap());
        assert!(lhs.max_abs_diff(&rhs) < 1e-14);
    }

    #[test]
    fn kron_vec_probabilities() {
        let a = [0.3, 0.7];
        let b = [0.5, 0.25, 0.25];
        let v = kron_vec(&a, &b);
        assert_eq!(v.len(), 6);
        let sum: f64 = v.iter().sum();
        assert!((sum - 1.0).abs() < 1e-15);
        assert!((v[0] - 0.15).abs() < 1e-15);
        assert!((v[5] - 0.175).abs() < 1e-15);
    }

    #[test]
    #[should_panic(expected = "square")]
    fn kron_sum_rejects_rectangular() {
        let a = Matrix::zeros(2, 3);
        let _ = kron_sum(&a, &Matrix::identity(2));
    }
}
