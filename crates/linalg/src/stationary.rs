//! Left-nullspace solves for stationary-vector equations.
//!
//! Stationary distributions of Markov chains and the boundary equations of a
//! QBD all take the form `x M = 0` together with a normalization `x w = 1`
//! (the paper's equations (9)–(10) and (21)–(24)). `M` is singular by
//! construction — its rows sum to zero — so we replace one column of the
//! system with the normalization constraint and solve the resulting
//! nonsingular system by LU.

use crate::{Lu, Matrix, Result};

/// Solve `x M = 0`, `x · w = 1` for a row vector `x`.
///
/// `m` must be square of dimension `n`, `w` a length-`n` weight vector (for a
/// plain stationary distribution `w` is all ones; the QBD boundary system
/// uses `w = [e, (I−R)^{-1} e]`).
///
/// The last column of `M` is replaced by `w`, which is valid whenever the
/// nullspace of `Mᵀ` is one-dimensional (irreducible chains). The solve then
/// reads `x M' = [0, …, 0, 1]`.
pub fn solve_left_nullspace(m: &Matrix, w: &[f64]) -> Result<Vec<f64>> {
    assert!(m.is_square(), "solve_left_nullspace: matrix must be square");
    let n = m.rows();
    assert_eq!(w.len(), n, "solve_left_nullspace: weight length mismatch");
    let mut sys = m.clone();
    for i in 0..n {
        sys[(i, n - 1)] = w[i];
    }
    let mut rhs = vec![0.0; n];
    rhs[n - 1] = 1.0;
    let lu = Lu::new(&sys)?;
    lu.solve_left_vec(&rhs)
}

/// Solve `x M = 0`, `Σ x_i = 1` (uniform weights), the common stationary
/// distribution case.
pub fn solve_stationary(m: &Matrix) -> Result<Vec<f64>> {
    let w = vec![1.0; m.rows()];
    solve_left_nullspace(m, &w)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_state_generator() {
        // Q = [[-a, a], [b, -b]] has stationary (b, a)/(a+b).
        let (a, b) = (2.0, 3.0);
        let q = Matrix::from_rows(&[&[-a, a], &[b, -b]]);
        let pi = solve_stationary(&q).unwrap();
        assert!((pi[0] - b / (a + b)).abs() < 1e-12);
        assert!((pi[1] - a / (a + b)).abs() < 1e-12);
    }

    #[test]
    fn three_state_cycle() {
        // Cycle 0->1->2->0 with unit rates: uniform stationary distribution.
        let q = Matrix::from_rows(&[&[-1.0, 1.0, 0.0], &[0.0, -1.0, 1.0], &[1.0, 0.0, -1.0]]);
        let pi = solve_stationary(&q).unwrap();
        for p in &pi {
            assert!((p - 1.0 / 3.0).abs() < 1e-12);
        }
    }

    #[test]
    fn weighted_normalization() {
        let q = Matrix::from_rows(&[&[-1.0, 1.0], &[1.0, -1.0]]);
        // Weight vector (2, 2): x proportional to (1/2, 1/2) scaled so 2x0+2x1=1.
        let x = solve_left_nullspace(&q, &[2.0, 2.0]).unwrap();
        assert!((x[0] - 0.25).abs() < 1e-12);
        assert!((x[1] - 0.25).abs() < 1e-12);
    }

    #[test]
    fn residual_is_small() {
        // Random-ish irreducible generator.
        let q = Matrix::from_rows(&[&[-3.0, 2.0, 1.0], &[0.5, -1.5, 1.0], &[2.0, 2.0, -4.0]]);
        let pi = solve_stationary(&q).unwrap();
        let res = q.transpose().mul_vec(&pi).unwrap();
        for r in res {
            assert!(r.abs() < 1e-12);
        }
        let s: f64 = pi.iter().sum();
        assert!((s - 1.0).abs() < 1e-12);
        assert!(pi.iter().all(|&p| p > 0.0));
    }
}
