//! Dense linear-algebra kernels used by the gang-scheduling analytic solver.
//!
//! The matrices that arise in the SPAA 1996 gang-scheduling model (generator
//! blocks of quasi-birth-death processes, phase-type representations) are
//! small and dense — typically a few hundred rows at most — so this crate
//! implements straightforward dense algorithms rather than pulling in an
//! external linear-algebra stack:
//!
//! * [`Matrix`]: row-major dense matrix with the usual arithmetic.
//! * [`backend`]: the [`LinalgBackend`] trait with swappable kernel
//!   implementations — [`NaiveDense`] (reference), [`Blocked`]
//!   (tiled/register-blocked), and [`BlockBanded`] (band-structure-aware) —
//!   selected by a [`BackendKind`] token that travels through solver
//!   options.
//! * [`banded`]: band storage ([`BandedMatrix`]) and band LU
//!   ([`BandedLu`]) for the block-tridiagonal QBD generators.
//! * [`lu::Lu`]: LU decomposition with partial pivoting, linear solves and
//!   inverses.
//! * [`kron`]: Kronecker products and sums (used for min/max of phase-type
//!   distributions and for building composite generators).
//! * [`spectral`]: power iteration for the spectral radius of a nonnegative
//!   matrix (stability checks on the rate matrix `R`).
//! * [`stationary`]: solving `x M = 0`, `x e = 1` systems that arise for
//!   stationary probability vectors and QBD boundary equations.
//! * [`counters`]: process-global work counters (kernel calls and nominal
//!   flops) behind the `gsched_obs::enabled()` guard, feeding the
//!   `gsched profile` GFLOP/s attribution.
//!
//! All computations are `f64`. The crate's only dependency is the
//! workspace instrumentation layer `gsched-obs`, used solely as the on/off
//! guard for the work counters.

pub mod backend;
pub mod banded;
pub mod counters;
pub mod kron;
pub mod lu;
pub mod matrix;
pub mod spectral;
pub mod stationary;
pub mod vecops;

pub use backend::{BackendKind, BlockBanded, Blocked, Factor, LinalgBackend, NaiveDense};
pub use banded::{BandedLu, BandedMatrix};
pub use counters::WorkCounters;
pub use kron::{kron_product, kron_sum};
pub use lu::Lu;
pub use matrix::Matrix;
pub use spectral::spectral_radius;
pub use stationary::solve_left_nullspace;

/// Default numerical tolerance used across the crate for convergence tests
/// and singularity detection.
pub const EPS: f64 = 1e-12;

/// Error type for linear-algebra failures.
#[derive(Debug, Clone, PartialEq)]
pub enum LinalgError {
    /// Matrix dimensions are incompatible with the requested operation.
    DimensionMismatch {
        /// Human-readable description of the operation that failed.
        op: &'static str,
        /// Dimensions of the left operand.
        lhs: (usize, usize),
        /// Dimensions of the right operand.
        rhs: (usize, usize),
    },
    /// The matrix is singular (or numerically so) and cannot be factored.
    Singular,
    /// An iterative method failed to converge within its iteration budget.
    NoConvergence {
        /// Which method failed.
        method: &'static str,
        /// Number of iterations performed.
        iterations: usize,
        /// Residual at the last iteration.
        residual: f64,
    },
    /// A write targeted an entry outside a band matrix's stored band.
    OutOfBand {
        /// Row of the rejected write.
        row: usize,
        /// Column of the rejected write.
        col: usize,
        /// Lower bandwidth of the storage.
        kl: usize,
        /// Upper bandwidth of the storage.
        ku: usize,
    },
}

impl std::fmt::Display for LinalgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LinalgError::DimensionMismatch { op, lhs, rhs } => write!(
                f,
                "dimension mismatch in {op}: lhs is {}x{}, rhs is {}x{}",
                lhs.0, lhs.1, rhs.0, rhs.1
            ),
            LinalgError::Singular => write!(f, "matrix is singular"),
            LinalgError::NoConvergence {
                method,
                iterations,
                residual,
            } => write!(
                f,
                "{method} failed to converge after {iterations} iterations (residual {residual:.3e})"
            ),
            LinalgError::OutOfBand { row, col, kl, ku } => write!(
                f,
                "write at ({row}, {col}) is outside the stored band (kl={kl}, ku={ku})"
            ),
        }
    }
}

impl std::error::Error for LinalgError {}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, LinalgError>;
