//! Swappable kernel backends behind one [`LinalgBackend`] trait.
//!
//! Every hot kernel in the solver stack — matrix product, LU
//! factor/solve, triangular substitution, matrix–vector products, spectral
//! radius — is reachable through this trait, so picking a different
//! implementation is a configuration change rather than a rewrite:
//!
//! * [`NaiveDense`] — the original row-major i-k-j kernels, unchanged.
//!   Reference implementation and correctness baseline.
//! * [`Blocked`] — tiled matmul with a 4-row register micro-kernel and a
//!   right-looking blocked (panel + GEMM trailing update) LU. Same packed
//!   `L\U` layout and pivot choices as the naive path, modulo floating-point
//!   summation order. Fastest on the larger QBD blocks.
//! * [`BlockBanded`] — detects the operands' band structure (the QBD
//!   truncated generator is block-tridiagonal) and stores/factors only the
//!   nonzero diagonals via [`crate::banded`]. Wins when the bandwidth is
//!   small relative to the dimension; falls back gracefully (full band) on
//!   dense operands.
//!
//! All three record identical *nominal* work in [`crate::counters`] — one
//! record per logical operation at the backend entry point, never inside
//! tiles — so flop telemetry is comparable across backends.
//!
//! Selection flows from the CLI (`--backend`), the service config, or
//! `SolverOptions::builder().backend(..)` down to the QBD kernels as a
//! [`BackendKind`], which is `Copy` and resolves to a `&'static dyn
//! LinalgBackend` via [`BackendKind::instance`].

use crate::banded::{BandedLu, BandedMatrix};
use crate::lu::Lu;
use crate::{LinalgError, Matrix, Result};
use std::fmt;
use std::str::FromStr;

/// Which kernel backend to use. The `Copy` token that travels through
/// solver options, sweep requests, and service configs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum BackendKind {
    /// Reference row-major dense kernels ([`NaiveDense`]).
    #[default]
    Naive,
    /// Tiled/blocked dense kernels ([`Blocked`]).
    Blocked,
    /// Band-structure-exploiting kernels ([`BlockBanded`]).
    Banded,
}

impl BackendKind {
    /// Every selectable backend, in display order.
    pub const ALL: [BackendKind; 3] = [
        BackendKind::Naive,
        BackendKind::Blocked,
        BackendKind::Banded,
    ];

    /// Stable lowercase name (CLI value, JSON field, provenance label).
    pub fn as_str(self) -> &'static str {
        match self {
            BackendKind::Naive => "naive",
            BackendKind::Blocked => "blocked",
            BackendKind::Banded => "banded",
        }
    }

    /// Stable numeric code for `(String, f64)` provenance parameter lists.
    pub fn index(self) -> u8 {
        match self {
            BackendKind::Naive => 0,
            BackendKind::Blocked => 1,
            BackendKind::Banded => 2,
        }
    }

    /// Inverse of [`BackendKind::index`].
    pub fn from_index(i: u8) -> Option<BackendKind> {
        match i {
            0 => Some(BackendKind::Naive),
            1 => Some(BackendKind::Blocked),
            2 => Some(BackendKind::Banded),
            _ => None,
        }
    }

    /// Resolve to the singleton backend implementation.
    pub fn instance(self) -> &'static dyn LinalgBackend {
        match self {
            BackendKind::Naive => &NAIVE_DENSE,
            BackendKind::Blocked => &BLOCKED,
            BackendKind::Banded => &BLOCK_BANDED,
        }
    }
}

impl fmt::Display for BackendKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl FromStr for BackendKind {
    type Err = String;

    fn from_str(s: &str) -> std::result::Result<Self, String> {
        match s.trim().to_ascii_lowercase().as_str() {
            "naive" | "dense" => Ok(BackendKind::Naive),
            "blocked" | "tiled" => Ok(BackendKind::Blocked),
            "banded" | "band" => Ok(BackendKind::Banded),
            other => Err(format!(
                "unknown backend '{other}' (expected naive, blocked, or banded)"
            )),
        }
    }
}

/// A factored square matrix from [`LinalgBackend::factor`].
///
/// Concrete enum (rather than a boxed trait object) so it stays `Clone` and
/// cheap to store inside warm-start caches and solutions.
#[derive(Clone, Debug)]
pub enum Factor {
    /// Dense packed `L\U` with pivots.
    Dense(Lu),
    /// Band-stored `L\U` with pivots.
    Banded(BandedLu),
}

impl Factor {
    /// Dimension of the factored matrix.
    pub fn dim(&self) -> usize {
        match self {
            Factor::Dense(lu) => lu.dim(),
            Factor::Banded(lu) => lu.dim(),
        }
    }

    /// Smallest absolute pivot — conditioning indicator.
    pub fn min_pivot(&self) -> f64 {
        match self {
            Factor::Dense(lu) => lu.min_pivot(),
            Factor::Banded(lu) => lu.min_pivot(),
        }
    }

    /// Determinant of the original matrix.
    pub fn det(&self) -> f64 {
        match self {
            Factor::Dense(lu) => lu.det(),
            Factor::Banded(lu) => lu.det(),
        }
    }

    /// Solve `a x = b` for a column vector.
    pub fn solve_vec(&self, b: &[f64]) -> Result<Vec<f64>> {
        match self {
            Factor::Dense(lu) => lu.solve_vec(b),
            Factor::Banded(lu) => lu.solve_vec(b),
        }
    }

    /// Solve `a X = B` column by column.
    pub fn solve_matrix(&self, b: &Matrix) -> Result<Matrix> {
        match self {
            Factor::Dense(lu) => lu.solve_matrix(b),
            Factor::Banded(lu) => lu.solve_matrix(b),
        }
    }

    /// Solve `x a = b` for a row vector.
    pub fn solve_left_vec(&self, b: &[f64]) -> Result<Vec<f64>> {
        match self {
            Factor::Dense(lu) => lu.solve_left_vec(b),
            Factor::Banded(lu) => lu.solve_left_vec(b),
        }
    }

    /// Solve `X a = B` row by row.
    pub fn solve_left_matrix(&self, b: &Matrix) -> Result<Matrix> {
        match self {
            Factor::Dense(lu) => lu.solve_left_matrix(b),
            Factor::Banded(lu) => lu.solve_left_matrix(b),
        }
    }

    /// Inverse of the factored matrix.
    pub fn inverse(&self) -> Result<Matrix> {
        match self {
            Factor::Dense(lu) => lu.inverse(),
            Factor::Banded(lu) => lu.inverse(),
        }
    }
}

/// Interchangeable kernel implementations under the solver stack.
///
/// Implementations must agree numerically (within rounding) and must charge
/// the same nominal work to [`crate::counters`] for the same logical
/// operation.
pub trait LinalgBackend: Send + Sync + fmt::Debug {
    /// Which [`BackendKind`] this implementation is.
    fn kind(&self) -> BackendKind;

    /// Stable lowercase name.
    fn name(&self) -> &'static str {
        self.kind().as_str()
    }

    /// Matrix product `a · b`.
    fn matmul(&self, a: &Matrix, b: &Matrix) -> Result<Matrix>;

    /// LU-factor the square matrix `a` (with partial pivoting).
    fn factor(&self, a: &Matrix) -> Result<Factor>;

    /// Solve `a X = B`.
    fn solve_matrix(&self, a: &Matrix, b: &Matrix) -> Result<Matrix> {
        self.factor(a)?.solve_matrix(b)
    }

    /// Invert `a`.
    fn inverse(&self, a: &Matrix) -> Result<Matrix> {
        self.factor(a)?.inverse()
    }

    /// Matrix–column-vector product `a · y`.
    fn mul_vec(&self, a: &Matrix, y: &[f64]) -> Result<Vec<f64>> {
        a.mul_vec(y)
    }

    /// Row-vector–matrix product `x · a`.
    fn left_mul_vec(&self, a: &Matrix, x: &[f64]) -> Result<Vec<f64>> {
        a.left_mul_vec(x)
    }

    /// Spectral radius of a nonnegative matrix by power iteration.
    fn spectral_radius(&self, a: &Matrix, tol: f64, max_iter: usize) -> Result<f64> {
        crate::spectral::spectral_radius(a, tol, max_iter)
    }
}

/// The original dense row-major kernels, unchanged.
#[derive(Debug, Clone, Copy, Default)]
pub struct NaiveDense;

/// Singleton [`NaiveDense`] instance.
pub static NAIVE_DENSE: NaiveDense = NaiveDense;

impl LinalgBackend for NaiveDense {
    fn kind(&self) -> BackendKind {
        BackendKind::Naive
    }

    fn matmul(&self, a: &Matrix, b: &Matrix) -> Result<Matrix> {
        a.matmul(b)
    }

    fn factor(&self, a: &Matrix) -> Result<Factor> {
        Ok(Factor::Dense(Lu::new(a)?))
    }
}

/// Tiled dense kernels: register-blocked matmul and right-looking blocked LU.
#[derive(Debug, Clone, Copy)]
pub struct Blocked {
    /// Column tile width for the GEMM micro-kernel and LU panel width.
    pub tile: usize,
}

impl Default for Blocked {
    fn default() -> Self {
        Blocked { tile: 64 }
    }
}

/// Singleton [`Blocked`] instance with the default tile size.
pub static BLOCKED: Blocked = Blocked { tile: 64 };

impl LinalgBackend for Blocked {
    fn kind(&self) -> BackendKind {
        BackendKind::Blocked
    }

    fn matmul(&self, a: &Matrix, b: &Matrix) -> Result<Matrix> {
        if a.cols() != b.rows() {
            return Err(LinalgError::DimensionMismatch {
                op: "matmul",
                lhs: a.shape(),
                rhs: b.shape(),
            });
        }
        crate::counters::record_matmul(a.rows(), b.cols(), a.cols());
        let (m, kd) = a.shape();
        let n = b.cols();
        let mut out = Matrix::zeros(m, n);
        gemm_acc(
            m,
            n,
            kd,
            a.as_slice(),
            kd,
            b.as_slice(),
            n,
            out.as_mut_slice(),
            n,
            1.0,
            self.tile.max(8),
        );
        Ok(out)
    }

    fn factor(&self, a: &Matrix) -> Result<Factor> {
        let lu = factor_blocked(a, self.tile.max(8))?;
        // One nominal charge per logical factorization, identical to the
        // naive path; the tiled internals never record.
        crate::counters::record_lu_factorization(a.rows());
        Ok(Factor::Dense(lu))
    }
}

/// Band-structure-exploiting kernels for block-banded QBD generators.
#[derive(Debug, Clone, Copy, Default)]
pub struct BlockBanded;

/// Singleton [`BlockBanded`] instance.
pub static BLOCK_BANDED: BlockBanded = BlockBanded;

impl LinalgBackend for BlockBanded {
    fn kind(&self) -> BackendKind {
        BackendKind::Banded
    }

    // Band index arithmetic reads clearest with explicit indices.
    #[allow(clippy::needless_range_loop)]
    fn matmul(&self, a: &Matrix, b: &Matrix) -> Result<Matrix> {
        if a.cols() != b.rows() {
            return Err(LinalgError::DimensionMismatch {
                op: "matmul",
                lhs: a.shape(),
                rhs: b.shape(),
            });
        }
        // Same nominal charge as the dense paths, whatever the sparsity.
        crate::counters::record_matmul(a.rows(), b.cols(), a.cols());
        let (m, kd) = a.shape();
        let n = b.cols();
        // Restrict the k-range per row to a's band and the j-range per k to
        // b's band; on dense operands the ranges degenerate to the full
        // i-k-j product.
        let (akl, aku) = band_of(a);
        let (bkl, bku) = band_of(b);
        let mut out = Matrix::zeros(m, n);
        for i in 0..m {
            let klo = i.saturating_sub(akl);
            let khi = (i + aku).min(kd.saturating_sub(1));
            if klo > khi {
                continue;
            }
            let arow = a.row(i);
            for k in klo..=khi {
                let av = arow[k];
                if av == 0.0 {
                    continue;
                }
                let jlo = k.saturating_sub(bkl);
                let jhi = (k + bku).min(n.saturating_sub(1));
                if jlo > jhi {
                    continue;
                }
                let brow = &b.row(k)[jlo..=jhi];
                let orow = &mut out.row_mut(i)[jlo..=jhi];
                for (o, &bv) in orow.iter_mut().zip(brow.iter()) {
                    *o += av * bv;
                }
            }
        }
        Ok(out)
    }

    fn factor(&self, a: &Matrix) -> Result<Factor> {
        if !a.is_square() {
            return Err(LinalgError::DimensionMismatch {
                op: "lu",
                lhs: a.shape(),
                rhs: a.shape(),
            });
        }
        // Nominal dense charge, like every backend.
        crate::counters::record_lu_factorization(a.rows());
        let band = BandedMatrix::from_dense(a)?;
        Ok(Factor::Banded(BandedLu::new(&band)?))
    }
}

/// Bandwidths of a possibly non-square matrix (for the band matmul: row `i`
/// of `a` touches columns `i − kl ..= i + ku`).
fn band_of(a: &Matrix) -> (usize, usize) {
    let mut kl = 0usize;
    let mut ku = 0usize;
    for i in 0..a.rows() {
        for (j, &v) in a.row(i).iter().enumerate() {
            if v != 0.0 {
                if j < i {
                    kl = kl.max(i - j);
                } else {
                    ku = ku.max(j - i);
                }
            }
        }
    }
    (kl, ku)
}

/// `c[0..m, 0..n] += alpha · a[0..m, 0..kd] · b[0..kd, 0..n]` on raw
/// row-major slices with explicit leading dimensions.
///
/// Four C rows are accumulated per pass so each B row is loaded once for
/// four A elements (register blocking), and columns are tiled so the active
/// B/C row segments stay in L1. Never records counters — callers charge the
/// nominal flops once at the backend entry point.
#[allow(clippy::too_many_arguments)]
pub(crate) fn gemm_acc(
    m: usize,
    n: usize,
    kd: usize,
    a: &[f64],
    lda: usize,
    b: &[f64],
    ldb: usize,
    c: &mut [f64],
    ldc: usize,
    alpha: f64,
    tile: usize,
) {
    let mut i0 = 0;
    while i0 < m {
        let ib = (m - i0).min(4);
        let mut j0 = 0;
        while j0 < n {
            let jb = (n - j0).min(tile);
            match ib {
                4 => {
                    let (r0, rest) = c[i0 * ldc..].split_at_mut(ldc);
                    let (r1, rest) = rest.split_at_mut(ldc);
                    let (r2, r3) = rest.split_at_mut(ldc);
                    let c0 = &mut r0[j0..j0 + jb];
                    let c1 = &mut r1[j0..j0 + jb];
                    let c2 = &mut r2[j0..j0 + jb];
                    let c3 = &mut r3[j0..j0 + jb];
                    for k in 0..kd {
                        let a0 = alpha * a[i0 * lda + k];
                        let a1 = alpha * a[(i0 + 1) * lda + k];
                        let a2 = alpha * a[(i0 + 2) * lda + k];
                        let a3 = alpha * a[(i0 + 3) * lda + k];
                        if a0 == 0.0 && a1 == 0.0 && a2 == 0.0 && a3 == 0.0 {
                            continue;
                        }
                        let br = &b[k * ldb + j0..k * ldb + j0 + jb];
                        for j in 0..jb {
                            let bv = br[j];
                            c0[j] += a0 * bv;
                            c1[j] += a1 * bv;
                            c2[j] += a2 * bv;
                            c3[j] += a3 * bv;
                        }
                    }
                }
                _ => {
                    for t in 0..ib {
                        let i = i0 + t;
                        let crow = &mut c[i * ldc + j0..i * ldc + j0 + jb];
                        for k in 0..kd {
                            let av = alpha * a[i * lda + k];
                            if av == 0.0 {
                                continue;
                            }
                            let br = &b[k * ldb + j0..k * ldb + j0 + jb];
                            for (o, &bv) in crow.iter_mut().zip(br.iter()) {
                                *o += av * bv;
                            }
                        }
                    }
                }
            }
            j0 += jb;
        }
        i0 += ib;
    }
}

/// Right-looking blocked LU with partial pivoting: panel factorization,
/// triangular update of the panel's trailing row block, then one GEMM
/// trailing update through [`gemm_acc`]. Produces the same packed `L\U`
/// form and pivot sequence as [`Lu::new`], modulo floating-point rounding.
///
/// Does not record counters — [`Blocked::factor`] charges the nominal
/// `2n³/3` at entry.
fn factor_blocked(a: &Matrix, nb: usize) -> Result<Lu> {
    if !a.is_square() {
        return Err(LinalgError::DimensionMismatch {
            op: "lu",
            lhs: a.shape(),
            rhs: a.shape(),
        });
    }
    let n = a.rows();
    let mut lu = a.clone();
    let mut piv = vec![0usize; n];
    let mut sign = 1.0;
    let d = lu.as_mut_slice();
    let mut k0 = 0;
    while k0 < n {
        let kend = (k0 + nb).min(n);
        // Panel: eliminate columns k0..kend with full-column pivoting,
        // updating only the panel's columns (trailing columns were already
        // brought up to date by previous panels' GEMM updates).
        for k in k0..kend {
            let mut p = k;
            let mut pmax = d[k * n + k].abs();
            for i in (k + 1)..n {
                let v = d[i * n + k].abs();
                if v > pmax {
                    pmax = v;
                    p = i;
                }
            }
            piv[k] = p;
            if p != k {
                for j in 0..n {
                    d.swap(k * n + j, p * n + j);
                }
                sign = -sign;
            }
            let pivot = d[k * n + k];
            if pivot == 0.0 || !pivot.is_finite() {
                return Err(LinalgError::Singular);
            }
            for i in (k + 1)..n {
                let f = d[i * n + k] / pivot;
                d[i * n + k] = f;
                if f == 0.0 {
                    continue;
                }
                for j in (k + 1)..kend {
                    d[i * n + j] -= f * d[k * n + j];
                }
            }
        }
        if kend < n {
            // U12 = L11⁻¹ · A12: forward-eliminate the panel rows' trailing
            // columns with the unit-lower panel factors.
            for k in k0..kend {
                for i in (k + 1)..kend {
                    let f = d[i * n + k];
                    if f == 0.0 {
                        continue;
                    }
                    let (lo, hi) = d.split_at_mut(i * n);
                    let rk = &lo[k * n + kend..k * n + n];
                    let ri = &mut hi[kend..n];
                    for (x, &u) in ri.iter_mut().zip(rk.iter()) {
                        *x -= f * u;
                    }
                }
            }
            // Trailing update A22 -= L21 · U12. L21 and A22 share rows, so
            // pack L21 first (also gives the GEMM a contiguous A panel).
            let mb = n - kend;
            let kb = kend - k0;
            let mut l21 = vec![0.0; mb * kb];
            for i in 0..mb {
                let src = &d[(kend + i) * n + k0..(kend + i) * n + kend];
                l21[i * kb..(i + 1) * kb].copy_from_slice(src);
            }
            let (top, bottom) = d.split_at_mut(kend * n);
            let u12 = &top[k0 * n + kend..];
            let a22 = &mut bottom[kend..];
            gemm_acc(mb, mb, kb, &l21, kb, u12, n, a22, n, -1.0, nb.max(8));
        }
        k0 = kend;
    }
    Ok(Lu::from_parts(lu, piv, sign))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rand_matrix(rows: usize, cols: usize, seed: u64, dominant: bool) -> Matrix {
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64 * 2.0 - 1.0
        };
        let mut m = Matrix::zeros(rows, cols);
        for i in 0..rows {
            for j in 0..cols {
                m[(i, j)] = next();
            }
            if dominant && i < cols {
                m[(i, i)] += cols as f64;
            }
        }
        m
    }

    #[test]
    fn kind_round_trips_through_str_and_index() {
        for kind in BackendKind::ALL {
            assert_eq!(kind.as_str().parse::<BackendKind>().unwrap(), kind);
            assert_eq!(BackendKind::from_index(kind.index()), Some(kind));
            assert_eq!(kind.instance().kind(), kind);
        }
        assert!("fancy".parse::<BackendKind>().is_err());
        assert_eq!(BackendKind::from_index(9), None);
        assert_eq!(BackendKind::default(), BackendKind::Naive);
    }

    #[test]
    fn matmul_agrees_across_backends() {
        for (m, k, n, seed) in [
            (3, 4, 5, 11),
            (8, 8, 8, 23),
            (17, 9, 13, 37),
            (33, 33, 33, 41),
        ] {
            let a = rand_matrix(m, k, seed, false);
            let b = rand_matrix(k, n, seed * 7 + 1, false);
            let want = BackendKind::Naive.instance().matmul(&a, &b).unwrap();
            for kind in [BackendKind::Blocked, BackendKind::Banded] {
                let got = kind.instance().matmul(&a, &b).unwrap();
                assert!(
                    got.max_abs_diff(&want) < 1e-12,
                    "{kind} differs at {m}x{k}x{n}"
                );
            }
        }
    }

    #[test]
    fn matmul_dimension_mismatch_everywhere() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        for kind in BackendKind::ALL {
            assert!(matches!(
                kind.instance().matmul(&a, &b),
                Err(LinalgError::DimensionMismatch { .. })
            ));
        }
    }

    #[test]
    fn blocked_lu_matches_naive_factors() {
        for n in [1, 2, 5, 16, 33, 50] {
            let a = rand_matrix(n, n, 17 + n as u64, true);
            let naive = Lu::new(&a).unwrap();
            let blocked = factor_blocked(&a, 8).unwrap();
            let b: Vec<f64> = (0..n).map(|i| (i as f64 * 0.7).cos()).collect();
            let xn = naive.solve_vec(&b).unwrap();
            let xb = blocked.solve_vec(&b).unwrap();
            for (u, v) in xn.iter().zip(xb.iter()) {
                assert!((u - v).abs() < 1e-10, "n={n}: {u} vs {v}");
            }
            assert!((naive.det() - blocked.det()).abs() <= 1e-9 * naive.det().abs().max(1.0));
        }
    }

    #[test]
    fn factor_solves_agree_across_backends() {
        for n in [4, 9, 24] {
            let a = rand_matrix(n, n, 5 + n as u64, true);
            let rhs = rand_matrix(n, 3, 77, false);
            let want = BackendKind::Naive
                .instance()
                .solve_matrix(&a, &rhs)
                .unwrap();
            for kind in [BackendKind::Blocked, BackendKind::Banded] {
                let got = kind.instance().solve_matrix(&a, &rhs).unwrap();
                assert!(got.max_abs_diff(&want) < 1e-10, "{kind} differs at n={n}");
            }
        }
    }

    #[test]
    fn inverse_agrees_across_backends() {
        let a = rand_matrix(12, 12, 99, true);
        let want = BackendKind::Naive.instance().inverse(&a).unwrap();
        for kind in [BackendKind::Blocked, BackendKind::Banded] {
            let got = kind.instance().inverse(&a).unwrap();
            assert!(got.max_abs_diff(&want) < 1e-10, "{kind} inverse differs");
        }
    }

    #[test]
    fn singular_rejected_across_backends() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]);
        for kind in BackendKind::ALL {
            assert!(
                matches!(kind.instance().factor(&a), Err(LinalgError::Singular)),
                "{kind} accepted a singular matrix"
            );
        }
    }

    #[test]
    fn spectral_radius_consistent() {
        let a = Matrix::from_rows(&[&[0.5, 0.25], &[0.125, 0.5]]);
        let want = crate::spectral::spectral_radius(&a, 1e-12, 10_000).unwrap();
        for kind in BackendKind::ALL {
            let got = kind.instance().spectral_radius(&a, 1e-12, 10_000).unwrap();
            assert!((got - want).abs() < 1e-10);
        }
    }
}
