//! Shared harness for the figure-reproduction binaries.
//!
//! Each binary sweeps a parameter (see `gsched_workload::figures`), solves
//! the analytic model at every point, prints the paper's series as CSV,
//! evaluates qualitative *shape checks* against the paper's description, and
//! writes a JSON provenance record under `results/`.
//!
//! Setting the `GSCHED_DIAG` environment variable additionally captures
//! solver instrumentation through `gsched_obs` and writes a
//! `results/<id>.diag.json` sidecar next to each record. Any non-empty
//! value enables it except the conventional opt-outs `0`, `false`, and
//! `off` (case-insensitive), which disable it like an unset variable.

use gsched_core::solver::{GangSolution, SolverOptions};
use gsched_engine::{ScenarioBase, SweepAxis, SweepOptions, SweepReport, SweepRequest};
use gsched_workload::figures::SweepPoint;
use gsched_workload::spec::{ExperimentRecord, Series, ShapeCheck};
use std::path::Path;

/// Per-point outcome of a sweep: x value and per-class mean populations
/// (`f64::INFINITY` when a class is unstable at that point).
#[derive(Debug, Clone)]
pub struct SweepResult {
    /// Swept x value.
    pub x: f64,
    /// `N_p` per class.
    pub n: Vec<f64>,
    /// Fixed-point iterations used.
    pub iterations: usize,
}

/// Evaluate a [`SweepRequest`] on the `gsched-engine` pool and flatten the
/// report into per-point [`SweepResult`] rows (failed points warn on
/// stderr and yield `NaN` rows, as the figure CSVs expect).
pub fn run_request(req: &SweepRequest, opts: &SweepOptions) -> Vec<SweepResult> {
    report_to_results(req, &gsched_engine::run_sweep(req, opts))
}

/// Solve the model at every sweep point, in parallel across points with
/// neighbour warm starting (see `gsched_engine::run_sweep`).
pub fn run_sweep(points: &[SweepPoint], opts: &SolverOptions) -> Vec<SweepResult> {
    let req = SweepRequest::new(
        SweepAxis::Custom("points".to_string()),
        ScenarioBase::labeled("repro"),
        points.to_vec(),
    );
    run_request(&req, &SweepOptions::default().with_solver(opts.clone()))
}

fn report_to_results(req: &SweepRequest, report: &SweepReport) -> Vec<SweepResult> {
    req.points
        .iter()
        .zip(report.points.iter())
        .map(|(pt, res)| match &res.solution {
            Some(sol) => SweepResult {
                x: res.x,
                n: n_vector(sol),
                iterations: sol.iterations,
            },
            None => {
                let msg = res.error.as_deref().unwrap_or("unknown error");
                eprintln!("warning: point x={} failed: {msg}", res.x);
                SweepResult {
                    x: res.x,
                    n: vec![f64::NAN; pt.model.num_classes()],
                    iterations: 0,
                }
            }
        })
        .collect()
}

/// Extract one class's series from sweep results.
pub fn class_series(results: &[SweepResult], class: usize) -> (Vec<f64>, Vec<f64>) {
    (
        results.iter().map(|r| r.x).collect(),
        results.iter().map(|r| r.n[class]).collect(),
    )
}

/// Print a CSV table `x, class0, class1, …` to stdout.
pub fn print_csv(header_x: &str, results: &[SweepResult]) {
    let classes = results.first().map(|r| r.n.len()).unwrap_or(0);
    let cols: Vec<String> = (0..classes).map(|p| format!("class{p}")).collect();
    println!("{header_x},{}", cols.join(","));
    for r in results {
        let vals: Vec<String> = r.n.iter().map(|v| format!("{v:.6}")).collect();
        println!("{:.4},{}", r.x, vals.join(","));
    }
}

/// U-shape check: the minimum is interior (not at either end) and the curve
/// descends into it and ascends after it. Returns the knee x on success.
pub fn u_shape_knee(x: &[f64], y: &[f64]) -> Option<f64> {
    let finite: Vec<(f64, f64)> = x
        .iter()
        .zip(y.iter())
        .filter(|(_, v)| v.is_finite())
        .map(|(&a, &b)| (a, b))
        .collect();
    if finite.len() < 3 {
        return None;
    }
    let (mut kmin, mut vmin) = (0usize, f64::INFINITY);
    for (i, &(_, v)) in finite.iter().enumerate() {
        if v < vmin {
            vmin = v;
            kmin = i;
        }
    }
    if kmin == 0 || kmin == finite.len() - 1 {
        return None;
    }
    // Ends strictly above the knee (paper: fast drop, then monotone rise).
    if finite[0].1 > vmin && finite[finite.len() - 1].1 > vmin {
        Some(finite[kmin].0)
    } else {
        None
    }
}

/// Check that `y` is (weakly) monotone decreasing, with `slack` relative
/// tolerance for numerical wiggle.
pub fn is_monotone_decreasing(y: &[f64], slack: f64) -> bool {
    y.windows(2)
        .all(|w| !w[0].is_finite() || !w[1].is_finite() || w[1] <= w[0] * (1.0 + slack) + 1e-12)
}

/// Install the in-memory diagnostics recorder when the `GSCHED_DIAG`
/// environment variable is set. Returns whether it was installed;
/// [`save_record`] then writes a `results/<id>.diag.json` sidecar.
///
/// Accepted values: any non-empty string enables diagnostics except `0`,
/// `false`, and `off` (case-insensitive), which count as disabled — so
/// `GSCHED_DIAG=0 cargo run …` behaves like an unset variable.
pub fn init_diagnostics() -> bool {
    let wanted = std::env::var("GSCHED_DIAG")
        .map(|v| diag_value_enables(&v))
        .unwrap_or(false);
    if wanted {
        gsched_obs::install_memory();
    }
    wanted
}

/// Whether a `GSCHED_DIAG` value asks for diagnostics.
fn diag_value_enables(value: &str) -> bool {
    let v = value.trim();
    !v.is_empty() && !["0", "false", "off"].contains(&v.to_ascii_lowercase().as_str())
}

/// Save a JSON record under `results/<id>.json` (relative to the workspace
/// root when run via `cargo run`, else the current directory). When a
/// diagnostics recorder is active (see [`init_diagnostics`]) a
/// `results/<id>.diag.json` snapshot is written alongside it.
pub fn save_record(record: &ExperimentRecord) -> std::io::Result<()> {
    let dir = Path::new("results");
    std::fs::create_dir_all(dir)?;
    let path = dir.join(format!("{}.json", record.id));
    let json = serde_json::to_string_pretty(record).expect("record serializes");
    gsched_obs::write_atomic(&path, json.as_bytes())?;
    eprintln!("wrote {}", path.display());
    if let Some(recorder) = gsched_obs::installed_memory() {
        let sidecar = dir.join(format!("{}.diag.json", record.id));
        gsched_obs::write_atomic(&sidecar, recorder.snapshot().to_json().as_bytes())?;
        eprintln!("wrote {}", sidecar.display());
    }
    Ok(())
}

/// Build an [`ExperimentRecord`] from sweep results.
pub fn record_from_sweep(
    id: &str,
    description: &str,
    parameters: Vec<(String, f64)>,
    results: &[SweepResult],
    shape_checks: Vec<ShapeCheck>,
) -> ExperimentRecord {
    let classes = results.first().map(|r| r.n.len()).unwrap_or(0);
    let series = (0..classes)
        .map(|p| {
            let (x, y) = class_series(results, p);
            Series {
                label: format!("class {p}"),
                x,
                y,
            }
        })
        .collect();
    ExperimentRecord {
        id: id.to_string(),
        description: description.to_string(),
        parameters,
        series,
        shape_checks,
    }
}

/// Print shape-check outcomes and return `true` if all passed.
pub fn report_checks(checks: &[ShapeCheck]) -> bool {
    let mut all = true;
    for c in checks {
        let mark = if c.passed { "PASS" } else { "FAIL" };
        eprintln!("[{mark}] {}: {}", c.name, c.detail);
        all &= c.passed;
    }
    all
}

/// Convenience: a [`GangSolution`] → per-class N vector.
pub fn n_vector(sol: &GangSolution) -> Vec<f64> {
    sol.classes.iter().map(|c| c.mean_jobs).collect()
}

/// Shared driver for Figures 2 and 3: run a registered quantum-sweep
/// scenario (they differ only in `λ = ρ`) and record it under `id`.
pub fn run_quantum_figure(id: &str, scenario_name: &str) {
    use gsched_scenario::registry;
    use gsched_workload::spec::ShapeCheck;

    init_diagnostics();
    let scenario = registry::lookup(scenario_name).expect("quantum scenario is registered");
    let lambda = scenario
        .param("lambda")
        .expect("quantum scenarios carry a lambda param");
    let request = scenario
        .sweep_request(false)
        .expect("registry grids are valid");
    eprintln!(
        "{id}: quantum sweep at rho = {lambda} over {} points (scenario `{scenario_name}`)",
        request.len()
    );
    let results = run_request(&request, &SweepOptions::default());
    print_csv("quantum_mean", &results);

    let mut checks = Vec::new();
    let finite_min = |y: &[f64]| -> (f64, f64, f64) {
        let fin: Vec<f64> = y.iter().copied().filter(|v| v.is_finite()).collect();
        let min = fin.iter().copied().fold(f64::INFINITY, f64::min);
        (
            fin.first().copied().unwrap_or(f64::NAN),
            min,
            fin.last().copied().unwrap_or(f64::NAN),
        )
    };
    // Class 0 is the wide, slow class: it needs far more than its fair
    // 1/L share of the machine, so at heavy load it is saturated below a
    // quantum threshold (the analysis's stability crossover), while at
    // moderate load its curve descends to a plateau. Classes 1–3 show the
    // paper's U: overhead-dominated at tiny quanta, exhaustive-service
    // penalty at long ones.
    for p in 0..4 {
        let (x, y) = class_series(&results, p);
        let (first, min, last) = finite_min(&y);
        // Shared check: very short quanta are penalized.
        checks.push(ShapeCheck {
            name: format!("class {p}: short quanta penalized"),
            passed: first > min * 1.2,
            detail: format!("N(first finite) = {first:.3} vs min {min:.3}"),
        });
        if p == 0 {
            if lambda >= 0.7 {
                let unstable_short = y.first().map(|v| !v.is_finite()).unwrap_or(false);
                let stable_long = y.last().map(|v| v.is_finite()).unwrap_or(false);
                checks.push(ShapeCheck {
                    name: "class 0: saturation crossover at heavy load".to_string(),
                    passed: unstable_short && stable_long,
                    detail: format!(
                        "unstable at q = {:.2}, stable at q = {:.2} (class 0 needs ~68% of \
                         the machine against a 25% fair share)",
                        x.first().copied().unwrap_or(f64::NAN),
                        x.last().copied().unwrap_or(f64::NAN)
                    ),
                });
            } else {
                checks.push(ShapeCheck {
                    name: "class 0: descends to a plateau".to_string(),
                    passed: (last - min) / min.max(1e-9) < 0.25,
                    detail: format!("min {min:.3}, last {last:.3}"),
                });
            }
        } else {
            let knee = u_shape_knee(&x, &y);
            checks.push(ShapeCheck {
                name: format!("class {p}: U-shaped (knee then monotone rise)"),
                passed: knee.is_some() && last > min * 1.05,
                detail: match knee {
                    Some(k) => format!("knee at quantum = {k:.2}, N rises to {last:.3}"),
                    None => "no interior minimum found".to_string(),
                },
            });
        }
    }
    // Class ordering N0 > N1 > N2 > N3 at the middle of the all-finite range.
    let finite_idx: Vec<usize> = (0..results.len())
        .filter(|&i| results[i].n.iter().all(|v| v.is_finite()))
        .collect();
    let mid = finite_idx
        .get(finite_idx.len() / 2)
        .copied()
        .unwrap_or(results.len() - 1);
    // At heavy load the two lightest classes nearly coincide (as in the
    // paper's Figure 3, where their curves overlap), so allow 10% slack.
    let ordered = (0..3)
        .all(|p| !results[mid].n[p].is_finite() || results[mid].n[p] > results[mid].n[p + 1] * 0.9);
    checks.push(ShapeCheck {
        name: "classes ordered N0 > N1 > N2 > N3".to_string(),
        passed: ordered,
        detail: format!(
            "at quantum {:.2}: N = [{}]",
            results[mid].x,
            results[mid]
                .n
                .iter()
                .map(|v| format!("{v:.3}"))
                .collect::<Vec<_>>()
                .join(", ")
        ),
    });

    let record = record_from_sweep(
        id,
        "Mean jobs vs mean quantum length (paper Fig. 2/3 family)",
        vec![
            ("lambda".to_string(), lambda),
            (
                "overhead_mean".to_string(),
                gsched_scenario::registry::OVERHEAD_MEAN,
            ),
            (
                "quantum_stages".to_string(),
                scenario.param("quantum_stages").unwrap_or(2.0),
            ),
        ],
        &results,
        checks,
    );
    let ok = report_checks(&record.shape_checks);
    save_record(&record).expect("write results json");
    if !ok {
        eprintln!("{id}: some shape checks FAILED");
        std::process::exit(1);
    }
    eprintln!("{id}: all shape checks passed");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn diag_env_values() {
        for on in ["1", "true", "yes", "json", " verbose "] {
            assert!(diag_value_enables(on), "{on:?} should enable");
        }
        for off in ["", "0", "false", "off", "FALSE", "Off", " 0 "] {
            assert!(!diag_value_enables(off), "{off:?} should disable");
        }
    }

    #[test]
    fn u_shape_detected() {
        let x = [0.1, 0.5, 1.0, 2.0, 4.0];
        let y = [10.0, 4.0, 3.0, 5.0, 8.0];
        assert_eq!(u_shape_knee(&x, &y), Some(1.0));
    }

    #[test]
    fn u_shape_rejects_monotone() {
        let x = [1.0, 2.0, 3.0];
        assert_eq!(u_shape_knee(&x, &[3.0, 2.0, 1.0]), None);
        assert_eq!(u_shape_knee(&x, &[1.0, 2.0, 3.0]), None);
    }

    #[test]
    fn u_shape_ignores_nan_points() {
        let x = [0.1, 0.5, 1.0, 2.0, 4.0];
        let y = [10.0, f64::NAN, 3.0, 5.0, 8.0];
        assert_eq!(u_shape_knee(&x, &y), Some(1.0));
    }

    #[test]
    fn monotone_check() {
        assert!(is_monotone_decreasing(&[5.0, 4.0, 4.0, 1.0], 0.0));
        assert!(!is_monotone_decreasing(&[5.0, 6.0, 4.0], 0.0));
        // Small wiggle tolerated with slack.
        assert!(is_monotone_decreasing(&[5.0, 5.01, 4.0], 0.01));
    }

    #[test]
    fn sweep_runs_tiny_grid() {
        use gsched_core::solver::SolverOptions;
        use gsched_workload::figures::quantum_sweep_request;
        let pts = quantum_sweep_request(0.3, 2, &[0.5, 1.0]).points;
        let res = run_sweep(&pts, &SolverOptions::default());
        assert_eq!(res.len(), 2);
        for r in &res {
            assert_eq!(r.n.len(), 4);
            assert!(r.n.iter().all(|v| v.is_finite() && *v > 0.0));
        }
    }
}
