//! Developer utility: simulate one point of the paper's configuration.
//!
//! Usage: `debug_sim <lambda> <quantum_mean> [horizon]`

use gsched_sim::{GangPolicy, GangSim, SimConfig};
use gsched_workload::{paper_model, PaperConfig};

fn main() {
    let lam: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.4);
    let q: f64 = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1.0);
    let horizon: f64 = std::env::args()
        .nth(3)
        .and_then(|s| s.parse().ok())
        .unwrap_or(400_000.0);
    let model = paper_model(&PaperConfig {
        lambda: lam,
        quantum_mean: q,
        quantum_stages: 2,
        overhead_mean: 0.01,
    });
    let r = GangSim::new(
        &model,
        GangPolicy::SystemWide,
        SimConfig {
            horizon,
            warmup: horizon * 0.1,
            seed: 11,
            batches: 20,
        },
    )
    .run();
    let ns: Vec<String> = r
        .classes
        .iter()
        .map(|c| format!("{:.4}±{:.3}", c.mean_jobs, c.mean_jobs_ci95))
        .collect();
    println!(
        "q={q} N=[{}] util={:.3}",
        ns.join(", "),
        r.processor_utilization
    );
}
