//! §6 extension: the SP2 implementation variant.
//!
//! The paper's conclusion notes that the real SP2 scheduler deviates from
//! the analyzed model: "as soon as a partition becomes idle in a given
//! class, it switches to the next class, while other partitions of that
//! class may still be busy". This binary compares the analyzed policy
//! (system-wide switching) against that variant (idle processors lent to
//! later classes) by simulation on the paper's configuration.
//!
//! Run: `cargo run --release -p gsched-repro --bin sp2_variant`

use gsched_sim::{GangPolicy, GangSim, SimConfig};
use gsched_workload::figures::quantum_sweep_request;

fn main() {
    let quanta = [0.5, 1.0, 2.0, 4.0];
    let lambda = 0.6;
    let points = quantum_sweep_request(lambda, 2, &quanta).points;
    println!("quantum,policy,N0,N1,N2,N3,total_N,utilization");
    let mut improved = 0usize;
    let mut total = 0usize;
    for pt in &points {
        let mut totals = Vec::new();
        for (name, policy) in [
            ("system-wide", GangPolicy::SystemWide),
            ("per-partition", GangPolicy::PerPartition),
        ] {
            let r = GangSim::new(
                &pt.model,
                policy,
                SimConfig {
                    horizon: 300_000.0,
                    warmup: 30_000.0,
                    seed: 0xABCD,
                    batches: 20,
                },
            )
            .run();
            let ns: Vec<String> = r
                .classes
                .iter()
                .map(|c| format!("{:.3}", c.mean_jobs))
                .collect();
            let tn: f64 = r.classes.iter().map(|c| c.mean_jobs).sum();
            totals.push(tn);
            println!(
                "{:.1},{name},{},{tn:.3},{:.3}",
                pt.x,
                ns.join(","),
                r.processor_utilization
            );
        }
        total += 1;
        if totals[1] <= totals[0] {
            improved += 1;
        }
    }
    eprintln!(
        "sp2_variant: per-partition lending reduced (or matched) total population at {improved}/{total} points"
    );
    // The variant reclaims idle time, so it should win at most points —
    // especially at long quanta where system-wide switching idles partitions.
    if improved * 2 < total {
        eprintln!("sp2_variant: unexpected — lending lost at most points");
        std::process::exit(1);
    }
}
