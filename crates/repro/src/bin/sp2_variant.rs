//! §6 extension: the SP2 implementation variant.
//!
//! The paper's conclusion notes that the real SP2 scheduler deviates from
//! the analyzed model: "as soon as a partition becomes idle in a given
//! class, it switches to the next class, while other partitions of that
//! class may still be busy". This binary compares the analyzed policy
//! (system-wide switching) against that variant (idle processors lent to
//! later classes) by simulation on the registry scenario `sp2` — the same
//! machine, grid, and simulation config `gsched validate sp2` describes.
//!
//! Run: `cargo run --release -p gsched-repro --bin sp2_variant`

use gsched_scenario::registry;
use gsched_sim::{simulate, Policy};

fn main() {
    let scenario = registry::lookup("sp2").expect("sp2 is registered");
    // Longer horizon than cross-validation runs use, for tight CIs.
    let cfg = scenario.sim_config(2.0);
    let grid = scenario.grid(false).to_vec();
    println!("quantum,policy,N0,N1,N2,N3,total_N,utilization");
    let mut improved = 0usize;
    let mut total = 0usize;
    for &q in &grid {
        let model = scenario.model_at(q).expect("sp2 grid points build");
        let mut totals = Vec::new();
        for (name, policy) in [
            ("system-wide", Policy::Gang),
            ("per-partition", Policy::Lend),
        ] {
            let r = simulate(&model, policy, cfg.clone());
            let ns: Vec<String> = r
                .classes
                .iter()
                .map(|c| format!("{:.3}", c.mean_jobs))
                .collect();
            let tn: f64 = r.classes.iter().map(|c| c.mean_jobs).sum();
            totals.push(tn);
            println!(
                "{q:.1},{name},{},{tn:.3},{:.3}",
                ns.join(","),
                r.processor_utilization
            );
        }
        total += 1;
        if totals[1] <= totals[0] {
            improved += 1;
        }
    }
    eprintln!(
        "sp2_variant: per-partition lending reduced (or matched) total population at {improved}/{total} points"
    );
    // The variant reclaims idle time, so it should win at most points —
    // especially at long quanta where system-wide switching idles partitions.
    if improved * 2 < total {
        eprintln!("sp2_variant: unexpected — lending lost at most points");
        std::process::exit(1);
    }
}
