//! Figure 5: mean number of jobs `N_p` versus the fraction of the
//! timeplexing cycle's quantum budget devoted to class `p`, at `λ_p = 0.6`
//! (`ρ = 0.6`).
//!
//! Paper's shape: for every class, `N_p` decreases monotonically as that
//! class's share of the cycle grows. (The paper fixes a cycle length; we fix
//! a total quantum budget of 4 and note results are similar for any
//! specified cycle length, as the paper states.)
//!
//! The class-0 sweep is the registry scenario `fig5` (see
//! `gsched_scenario`); the other classes reuse the same cycle-fraction
//! family with the focal class changed.
//!
//! Run: `cargo run --release -p gsched-repro --bin fig5`

use gsched_engine::SweepOptions;
use gsched_repro::{
    init_diagnostics, is_monotone_decreasing, print_csv, report_checks, run_request, save_record,
    SweepResult,
};
use gsched_scenario::registry;
use gsched_workload::spec::{ExperimentRecord, Series, ShapeCheck};

fn main() {
    init_diagnostics();
    let base = registry::lookup("fig5").expect("fig5 is registered");
    let budget = base.param("budget").expect("fig5 carries a budget param");
    let stages = base.param("quantum_stages").unwrap_or(2.0) as usize;
    let grid = base.grid(false).to_vec();
    let mut series = Vec::new();
    let mut checks = Vec::new();
    let mut per_class_results: Vec<Vec<SweepResult>> = Vec::new();

    for class in 0..4 {
        eprintln!("fig5: sweeping class {class}'s cycle fraction");
        let scenario = if class == 0 {
            base.clone()
        } else {
            registry::cycle_fraction_scenario(
                &format!("fig5_class{class}"),
                class,
                budget,
                stages,
                grid.clone(),
                None,
            )
        };
        let request = scenario
            .sweep_request(false)
            .expect("registry grids are valid");
        let results = run_request(&request, &SweepOptions::default());
        // The plotted curve is the focal class's own N.
        let x: Vec<f64> = results.iter().map(|r| r.x).collect();
        let y: Vec<f64> = results.iter().map(|r| r.n[class]).collect();
        checks.push(ShapeCheck {
            name: format!("class {class}'s N decreases in its own fraction"),
            passed: is_monotone_decreasing(&y, 0.02),
            detail: format!(
                "N from {:.3} at f={:.1} to {:.3} at f={:.1}",
                y.first().copied().unwrap_or(f64::NAN),
                x.first().copied().unwrap_or(f64::NAN),
                y.last().copied().unwrap_or(f64::NAN),
                x.last().copied().unwrap_or(f64::NAN)
            ),
        });
        series.push(Series {
            label: format!("class {class}"),
            x,
            y,
        });
        per_class_results.push(results);
    }

    // CSV: fraction, then each class's own-N column.
    println!("fraction,class0,class1,class2,class3");
    for (i, &f) in grid.iter().enumerate() {
        let vals: Vec<String> = (0..4)
            .map(|c| format!("{:.6}", per_class_results[c][i].n[c]))
            .collect();
        println!("{f:.2},{}", vals.join(","));
    }
    // Also echo via the shared printer for the class-0 sweep (full detail).
    eprintln!("fig5: full class-0 sweep detail:");
    print_csv("fraction(class0 sweep)", &per_class_results[0]);

    let record = ExperimentRecord {
        id: "fig5".to_string(),
        description: "Mean jobs vs fraction of timeplexing cycle (paper Fig. 5)".to_string(),
        parameters: vec![
            ("lambda".to_string(), base.param("lambda").unwrap_or(0.6)),
            ("quantum_budget".to_string(), budget),
            ("overhead_mean".to_string(), registry::OVERHEAD_MEAN),
        ],
        series,
        shape_checks: checks,
    };
    let ok = report_checks(&record.shape_checks);
    save_record(&record).expect("write results json");
    if !ok {
        eprintln!("fig5: some shape checks FAILED");
        std::process::exit(1);
    }
    eprintln!("fig5: all shape checks passed");
}
