//! Figure 2: mean number of jobs `N_p` versus mean quantum length `1/γ`
//! for the 8-processor system at utilization `ρ = 0.4` (`λ_p = 0.4`).
//!
//! The sweep is the registry scenario `fig2` (see `gsched_scenario`), the
//! same description `gsched sweep fig2` and `gsched xval fig2` run.
//!
//! Paper's description of the shape: as quantum lengths grow from zero the
//! mean number of jobs first drops fast (context-switch overhead stops
//! dominating), reaches a knee, then rises monotonically (exhaustive-service
//! effect: long quanta hold mostly-idle partitions while other classes
//! queue). Class 0 (whole-machine jobs, slowest service) sits highest.
//!
//! Run: `cargo run --release -p gsched-repro --bin fig2`

fn main() {
    gsched_repro::run_quantum_figure("fig2", "fig2");
}
