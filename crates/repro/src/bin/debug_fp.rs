//! Developer utility: trace the fixed point on the paper's configuration.
//!
//! Usage: `debug_fp <lambda> <quantum_mean> [mode]` where mode is one of
//! `ht`, `m2` (default), `m3`, `exact`.

use gsched_core::solver::{solve, SolverOptions, VacationMode};
use gsched_workload::{paper_model, PaperConfig};

fn main() {
    let lam: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.9);
    let q: f64 = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.5);
    let mode = match std::env::args().nth(3).as_deref() {
        Some("ht") => VacationMode::HeavyTraffic,
        Some("m3") => VacationMode::MomentMatched { moments: 3 },
        Some("exact") => VacationMode::Exact,
        _ => VacationMode::MomentMatched { moments: 2 },
    };
    let model = paper_model(&PaperConfig {
        lambda: lam,
        quantum_mean: q,
        quantum_stages: 2,
        overhead_mean: 0.01,
    });
    let opts = SolverOptions::builder().mode(mode).build().unwrap();
    let recorder = gsched_obs::install_memory();
    let result = solve(&model, &opts);
    gsched_obs::uninstall();
    let snapshot = recorder.snapshot();
    for ev in snapshot.events_named("core.solver.fp_iteration") {
        let fields: Vec<String> = ev.fields.iter().map(|(k, v)| format!("{k}={v}")).collect();
        eprintln!("[fp] {}", fields.join(" "));
    }
    match result {
        Ok(sol) => {
            for (p, c) in sol.classes.iter().enumerate() {
                println!(
                    "class {p}: N={:.4} stable={} effq={:.4} skip={:.3}",
                    c.mean_jobs, c.stable, c.effective_quantum_mean, c.skip_probability
                );
            }
            println!("iters={} converged={}", sol.iterations, sol.converged);
            eprintln!("{}", snapshot.render());
        }
        Err(e) => println!("ERROR: {e}"),
    }
}
