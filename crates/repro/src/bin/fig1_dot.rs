//! Figure 1: the state-transition diagram of the class-`p` Markov chain in
//! the special case of Poisson arrivals, exponential service, exponential
//! context-switch overheads, a K-stage Erlang quantum, and 3 servers.
//!
//! Emits Graphviz DOT on stdout (render with `dot -Tsvg`). The diagram is
//! generated from the same generator matrices the solver uses, so it is a
//! faithful machine-drawn Figure 1.
//!
//! Run: `cargo run -p gsched-repro --bin fig1_dot > fig1.dot`

use gsched_core::dot::class_chain_dot;
use gsched_core::generator::build_class_chain;
use gsched_core::model::{ClassParams, GangModel};
use gsched_core::vacation::heavy_traffic_vacation;
use gsched_phase::{erlang, exponential};

fn main() {
    // 3 servers for the focal class (g=1 on P=3), one competing class, as in
    // the paper's figure: j^A = 1 phase, j^B = 1 phase, m_C = 1, M_p = K.
    let k = 3;
    let model = GangModel::new(
        3,
        vec![
            ClassParams {
                partition_size: 1,
                arrival: exponential(0.5),
                service: exponential(1.0),
                quantum: erlang(k, 1.0),
                switch_overhead: exponential(100.0),
            },
            ClassParams {
                partition_size: 3,
                arrival: exponential(0.2),
                service: exponential(1.0),
                quantum: erlang(k, 1.0),
                switch_overhead: exponential(100.0),
            },
        ],
    )
    .expect("figure-1 parameters are valid");
    let vacation = heavy_traffic_vacation(&model, 0);
    let chain = build_class_chain(&model, 0, &vacation).expect("chain builds");
    eprintln!(
        "fig1: class-0 chain with c = {}, K = {k} quantum stages, vacation order {}",
        chain.space.c,
        vacation.order()
    );
    print!("{}", class_chain_dot(&chain, 5));
    eprintln!("fig1: DOT written to stdout (render with `dot -Tsvg`)");
}
