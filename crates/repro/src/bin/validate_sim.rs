//! Cross-validation: analytic solver vs discrete-event simulation on the
//! paper's Figure 2 configuration at several quantum lengths.
//!
//! For each point, the analysis (fixed-point, moment-matched vacations) and
//! the simulator (exact policy) must agree on each class's mean population
//! within the simulation's confidence interval plus a model-approximation
//! margin. The analysis treats each class's vacation as *independent* of the
//! class's own state — the paper's simplification (§4.3 footnote 2, with the
//! exact conditional treatment deferred to an extended version). Measured
//! here, that approximation is optimistic by 10–25% on the paper's ρ = 0.4
//! workload (it misses the positive correlation between a class's backlog
//! and the length of its vacations), while preserving every qualitative
//! shape; the tolerance below brackets that bias. Changing the vacation mode
//! (2-moment, 3-moment, exact truncated) moves the answer by < 0.1%, so the
//! gap is attributable to the independence assumption itself.
//!
//! Run: `cargo run --release -p gsched-repro --bin validate_sim`

use gsched_core::solver::{solve, SolverOptions};
use gsched_sim::{GangPolicy, GangSim, SimConfig};
use gsched_workload::figures::quantum_sweep_request;

fn main() {
    let quanta = [0.5, 1.0, 2.0, 4.0];
    let lambda = 0.4;
    let points = quantum_sweep_request(lambda, 2, &quanta).points;
    println!("quantum,class,analytic_N,sim_N,sim_ci95,rel_gap");
    let mut worst: f64 = 0.0;
    let mut failures = 0;
    for pt in &points {
        let ana = solve(&pt.model, &SolverOptions::default()).expect("analysis solves");
        let sim = GangSim::new(
            &pt.model,
            GangPolicy::SystemWide,
            SimConfig {
                horizon: 400_000.0,
                warmup: 40_000.0,
                seed: 0xFEED + (pt.x * 100.0) as u64,
                batches: 20,
            },
        )
        .run();
        for p in 0..4 {
            let a = ana.classes[p].mean_jobs;
            let s = sim.classes[p].mean_jobs;
            let ci = sim.classes[p].mean_jobs_ci95;
            let gap = (a - s).abs() / s.max(1e-9);
            worst = worst.max(gap);
            // Tolerance: CI plus the documented ~25% independence-
            // approximation margin.
            let tol = (3.0 * ci / s.max(1e-9)) + 0.30;
            if gap > tol {
                failures += 1;
                eprintln!(
                    "MISMATCH q={} class {p}: analytic {a:.3} vs sim {s:.3} (gap {gap:.3}, tol {tol:.3})",
                    pt.x,
                );
            }
            println!("{:.2},{p},{a:.4},{s:.4},{ci:.4},{gap:.4}", pt.x);
        }
    }
    eprintln!("validate_sim: worst relative gap {worst:.3}");
    if failures > 0 {
        eprintln!("validate_sim: {failures} class-points outside tolerance");
        std::process::exit(1);
    }
    eprintln!("validate_sim: analysis and simulation agree at every point");
}
