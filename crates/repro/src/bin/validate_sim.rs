//! Cross-validation: analytic solver vs discrete-event simulation on the
//! registry scenario `fig2` (the paper's Figure 2 configuration) over its
//! full quantum grid — the same harness `gsched xval fig2` runs.
//!
//! For each point, the analysis (fixed-point, moment-matched vacations) and
//! the simulator (exact policy) must agree on each class's mean response
//! time within the simulation's confidence interval plus a
//! model-approximation margin declared by the scenario's tolerance. The
//! analysis treats each class's vacation as *independent* of the class's own
//! state — the paper's simplification (§4.3 footnote 2, with the exact
//! conditional treatment deferred to an extended version). Measured here,
//! that approximation is optimistic by 10–25% on the paper's ρ = 0.4
//! workload (it misses the positive correlation between a class's backlog
//! and the length of its vacations), while preserving every qualitative
//! shape; the scenario tolerance brackets that bias. Changing the vacation
//! mode (2-moment, 3-moment, exact truncated) moves the answer by < 0.1%,
//! so the gap is attributable to the independence assumption itself.
//!
//! Run: `cargo run --release -p gsched-repro --bin validate_sim`

use gsched_core::solver::SolverOptions;
use gsched_scenario::{cross_validate, registry, XvalOptions};

fn main() {
    let scenario = registry::lookup("fig2").expect("fig2 is registered");
    let report = cross_validate(
        &scenario,
        &XvalOptions {
            solver: SolverOptions::default(),
            max_points: 0, // the whole grid
            quick: true,
            horizon_scale: 2.0, // longer runs than the default xval for tight CIs
        },
    )
    .expect("fig2 cross-validates");

    println!("quantum,class,analytic_T,sim_T,sim_ci95,gap,tolerance,pass");
    let mut worst: f64 = 0.0;
    for pt in &report.points {
        if pt.skipped_unstable {
            continue;
        }
        let x = pt.x.expect("fig2 is a sweep scenario");
        for row in &pt.rows {
            worst = worst.max(row.gap / row.simulated.max(1e-9));
            println!(
                "{x:.2},{},{:.4},{:.4},{:.4},{:.4},{:.4},{}",
                row.class,
                row.analytic,
                row.simulated,
                row.sim_ci95,
                row.gap,
                row.tolerance,
                row.pass
            );
        }
    }
    let failures = report.failures();
    for row in &failures {
        eprintln!(
            "MISMATCH class {}: analytic {:.3} vs sim {:.3} (gap {:.3}, tol {:.3})",
            row.class, row.analytic, row.simulated, row.gap, row.tolerance
        );
    }
    eprintln!("validate_sim: worst relative gap {worst:.3}");
    if !report.passed() {
        eprintln!(
            "validate_sim: {} class-points outside tolerance",
            failures.len()
        );
        std::process::exit(1);
    }
    eprintln!("validate_sim: analysis and simulation agree at every point");
}
