//! Ablation study over the solver's design choices (documented in
//! DESIGN.md), run on the registry scenario `ablation` (λ = 0.5,
//! quantum mean 1):
//!
//! 1. **Vacation mode** — heavy-traffic only (Thm 4.1) vs fixed point with
//!    2-moment compression vs 3-moment compression vs the exact truncated
//!    absorbed chain (Thm 4.3). Shows how much the fixed point matters and
//!    how little the compression order does.
//! 2. **Erlang stage count K** of the quantum distribution — the paper's
//!    figures leave K unspecified; this quantifies the sensitivity.
//! 3. **Fixed-point tolerance** — iterations vs accuracy.
//!
//! Run: `cargo run --release -p gsched-repro --bin ablation`

use gsched_core::solver::{solve, SolverOptions, VacationMode};
use gsched_scenario::{registry, DistSpec};

fn main() {
    let scenario = registry::lookup("ablation").expect("ablation is registered");
    let model = scenario.build_model().expect("ablation scenario builds");

    println!("# Ablation 1: vacation mode (lambda=0.5, quantum=1)");
    println!("mode,N0,N1,N2,N3,iterations");
    let modes: Vec<(&str, VacationMode)> = vec![
        ("heavy-traffic", VacationMode::HeavyTraffic),
        ("moment-2", VacationMode::MomentMatched { moments: 2 }),
        ("moment-3", VacationMode::MomentMatched { moments: 3 }),
        ("exact-truncated", VacationMode::Exact),
    ];
    for (name, mode) in modes {
        let opts = SolverOptions::builder().mode(mode).build().unwrap();
        match solve(&model, &opts) {
            Ok(sol) => {
                let ns: Vec<String> = sol
                    .classes
                    .iter()
                    .map(|c| format!("{:.4}", c.mean_jobs))
                    .collect();
                println!("{name},{},{}", ns.join(","), sol.iterations);
            }
            Err(e) => println!("{name},error: {e}"),
        }
    }

    println!("\n# Ablation 2: quantum Erlang stage count K (lambda=0.5, quantum=1)");
    println!("K,N0,N1,N2,N3");
    for k in [1usize, 2, 4, 8] {
        // `DistSpec::Erlang { stages, rate }` has overall mean 1/rate, so
        // rate 1 keeps the quantum mean at 1 while varying the stage count.
        let mut spec = scenario.machine.clone();
        for class in &mut spec.classes {
            class.quantum = DistSpec::Erlang {
                stages: k,
                rate: 1.0,
            };
        }
        let model = spec.build().expect("stage-count variant builds");
        match solve(&model, &SolverOptions::default()) {
            Ok(sol) => {
                let ns: Vec<String> = sol
                    .classes
                    .iter()
                    .map(|c| format!("{:.4}", c.mean_jobs))
                    .collect();
                println!("{k},{}", ns.join(","));
            }
            Err(e) => println!("{k},error: {e}"),
        }
    }

    println!("\n# Ablation 3: fixed-point tolerance (lambda=0.5, quantum=1)");
    println!("tol,N0,iterations");
    for tol in [1e-2, 1e-4, 1e-6, 1e-8] {
        let opts = SolverOptions::builder().fp_tol(tol).build().unwrap();
        match solve(&model, &opts) {
            Ok(sol) => println!(
                "{tol:.0e},{:.6},{}",
                sol.classes[0].mean_jobs, sol.iterations
            ),
            Err(e) => println!("{tol:.0e},error: {e}"),
        }
    }
}
