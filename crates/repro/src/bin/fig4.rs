//! Figure 4: mean number of jobs versus mean service rate `μ` (common to
//! all classes), quantum mean 5, `λ_p = 0.6`.
//!
//! Paper's shape: the mean number of jobs drops dramatically as the service
//! rate starts increasing, then the rate of decrease becomes very low —
//! diminishing returns past a point.
//!
//! The sweep is the registry scenario `fig4` (see `gsched_scenario`), the
//! same description `gsched sweep fig4` and `gsched xval fig4` run.
//!
//! Run: `cargo run --release -p gsched-repro --bin fig4`

use gsched_engine::SweepOptions;
use gsched_repro::{
    class_series, init_diagnostics, is_monotone_decreasing, print_csv, record_from_sweep,
    report_checks, run_request, save_record,
};
use gsched_scenario::registry;
use gsched_workload::spec::ShapeCheck;

fn main() {
    init_diagnostics();
    let scenario = registry::lookup("fig4").expect("fig4 is registered");
    let request = scenario
        .sweep_request(false)
        .expect("registry grids are valid");
    eprintln!("fig4: service-rate sweep over {} points", request.len());
    let results = run_request(&request, &SweepOptions::default());
    print_csv("service_rate", &results);

    let mut checks = Vec::new();
    for p in 0..4 {
        let (_, y) = class_series(&results, p);
        checks.push(ShapeCheck {
            name: format!("class {p} decreases monotonically in μ"),
            passed: is_monotone_decreasing(&y, 0.01),
            detail: format!(
                "N from {:.3} to {:.3}",
                y.first().copied().unwrap_or(f64::NAN),
                y.last().copied().unwrap_or(f64::NAN)
            ),
        });
        // Diminishing returns: the drop over the first half of the grid
        // dominates the drop over the second half.
        let finite: Vec<f64> = y.iter().copied().filter(|v| v.is_finite()).collect();
        if finite.len() >= 4 {
            let mid = finite.len() / 2;
            let early_drop = finite[0] - finite[mid];
            let late_drop = finite[mid] - finite[finite.len() - 1];
            checks.push(ShapeCheck {
                name: format!("class {p} shows diminishing returns"),
                passed: early_drop > 2.0 * late_drop.max(0.0),
                detail: format!("early drop {early_drop:.3}, late drop {late_drop:.3}"),
            });
        }
    }

    let record = record_from_sweep(
        "fig4",
        "Mean jobs vs mean service rate (paper Fig. 4)",
        vec![
            (
                "lambda".to_string(),
                scenario.param("lambda").unwrap_or(0.6),
            ),
            (
                "quantum_mean".to_string(),
                scenario.param("quantum_mean").unwrap_or(5.0),
            ),
            ("overhead_mean".to_string(), registry::OVERHEAD_MEAN),
        ],
        &results,
        checks,
    );
    let ok = report_checks(&record.shape_checks);
    save_record(&record).expect("write results json");
    if !ok {
        eprintln!("fig4: some shape checks FAILED");
        std::process::exit(1);
    }
    eprintln!("fig4: all shape checks passed");
}
