//! Figure 3: same quantum sweep as Figure 2 at heavy load `ρ = 0.9`
//! (`λ_p = 0.9`). The paper notes the knees move closer together and the
//! rise past the knee steepens as load grows.
//!
//! The sweep is the registry scenario `fig3_heavy` (the `fig3` registry
//! entry keeps the paper's ρ = 0.6 operating point for cross-validation;
//! this binary reproduces the figure's heavy-load curve). The record is
//! still written under the figure's id, `results/fig3.json`.
//!
//! Run: `cargo run --release -p gsched-repro --bin fig3`

fn main() {
    gsched_repro::run_quantum_figure("fig3", "fig3_heavy");
}
