//! Figure 3: same quantum sweep as Figure 2 at heavy load `ρ = 0.9`
//! (`λ_p = 0.9`). The paper notes the knees move closer together and the
//! rise past the knee steepens as load grows.
//!
//! Run: `cargo run --release -p gsched-repro --bin fig3`

fn main() {
    gsched_repro::run_quantum_figure("fig3", 0.9);
}
