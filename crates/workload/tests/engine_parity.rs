//! Determinism and warm-start accuracy of the engine pool on the paper's
//! figure grids (the `--quick` variants, to keep debug-mode runs cheap).
//!
//! * Parallel sweeps must be bitwise identical to sequential ones: the
//!   chunk layout — and therefore every warm-start chain — depends only on
//!   the point count, never on the worker count.
//! * Warm-started solves must land on the cold-start fixed point: warm
//!   starting changes the iteration path, not the answer, so the results
//!   may differ only within the solver's fixed-point tolerance.

use gsched_engine::{run_sweep, SweepOptions, SweepReport};
use gsched_workload::figures::Figure;

fn response_bits(report: &SweepReport, classes: usize) -> Vec<Vec<u64>> {
    report
        .points
        .iter()
        .map(|p| {
            p.mean_responses(classes)
                .into_iter()
                .map(f64::to_bits)
                .collect()
        })
        .collect()
}

#[test]
fn parallel_sweeps_match_sequential_bitwise() {
    for fig in Figure::ALL {
        let req = fig.request(true);
        let classes = req.points[0].model.num_classes();
        let seq = run_sweep(&req, &SweepOptions::default().with_jobs(1));
        let par = run_sweep(&req, &SweepOptions::default().with_jobs(3));
        assert_eq!(seq.failures(), 0, "{} sequential", fig.name());
        assert_eq!(par.failures(), 0, "{} parallel", fig.name());
        assert_eq!(
            response_bits(&seq, classes),
            response_bits(&par, classes),
            "{}: parallel sweep diverged from sequential",
            fig.name()
        );
        assert_eq!(seq.stats.warm_hits, par.stats.warm_hits, "{}", fig.name());
    }
}

#[test]
fn warm_starts_converge_to_cold_answers() {
    // Fig2 exercises the quantum axis (the warmest chains), Fig4 the
    // service-rate axis; together they cover both sweep shapes cheaply.
    for fig in [Figure::Fig2, Figure::Fig4] {
        let req = fig.request(true);
        let classes = req.points[0].model.num_classes();
        let warm = run_sweep(&req, &SweepOptions::default().with_jobs(1));
        let cold = run_sweep(
            &req,
            &SweepOptions::default().with_jobs(1).with_warm_start(false),
        );
        // Fig4's quick grid is 2 points (1 cold + 1 warm = exactly 50%);
        // longer grids exceed it.
        let min_rate = if req.len() > 2 { 0.5 } else { 0.49 };
        assert!(
            warm.stats.warm_hit_rate() >= min_rate,
            "{}: hit rate {}",
            fig.name(),
            warm.stats.warm_hit_rate()
        );
        assert_eq!(cold.stats.warm_hits, 0);
        for (w, c) in warm.points.iter().zip(cold.points.iter()) {
            for (rw, rc) in w
                .mean_responses(classes)
                .iter()
                .zip(c.mean_responses(classes).iter())
            {
                let rel = (rw - rc).abs() / rc.abs().max(1e-12);
                assert!(
                    rel < 1e-3,
                    "{} x={}: warm {rw} vs cold {rc} (rel {rel:.3e})",
                    fig.name(),
                    w.x
                );
            }
        }
    }
}
