//! Parameter sweeps behind each figure of the paper's §5.

use crate::{paper_model, paper_model_custom, paper_service_rates, PaperConfig, OVERHEAD_MEAN};
use gsched_core::model::GangModel;

/// One point of a figure sweep: the swept x-value and the model to solve.
#[derive(Debug, Clone)]
pub struct SweepPoint {
    /// The x-axis value as plotted in the paper.
    pub x: f64,
    /// The model at this point.
    pub model: GangModel,
}

/// Figure 2 (and Figure 3): mean jobs vs mean quantum length `1/γ` at a
/// given utilization (`ρ = λ`). The paper sweeps quantum lengths up to 6.
pub fn quantum_sweep(lambda: f64, quantum_stages: usize, points: &[f64]) -> Vec<SweepPoint> {
    points
        .iter()
        .map(|&q| SweepPoint {
            x: q,
            model: paper_model(&PaperConfig {
                lambda,
                quantum_mean: q,
                quantum_stages,
                overhead_mean: OVERHEAD_MEAN,
            }),
        })
        .collect()
}

/// The default x-grid for Figures 2–3 (0.02 … 6).
pub fn default_quantum_grid() -> Vec<f64> {
    let mut g = vec![0.02, 0.05, 0.1, 0.2, 0.35, 0.5, 0.75];
    for i in 2..=12 {
        g.push(i as f64 * 0.5);
    }
    g
}

/// Figure 4: mean jobs vs common service rate `μ`, quantum mean 5, `λ = 0.6`.
pub fn service_rate_sweep(quantum_stages: usize, rates: &[f64]) -> Vec<SweepPoint> {
    rates
        .iter()
        .map(|&mu| SweepPoint {
            x: mu,
            model: paper_model_custom(
                0.6,
                &[mu, mu, mu, mu],
                &[5.0, 5.0, 5.0, 5.0],
                quantum_stages,
                OVERHEAD_MEAN,
            ),
        })
        .collect()
}

/// The default x-grid for Figure 4 (2 … 20).
pub fn default_service_rate_grid() -> Vec<f64> {
    (1..=10).map(|i| 2.0 * i as f64).collect()
}

/// Figure 5: mean jobs of class `class` vs the fraction of the timeplexing
/// cycle's quantum budget devoted to that class. `λ = 0.6` (so `ρ = 0.6`
/// under the normalized rates), total quantum budget `budget` split as
/// `f · budget` for the focal class and `(1−f)·budget/3` for each other.
pub fn cycle_fraction_sweep(
    class: usize,
    budget: f64,
    quantum_stages: usize,
    fractions: &[f64],
) -> Vec<SweepPoint> {
    let mus = paper_service_rates();
    fractions
        .iter()
        .map(|&f| {
            let mut quanta = [0.0; 4];
            for (p, q) in quanta.iter_mut().enumerate() {
                *q = if p == class {
                    f * budget
                } else {
                    (1.0 - f) * budget / 3.0
                };
            }
            SweepPoint {
                x: f,
                model: paper_model_custom(0.6, &mus, &quanta, quantum_stages, OVERHEAD_MEAN),
            }
        })
        .collect()
}

/// The default fraction grid for Figure 5 (0.1 … 0.9).
pub fn default_fraction_grid() -> Vec<f64> {
    (1..=9).map(|i| i as f64 / 10.0).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantum_sweep_sets_quantum() {
        let pts = quantum_sweep(0.4, 2, &[0.5, 1.0, 2.0]);
        assert_eq!(pts.len(), 3);
        for pt in &pts {
            for p in 0..4 {
                assert!((pt.model.class(p).quantum.mean() - pt.x).abs() < 1e-9);
            }
            assert!((pt.model.total_utilization() - 0.4).abs() < 1e-12);
        }
    }

    #[test]
    fn service_sweep_sets_common_mu() {
        let pts = service_rate_sweep(2, &[2.0, 10.0]);
        for pt in &pts {
            for p in 0..4 {
                assert!((pt.model.class(p).service_rate() - pt.x).abs() < 1e-9);
                assert!((pt.model.class(p).quantum.mean() - 5.0).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn fraction_sweep_budget_conserved() {
        let budget = 4.0;
        let pts = cycle_fraction_sweep(1, budget, 2, &[0.25, 0.5, 0.75]);
        for pt in &pts {
            let total: f64 = (0..4).map(|p| pt.model.class(p).quantum.mean()).sum();
            assert!((total - budget).abs() < 1e-9, "total {total}");
            assert!((pt.model.class(1).quantum.mean() - pt.x * budget).abs() < 1e-9);
        }
    }

    #[test]
    fn default_grids_are_monotone() {
        for grid in [
            default_quantum_grid(),
            default_service_rate_grid(),
            default_fraction_grid(),
        ] {
            for w in grid.windows(2) {
                assert!(w[0] < w[1]);
            }
        }
    }
}
