//! Parameter sweeps behind each figure of the paper's §5, expressed as
//! typed [`SweepRequest`]s for the `gsched-engine` evaluation pool.
//!
//! The sweeps themselves are defined once in the scenario registry
//! (`gsched_scenario::registry`); this module keeps the figure-facing API —
//! the [`Figure`] catalog and the `*_sweep_request` builders — as thin
//! views over those registry entries. [`SweepPoint`], [`SweepRequest`] and
//! friends are re-exported from `gsched_engine`, so downstream code can
//! keep importing them from this module.

use gsched_scenario::registry;

pub use gsched_engine::{ScenarioBase, SweepAxis, SweepPoint, SweepRequest};
pub use gsched_scenario::registry::{
    default_fraction_grid, default_quantum_grid, default_service_rate_grid,
};

/// Figure 2 (and Figure 3): mean jobs vs mean quantum length `1/γ` at a
/// given utilization (`ρ = λ`). The paper sweeps quantum lengths up to 6.
///
/// `points` must be positive and strictly increasing (it becomes a
/// scenario grid).
pub fn quantum_sweep_request(lambda: f64, quantum_stages: usize, points: &[f64]) -> SweepRequest {
    registry::quantum_scenario(
        "quantum_sweep",
        lambda,
        quantum_stages,
        points.to_vec(),
        None,
    )
    .sweep_request(false)
    .expect("quantum sweep grid is valid")
}

/// Figure 4: mean jobs vs common service rate `μ`, quantum mean 5, `λ = 0.6`.
pub fn service_rate_sweep_request(quantum_stages: usize, rates: &[f64]) -> SweepRequest {
    registry::service_rate_scenario("service_rate_sweep", quantum_stages, rates.to_vec(), None)
        .sweep_request(false)
        .expect("service-rate sweep grid is valid")
}

/// Figure 5: mean jobs of class `class` vs the fraction of the timeplexing
/// cycle's quantum budget devoted to that class. `λ = 0.6` (so `ρ = 0.6`
/// under the normalized rates), total quantum budget `budget` split as
/// `f · budget` for the focal class and `(1−f)·budget/(L−1)` for each
/// other.
pub fn cycle_fraction_sweep_request(
    class: usize,
    budget: f64,
    quantum_stages: usize,
    fractions: &[f64],
) -> SweepRequest {
    registry::cycle_fraction_scenario(
        "cycle_fraction_sweep",
        class,
        budget,
        quantum_stages,
        fractions.to_vec(),
        None,
    )
    .sweep_request(false)
    .expect("cycle-fraction sweep grid is valid")
}

/// The paper's figures as a canonical sweep catalog, shared by the figure
/// binaries, `gsched sweep`, and `gsched bench`. Each figure is a view
/// over the registry scenario of the same name.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Figure {
    /// Mean jobs vs quantum length at `ρ = 0.4`.
    Fig2,
    /// Mean jobs vs quantum length at `ρ = 0.6`.
    Fig3,
    /// Mean jobs vs common service rate at quantum mean 5.
    Fig4,
    /// Mean jobs vs the focal class's share of the cycle budget.
    Fig5,
}

impl Figure {
    /// All figures, in paper order.
    pub const ALL: [Figure; 4] = [Figure::Fig2, Figure::Fig3, Figure::Fig4, Figure::Fig5];

    /// Canonical lowercase name (`"fig2"` …), which is also the registry
    /// scenario name.
    pub fn name(&self) -> &'static str {
        match self {
            Figure::Fig2 => "fig2",
            Figure::Fig3 => "fig3",
            Figure::Fig4 => "fig4",
            Figure::Fig5 => "fig5",
        }
    }

    /// Parse a figure name as accepted by `gsched sweep`.
    pub fn from_name(name: &str) -> Option<Figure> {
        match name.to_ascii_lowercase().as_str() {
            "fig2" | "2" => Some(Figure::Fig2),
            "fig3" | "3" => Some(Figure::Fig3),
            "fig4" | "4" => Some(Figure::Fig4),
            "fig5" | "5" => Some(Figure::Fig5),
            _ => None,
        }
    }

    /// The registry scenario behind the figure.
    pub fn scenario(&self) -> gsched_scenario::Scenario {
        registry::lookup(self.name()).expect("figure scenarios are registered")
    }

    /// The canonical sweep behind the figure. `quick` selects a small grid
    /// for smoke tests and benches; the full grid matches the paper.
    pub fn request(&self, quick: bool) -> SweepRequest {
        self.scenario()
            .sweep_request(quick)
            .expect("figure grids are valid")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantum_request_sets_quantum() {
        let req = quantum_sweep_request(0.4, 2, &[0.5, 1.0, 2.0]);
        assert_eq!(req.len(), 3);
        assert_eq!(req.axis, SweepAxis::QuantumMean);
        assert!(req
            .base
            .params
            .iter()
            .any(|(k, v)| k == "lambda" && *v == 0.4));
        for pt in &req.points {
            for p in 0..4 {
                assert!((pt.model.class(p).quantum.mean() - pt.x).abs() < 1e-9);
            }
            assert!((pt.model.total_utilization() - 0.4).abs() < 1e-12);
        }
    }

    #[test]
    fn service_request_sets_common_mu() {
        let req = service_rate_sweep_request(2, &[2.0, 10.0]);
        assert_eq!(req.axis, SweepAxis::ServiceRate);
        for pt in &req.points {
            for p in 0..4 {
                assert!((pt.model.class(p).service_rate() - pt.x).abs() < 1e-9);
                assert!((pt.model.class(p).quantum.mean() - 5.0).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn fraction_request_budget_conserved() {
        let budget = 4.0;
        let req = cycle_fraction_sweep_request(1, budget, 2, &[0.25, 0.5, 0.75]);
        assert_eq!(req.axis, SweepAxis::CycleFraction { class: 1 });
        for pt in &req.points {
            let total: f64 = (0..4).map(|p| pt.model.class(p).quantum.mean()).sum();
            assert!((total - budget).abs() < 1e-9, "total {total}");
            assert!((pt.model.class(1).quantum.mean() - pt.x * budget).abs() < 1e-9);
        }
    }

    #[test]
    fn figure_catalog_is_consistent() {
        for fig in Figure::ALL {
            assert_eq!(Figure::from_name(fig.name()), Some(fig));
            assert_eq!(fig.scenario().name, fig.name());
            let quick = fig.request(true);
            let full = fig.request(false);
            assert_eq!(quick.base.label, fig.name());
            assert!(quick.len() >= 2);
            assert!(full.len() > quick.len());
            for req in [&quick, &full] {
                for w in req.points.windows(2) {
                    assert!(w[0].x < w[1].x, "points ordered along the axis");
                }
            }
        }
        assert_eq!(Figure::from_name("fig9"), None);
    }

    #[test]
    fn default_grids_are_monotone() {
        for grid in [
            default_quantum_grid(),
            default_service_rate_grid(),
            default_fraction_grid(),
        ] {
            for w in grid.windows(2) {
                assert!(w[0] < w[1]);
            }
        }
    }
}
