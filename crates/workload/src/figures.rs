//! Parameter sweeps behind each figure of the paper's §5, expressed as
//! typed [`SweepRequest`]s for the `gsched-engine` evaluation pool.
//!
//! [`SweepPoint`], [`SweepRequest`] and friends are re-exported from
//! `gsched_engine`, so downstream code can keep importing them from this
//! module. The old `Vec<SweepPoint>`-returning free functions remain as
//! thin deprecated wrappers for one release.

use crate::{paper_model, paper_model_custom, paper_service_rates, PaperConfig, OVERHEAD_MEAN};

pub use gsched_engine::{ScenarioBase, SweepAxis, SweepPoint, SweepRequest};

/// Figure 2 (and Figure 3): mean jobs vs mean quantum length `1/γ` at a
/// given utilization (`ρ = λ`). The paper sweeps quantum lengths up to 6.
pub fn quantum_sweep_request(lambda: f64, quantum_stages: usize, points: &[f64]) -> SweepRequest {
    let pts = points
        .iter()
        .map(|&q| SweepPoint {
            x: q,
            model: paper_model(&PaperConfig {
                lambda,
                quantum_mean: q,
                quantum_stages,
                overhead_mean: OVERHEAD_MEAN,
            }),
        })
        .collect();
    SweepRequest::new(
        SweepAxis::QuantumMean,
        ScenarioBase::labeled("quantum_sweep")
            .with_param("lambda", lambda)
            .with_param("quantum_stages", quantum_stages as f64),
        pts,
    )
}

/// Figure 4: mean jobs vs common service rate `μ`, quantum mean 5, `λ = 0.6`.
pub fn service_rate_sweep_request(quantum_stages: usize, rates: &[f64]) -> SweepRequest {
    let pts = rates
        .iter()
        .map(|&mu| SweepPoint {
            x: mu,
            model: paper_model_custom(
                0.6,
                &[mu, mu, mu, mu],
                &[5.0, 5.0, 5.0, 5.0],
                quantum_stages,
                OVERHEAD_MEAN,
            ),
        })
        .collect();
    SweepRequest::new(
        SweepAxis::ServiceRate,
        ScenarioBase::labeled("service_rate_sweep")
            .with_param("lambda", 0.6)
            .with_param("quantum_mean", 5.0)
            .with_param("quantum_stages", quantum_stages as f64),
        pts,
    )
}

/// Figure 5: mean jobs of class `class` vs the fraction of the timeplexing
/// cycle's quantum budget devoted to that class. `λ = 0.6` (so `ρ = 0.6`
/// under the normalized rates), total quantum budget `budget` split as
/// `f · budget` for the focal class and `(1−f)·budget/3` for each other.
pub fn cycle_fraction_sweep_request(
    class: usize,
    budget: f64,
    quantum_stages: usize,
    fractions: &[f64],
) -> SweepRequest {
    let mus = paper_service_rates();
    let pts = fractions
        .iter()
        .map(|&f| {
            let mut quanta = [0.0; 4];
            for (p, q) in quanta.iter_mut().enumerate() {
                *q = if p == class {
                    f * budget
                } else {
                    (1.0 - f) * budget / 3.0
                };
            }
            SweepPoint {
                x: f,
                model: paper_model_custom(0.6, &mus, &quanta, quantum_stages, OVERHEAD_MEAN),
            }
        })
        .collect();
    SweepRequest::new(
        SweepAxis::CycleFraction { class },
        ScenarioBase::labeled("cycle_fraction_sweep")
            .with_param("class", class as f64)
            .with_param("budget", budget)
            .with_param("quantum_stages", quantum_stages as f64),
        pts,
    )
}

/// The paper's figures as a canonical sweep catalog, shared by the figure
/// binaries, `gsched sweep`, and `gsched bench`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Figure {
    /// Mean jobs vs quantum length at `ρ = 0.4`.
    Fig2,
    /// Mean jobs vs quantum length at `ρ = 0.6`.
    Fig3,
    /// Mean jobs vs common service rate at quantum mean 5.
    Fig4,
    /// Mean jobs vs the focal class's share of the cycle budget.
    Fig5,
}

impl Figure {
    /// All figures, in paper order.
    pub const ALL: [Figure; 4] = [Figure::Fig2, Figure::Fig3, Figure::Fig4, Figure::Fig5];

    /// Canonical lowercase name (`"fig2"` …).
    pub fn name(&self) -> &'static str {
        match self {
            Figure::Fig2 => "fig2",
            Figure::Fig3 => "fig3",
            Figure::Fig4 => "fig4",
            Figure::Fig5 => "fig5",
        }
    }

    /// Parse a figure name as accepted by `gsched sweep`.
    pub fn from_name(name: &str) -> Option<Figure> {
        match name.to_ascii_lowercase().as_str() {
            "fig2" | "2" => Some(Figure::Fig2),
            "fig3" | "3" => Some(Figure::Fig3),
            "fig4" | "4" => Some(Figure::Fig4),
            "fig5" | "5" => Some(Figure::Fig5),
            _ => None,
        }
    }

    /// The canonical sweep behind the figure. `quick` selects a small grid
    /// for smoke tests and benches; the full grid matches the paper.
    pub fn request(&self, quick: bool) -> SweepRequest {
        let mut req = match self {
            Figure::Fig2 => quantum_sweep_request(0.4, 2, &Self::quantum_grid(quick)),
            Figure::Fig3 => quantum_sweep_request(0.6, 2, &Self::quantum_grid(quick)),
            Figure::Fig4 => {
                let grid: Vec<f64> = if quick {
                    vec![4.0, 10.0]
                } else {
                    default_service_rate_grid()
                };
                service_rate_sweep_request(2, &grid)
            }
            Figure::Fig5 => {
                let grid: Vec<f64> = if quick {
                    vec![0.25, 0.5, 0.75]
                } else {
                    default_fraction_grid()
                };
                cycle_fraction_sweep_request(0, 4.0, 2, &grid)
            }
        };
        req.base.label = self.name().to_string();
        req
    }

    fn quantum_grid(quick: bool) -> Vec<f64> {
        if quick {
            vec![0.5, 1.0, 2.0, 3.0, 4.0]
        } else {
            default_quantum_grid()
        }
    }
}

/// The default x-grid for Figures 2–3 (0.02 … 6).
pub fn default_quantum_grid() -> Vec<f64> {
    let mut g = vec![0.02, 0.05, 0.1, 0.2, 0.35, 0.5, 0.75];
    for i in 2..=12 {
        g.push(i as f64 * 0.5);
    }
    g
}

/// The default x-grid for Figure 4 (2 … 20).
pub fn default_service_rate_grid() -> Vec<f64> {
    (1..=10).map(|i| 2.0 * i as f64).collect()
}

/// The default fraction grid for Figure 5 (0.1 … 0.9).
pub fn default_fraction_grid() -> Vec<f64> {
    (1..=9).map(|i| i as f64 / 10.0).collect()
}

/// Deprecated point-list form of [`quantum_sweep_request`].
#[deprecated(since = "0.2.0", note = "use quantum_sweep_request or Figure::request")]
pub fn quantum_sweep(lambda: f64, quantum_stages: usize, points: &[f64]) -> Vec<SweepPoint> {
    quantum_sweep_request(lambda, quantum_stages, points).points
}

/// Deprecated point-list form of [`service_rate_sweep_request`].
#[deprecated(
    since = "0.2.0",
    note = "use service_rate_sweep_request or Figure::request"
)]
pub fn service_rate_sweep(quantum_stages: usize, rates: &[f64]) -> Vec<SweepPoint> {
    service_rate_sweep_request(quantum_stages, rates).points
}

/// Deprecated point-list form of [`cycle_fraction_sweep_request`].
#[deprecated(
    since = "0.2.0",
    note = "use cycle_fraction_sweep_request or Figure::request"
)]
pub fn cycle_fraction_sweep(
    class: usize,
    budget: f64,
    quantum_stages: usize,
    fractions: &[f64],
) -> Vec<SweepPoint> {
    cycle_fraction_sweep_request(class, budget, quantum_stages, fractions).points
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantum_request_sets_quantum() {
        let req = quantum_sweep_request(0.4, 2, &[0.5, 1.0, 2.0]);
        assert_eq!(req.len(), 3);
        assert_eq!(req.axis, SweepAxis::QuantumMean);
        assert!(req
            .base
            .params
            .iter()
            .any(|(k, v)| k == "lambda" && *v == 0.4));
        for pt in &req.points {
            for p in 0..4 {
                assert!((pt.model.class(p).quantum.mean() - pt.x).abs() < 1e-9);
            }
            assert!((pt.model.total_utilization() - 0.4).abs() < 1e-12);
        }
    }

    #[test]
    fn service_request_sets_common_mu() {
        let req = service_rate_sweep_request(2, &[2.0, 10.0]);
        assert_eq!(req.axis, SweepAxis::ServiceRate);
        for pt in &req.points {
            for p in 0..4 {
                assert!((pt.model.class(p).service_rate() - pt.x).abs() < 1e-9);
                assert!((pt.model.class(p).quantum.mean() - 5.0).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn fraction_request_budget_conserved() {
        let budget = 4.0;
        let req = cycle_fraction_sweep_request(1, budget, 2, &[0.25, 0.5, 0.75]);
        assert_eq!(req.axis, SweepAxis::CycleFraction { class: 1 });
        for pt in &req.points {
            let total: f64 = (0..4).map(|p| pt.model.class(p).quantum.mean()).sum();
            assert!((total - budget).abs() < 1e-9, "total {total}");
            assert!((pt.model.class(1).quantum.mean() - pt.x * budget).abs() < 1e-9);
        }
    }

    #[test]
    fn deprecated_wrappers_match_requests() {
        #[allow(deprecated)]
        let pts = quantum_sweep(0.4, 2, &[1.0, 2.0]);
        let req = quantum_sweep_request(0.4, 2, &[1.0, 2.0]);
        assert_eq!(pts.len(), req.points.len());
        for (a, b) in pts.iter().zip(req.points.iter()) {
            assert_eq!(a.x, b.x);
        }
    }

    #[test]
    fn figure_catalog_is_consistent() {
        for fig in Figure::ALL {
            assert_eq!(Figure::from_name(fig.name()), Some(fig));
            let quick = fig.request(true);
            let full = fig.request(false);
            assert_eq!(quick.base.label, fig.name());
            assert!(quick.len() >= 2);
            assert!(full.len() > quick.len());
            for req in [&quick, &full] {
                for w in req.points.windows(2) {
                    assert!(w[0].x < w[1].x, "points ordered along the axis");
                }
            }
        }
        assert_eq!(Figure::from_name("fig9"), None);
    }

    #[test]
    fn default_grids_are_monotone() {
        for grid in [
            default_quantum_grid(),
            default_service_rate_grid(),
            default_fraction_grid(),
        ] {
            for w in grid.windows(2) {
                assert!(w[0] < w[1]);
            }
        }
    }
}
