//! Workload scenarios for the SPAA 1996 evaluation (paper §5).
//!
//! The paper's experiments all use one machine configuration:
//!
//! * `P = 8` processors, `L = 4` classes;
//! * class `p` has `2^{3−p}` partitions, i.e. `g = [8, 4, 2, 1]`;
//! * service-rate ratios `μ₀:μ₁:μ₂:μ₃ = 0.5 : 1 : 2 : 4`, normalized so
//!   that with equal per-class arrival rates `λ_p = λ` the total offered
//!   utilization `ρ = Σ_p λ_p g(p)/(μ_p P)` equals `λ` — that is,
//!   `Σ_p g(p)/μ_p = P`, giving the base rates `μ_p = r_p · 21.25/8`;
//! * context-switch overhead mean `0.01`;
//! * Poisson arrivals, exponential service, Erlang quantum (Figure 1 shows a
//!   K-stage Erlang; the stage count is configurable here, default 2).
//!
//! [`figures`] builds the exact parameter sweeps behind Figures 2–5, and
//! [`spec`] provides serde-serializable experiment records used by the
//! reproduction binaries to log paper-vs-measured series.

pub mod figures;
pub mod spec;

use gsched_core::model::{ClassParams, GangModel};
use gsched_phase::{erlang, exponential};

// The machine constants live in the scenario IR crate (the single source
// of truth for experiment descriptions); re-exported here for the many
// consumers that address them through the workload crate.
pub use gsched_scenario::registry::{
    paper_service_rates, OVERHEAD_MEAN, PARTITION_SIZES, PROCESSORS, SERVICE_RATIOS,
};

/// Options for building the paper's machine.
#[derive(Debug, Clone)]
pub struct PaperConfig {
    /// Common per-class arrival rate `λ` (total utilization `ρ = λ` under
    /// the normalized service rates).
    pub lambda: f64,
    /// Mean quantum length `1/γ`, shared by all classes.
    pub quantum_mean: f64,
    /// Erlang stage count of the quantum distribution.
    pub quantum_stages: usize,
    /// Mean context-switch overhead `1/δ`.
    pub overhead_mean: f64,
}

impl Default for PaperConfig {
    fn default() -> Self {
        PaperConfig {
            lambda: 0.4,
            quantum_mean: 1.0,
            quantum_stages: 2,
            overhead_mean: OVERHEAD_MEAN,
        }
    }
}

/// Build the paper's 8-processor, 4-class model.
pub fn paper_model(cfg: &PaperConfig) -> GangModel {
    let mus = paper_service_rates();
    let classes = (0..4)
        .map(|p| ClassParams {
            partition_size: PARTITION_SIZES[p],
            arrival: exponential(cfg.lambda),
            service: exponential(mus[p]),
            quantum: erlang(cfg.quantum_stages, 1.0 / cfg.quantum_mean),
            switch_overhead: exponential(1.0 / cfg.overhead_mean),
        })
        .collect();
    GangModel::new(PROCESSORS, classes).expect("paper parameters are always valid")
}

/// Build the paper's machine with per-class quantum means (Figure 5) and/or
/// a common service rate override (Figure 4).
pub fn paper_model_custom(
    lambda: f64,
    service_rates: &[f64; 4],
    quantum_means: &[f64; 4],
    quantum_stages: usize,
    overhead_mean: f64,
) -> GangModel {
    let classes = (0..4)
        .map(|p| ClassParams {
            partition_size: PARTITION_SIZES[p],
            arrival: exponential(lambda),
            service: exponential(service_rates[p]),
            quantum: erlang(quantum_stages, 1.0 / quantum_means[p]),
            switch_overhead: exponential(1.0 / overhead_mean),
        })
        .collect();
    GangModel::new(PROCESSORS, classes).expect("paper parameters are always valid")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalization_makes_rho_equal_lambda() {
        for &lambda in &[0.2, 0.4, 0.6, 0.9] {
            let m = paper_model(&PaperConfig {
                lambda,
                ..Default::default()
            });
            assert!(
                (m.total_utilization() - lambda).abs() < 1e-12,
                "lambda={lambda}: rho={}",
                m.total_utilization()
            );
        }
    }

    #[test]
    fn service_rates_keep_ratios() {
        let mus = paper_service_rates();
        assert!((mus[1] / mus[0] - 2.0).abs() < 1e-12);
        assert!((mus[2] / mus[1] - 2.0).abs() < 1e-12);
        assert!((mus[3] / mus[2] - 2.0).abs() < 1e-12);
        // s = 21.25/8 = 2.65625; mu_0 = 0.5 s.
        assert!((mus[0] - 1.328125).abs() < 1e-12);
    }

    #[test]
    fn partitions_are_powers_of_two() {
        let m = paper_model(&PaperConfig::default());
        for p in 0..4 {
            assert_eq!(m.partitions(p), 1 << p, "class {p}");
        }
    }

    #[test]
    fn class_utilizations_decrease_with_index() {
        // With equal lambda, class 0 has by far the highest offered load.
        let m = paper_model(&PaperConfig::default());
        for p in 0..3 {
            assert!(m.class_utilization(p) > m.class_utilization(p + 1));
        }
    }

    #[test]
    fn custom_builder_round_trips() {
        let mus = paper_service_rates();
        let m = paper_model_custom(0.6, &mus, &[1.0, 2.0, 3.0, 4.0], 3, 0.02);
        assert_eq!(m.num_classes(), 4);
        assert!((m.class(2).quantum.mean() - 3.0).abs() < 1e-9);
        assert!((m.class(0).switch_overhead.mean() - 0.02).abs() < 1e-12);
    }
}
