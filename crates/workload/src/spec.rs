//! Serializable experiment records.
//!
//! The reproduction binaries write their measured series as JSON next to the
//! CSV they print, so EXPERIMENTS.md can reference a machine-readable
//! provenance trail.

use serde::{Deserialize, Error, Serialize, Value};

/// One measured series (one curve of a figure).
///
/// `y` values may be non-finite (an unstable sweep point reports `NaN`
/// mean jobs). Strict JSON has no encoding for those, so the hand-written
/// codec below maps any non-finite `y` to `null` on the wire and decodes
/// `null` back to `NaN`. The mapping is lossy for `±inf` (it comes back as
/// `NaN`), which is fine for plots: both mean "no finite measurement".
#[derive(Debug, Clone, PartialEq)]
pub struct Series {
    /// Curve label (e.g. `"class 0"`).
    pub label: String,
    /// X values.
    pub x: Vec<f64>,
    /// Y values (non-finite entries are serialized as `null`).
    pub y: Vec<f64>,
}

impl Serialize for Series {
    fn to_value(&self) -> Value {
        let y = self
            .y
            .iter()
            .map(|&v| {
                if v.is_finite() {
                    Value::Number(v)
                } else {
                    Value::Null
                }
            })
            .collect();
        Value::Object(vec![
            ("label".to_string(), self.label.to_value()),
            ("x".to_string(), self.x.to_value()),
            ("y".to_string(), Value::Array(y)),
        ])
    }
}

impl Deserialize for Series {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let label = value
            .get("label")
            .ok_or_else(|| Error::msg("Series: missing field `label`"))
            .and_then(String::from_value)?;
        let x = value
            .get("x")
            .ok_or_else(|| Error::msg("Series: missing field `x`"))
            .and_then(Vec::<f64>::from_value)?;
        let y = value
            .get("y")
            .and_then(Value::as_array)
            .ok_or_else(|| Error::msg("Series: missing array field `y`"))?
            .iter()
            .map(|v| {
                if v.is_null() {
                    Ok(f64::NAN)
                } else {
                    f64::from_value(v)
                }
            })
            .collect::<Result<Vec<f64>, Error>>()?;
        Ok(Series { label, x, y })
    }
}

/// A complete experiment record for one figure.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
pub struct ExperimentRecord {
    /// Experiment id, e.g. `"fig2"`.
    pub id: String,
    /// Human description.
    pub description: String,
    /// Fixed parameters, as `(name, value)` pairs.
    pub parameters: Vec<(String, f64)>,
    /// Measured series.
    pub series: Vec<Series>,
    /// Qualitative shape notes checked by the harness.
    pub shape_checks: Vec<ShapeCheck>,
}

/// A qualitative property of the measured curves, recorded with its outcome.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
pub struct ShapeCheck {
    /// What is being checked.
    pub name: String,
    /// Whether the measured data satisfies it.
    pub passed: bool,
    /// Supporting detail.
    pub detail: String,
}

impl ExperimentRecord {
    /// True iff every shape check passed.
    pub fn all_passed(&self) -> bool {
        self.shape_checks.iter().all(|c| c.passed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_roundtrip_semantics() {
        let rec = ExperimentRecord {
            id: "fig2".to_string(),
            description: "quantum sweep".to_string(),
            parameters: vec![("lambda".to_string(), 0.4)],
            series: vec![Series {
                label: "class 0".to_string(),
                x: vec![1.0, 2.0],
                y: vec![3.0, 4.0],
            }],
            shape_checks: vec![ShapeCheck {
                name: "u-shape".to_string(),
                passed: true,
                detail: "knee at 1.0".to_string(),
            }],
        };
        assert!(rec.all_passed());
        let copy = rec.clone();
        assert_eq!(copy, rec);
    }

    #[test]
    fn failed_check_detected() {
        let rec = ExperimentRecord {
            id: "x".into(),
            description: String::new(),
            parameters: vec![],
            series: vec![],
            shape_checks: vec![
                ShapeCheck {
                    name: "a".into(),
                    passed: true,
                    detail: String::new(),
                },
                ShapeCheck {
                    name: "b".into(),
                    passed: false,
                    detail: String::new(),
                },
            ],
        };
        assert!(!rec.all_passed());
    }

    #[test]
    fn series_encodes_non_finite_y_as_null() {
        let series = Series {
            label: "class 0".to_string(),
            x: vec![1.0, 2.0, 3.0, 4.0],
            y: vec![3.5, f64::NAN, f64::INFINITY, f64::NEG_INFINITY],
        };
        let json = serde_json::to_string(&series).expect("series encodes");
        assert!(!json.to_ascii_lowercase().contains("nan"), "json: {json}");
        assert!(!json.to_ascii_lowercase().contains("inf"), "json: {json}");
        assert_eq!(json.matches("null").count(), 3, "json: {json}");

        let back: Series = serde_json::from_str(&json).expect("series parses");
        assert_eq!(back.label, series.label);
        assert_eq!(back.x, series.x);
        assert_eq!(back.y[0], 3.5);
        // null decodes to NaN for every non-finite input (inf is lossy by
        // design: see the Series docs).
        assert!(back.y[1..].iter().all(|v| v.is_nan()), "y: {:?}", back.y);
    }

    #[test]
    fn series_finite_round_trip_is_exact() {
        let series = Series {
            label: "µ sweep".to_string(),
            x: vec![0.5, 1.5],
            y: vec![0.125, 2.75],
        };
        let json = serde_json::to_string(&series).expect("series encodes");
        let back: Series = serde_json::from_str(&json).expect("series parses");
        assert_eq!(back, series);
    }

    #[test]
    fn series_rejects_malformed_objects() {
        assert!(serde_json::from_str::<Series>(r#"{"label":"a","x":[]}"#).is_err());
        assert!(serde_json::from_str::<Series>(r#"{"label":"a","x":[],"y":1}"#).is_err());
        assert!(serde_json::from_str::<Series>(r#"{"x":[],"y":[]}"#).is_err());
    }
}
