//! Serializable experiment records.
//!
//! The reproduction binaries write their measured series as JSON next to the
//! CSV they print, so EXPERIMENTS.md can reference a machine-readable
//! provenance trail.

use serde::{Deserialize, Serialize};

/// One measured series (one curve of a figure).
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
pub struct Series {
    /// Curve label (e.g. `"class 0"`).
    pub label: String,
    /// X values.
    pub x: Vec<f64>,
    /// Y values (`NaN`/`inf` encoded as `null` by serde_json callers should
    /// map them before writing if strict JSON is required).
    pub y: Vec<f64>,
}

/// A complete experiment record for one figure.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
pub struct ExperimentRecord {
    /// Experiment id, e.g. `"fig2"`.
    pub id: String,
    /// Human description.
    pub description: String,
    /// Fixed parameters, as `(name, value)` pairs.
    pub parameters: Vec<(String, f64)>,
    /// Measured series.
    pub series: Vec<Series>,
    /// Qualitative shape notes checked by the harness.
    pub shape_checks: Vec<ShapeCheck>,
}

/// A qualitative property of the measured curves, recorded with its outcome.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
pub struct ShapeCheck {
    /// What is being checked.
    pub name: String,
    /// Whether the measured data satisfies it.
    pub passed: bool,
    /// Supporting detail.
    pub detail: String,
}

impl ExperimentRecord {
    /// True iff every shape check passed.
    pub fn all_passed(&self) -> bool {
        self.shape_checks.iter().all(|c| c.passed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_roundtrip_semantics() {
        let rec = ExperimentRecord {
            id: "fig2".to_string(),
            description: "quantum sweep".to_string(),
            parameters: vec![("lambda".to_string(), 0.4)],
            series: vec![Series {
                label: "class 0".to_string(),
                x: vec![1.0, 2.0],
                y: vec![3.0, 4.0],
            }],
            shape_checks: vec![ShapeCheck {
                name: "u-shape".to_string(),
                passed: true,
                detail: "knee at 1.0".to_string(),
            }],
        };
        assert!(rec.all_passed());
        let copy = rec.clone();
        assert_eq!(copy, rec);
    }

    #[test]
    fn failed_check_detected() {
        let rec = ExperimentRecord {
            id: "x".into(),
            description: String::new(),
            parameters: vec![],
            series: vec![],
            shape_checks: vec![
                ShapeCheck {
                    name: "a".into(),
                    passed: true,
                    detail: String::new(),
                },
                ShapeCheck {
                    name: "b".into(),
                    passed: false,
                    detail: String::new(),
                },
            ],
        };
        assert!(!rec.all_passed());
    }
}
