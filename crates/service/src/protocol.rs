//! Wire protocol: newline-delimited JSON frames.
//!
//! One request frame per line, one response frame per line, in order.
//! See the crate-level docs for the full frame reference. The `result`
//! field of an `ok` frame is always the **last** field, which lets
//! clients splice the served result out of the frame byte-for-byte
//! ([`extract_result`]) without a JSON round-trip that could perturb
//! number formatting.
//!
//! Two protocol versions share the wire. A request that carries
//! `"proto":2` is a v2 frame and is answered with a `"proto":2` response;
//! a request without the field is v1 and is answered with the original
//! frame layout, byte-for-byte what pre-v2 servers produced. Responses are
//! built through the typed [`Response`]/[`ResponseBody`] pair; the
//! [`ok_frame`]/[`error_frame`] free functions remain as v1-rendering
//! conveniences for CLI error output and tests.

use crate::render::json_str;
use gsched_scenario::Scenario;
use serde_json::Value;
use std::sync::Arc;

/// The newest protocol version this crate speaks.
pub const PROTO_VERSION: u8 = 2;

/// Operations a request frame may ask for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// Solve the scenario's base model (default).
    Solve,
    /// Evaluate the scenario's sweep on the engine pool.
    Sweep,
    /// Report server counters; no scenario required.
    Stats,
    /// Ask the server to shut down cleanly; no scenario required.
    Shutdown,
}

impl Op {
    /// The wire name of this operation.
    pub fn as_str(self) -> &'static str {
        match self {
            Op::Solve => "solve",
            Op::Sweep => "sweep",
            Op::Stats => "stats",
            Op::Shutdown => "shutdown",
        }
    }

    /// Parse a wire name.
    pub fn parse(s: &str) -> Option<Op> {
        match s {
            "solve" => Some(Op::Solve),
            "sweep" => Some(Op::Sweep),
            "stats" => Some(Op::Stats),
            "shutdown" => Some(Op::Shutdown),
            _ => None,
        }
    }
}

/// The scenario a request names: a registry name or an inline document.
#[derive(Debug, Clone)]
pub enum ScenarioRef {
    /// Resolve against the server's registry.
    Name(String),
    /// A full scenario document, already parsed and validated.
    Inline(Box<Scenario>),
}

/// A parsed request frame.
#[derive(Debug, Clone)]
pub struct Request {
    /// Protocol version of the frame: `1` when the `proto` field is absent,
    /// `2` when the client sent `"proto":2`. Responses answer in kind.
    pub proto: u8,
    /// Client-chosen correlation id, echoed back in the response.
    pub id: Option<String>,
    /// Requested operation.
    pub op: Op,
    /// The scenario to operate on (required for `solve`/`sweep`).
    pub scenario: Option<ScenarioRef>,
    /// For `sweep`: evaluate the reduced quick grid instead of the full one.
    pub quick: bool,
    /// Per-request deadline in milliseconds; `None` uses the server default.
    pub deadline_ms: Option<u64>,
}

/// Machine-readable error categories carried in error frames.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorKind {
    /// The frame was not valid JSON or missing required fields.
    BadRequest,
    /// A scenario name that the server's registry does not know.
    UnknownScenario,
    /// An inline scenario that failed schema validation.
    InvalidScenario,
    /// The solver rejected or failed on the model.
    SolveFailed,
    /// Validation or cross-validation reported failures (CLI `validate`
    /// and `xval`; the server itself never emits this kind).
    ValidationFailed,
    /// The request exceeded its deadline.
    DeadlineExceeded,
    /// The client disconnected (or the server dropped) before completion.
    Cancelled,
    /// The server is shutting down and not accepting work.
    ShuttingDown,
    /// Admission control shed the request: the job queue was full.
    Overloaded,
    /// An unexpected internal failure; the server itself survives.
    Internal,
}

impl ErrorKind {
    /// The wire name of this error kind.
    pub fn as_str(self) -> &'static str {
        match self {
            ErrorKind::BadRequest => "bad_request",
            ErrorKind::UnknownScenario => "unknown_scenario",
            ErrorKind::InvalidScenario => "invalid_scenario",
            ErrorKind::SolveFailed => "solve_failed",
            ErrorKind::ValidationFailed => "validation_failed",
            ErrorKind::DeadlineExceeded => "deadline_exceeded",
            ErrorKind::Cancelled => "cancelled",
            ErrorKind::ShuttingDown => "shutting_down",
            ErrorKind::Overloaded => "overloaded",
            ErrorKind::Internal => "internal",
        }
    }
}

/// A structured error: the payload of an error frame.
#[derive(Debug, Clone)]
pub struct ServiceError {
    /// Category for programmatic handling.
    pub kind: ErrorKind,
    /// Human-readable detail.
    pub message: String,
}

impl ServiceError {
    /// Build an error from its parts.
    pub fn new(kind: ErrorKind, message: impl Into<String>) -> Self {
        ServiceError {
            kind,
            message: message.into(),
        }
    }
}

/// Parse one request line into a [`Request`].
///
/// Inline scenarios are fully validated here, so by the time a request
/// reaches a worker its scenario is known-good.
pub fn parse_request(line: &str) -> Result<Request, ServiceError> {
    let bad = |m: String| ServiceError::new(ErrorKind::BadRequest, m);
    let value: Value =
        serde_json::from_str(line).map_err(|e| bad(format!("request is not valid JSON: {e}")))?;
    let obj = value
        .as_object()
        .ok_or_else(|| bad("request frame must be a JSON object".to_string()))?;
    for (key, _) in obj {
        if !matches!(
            key.as_str(),
            "proto" | "id" | "op" | "scenario" | "quick" | "deadline_ms"
        ) {
            return Err(bad(format!("unknown request field {key:?}")));
        }
    }
    let proto = match value.get("proto") {
        None => 1,
        Some(v) => match v.as_u64() {
            Some(p @ 1..=2) => p as u8,
            Some(p) => {
                return Err(bad(format!(
                    "unsupported proto {p} (this server speaks 1-2)"
                )))
            }
            None => return Err(bad(format!("proto must be an integer, got {}", v.kind()))),
        },
    };
    let id = match value.get("id") {
        None | Some(Value::Null) => None,
        Some(Value::String(s)) => Some(s.clone()),
        Some(other) => return Err(bad(format!("id must be a string, got {}", other.kind()))),
    };
    let op = match value.get("op") {
        None => Op::Solve,
        Some(Value::String(s)) => Op::parse(s).ok_or_else(|| bad(format!("unknown op {s:?}")))?,
        Some(other) => return Err(bad(format!("op must be a string, got {}", other.kind()))),
    };
    let scenario = match value.get("scenario") {
        None | Some(Value::Null) => None,
        Some(Value::String(name)) => Some(ScenarioRef::Name(name.clone())),
        Some(inline @ Value::Object(_)) => {
            let sc: Scenario = serde_json::from_value(inline.clone())
                .map_err(|e| ServiceError::new(ErrorKind::InvalidScenario, e.to_string()))?;
            sc.validate()
                .map_err(|e| ServiceError::new(ErrorKind::InvalidScenario, e.to_string()))?;
            Some(ScenarioRef::Inline(Box::new(sc)))
        }
        Some(other) => {
            return Err(bad(format!(
                "scenario must be a name or an object, got {}",
                other.kind()
            )))
        }
    };
    let quick = match value.get("quick") {
        None => false,
        Some(Value::Bool(b)) => *b,
        Some(other) => return Err(bad(format!("quick must be a bool, got {}", other.kind()))),
    };
    let deadline_ms = match value.get("deadline_ms") {
        None | Some(Value::Null) => None,
        Some(v) => Some(v.as_u64().ok_or_else(|| {
            bad(format!(
                "deadline_ms must be a non-negative integer, got {}",
                v.kind()
            ))
        })?),
    };
    if matches!(op, Op::Solve | Op::Sweep) && scenario.is_none() {
        return Err(bad(format!("op {:?} requires a scenario", op.as_str())));
    }
    Ok(Request {
        proto,
        id,
        op,
        scenario,
        quick,
        deadline_ms,
    })
}

fn id_field(id: Option<&str>) -> String {
    match id {
        Some(id) => format!(r#""id":{},"#, json_str(id)),
        None => String::new(),
    }
}

/// The payload of a response frame: a served result or a structured error.
#[derive(Debug, Clone)]
pub enum ResponseBody {
    /// A successfully served result document (complete JSON, spliced into
    /// the frame verbatim as the final field).
    Ok {
        /// The operation that produced the result.
        op: Op,
        /// Whether the result came out of the cache without a solve.
        cached: bool,
        /// The rendered result document; shared so cache entries and
        /// coalesced waiters render without copying the payload.
        result: Arc<String>,
    },
    /// A structured error.
    Err(ServiceError),
}

/// A typed response frame: protocol version, correlation id, and body.
///
/// [`Response::render`] produces the wire bytes. A `proto == 1` response
/// renders the original pre-v2 frame layout byte-for-byte; `proto >= 2`
/// adds `"proto":2` directly after `status`. In both versions `result`
/// stays the **last** field, so [`extract_result`] works unchanged.
#[derive(Debug, Clone)]
pub struct Response {
    /// Protocol version to render (`1` or `2`); answer a request in kind.
    pub proto: u8,
    /// Correlation id echoed from the request, if any.
    pub id: Option<String>,
    /// The response payload.
    pub body: ResponseBody,
}

impl Response {
    /// Build a success response.
    pub fn ok(proto: u8, id: Option<String>, op: Op, cached: bool, result: Arc<String>) -> Self {
        Response {
            proto,
            id,
            body: ResponseBody::Ok { op, cached, result },
        }
    }

    /// Build an error response.
    pub fn error(proto: u8, id: Option<String>, error: ServiceError) -> Self {
        Response {
            proto,
            id,
            body: ResponseBody::Err(error),
        }
    }

    /// Render the wire frame (no trailing newline).
    pub fn render(&self) -> String {
        let proto = if self.proto >= 2 {
            format!(r#""proto":{},"#, PROTO_VERSION)
        } else {
            String::new()
        };
        let id = id_field(self.id.as_deref());
        match &self.body {
            ResponseBody::Ok { op, cached, result } => format!(
                r#"{{"status":"ok",{}{}"op":{},"cached":{},"result":{}}}"#,
                proto,
                id,
                json_str(op.as_str()),
                cached,
                result
            ),
            ResponseBody::Err(error) => format!(
                r#"{{"status":"error",{}{}"error":{{"kind":{},"message":{}}}}}"#,
                proto,
                id,
                json_str(error.kind.as_str()),
                json_str(&error.message)
            ),
        }
    }
}

/// Build a v1 `ok` response frame (no trailing newline). `result` must be a
/// complete JSON document; it is spliced in verbatim as the final field.
/// Convenience over [`Response`] for tests and v1-only call sites.
pub fn ok_frame(id: Option<&str>, op: Op, cached: bool, result: &str) -> String {
    Response::ok(
        1,
        id.map(String::from),
        op,
        cached,
        Arc::new(result.to_string()),
    )
    .render()
}

/// Build a v1 error response frame (no trailing newline). This is the
/// error shape `gsched validate --json` and `gsched xval --json` reuse.
pub fn error_frame(id: Option<&str>, error: &ServiceError) -> String {
    Response::error(1, id.map(String::from), error.clone()).render()
}

/// Splice the `result` document back out of an `ok` frame, byte-for-byte.
///
/// Relies on the frame contract that `result` is the final field; returns
/// `None` for error frames or anything else.
pub fn extract_result(frame: &str) -> Option<&str> {
    let frame = frame.trim_end();
    let start = frame.find(r#""result":"#)? + r#""result":"#.len();
    let end = frame.len().checked_sub(1)?;
    if !frame.ends_with('}') || start > end {
        return None;
    }
    Some(&frame[start..end])
}

/// Whether a response frame reports success (`"status":"ok"`).
pub fn frame_is_ok(frame: &str) -> bool {
    serde_json::from_str::<Value>(frame)
        .ok()
        .and_then(|v| v.get("status").and_then(|s| s.as_str().map(String::from)))
        .as_deref()
        == Some("ok")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimal_solve_request() {
        let req = parse_request(r#"{"scenario":"fig2"}"#).unwrap();
        assert_eq!(req.op, Op::Solve);
        assert!(matches!(req.scenario, Some(ScenarioRef::Name(ref n)) if n == "fig2"));
        assert!(req.id.is_none());
        assert!(!req.quick);
        assert!(req.deadline_ms.is_none());
        assert_eq!(req.proto, 1, "absent proto field means a v1 frame");
    }

    #[test]
    fn proto_field_parses_and_bounds() {
        assert_eq!(
            parse_request(r#"{"proto":2,"scenario":"fig2"}"#)
                .unwrap()
                .proto,
            2
        );
        assert_eq!(
            parse_request(r#"{"proto":1,"scenario":"fig2"}"#)
                .unwrap()
                .proto,
            1
        );
        for bad in [
            r#"{"proto":3,"scenario":"fig2"}"#,
            r#"{"proto":0,"scenario":"fig2"}"#,
            r#"{"proto":"2","scenario":"fig2"}"#,
            r#"{"proto":-1,"scenario":"fig2"}"#,
        ] {
            let err = parse_request(bad).unwrap_err();
            assert_eq!(err.kind, ErrorKind::BadRequest, "{bad}");
        }
    }

    #[test]
    fn v2_frames_carry_proto_and_keep_result_last() {
        let result = r#"{"iterations":3}"#;
        let ok = Response::ok(
            2,
            Some("r-9".into()),
            Op::Solve,
            false,
            Arc::new(result.to_string()),
        )
        .render();
        assert_eq!(
            ok,
            r#"{"status":"ok","proto":2,"id":"r-9","op":"solve","cached":false,"result":{"iterations":3}}"#
        );
        assert_eq!(extract_result(&ok), Some(result));
        let err = Response::error(
            2,
            None,
            ServiceError::new(ErrorKind::Overloaded, "queue full"),
        )
        .render();
        assert_eq!(
            err,
            r#"{"status":"error","proto":2,"error":{"kind":"overloaded","message":"queue full"}}"#
        );
        assert!(!frame_is_ok(&err));
    }

    #[test]
    fn v1_render_matches_legacy_free_functions() {
        let result = r#"{"x":1}"#;
        let typed = Response::ok(
            1,
            Some("a".into()),
            Op::Sweep,
            true,
            Arc::new(result.to_string()),
        )
        .render();
        assert_eq!(typed, ok_frame(Some("a"), Op::Sweep, true, result));
        let e = ServiceError::new(ErrorKind::Cancelled, "gone");
        let typed = Response::error(1, None, e.clone()).render();
        assert_eq!(typed, error_frame(None, &e));
        assert!(!typed.contains("proto"), "v1 frames must not grow fields");
    }

    #[test]
    fn full_request_round_trip() {
        let req = parse_request(
            r#"{"id":"r-1","op":"sweep","scenario":"fig3","quick":true,"deadline_ms":250}"#,
        )
        .unwrap();
        assert_eq!(req.id.as_deref(), Some("r-1"));
        assert_eq!(req.op, Op::Sweep);
        assert!(req.quick);
        assert_eq!(req.deadline_ms, Some(250));
    }

    #[test]
    fn stats_needs_no_scenario() {
        let req = parse_request(r#"{"op":"stats"}"#).unwrap();
        assert_eq!(req.op, Op::Stats);
        assert!(req.scenario.is_none());
    }

    #[test]
    fn bad_frames_are_rejected() {
        for (line, expect) in [
            ("not json", ErrorKind::BadRequest),
            ("[1,2]", ErrorKind::BadRequest),
            (r#"{"op":"dance"}"#, ErrorKind::BadRequest),
            (r#"{"op":"solve"}"#, ErrorKind::BadRequest),
            (r#"{"scenario":"fig2","zap":1}"#, ErrorKind::BadRequest),
            (
                r#"{"scenario":"fig2","deadline_ms":-3}"#,
                ErrorKind::BadRequest,
            ),
            (r#"{"scenario":{"name":"x"}}"#, ErrorKind::InvalidScenario),
        ] {
            let err = parse_request(line).unwrap_err();
            assert_eq!(err.kind, expect, "{line}");
        }
    }

    #[test]
    fn inline_scenario_is_validated() {
        let sc = gsched_scenario::registry::lookup("fig2").unwrap();
        let frame = format!(r#"{{"scenario":{}}}"#, serde_json::to_string(&sc).unwrap());
        let req = parse_request(&frame).unwrap();
        match req.scenario {
            Some(ScenarioRef::Inline(parsed)) => assert_eq!(parsed.name, "fig2"),
            other => panic!("expected inline scenario, got {other:?}"),
        }
    }

    #[test]
    fn result_extraction_is_exact() {
        let result = r#"{"a":[1,2,{"b":null}],"c":0.30000000000000004}"#;
        let frame = ok_frame(Some("x"), Op::Solve, true, result);
        assert!(frame_is_ok(&frame));
        assert_eq!(extract_result(&frame), Some(result));
        assert_eq!(extract_result(&format!("{frame}\n")), Some(result));
    }

    #[test]
    fn error_frames_have_no_result() {
        let frame = error_frame(None, &ServiceError::new(ErrorKind::Cancelled, "gone"));
        assert!(!frame_is_ok(&frame));
        assert_eq!(extract_result(&frame), None);
        let value: Value = serde_json::from_str(&frame).unwrap();
        assert_eq!(
            value
                .get("error")
                .and_then(|e| e.get("kind"))
                .and_then(|k| k.as_str()),
            Some("cancelled")
        );
    }
}
