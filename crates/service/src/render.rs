//! Canonical JSON rendering of solver results.
//!
//! These renderers are the single source of truth for the JSON shapes
//! emitted by `gsched solve --json` and `gsched sweep --json` *and* for
//! the `result` field of the service's `ok` frames. Sharing one
//! implementation is what makes the acceptance guarantee possible: a
//! result served from the scenario server is byte-identical to solving
//! the same scenario locally.
//!
//! The output is hand-rolled rather than serde-derived because the solver
//! result types hold non-serializable internals and because the byte
//! layout (field order, `null` for non-finite floats) is part of the wire
//! contract.

use gsched_core::GangSolution;
use gsched_engine::SweepReport;

/// Render a float as JSON, mapping every non-finite value to `null`
/// (strict JSON has no `NaN`/`inf`).
pub fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

/// Minimal JSON string escaping for hand-rolled output.
pub fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            _ => out.push(c),
        }
    }
    out.push('"');
    out
}

/// The `gsched solve --json` document for one solved model.
pub fn solution_json(sol: &GangSolution) -> String {
    let classes: Vec<String> = sol
        .classes
        .iter()
        .map(|c| {
            let q = c
                .response_quantiles
                .map(|(a, b, d, e)| {
                    format!(
                        r#"[{},{},{},{}]"#,
                        json_f64(a),
                        json_f64(b),
                        json_f64(d),
                        json_f64(e)
                    )
                })
                .unwrap_or_else(|| "null".to_string());
            format!(
                r#"{{"stable":{},"mean_jobs":{},"mean_response":{},"skip_probability":{},"effective_quantum_mean":{},"vacation_mean":{},"response_quantiles":{}}}"#,
                c.stable,
                json_f64(c.mean_jobs),
                json_f64(c.mean_response),
                json_f64(c.skip_probability),
                json_f64(c.effective_quantum_mean),
                json_f64(c.vacation_mean),
                q,
            )
        })
        .collect();
    format!(
        r#"{{"iterations":{},"converged":{},"all_stable":{},"classes":[{}]}}"#,
        sol.iterations,
        sol.converged,
        sol.all_stable,
        classes.join(",")
    )
}

/// One entry of the `gsched sweep --json` document: a named sweep report.
pub fn sweep_report_json(name: &str, report: &SweepReport, classes: usize) -> String {
    let points: Vec<String> = report
        .points
        .iter()
        .map(|p| {
            let jobs: Vec<String> = p
                .solution
                .as_ref()
                .map(|s| s.classes.iter().map(|c| json_f64(c.mean_jobs)).collect())
                .unwrap_or_default();
            let resp: Vec<String> = p
                .mean_responses(classes)
                .iter()
                .map(|&v| json_f64(v))
                .collect();
            format!(
                r#"{{"x":{},"ok":{},"warm_started":{},"mean_jobs":[{}],"mean_response":[{}],"error":{}}}"#,
                json_f64(p.x),
                p.is_ok(),
                p.warm_started,
                jobs.join(","),
                resp.join(","),
                p.error
                    .as_deref()
                    .map(json_str)
                    .unwrap_or_else(|| "null".to_string()),
            )
        })
        .collect();
    format!(
        r#"{{"figure":{},"axis":{},"jobs":{},"chunks":{},"warm_hits":{},"warm_misses":{},"warm_hit_rate":{},"wall_ms":{},"points":[{}]}}"#,
        json_str(name),
        json_str(&report.axis.label()),
        report.stats.jobs,
        report.stats.chunks,
        report.stats.warm_hits,
        report.stats.warm_misses,
        json_f64(report.stats.warm_hit_rate()),
        json_f64(report.stats.wall_ms),
        points.join(",")
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_f64_encodes_nonfinite_as_null() {
        assert_eq!(json_f64(f64::INFINITY), "null");
        assert_eq!(json_f64(f64::NAN), "null");
        assert_eq!(json_f64(1.5), "1.5");
    }

    #[test]
    fn json_str_escapes() {
        assert_eq!(json_str("a\"b\\c\nd"), r#""a\"b\\c\nd""#);
    }
}
