//! A minimal blocking client for the solve server.
//!
//! The protocol is plain enough to drive with `nc`, but [`Client`] gives
//! Rust callers (the `gsched request` subcommand, tests, CI smoke checks)
//! a typed connect/request/reply loop plus frame builders that produce
//! canonical request lines.

use crate::protocol::{Op, PROTO_VERSION};
use crate::render::json_str;
use gsched_scenario::Scenario;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::Duration;

/// Everything about a request other than which scenario it names.
///
/// The default spec speaks protocol v2; set `proto: 1` to produce the
/// legacy frames a pre-v2 server understands.
#[derive(Debug, Clone)]
pub struct RequestSpec {
    /// Protocol version to put on the wire (`1` omits the field).
    pub proto: u8,
    /// Correlation id echoed back by the server.
    pub id: Option<String>,
    /// Operation; `None` lets the server default (`solve`) apply.
    pub op: Option<Op>,
    /// For sweeps: ask for the reduced quick grid.
    pub quick: bool,
    /// Per-request deadline in milliseconds.
    pub deadline_ms: Option<u64>,
}

impl Default for RequestSpec {
    fn default() -> Self {
        RequestSpec {
            proto: PROTO_VERSION,
            id: None,
            op: None,
            quick: false,
            deadline_ms: None,
        }
    }
}

fn frame(spec: &RequestSpec, scenario_field: Option<String>) -> String {
    let mut fields: Vec<String> = Vec::new();
    if spec.proto >= 2 {
        fields.push(format!(r#""proto":{}"#, PROTO_VERSION));
    }
    if let Some(id) = &spec.id {
        fields.push(format!(r#""id":{}"#, json_str(id)));
    }
    if let Some(op) = spec.op {
        fields.push(format!(r#""op":{}"#, json_str(op.as_str())));
    }
    if let Some(scenario) = scenario_field {
        fields.push(format!(r#""scenario":{scenario}"#));
    }
    if spec.quick {
        fields.push(r#""quick":true"#.to_string());
    }
    if let Some(ms) = spec.deadline_ms {
        fields.push(format!(r#""deadline_ms":{ms}"#));
    }
    format!("{{{}}}", fields.join(","))
}

/// A request frame naming a registry scenario.
pub fn frame_for_name(name: &str, spec: &RequestSpec) -> String {
    frame(spec, Some(json_str(name)))
}

/// A request frame carrying a full inline scenario document.
pub fn frame_for_scenario(scenario: &Scenario, spec: &RequestSpec) -> String {
    let value = serde_json::to_value(scenario).expect("scenario serializes");
    frame(
        spec,
        Some(serde_json::to_string(&value).expect("scenario value renders")),
    )
}

/// A scenario-less control frame (`stats` or `shutdown`) honouring the
/// spec's protocol version and correlation id (`op` must be set).
pub fn control_frame_for(spec: &RequestSpec) -> String {
    frame(spec, None)
}

/// A scenario-less control frame (`stats` or `shutdown`) in the current
/// protocol version.
pub fn control_frame(op: Op, id: Option<&str>) -> String {
    control_frame_for(&RequestSpec {
        id: id.map(String::from),
        op: Some(op),
        ..RequestSpec::default()
    })
}

/// A blocking newline-delimited JSON client over one TCP connection.
///
/// Requests are answered in order, so the connection can be reused for
/// any number of frames.
pub struct Client {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    /// Connect to a running server, e.g. `127.0.0.1:7070`.
    pub fn connect(addr: &str) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Client {
            writer: stream,
            reader,
        })
    }

    /// Bound how long [`Client::request_line`] waits for a reply.
    pub fn set_reply_timeout(&self, timeout: Option<Duration>) -> std::io::Result<()> {
        self.writer.set_read_timeout(timeout)
    }

    /// Send one request frame (a full JSON document, no newline) and read
    /// the matching response frame, returned without its newline.
    pub fn request_line(&mut self, line: &str) -> std::io::Result<String> {
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()?;
        let mut reply = String::new();
        let n = self.reader.read_line(&mut reply)?;
        if n == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection before replying",
            ));
        }
        while reply.ends_with('\n') || reply.ends_with('\r') {
            reply.pop();
        }
        Ok(reply)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn name_frames_are_canonical() {
        assert_eq!(
            frame_for_name("fig2", &RequestSpec::default()),
            r#"{"proto":2,"scenario":"fig2"}"#
        );
        let spec = RequestSpec {
            id: Some("r-1".to_string()),
            op: Some(Op::Sweep),
            quick: true,
            deadline_ms: Some(500),
            ..RequestSpec::default()
        };
        assert_eq!(
            frame_for_name("fig3", &spec),
            r#"{"proto":2,"id":"r-1","op":"sweep","scenario":"fig3","quick":true,"deadline_ms":500}"#
        );
    }

    #[test]
    fn v1_spec_produces_legacy_frames() {
        let spec = RequestSpec {
            proto: 1,
            ..RequestSpec::default()
        };
        assert_eq!(frame_for_name("fig2", &spec), r#"{"scenario":"fig2"}"#);
        let spec = RequestSpec {
            proto: 1,
            id: Some("r-1".to_string()),
            op: Some(Op::Sweep),
            quick: true,
            deadline_ms: Some(500),
        };
        assert_eq!(
            frame_for_name("fig3", &spec),
            r#"{"id":"r-1","op":"sweep","scenario":"fig3","quick":true,"deadline_ms":500}"#
        );
    }

    #[test]
    fn control_frames_omit_scenario() {
        assert_eq!(
            control_frame(Op::Stats, None),
            r#"{"proto":2,"op":"stats"}"#
        );
        assert_eq!(
            control_frame(Op::Shutdown, Some("bye")),
            r#"{"proto":2,"id":"bye","op":"shutdown"}"#
        );
        // A v1 spec produces the legacy control frame.
        let spec = RequestSpec {
            proto: 1,
            op: Some(Op::Stats),
            ..RequestSpec::default()
        };
        assert_eq!(control_frame_for(&spec), r#"{"op":"stats"}"#);
    }

    #[test]
    fn inline_frames_parse_back() {
        let sc = gsched_scenario::registry::lookup("fig2").unwrap();
        let line = frame_for_scenario(&sc, &RequestSpec::default());
        let req = crate::protocol::parse_request(&line).unwrap();
        match req.scenario {
            Some(crate::protocol::ScenarioRef::Inline(parsed)) => {
                assert_eq!(parsed.content_hash(), sc.content_hash());
            }
            other => panic!("expected inline, got {other:?}"),
        }
    }
}
