//! Live telemetry for the running server: per-op latency histograms, the
//! expanded `stats` report, Prometheus text exposition, and the NDJSON
//! access-log record.
//!
//! The in-process [`gsched_obs`] probes only populate `--diag` snapshots
//! when a recorder is installed; a production server runs without one. So
//! the server keeps its own always-on [`Telemetry`]: cheap atomics plus
//! mutex-guarded [`LogHistogram`]s, read out by the `stats` verb and the
//! `--metrics-addr` scraper. Quantile statistics of empty histograms are
//! NaN internally and `null` (JSON) or omitted (Prometheus, which has no
//! null) on the wire — never a bare `NaN` token.

#[cfg(test)]
use crate::protocol::Op;
use crate::render::{json_f64, json_str};
use gsched_obs::{LogHistogram, WindowedHistogram};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Seconds covered by the "recent" latency window in `stats` reports.
const RECENT_WINDOW_SECS: f64 = 60.0;
/// Ring slots backing the recent window (rotation granularity).
const RECENT_WINDOWS: usize = 6;

/// Request classes tracked per-op: the four protocol verbs plus a bucket
/// for frames that never parsed far enough to have one.
pub(crate) const OP_LABELS: [&str; 5] = ["solve", "sweep", "stats", "shutdown", "invalid"];

/// Index into [`OP_LABELS`] for a parsed op.
#[cfg(test)]
pub(crate) fn op_index(op: Op) -> usize {
    match op {
        Op::Solve => 0,
        Op::Sweep => 1,
        Op::Stats => 2,
        Op::Shutdown => 3,
    }
}

/// Index into [`OP_LABELS`] for unparseable frames.
pub(crate) const INVALID_OP: usize = 4;

struct OpTelemetry {
    requests: AtomicU64,
    errors: AtomicU64,
    latency_ms: Mutex<LogHistogram>,
    recent_latency_ms: Mutex<WindowedHistogram>,
}

impl OpTelemetry {
    fn new() -> Self {
        OpTelemetry {
            requests: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            latency_ms: Mutex::new(LogHistogram::new()),
            recent_latency_ms: Mutex::new(WindowedHistogram::new(
                RECENT_WINDOW_SECS / RECENT_WINDOWS as f64,
                RECENT_WINDOWS,
            )),
        }
    }
}

/// Always-on server-side telemetry; one per [`crate::Server`].
pub(crate) struct Telemetry {
    started: Instant,
    ops: Vec<OpTelemetry>,
    queue_wait_ms: Mutex<LogHistogram>,
    solve_ms: Mutex<LogHistogram>,
    workers_busy: AtomicU64,
    connections: AtomicU64,
}

/// Counters owned by the server (not by [`Telemetry`]) that the stats
/// report and the Prometheus exposition also need.
pub(crate) struct ExternalStats {
    pub workers: usize,
    pub queue_depth: u64,
    pub requests: u64,
    pub errors: u64,
    pub cache_hits: u64,
    pub cache_misses: u64,
    pub cache_entries: usize,
    pub cache_capacity: usize,
    /// Admission-control queue bound (0 = unbounded).
    pub queue_limit: usize,
    /// Requests shed because the queue was full.
    pub shed: u64,
    /// Requests coalesced onto an in-flight identical solve.
    pub coalesced: u64,
    /// Sweep jobs merged into engine batches behind a leader job.
    pub batch_merged: u64,
    /// Cache entries replayed from the persistent segment at startup.
    pub cache_replayed: u64,
    /// Kernel backend the workers solve with (stable name).
    pub backend: &'static str,
    /// `R`-matrix algorithm the workers solve with (stable name).
    pub r_solver: &'static str,
}

impl ExternalStats {
    fn cache_hit_ratio(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            f64::NAN
        } else {
            self.cache_hits as f64 / total as f64
        }
    }
}

impl Telemetry {
    pub(crate) fn new() -> Self {
        Telemetry {
            started: Instant::now(),
            ops: (0..OP_LABELS.len()).map(|_| OpTelemetry::new()).collect(),
            queue_wait_ms: Mutex::new(LogHistogram::new()),
            solve_ms: Mutex::new(LogHistogram::new()),
            workers_busy: AtomicU64::new(0),
            connections: AtomicU64::new(0),
        }
    }

    fn now_secs(&self) -> f64 {
        self.started.elapsed().as_secs_f64()
    }

    /// Milliseconds since the server started.
    pub(crate) fn uptime_ms(&self) -> u128 {
        self.started.elapsed().as_millis()
    }

    pub(crate) fn record_connection(&self) {
        self.connections.fetch_add(1, Ordering::Relaxed);
    }

    /// Count one request of op class `op_idx` with its end-to-end latency;
    /// `errored` marks requests answered with an error frame.
    pub(crate) fn record_request(&self, op_idx: usize, latency_ms: f64, errored: bool) {
        let op = &self.ops[op_idx];
        op.requests.fetch_add(1, Ordering::Relaxed);
        if errored {
            op.errors.fetch_add(1, Ordering::Relaxed);
        }
        op.latency_ms.lock().record(latency_ms);
        op.recent_latency_ms
            .lock()
            .record(self.now_secs(), latency_ms);
    }

    /// Record the time one job waited in the queue before a worker took it.
    pub(crate) fn record_queue_wait(&self, ms: f64) {
        self.queue_wait_ms.lock().record(ms);
    }

    /// Record the time a worker spent solving and rendering one job.
    pub(crate) fn record_solve(&self, ms: f64) {
        self.solve_ms.lock().record(ms);
    }

    /// RAII marker for a worker actively processing a job (the occupancy
    /// gauge counts live guards).
    pub(crate) fn worker_busy(&self) -> WorkerBusyGuard<'_> {
        self.workers_busy.fetch_add(1, Ordering::Relaxed);
        WorkerBusyGuard { telemetry: self }
    }

    fn workers_busy_now(&self) -> u64 {
        self.workers_busy.load(Ordering::Relaxed)
    }

    // ---- stats JSON ----

    /// The expanded `stats` result document. The flat top-level counters
    /// are a stable contract (CI and older clients grep them); everything
    /// added since lives alongside them.
    pub(crate) fn stats_json(&self, ext: &ExternalStats) -> String {
        let mut ops = String::new();
        for (i, label) in OP_LABELS.iter().enumerate() {
            let op = &self.ops[i];
            if i > 0 {
                ops.push(',');
            }
            let recent = op.recent_latency_ms.lock().merged(self.now_secs());
            ops.push_str(&format!(
                r#"{}:{{"requests":{},"errors":{},"latency_ms":{},"recent_latency_ms":{}}}"#,
                json_str(label),
                op.requests.load(Ordering::Relaxed),
                op.errors.load(Ordering::Relaxed),
                histogram_json(&op.latency_ms.lock()),
                histogram_json(&recent),
            ));
        }
        format!(
            concat!(
                r#"{{"workers":{},"queue_depth":{},"requests":{},"errors":{},"#,
                r#""cache_hits":{},"cache_misses":{},"cache_entries":{},"cache_capacity":{},"#,
                r#""queue_limit":{},"shed":{},"coalesced":{},"batch_merged":{},"#,
                r#""cache_replayed":{},"backend":{},"r_solver":{},"uptime_ms":{},"#,
                r#""workers_busy":{},"connections":{},"cache_hit_ratio":{},"#,
                r#""queue_wait_ms":{},"solve_ms":{},"ops":{{{}}}}}"#
            ),
            ext.workers,
            ext.queue_depth,
            ext.requests,
            ext.errors,
            ext.cache_hits,
            ext.cache_misses,
            ext.cache_entries,
            ext.cache_capacity,
            ext.queue_limit,
            ext.shed,
            ext.coalesced,
            ext.batch_merged,
            ext.cache_replayed,
            json_str(ext.backend),
            json_str(ext.r_solver),
            self.uptime_ms(),
            self.workers_busy_now(),
            self.connections.load(Ordering::Relaxed),
            json_f64(ext.cache_hit_ratio()),
            histogram_json(&self.queue_wait_ms.lock()),
            histogram_json(&self.solve_ms.lock()),
            ops,
        )
    }

    // ---- Prometheus text exposition (format 0.0.4) ----

    /// Render every metric family as Prometheus text exposition. Summary
    /// quantile samples are omitted while a histogram is empty (the format
    /// has no `null`); `_count`/`_sum` are always present.
    pub(crate) fn prometheus(&self, ext: &ExternalStats) -> String {
        let mut out = String::with_capacity(4096);
        gauge(
            &mut out,
            "gsched_uptime_seconds",
            "Seconds since the server started.",
            self.now_secs(),
        );
        gauge(
            &mut out,
            "gsched_workers",
            "Solver worker threads in the pool.",
            ext.workers as f64,
        );
        gauge(
            &mut out,
            "gsched_workers_busy",
            "Workers currently processing a job.",
            self.workers_busy_now() as f64,
        );
        gauge(
            &mut out,
            "gsched_queue_depth",
            "Jobs queued for the worker pool.",
            ext.queue_depth as f64,
        );
        gauge(
            &mut out,
            "gsched_queue_limit",
            "Admission-control queue bound (0 = unbounded).",
            ext.queue_limit as f64,
        );
        counter(
            &mut out,
            "gsched_shed_total",
            "Requests shed because the queue was full.",
            ext.shed,
        );
        counter(
            &mut out,
            "gsched_coalesced_total",
            "Requests coalesced onto an in-flight identical solve.",
            ext.coalesced,
        );
        counter(
            &mut out,
            "gsched_batch_merged_total",
            "Sweep jobs merged into engine batches behind a leader job.",
            ext.batch_merged,
        );
        counter(
            &mut out,
            "gsched_connections_total",
            "Connections accepted.",
            self.connections.load(Ordering::Relaxed),
        );
        header(
            &mut out,
            "gsched_requests_total",
            "Requests received, by op.",
            "counter",
        );
        for (i, label) in OP_LABELS.iter().enumerate() {
            sample(
                &mut out,
                "gsched_requests_total",
                &format!("op=\"{label}\""),
                self.ops[i].requests.load(Ordering::Relaxed) as f64,
            );
        }
        header(
            &mut out,
            "gsched_errors_total",
            "Error frames sent, by op.",
            "counter",
        );
        for (i, label) in OP_LABELS.iter().enumerate() {
            sample(
                &mut out,
                "gsched_errors_total",
                &format!("op=\"{label}\""),
                self.ops[i].errors.load(Ordering::Relaxed) as f64,
            );
        }
        counter(
            &mut out,
            "gsched_cache_hits_total",
            "Result-cache hits.",
            ext.cache_hits,
        );
        counter(
            &mut out,
            "gsched_cache_misses_total",
            "Result-cache misses.",
            ext.cache_misses,
        );
        gauge(
            &mut out,
            "gsched_cache_entries",
            "Result-cache entries resident.",
            ext.cache_entries as f64,
        );
        gauge(
            &mut out,
            "gsched_cache_capacity",
            "Result-cache capacity.",
            ext.cache_capacity as f64,
        );
        gauge(
            &mut out,
            "gsched_cache_replayed",
            "Cache entries replayed from the persistent segment at startup.",
            ext.cache_replayed as f64,
        );
        let ratio = ext.cache_hit_ratio();
        if ratio.is_finite() {
            gauge(
                &mut out,
                "gsched_cache_hit_ratio",
                "Cache hits over all cache lookups.",
                ratio,
            );
        } else {
            header(
                &mut out,
                "gsched_cache_hit_ratio",
                "Cache hits over all cache lookups.",
                "gauge",
            );
        }
        header(
            &mut out,
            "gsched_request_latency_ms",
            "End-to-end request latency in milliseconds, by op.",
            "summary",
        );
        for (i, label) in OP_LABELS.iter().enumerate() {
            summary_samples(
                &mut out,
                "gsched_request_latency_ms",
                Some(label),
                &self.ops[i].latency_ms.lock(),
            );
        }
        header(
            &mut out,
            "gsched_queue_wait_ms",
            "Queue wait before a worker picked the job up, in milliseconds.",
            "summary",
        );
        summary_samples(
            &mut out,
            "gsched_queue_wait_ms",
            None,
            &self.queue_wait_ms.lock(),
        );
        header(
            &mut out,
            "gsched_solve_ms",
            "Worker solve+render time in milliseconds.",
            "summary",
        );
        summary_samples(&mut out, "gsched_solve_ms", None, &self.solve_ms.lock());
        out
    }
}

/// Live marker that a worker is busy; see [`Telemetry::worker_busy`].
pub(crate) struct WorkerBusyGuard<'a> {
    telemetry: &'a Telemetry,
}

impl Drop for WorkerBusyGuard<'_> {
    fn drop(&mut self) {
        self.telemetry.workers_busy.fetch_sub(1, Ordering::Relaxed);
    }
}

/// Histogram summary as a JSON object; empty-histogram statistics are
/// `null`, never `NaN`.
fn histogram_json(h: &LogHistogram) -> String {
    format!(
        r#"{{"count":{},"mean":{},"min":{},"max":{},"p50":{},"p90":{},"p95":{},"p99":{}}}"#,
        h.count(),
        json_f64(h.mean()),
        json_f64(h.min()),
        json_f64(h.max()),
        json_f64(h.quantile(0.5)),
        json_f64(h.quantile(0.9)),
        json_f64(h.quantile(0.95)),
        json_f64(h.quantile(0.99)),
    )
}

fn header(out: &mut String, name: &str, help: &str, kind: &str) {
    out.push_str(&format!("# HELP {name} {help}\n# TYPE {name} {kind}\n"));
}

fn sample(out: &mut String, name: &str, labels: &str, value: f64) {
    if labels.is_empty() {
        out.push_str(&format!("{name} {}\n", prom_f64(value)));
    } else {
        out.push_str(&format!("{name}{{{labels}}} {}\n", prom_f64(value)));
    }
}

fn gauge(out: &mut String, name: &str, help: &str, value: f64) {
    header(out, name, help, "gauge");
    sample(out, name, "", value);
}

fn counter(out: &mut String, name: &str, help: &str, value: u64) {
    header(out, name, help, "counter");
    sample(out, name, "", value as f64);
}

/// Quantile/sum/count samples for one summary family. Quantile lines are
/// emitted only when the histogram has samples; `_sum`/`_count` always.
fn summary_samples(out: &mut String, name: &str, op: Option<&str>, h: &LogHistogram) {
    let op_label = op.map(|o| format!("op=\"{o}\""));
    if h.count() > 0 {
        for (q, qs) in [(0.5, "0.5"), (0.9, "0.9"), (0.95, "0.95"), (0.99, "0.99")] {
            let labels = match &op_label {
                Some(ol) => format!("{ol},quantile=\"{qs}\""),
                None => format!("quantile=\"{qs}\""),
            };
            sample(out, name, &labels, h.quantile(q));
        }
    }
    let base = op_label.as_deref().unwrap_or("");
    sample(out, &format!("{name}_sum"), base, h.sum());
    sample(out, &format!("{name}_count"), base, h.count() as f64);
}

/// Prometheus sample values: plain decimal; non-finite values are the
/// format's `NaN`-free spellings only for infinities, and NaN must never
/// reach here (callers skip empty-histogram quantiles).
fn prom_f64(v: f64) -> String {
    if v == f64::INFINITY {
        "+Inf".to_string()
    } else if v == f64::NEG_INFINITY {
        "-Inf".to_string()
    } else {
        debug_assert!(v.is_finite(), "NaN must not reach the exposition");
        format!("{v}")
    }
}

/// One access-log record, rendered to a single NDJSON line at the end of
/// the request.
pub(crate) struct AccessRecord {
    /// Trace context id; `r-<ctx>` links this line to the span tree.
    pub ctx: u64,
    /// Client-chosen correlation id, if any.
    pub client_id: Option<String>,
    /// Op label (one of [`OP_LABELS`]).
    pub op: &'static str,
    /// Registry name of the scenario, if it had one.
    pub scenario: Option<String>,
    /// Canonical content hash of the scenario, if resolved.
    pub scenario_hash: Option<u64>,
    /// Whether the reply came from the result cache.
    pub cached: bool,
    /// Queue wait in milliseconds (absent for cache hits and control ops).
    pub queue_wait_ms: Option<f64>,
    /// Worker solve time in milliseconds (ditto).
    pub solve_ms: Option<f64>,
    /// End-to-end latency in milliseconds.
    pub latency_ms: f64,
    /// `"ok"`, `"error:<kind>"`, or `"dropped"` (client vanished).
    pub outcome: String,
}

impl AccessRecord {
    pub(crate) fn new(ctx: u64) -> Self {
        AccessRecord {
            ctx,
            client_id: None,
            op: OP_LABELS[INVALID_OP],
            scenario: None,
            scenario_hash: None,
            cached: false,
            queue_wait_ms: None,
            solve_ms: None,
            latency_ms: 0.0,
            outcome: "ok".to_string(),
        }
    }

    /// Index of `op` in [`OP_LABELS`].
    pub(crate) fn op_idx(&self) -> usize {
        OP_LABELS
            .iter()
            .position(|l| *l == self.op)
            .unwrap_or(INVALID_OP)
    }

    /// Render as one NDJSON line (no trailing newline).
    pub(crate) fn to_json(&self) -> String {
        let opt_str = |v: &Option<String>| match v {
            Some(s) => json_str(s),
            None => "null".to_string(),
        };
        let opt_ms = |v: &Option<f64>| match v {
            Some(x) => json_f64(*x),
            None => "null".to_string(),
        };
        format!(
            concat!(
                r#"{{"request_id":{},"id":{},"op":{},"scenario":{},"scenario_hash":{},"#,
                r#""cached":{},"queue_wait_ms":{},"solve_ms":{},"latency_ms":{},"outcome":{}}}"#
            ),
            json_str(&gsched_obs::context_label(self.ctx)),
            opt_str(&self.client_id),
            json_str(self.op),
            opt_str(&self.scenario),
            match self.scenario_hash {
                Some(h) => json_str(&format!("{h:016x}")),
                None => "null".to_string(),
            },
            self.cached,
            opt_ms(&self.queue_wait_ms),
            opt_ms(&self.solve_ms),
            json_f64(self.latency_ms),
            json_str(&self.outcome),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ext() -> ExternalStats {
        ExternalStats {
            workers: 2,
            queue_depth: 0,
            requests: 0,
            errors: 0,
            cache_hits: 0,
            cache_misses: 0,
            cache_entries: 0,
            cache_capacity: 256,
            queue_limit: 0,
            shed: 0,
            coalesced: 0,
            batch_merged: 0,
            cache_replayed: 0,
            backend: "naive",
            r_solver: "logarithmic_reduction",
        }
    }

    #[test]
    fn fresh_stats_report_has_null_quantiles_not_nan() {
        let t = Telemetry::new();
        let text = t.stats_json(&ext());
        assert!(!text.contains("NaN"), "{text}");
        assert!(text.contains(r#""cache_hit_ratio":null"#), "{text}");
        assert!(text.contains(r#""p95":null"#), "{text}");
        // Still valid JSON.
        let v: serde_json::Value = serde_json::from_str(&text).unwrap();
        assert_eq!(v["workers"].as_f64(), Some(2.0));
        assert!(v["ops"]["solve"]["latency_ms"]["p50"].is_null());
        assert_eq!(v["shed"].as_u64(), Some(0));
        assert_eq!(v["coalesced"].as_u64(), Some(0));
        assert_eq!(v["batch_merged"].as_u64(), Some(0));
        assert_eq!(v["queue_limit"].as_u64(), Some(0));
        assert_eq!(v["cache_replayed"].as_u64(), Some(0));
        assert_eq!(v["backend"].as_str(), Some("naive"));
        assert_eq!(v["r_solver"].as_str(), Some("logarithmic_reduction"));
    }

    #[test]
    fn recorded_latencies_surface_in_stats() {
        let t = Telemetry::new();
        for i in 0..100 {
            t.record_request(op_index(Op::Solve), 10.0 + i as f64, false);
        }
        t.record_request(op_index(Op::Sweep), 500.0, true);
        t.record_queue_wait(2.0);
        t.record_solve(40.0);
        let text = t.stats_json(&ext());
        let v: serde_json::Value = serde_json::from_str(&text).unwrap();
        assert_eq!(v["ops"]["solve"]["requests"].as_f64(), Some(100.0));
        assert_eq!(v["ops"]["sweep"]["errors"].as_f64(), Some(1.0));
        let p50 = v["ops"]["solve"]["latency_ms"]["p50"].as_f64().unwrap();
        let p99 = v["ops"]["solve"]["latency_ms"]["p99"].as_f64().unwrap();
        assert!(p50 > 0.0 && p99 >= p50, "p50={p50} p99={p99}");
        assert_eq!(v["queue_wait_ms"]["count"].as_f64(), Some(1.0));
        assert_eq!(v["solve_ms"]["count"].as_f64(), Some(1.0));
        // Recent window covers samples just recorded.
        assert!(v["ops"]["solve"]["recent_latency_ms"]["p50"]
            .as_f64()
            .is_some());
    }

    #[test]
    fn prometheus_exposition_is_well_formed() {
        let t = Telemetry::new();
        t.record_request(op_index(Op::Solve), 12.5, false);
        t.record_connection();
        let mut e = ext();
        e.cache_hits = 3;
        e.cache_misses = 1;
        let text = t.prometheus(&e);
        assert!(!text.contains("NaN"), "{text}");
        for family in [
            "gsched_uptime_seconds",
            "gsched_workers",
            "gsched_workers_busy",
            "gsched_queue_depth",
            "gsched_connections_total",
            "gsched_requests_total",
            "gsched_errors_total",
            "gsched_cache_hits_total",
            "gsched_cache_misses_total",
            "gsched_cache_hit_ratio",
            "gsched_cache_replayed",
            "gsched_queue_limit",
            "gsched_shed_total",
            "gsched_coalesced_total",
            "gsched_batch_merged_total",
            "gsched_request_latency_ms",
            "gsched_queue_wait_ms",
            "gsched_solve_ms",
        ] {
            assert!(
                text.contains(&format!("# TYPE {family} ")),
                "missing family {family}:\n{text}"
            );
        }
        assert!(
            text.contains(r#"gsched_requests_total{op="solve"} 1"#),
            "{text}"
        );
        assert!(
            text.contains(r#"gsched_request_latency_ms{op="solve",quantile="0.5"}"#),
            "{text}"
        );
        assert!(text.contains("gsched_cache_hit_ratio 0.75"), "{text}");
        // Empty summaries keep _count/_sum but emit no quantile samples.
        assert!(text.contains(r#"gsched_request_latency_ms_count{op="sweep"} 0"#));
        assert!(!text.contains(r#"gsched_request_latency_ms{op="sweep",quantile"#));
        // Every non-comment line is `name{labels} value` with a parseable value.
        for line in text.lines() {
            if line.starts_with('#') || line.is_empty() {
                continue;
            }
            let (_, value) = line.rsplit_once(' ').expect("sample has a value");
            assert!(
                value.parse::<f64>().is_ok() || value == "+Inf" || value == "-Inf",
                "bad sample value in {line:?}"
            );
        }
    }

    #[test]
    fn worker_busy_guard_tracks_occupancy() {
        let t = Telemetry::new();
        assert_eq!(t.workers_busy_now(), 0);
        {
            let _a = t.worker_busy();
            let _b = t.worker_busy();
            assert_eq!(t.workers_busy_now(), 2);
        }
        assert_eq!(t.workers_busy_now(), 0);
    }

    #[test]
    fn access_record_renders_one_json_line() {
        let mut rec = AccessRecord::new(7);
        rec.client_id = Some("c1".to_string());
        rec.op = "solve";
        rec.scenario = Some("fig2".to_string());
        rec.scenario_hash = Some(0xDEAD_BEEF);
        rec.cached = true;
        rec.latency_ms = 0.42;
        let line = rec.to_json();
        assert!(!line.contains('\n'));
        let v: serde_json::Value = serde_json::from_str(&line).unwrap();
        assert_eq!(v["request_id"].as_str(), Some("r-7"));
        assert_eq!(v["op"].as_str(), Some("solve"));
        assert_eq!(v["scenario_hash"].as_str(), Some("00000000deadbeef"));
        assert_eq!(v["cached"].as_bool(), Some(true));
        assert!(v["queue_wait_ms"].is_null());
        assert_eq!(v["outcome"].as_str(), Some("ok"));

        let unparsed = AccessRecord::new(8);
        let v: serde_json::Value = serde_json::from_str(&unparsed.to_json()).unwrap();
        assert_eq!(v["op"].as_str(), Some("invalid"));
        assert_eq!(v["id"].as_str(), None);
    }
}
