//! Sharded LRU cache of rendered results, keyed by canonical request hash.
//!
//! The cache stores the *rendered JSON text* of a completed request, not
//! the solver's data structures: replaying the exact bytes is what makes a
//! cache hit indistinguishable from a fresh solve on the wire. Keys are
//! 64-bit canonical digests (scenario content hash folded with the
//! operation and grid flavour), so lookups never touch the scenario JSON.
//!
//! Sharding bounds lock contention: a key's upper bits pick a shard, each
//! shard is an independent mutex-guarded LRU, and capacity is divided
//! evenly across shards. Recency is tracked with a per-shard logical
//! clock; eviction scans the (small, bounded) shard for the stalest entry.

use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Number of independently locked shards.
const SHARDS: usize = 8;

struct Entry {
    value: Arc<String>,
    last_used: u64,
}

#[derive(Default)]
struct Shard {
    map: HashMap<u64, Entry>,
    clock: u64,
}

/// A fixed-capacity sharded LRU from request digests to rendered results.
pub struct ResultCache {
    shards: Vec<Mutex<Shard>>,
    per_shard_capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl ResultCache {
    /// A cache holding at most `capacity` entries in total (rounded up to
    /// a multiple of the shard count). `capacity == 0` disables caching:
    /// every lookup misses and inserts are dropped.
    pub fn new(capacity: usize) -> Self {
        ResultCache {
            shards: (0..SHARDS).map(|_| Mutex::new(Shard::default())).collect(),
            per_shard_capacity: capacity.div_ceil(SHARDS),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    fn shard(&self, key: u64) -> &Mutex<Shard> {
        // Upper bits: the low bits of FNV digests are the best mixed, but
        // any fixed slice works; SHARDS is a power of two.
        &self.shards[(key >> 32) as usize % SHARDS]
    }

    /// Look up `key`, refreshing its recency. Counts a hit or miss.
    pub fn get(&self, key: u64) -> Option<Arc<String>> {
        if self.per_shard_capacity == 0 {
            self.misses.fetch_add(1, Ordering::Relaxed);
            return None;
        }
        let mut shard = self.shard(key).lock();
        shard.clock += 1;
        let clock = shard.clock;
        match shard.map.get_mut(&key) {
            Some(entry) => {
                entry.last_used = clock;
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(Arc::clone(&entry.value))
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Insert (or refresh) `key`, evicting the shard's least-recently-used
    /// entry when the shard is full.
    pub fn insert(&self, key: u64, value: Arc<String>) {
        if self.per_shard_capacity == 0 {
            return;
        }
        let mut shard = self.shard(key).lock();
        shard.clock += 1;
        let clock = shard.clock;
        if !shard.map.contains_key(&key) && shard.map.len() >= self.per_shard_capacity {
            if let Some(&stalest) = shard
                .map
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k)
            {
                shard.map.remove(&stalest);
            }
        }
        shard.map.insert(
            key,
            Entry {
                value,
                last_used: clock,
            },
        );
    }

    /// Entries currently cached, across all shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().map.len()).sum()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total capacity (as rounded at construction).
    pub fn capacity(&self) -> usize {
        self.per_shard_capacity * SHARDS
    }

    /// Lifetime hit count.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lifetime miss count.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn value(s: &str) -> Arc<String> {
        Arc::new(s.to_string())
    }

    #[test]
    fn get_after_insert_hits() {
        let cache = ResultCache::new(16);
        assert!(cache.get(7).is_none());
        cache.insert(7, value("seven"));
        assert_eq!(cache.get(7).as_deref().map(String::as_str), Some("seven"));
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 1);
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let cache = ResultCache::new(0);
        cache.insert(1, value("x"));
        assert!(cache.get(1).is_none());
        assert_eq!(cache.len(), 0);
        assert_eq!(cache.capacity(), 0);
    }

    #[test]
    fn lru_evicts_the_stalest_entry() {
        let cache = ResultCache::new(SHARDS); // one entry per shard
                                              // Keys in the same shard: same upper bits.
        let k = |i: u64| i; // all in shard 0
        cache.insert(k(1), value("a"));
        cache.insert(k(2), value("b")); // evicts 1 (shard holds one entry)
        assert!(cache.get(k(1)).is_none());
        assert!(cache.get(k(2)).is_some());
    }

    #[test]
    fn recency_refresh_protects_entries() {
        let cache = ResultCache::new(2 * SHARDS); // two entries per shard
        cache.insert(1, value("a"));
        cache.insert(2, value("b"));
        assert!(cache.get(1).is_some()); // 1 is now the most recent
        cache.insert(3, value("c")); // evicts 2, not 1
        assert!(cache.get(1).is_some());
        assert!(cache.get(2).is_none());
        assert!(cache.get(3).is_some());
    }

    #[test]
    fn concurrent_access_is_safe() {
        let cache = Arc::new(ResultCache::new(64));
        let handles: Vec<_> = (0..8u64)
            .map(|t| {
                let cache = Arc::clone(&cache);
                std::thread::spawn(move || {
                    for i in 0..500u64 {
                        let key = (t << 32) | (i % 16);
                        cache.insert(key, value("v"));
                        let _ = cache.get(key);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert!(cache.len() <= cache.capacity());
    }
}
