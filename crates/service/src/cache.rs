//! Result stores: the [`CacheStore`] trait and its two implementations.
//!
//! A store maps 64-bit canonical request digests (scenario content hash
//! folded with the operation and grid flavour) to the *rendered JSON text*
//! of a completed request — not the solver's data structures: replaying
//! the exact bytes is what makes a cache hit indistinguishable from a
//! fresh solve on the wire.
//!
//! [`MemoryLru`] is the process-local sharded LRU. Sharding bounds lock
//! contention: a key's upper bits pick a shard, each shard is an
//! independent mutex-guarded LRU, and capacity is divided evenly across
//! shards. Recency is tracked with a per-shard logical clock; eviction
//! scans the (small, bounded) shard for the stalest entry.
//!
//! [`PersistentLru`] wraps a `MemoryLru` with an append-only NDJSON
//! segment file. Every insert is appended (one self-describing,
//! checksummed line per entry) and flushed, so a torn write can only
//! corrupt the final line; on open the segment is replayed into memory,
//! stopping at the first corrupt line, and the server comes up warm.
//! The server is generic over the trait, so tests can inject a failing
//! store and assert the request path survives it.

use parking_lot::Mutex;
use std::collections::HashMap;
use std::io::{BufRead, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Number of independently locked shards.
const SHARDS: usize = 8;

/// A point-in-time summary of a store's contents and traffic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Lifetime hit count.
    pub hits: u64,
    /// Lifetime miss count.
    pub misses: u64,
    /// Entries currently stored.
    pub entries: usize,
    /// Total capacity (as rounded at construction).
    pub capacity: usize,
}

/// A concurrent store of rendered results, keyed by request digest.
///
/// Implementations must be safe to share across the server's connection
/// and worker threads. `get` refreshes recency and counts a hit or miss;
/// `insert` may evict. A failing implementation (for tests) may drop
/// inserts or always miss — the server treats every miss as "solve it".
pub trait CacheStore: Send + Sync {
    /// Look up `key`, refreshing its recency. Counts a hit or miss.
    fn get(&self, key: u64) -> Option<Arc<String>>;
    /// Insert (or refresh) `key`, evicting if full.
    fn insert(&self, key: u64, value: Arc<String>);
    /// Current contents and traffic counters.
    fn stats(&self) -> CacheStats;
}

struct Entry {
    value: Arc<String>,
    last_used: u64,
}

#[derive(Default)]
struct Shard {
    map: HashMap<u64, Entry>,
    clock: u64,
}

/// A fixed-capacity sharded LRU from request digests to rendered results.
pub struct MemoryLru {
    shards: Vec<Mutex<Shard>>,
    per_shard_capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl MemoryLru {
    /// A cache holding at most `capacity` entries in total (rounded up to
    /// a multiple of the shard count). `capacity == 0` disables caching:
    /// every lookup misses and inserts are dropped.
    pub fn new(capacity: usize) -> Self {
        MemoryLru {
            shards: (0..SHARDS).map(|_| Mutex::new(Shard::default())).collect(),
            per_shard_capacity: capacity.div_ceil(SHARDS),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    fn shard(&self, key: u64) -> &Mutex<Shard> {
        // Upper bits: the low bits of FNV digests are the best mixed, but
        // any fixed slice works; SHARDS is a power of two.
        &self.shards[(key >> 32) as usize % SHARDS]
    }

    /// Entries currently cached, across all shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().map.len()).sum()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total capacity (as rounded at construction).
    pub fn capacity(&self) -> usize {
        self.per_shard_capacity * SHARDS
    }

    /// Lifetime hit count.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lifetime miss count.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Insert without counting traffic — used by segment replay, which is
    /// restoration, not a request.
    fn restore(&self, key: u64, value: Arc<String>) {
        self.insert_entry(key, value);
    }

    fn insert_entry(&self, key: u64, value: Arc<String>) {
        if self.per_shard_capacity == 0 {
            return;
        }
        let mut shard = self.shard(key).lock();
        shard.clock += 1;
        let clock = shard.clock;
        if !shard.map.contains_key(&key) && shard.map.len() >= self.per_shard_capacity {
            if let Some(&stalest) = shard
                .map
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k)
            {
                shard.map.remove(&stalest);
            }
        }
        shard.map.insert(
            key,
            Entry {
                value,
                last_used: clock,
            },
        );
    }
}

impl CacheStore for MemoryLru {
    fn get(&self, key: u64) -> Option<Arc<String>> {
        if self.per_shard_capacity == 0 {
            self.misses.fetch_add(1, Ordering::Relaxed);
            return None;
        }
        let mut shard = self.shard(key).lock();
        shard.clock += 1;
        let clock = shard.clock;
        match shard.map.get_mut(&key) {
            Some(entry) => {
                entry.last_used = clock;
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(Arc::clone(&entry.value))
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    fn insert(&self, key: u64, value: Arc<String>) {
        self.insert_entry(key, value);
    }

    fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits(),
            misses: self.misses(),
            entries: self.len(),
            capacity: self.capacity(),
        }
    }
}

/// Version tag written on every segment line.
const SEGMENT_VERSION: u64 = 1;

/// FNV-1a 64-bit over `bytes` — the per-line checksum primitive.
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// Render one segment line (no trailing newline): version, key, checksum,
/// then the value verbatim as the **last** field so replay can splice its
/// bytes out without a JSON round-trip (the same trick as `result` in
/// response frames).
fn segment_line(key: u64, value: &str) -> String {
    let sum = fnv1a64(value.as_bytes()) ^ key;
    format!(r#"{{"v":{SEGMENT_VERSION},"key":"{key:016x}","sum":"{sum:016x}","value":{value}}}"#)
}

/// Parse one segment line back into `(key, value)`. Returns `None` for
/// anything malformed or checksum-failing — the caller treats that as the
/// corrupt tail and stops.
fn parse_segment_line(line: &str) -> Option<(u64, String)> {
    let prefix = format!(r#"{{"v":{SEGMENT_VERSION},"key":""#);
    let rest = line.strip_prefix(prefix.as_str())?;
    let (key_hex, rest) = rest.split_at_checked(16)?;
    let key = u64::from_str_radix(key_hex, 16).ok()?;
    let rest = rest.strip_prefix(r#"","sum":""#)?;
    let (sum_hex, rest) = rest.split_at_checked(16)?;
    let sum = u64::from_str_radix(sum_hex, 16).ok()?;
    let value = rest.strip_prefix(r#"","value":"#)?.strip_suffix('}')?;
    if fnv1a64(value.as_bytes()) ^ key != sum {
        return None;
    }
    Some((key, value.to_string()))
}

/// A [`MemoryLru`] backed by an append-only NDJSON segment file.
///
/// Inserts append one checksummed line and flush before returning, so a
/// crash can tear at most the final line. [`PersistentLru::open`] replays
/// the segment into memory (later lines win, and land most-recent in the
/// LRU), stopping at the first corrupt line — a truncated tail costs the
/// torn entry, never the store. The segment is append-only across
/// restarts; memory capacity still bounds what is *served* (replay beyond
/// capacity just evicts the stalest).
pub struct PersistentLru {
    memory: MemoryLru,
    path: PathBuf,
    segment: Mutex<std::fs::File>,
    replayed: usize,
    corrupt_tail_lines: usize,
}

impl PersistentLru {
    /// Open (or create) the segment at `path` and replay it into a memory
    /// LRU of `capacity` entries.
    pub fn open(path: impl AsRef<Path>, capacity: usize) -> std::io::Result<Self> {
        let path = path.as_ref().to_path_buf();
        let memory = MemoryLru::new(capacity);
        let mut replayed = 0usize;
        let mut corrupt_tail_lines = 0usize;
        // Bytes of the clean prefix; everything past it is truncated away
        // so later appends land on a line boundary, not glued to a torn
        // entry.
        let mut clean_bytes = 0u64;
        match std::fs::File::open(&path) {
            Ok(f) => {
                let mut reader = std::io::BufReader::new(f);
                let mut line = String::new();
                loop {
                    line.clear();
                    let n = reader.read_line(&mut line)?;
                    if n == 0 {
                        break;
                    }
                    let trimmed = line.trim_end_matches(['\n', '\r']);
                    if trimmed.is_empty() {
                        clean_bytes += n as u64;
                        continue;
                    }
                    match parse_segment_line(trimmed) {
                        Some((key, value)) => {
                            memory.restore(key, Arc::new(value));
                            replayed += 1;
                            clean_bytes += n as u64;
                        }
                        None => {
                            // Corrupt tail: count this and everything after
                            // it, serve what replayed cleanly.
                            corrupt_tail_lines = 1;
                            while reader.read_line(&mut line)? > 0 {
                                corrupt_tail_lines += 1;
                                line.clear();
                            }
                            break;
                        }
                    }
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
            Err(e) => return Err(e),
        }
        if corrupt_tail_lines > 0 {
            // Drop the torn tail (crash-recovery semantics of an
            // append-only log): the clean prefix is the durable history.
            let f = std::fs::OpenOptions::new().write(true).open(&path)?;
            f.set_len(clean_bytes)?;
        }
        let segment = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)?;
        Ok(PersistentLru {
            memory,
            path,
            segment: Mutex::new(segment),
            replayed,
            corrupt_tail_lines,
        })
    }

    /// Entries restored from the segment at open.
    pub fn replayed(&self) -> usize {
        self.replayed
    }

    /// Lines discarded (and truncated from the file) as the corrupt tail
    /// at open; 0 for a clean segment.
    pub fn corrupt_tail_lines(&self) -> usize {
        self.corrupt_tail_lines
    }

    /// The segment file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Access the in-memory side (entry count, hit/miss counters).
    pub fn memory(&self) -> &MemoryLru {
        &self.memory
    }
}

impl CacheStore for PersistentLru {
    fn get(&self, key: u64) -> Option<Arc<String>> {
        self.memory.get(key)
    }

    fn insert(&self, key: u64, value: Arc<String>) {
        if self.memory.capacity() == 0 {
            return;
        }
        // Append-then-flush under the lock so concurrent inserts never
        // interleave bytes; a torn write can only hit the final line, which
        // replay tolerates. An append failure costs durability for this
        // entry, not the request — the memory insert still happens.
        let line = segment_line(key, &value);
        {
            let mut f = self.segment.lock();
            let _ = f
                .write_all(line.as_bytes())
                .and_then(|()| f.write_all(b"\n"))
                .and_then(|()| f.flush());
        }
        self.memory.insert(key, value);
    }

    fn stats(&self) -> CacheStats {
        self.memory.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn value(s: &str) -> Arc<String> {
        Arc::new(s.to_string())
    }

    fn tmpdir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("gsched-cache-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn get_after_insert_hits() {
        let cache = MemoryLru::new(16);
        assert!(cache.get(7).is_none());
        cache.insert(7, value("seven"));
        assert_eq!(cache.get(7).as_deref().map(String::as_str), Some("seven"));
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 1);
        let stats = cache.stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.entries, 1);
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let cache = MemoryLru::new(0);
        cache.insert(1, value("x"));
        assert!(cache.get(1).is_none());
        assert_eq!(cache.len(), 0);
        assert_eq!(cache.capacity(), 0);
    }

    #[test]
    fn lru_evicts_the_stalest_entry() {
        let cache = MemoryLru::new(SHARDS); // one entry per shard
                                            // Keys in the same shard: same upper bits.
        let k = |i: u64| i; // all in shard 0
        cache.insert(k(1), value("a"));
        cache.insert(k(2), value("b")); // evicts 1 (shard holds one entry)
        assert!(cache.get(k(1)).is_none());
        assert!(cache.get(k(2)).is_some());
    }

    #[test]
    fn recency_refresh_protects_entries() {
        let cache = MemoryLru::new(2 * SHARDS); // two entries per shard
        cache.insert(1, value("a"));
        cache.insert(2, value("b"));
        assert!(cache.get(1).is_some()); // 1 is now the most recent
        cache.insert(3, value("c")); // evicts 2, not 1
        assert!(cache.get(1).is_some());
        assert!(cache.get(2).is_none());
        assert!(cache.get(3).is_some());
    }

    #[test]
    fn concurrent_access_is_safe() {
        let cache = Arc::new(MemoryLru::new(64));
        let handles: Vec<_> = (0..8u64)
            .map(|t| {
                let cache = Arc::clone(&cache);
                std::thread::spawn(move || {
                    for i in 0..500u64 {
                        let key = (t << 32) | (i % 16);
                        cache.insert(key, value("v"));
                        let _ = cache.get(key);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert!(cache.len() <= cache.capacity());
    }

    #[test]
    fn segment_lines_round_trip_exactly() {
        let doc = r#"{"a":[1,2,{"b":null}],"c":0.30000000000000004}"#;
        let line = segment_line(0xdead_beef_cafe_f00d, doc);
        let (key, back) = parse_segment_line(&line).unwrap();
        assert_eq!(key, 0xdead_beef_cafe_f00d);
        assert_eq!(back, doc, "value bytes must survive verbatim");
    }

    #[test]
    fn segment_parse_rejects_corruption() {
        let good = segment_line(42, r#"{"x":1}"#);
        assert!(parse_segment_line(&good).is_some());
        // Flip a byte inside the value: checksum fails.
        let bad = good.replace(r#"{"x":1}"#, r#"{"x":2}"#);
        assert!(parse_segment_line(&bad).is_none());
        // Truncated line: structure fails.
        assert!(parse_segment_line(&good[..good.len() - 3]).is_none());
        assert!(parse_segment_line("").is_none());
        assert!(parse_segment_line("not json").is_none());
    }

    #[test]
    fn persistent_replay_survives_restart() {
        let dir = tmpdir("replay");
        let path = dir.join("segment.ndjson");
        let _ = std::fs::remove_file(&path);
        {
            let store = PersistentLru::open(&path, 16).unwrap();
            assert_eq!(store.replayed(), 0);
            store.insert(1, value(r#"{"one":1}"#));
            store.insert(2, value(r#"{"two":2}"#));
            store.insert(1, value(r#"{"one":"updated"}"#));
        }
        // "Restart": a fresh store over the same segment comes up warm,
        // later lines winning.
        let store = PersistentLru::open(&path, 16).unwrap();
        assert_eq!(store.replayed(), 3);
        assert_eq!(store.corrupt_tail_lines(), 0);
        assert_eq!(store.memory().len(), 2);
        assert_eq!(
            store.get(1).as_deref().map(String::as_str),
            Some(r#"{"one":"updated"}"#)
        );
        assert_eq!(
            store.get(2).as_deref().map(String::as_str),
            Some(r#"{"two":2}"#)
        );
    }

    #[test]
    fn persistent_replay_tolerates_torn_tail() {
        let dir = tmpdir("torn");
        let path = dir.join("segment.ndjson");
        let _ = std::fs::remove_file(&path);
        {
            let store = PersistentLru::open(&path, 16).unwrap();
            store.insert(1, value(r#"{"one":1}"#));
            store.insert(2, value(r#"{"two":2}"#));
        }
        // Tear the final line mid-entry, as a crash mid-append would.
        let text = std::fs::read_to_string(&path).unwrap();
        let torn = &text[..text.len() - 9];
        std::fs::write(&path, torn).unwrap();
        let store = PersistentLru::open(&path, 16).unwrap();
        assert_eq!(store.replayed(), 1, "clean prefix replays");
        assert_eq!(store.corrupt_tail_lines(), 1, "torn tail is counted");
        assert!(store.get(1).is_some());
        assert!(store.get(2).is_none(), "the torn entry is gone");
        // The store keeps working after a torn open: appends still land.
        store.insert(3, value(r#"{"three":3}"#));
        drop(store);
        let store = PersistentLru::open(&path, 16).unwrap();
        assert!(store.get(3).is_some());
    }

    #[test]
    fn persistent_zero_capacity_appends_nothing() {
        let dir = tmpdir("zero");
        let path = dir.join("segment.ndjson");
        let _ = std::fs::remove_file(&path);
        let store = PersistentLru::open(&path, 0).unwrap();
        store.insert(1, value("x"));
        assert!(store.get(1).is_none());
        assert_eq!(std::fs::metadata(&path).unwrap().len(), 0);
    }
}
