//! The long-running solve server.
//!
//! A [`Server`] owns a `TcpListener`, a fixed pool of solver worker
//! threads, and a shared [`CacheStore`]. Connection threads parse
//! request frames, serve cache hits immediately, and enqueue misses for
//! the worker pool; workers solve, render, cache, and publish. All
//! threads are scoped (`crossbeam::scope`) so `run` cannot return with
//! work still borrowing the server.
//!
//! # Concurrency control
//!
//! Three mechanisms keep the server healthy under concurrent traffic:
//!
//! * **Singleflight** — cache misses for the same cache key (operation +
//!   grid flavour + scenario content hash) coalesce onto one in-flight
//!   solve: the first requester (the *leader*) enqueues the job, later
//!   identical requests join as *waiters* on the same `FlightSlot` and
//!   all share the published result. The solve is cancelled only when
//!   the **last** waiter departs; one impatient client never kills work
//!   another client is still waiting for.
//! * **Request batching** — when several sweep jobs are queued, a worker
//!   drains up to `batch_max` of them into a single engine
//!   [`run_batch`] call: one shared thread pool and one shared vacation
//!   cache amortize warm-start state across clients. Per-request point
//!   results are bitwise identical to standalone evaluation (only the
//!   run-dependent `stats.jobs`/`wall_ms` fields reflect the batch).
//! * **Admission control** — when `queue_limit` is set, requests that
//!   would push the queue past the limit are shed with an `overloaded`
//!   error frame instead of being allowed to grow the queue without
//!   bound. Shed counts and the configured limit are exported through
//!   `stats` and `/metrics`.
//!
//! # Lifecycle and degradation
//!
//! * **Deadlines** — each waiter enforces its own deadline while blocked
//!   on a flight; an exceeded deadline yields a `deadline_exceeded`
//!   error frame and the waiter departs (cancelling the solve only if it
//!   was the last one). A result that completes anyway is still cached
//!   for the next caller.
//! * **Client disconnects** — while a request is in flight its connection
//!   thread polls the socket; a hangup departs the flight, and the last
//!   departure cancels the token so workers stop early instead of
//!   solving for nobody.
//! * **Failures** — validation and solver errors (and even worker panics)
//!   become structured error frames; the server itself never dies with a
//!   request.
//! * **Shutdown** — a `shutdown` frame, [`Server::request_shutdown`], or
//!   SIGINT (when [`install_ctrl_c_handler`] was called) stops the accept
//!   loop, drains queued jobs, joins every thread, and returns from `run`.
//!
//! # Persistence
//!
//! With `cache_path` configured the result cache is a
//! [`PersistentLru`]: every insert is appended to an NDJSON segment file
//! and replayed on the next [`Server::bind`], so a restarted server
//! answers previously solved scenarios from cache without re-solving.

use crate::cache::{CacheStore, MemoryLru, PersistentLru};
use crate::protocol::{parse_request, ErrorKind, Op, Request, Response, ScenarioRef, ServiceError};
use crate::render;
use crate::telemetry::{AccessRecord, ExternalStats, Telemetry};
use gsched_core::{solve, SolverOptions};
use gsched_engine::{run_batch, run_sweep, BatchItem, CancelToken, SweepOptions};
use gsched_obs as obs;
use gsched_obs::AccessLog;
use gsched_scenario::{registry, Scenario};
use std::collections::{HashMap, VecDeque};
use std::io::{BufRead, BufReader, ErrorKind as IoErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Validated configuration for [`Server::bind`].
///
/// Construct via [`ServeConfig::builder`]; `Default` gives the same
/// values the builder starts from. Marked non-exhaustive so new knobs
/// can be added without breaking builder users.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct ServeConfig {
    /// Listen address, e.g. `127.0.0.1:7070` (port `0` picks a free port).
    pub addr: String,
    /// Solver worker threads; `0` uses the machine's available parallelism.
    pub workers: usize,
    /// Result-cache capacity in entries; `0` disables caching.
    pub cache_capacity: usize,
    /// Persist the result cache to this NDJSON segment file and replay it
    /// on startup; `None` keeps the cache in memory only.
    pub cache_path: Option<PathBuf>,
    /// Default per-request deadline in milliseconds, applied when a
    /// request does not carry `deadline_ms`; `0` means no default.
    pub default_deadline_ms: u64,
    /// Shed requests once this many jobs are queued (`overloaded` error
    /// frames); `0` leaves the queue unbounded.
    pub queue_limit: usize,
    /// Most queued sweep jobs a worker merges into one engine batch;
    /// `1` disables batching.
    pub batch_max: usize,
    /// Bind an HTTP listener serving Prometheus text exposition at this
    /// address (e.g. `127.0.0.1:9090`); `None` disables the scraper.
    pub metrics_addr: Option<String>,
    /// Write one NDJSON access-log line per request to this file; `None`
    /// disables the log.
    pub access_log: Option<PathBuf>,
    /// Rotate the access log (atomically, to `<path>.1`) once the live
    /// file exceeds this many bytes; `0` never rotates.
    pub access_log_max_bytes: u64,
    /// Kernel backend used by the workers' solves (reported by `stats`).
    pub backend: gsched_linalg::BackendKind,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:7070".to_string(),
            workers: 0,
            cache_capacity: 256,
            cache_path: None,
            default_deadline_ms: 30_000,
            queue_limit: 0,
            batch_max: 8,
            metrics_addr: None,
            access_log: None,
            access_log_max_bytes: 8 * 1024 * 1024,
            backend: gsched_linalg::BackendKind::default(),
        }
    }
}

impl ServeConfig {
    /// Start from the defaults and override selectively.
    pub fn builder() -> ServeConfigBuilder {
        ServeConfigBuilder {
            config: ServeConfig::default(),
        }
    }
}

/// Builder for [`ServeConfig`] with validation at `build` time.
///
/// Mirrors `SolverOptions::builder()`: setters chain, and every
/// misconfiguration is reported as a [`ServiceError`] of kind
/// `bad_request` — the same error shape the wire protocol uses — so CLI
/// flags and programmatic configuration fail identically.
#[derive(Debug, Clone)]
pub struct ServeConfigBuilder {
    config: ServeConfig,
}

impl ServeConfigBuilder {
    /// Listen address (`host:port`; port `0` picks a free port).
    pub fn addr(mut self, addr: impl Into<String>) -> Self {
        self.config.addr = addr.into();
        self
    }

    /// Solver worker threads; `0` uses available parallelism.
    pub fn workers(mut self, workers: usize) -> Self {
        self.config.workers = workers;
        self
    }

    /// Result-cache capacity in entries; `0` disables caching.
    pub fn cache_capacity(mut self, entries: usize) -> Self {
        self.config.cache_capacity = entries;
        self
    }

    /// Persist the cache to this segment file and replay it on startup.
    pub fn cache_path(mut self, path: impl Into<PathBuf>) -> Self {
        self.config.cache_path = Some(path.into());
        self
    }

    /// Default per-request deadline in milliseconds; `0` disables.
    pub fn default_deadline_ms(mut self, ms: u64) -> Self {
        self.config.default_deadline_ms = ms;
        self
    }

    /// Shed requests once this many jobs are queued; `0` = unbounded.
    pub fn queue_limit(mut self, limit: usize) -> Self {
        self.config.queue_limit = limit;
        self
    }

    /// Most queued sweeps merged into one engine batch; `1` disables.
    pub fn batch_max(mut self, max: usize) -> Self {
        self.config.batch_max = max;
        self
    }

    /// Serve Prometheus text exposition on this address.
    pub fn metrics_addr(mut self, addr: impl Into<String>) -> Self {
        self.config.metrics_addr = Some(addr.into());
        self
    }

    /// Append one NDJSON access-log line per request to this file.
    pub fn access_log(mut self, path: impl Into<PathBuf>) -> Self {
        self.config.access_log = Some(path.into());
        self
    }

    /// Rotate the access log past this many bytes; `0` never rotates.
    pub fn access_log_max_bytes(mut self, bytes: u64) -> Self {
        self.config.access_log_max_bytes = bytes;
        self
    }

    /// Kernel backend for the workers' solves.
    pub fn backend(mut self, backend: gsched_linalg::BackendKind) -> Self {
        self.config.backend = backend;
        self
    }

    /// Validate and produce the configuration.
    pub fn build(self) -> Result<ServeConfig, ServiceError> {
        let bad = |msg: String| ServiceError::new(ErrorKind::BadRequest, msg);
        let c = self.config;
        if c.addr.is_empty() {
            return Err(bad("listen address must not be empty".to_string()));
        }
        if let Some(addr) = &c.metrics_addr {
            if addr.is_empty() {
                return Err(bad("metrics address must not be empty".to_string()));
            }
        }
        if c.batch_max == 0 {
            return Err(bad(
                "batch_max must be at least 1 (1 disables batching)".to_string()
            ));
        }
        if c.cache_path.is_some() && c.cache_capacity == 0 {
            return Err(bad(
                "cache_path requires a non-zero cache capacity (persistence with \
                 caching disabled would never store anything)"
                    .to_string(),
            ));
        }
        Ok(c)
    }
}

/// How often blocked threads re-check the shutdown flag.
const POLL_INTERVAL: Duration = Duration::from_millis(50);

/// Set by the SIGINT handler; observed by every running server.
static SIGINT_RECEIVED: AtomicBool = AtomicBool::new(false);

/// Install a process-wide SIGINT (ctrl-c) handler that asks running
/// servers to shut down cleanly. Safe to call more than once. On
/// non-Unix platforms this is a no-op and SIGINT falls back to the
/// platform default.
pub fn install_ctrl_c_handler() {
    #[cfg(unix)]
    {
        extern "C" fn on_sigint(_signum: i32) {
            SIGINT_RECEIVED.store(true, Ordering::SeqCst);
        }
        extern "C" {
            fn signal(signum: i32, handler: usize) -> usize;
        }
        const SIGINT: i32 = 2;
        unsafe {
            signal(SIGINT, on_sigint as extern "C" fn(i32) as usize);
        }
    }
}

/// Source of process-unique request context ids (`0` is reserved for
/// "no context"). Process-wide, not per-server, so parallel test servers
/// sharing the global recorder never collide.
static NEXT_REQUEST_CTX: AtomicU64 = AtomicU64::new(1);

/// What a flight publishes for all of its waiters.
struct FlightResult {
    result: Result<Arc<String>, ServiceError>,
    /// Milliseconds the job sat in the queue (`None` if it never queued,
    /// e.g. a shed request).
    queue_wait_ms: Option<f64>,
    /// Milliseconds the worker spent solving and rendering.
    solve_ms: Option<f64>,
}

/// The rendezvous between one in-flight solve and every connection
/// waiting on it.
///
/// Created by the flight's leader, shared through the server's in-flight
/// map, published exactly once (by a worker, or by the leader on a shed).
struct FlightSlot {
    /// Cancels the underlying solve. Fired when the *last* waiter
    /// departs, or to bound shutdown latency — never by one waiter's
    /// deadline while others still want the result.
    cancel: CancelToken,
    /// Connections currently waiting. Only mutated under the in-flight
    /// map lock, so join/depart decisions are race-free.
    waiters: AtomicU64,
    /// Set once the outcome is published (lock-free fast check).
    done: AtomicBool,
    /// The published outcome; waiters block on `ready` until it is set.
    outcome: Mutex<Option<FlightResult>>,
    ready: Condvar,
}

impl FlightSlot {
    fn new() -> Self {
        FlightSlot {
            cancel: CancelToken::new(),
            waiters: AtomicU64::new(1),
            done: AtomicBool::new(false),
            outcome: Mutex::new(None),
            ready: Condvar::new(),
        }
    }
}

/// One queued unit of solver work (the leader's half of a flight).
struct Job {
    scenario: Scenario,
    op: Op,
    quick: bool,
    cache_key: u64,
    cancel: CancelToken,
    /// Request context of the flight's leader; the worker re-enters it so
    /// solver spans stay attributed to that request.
    ctx: u64,
    /// When the job entered the queue (queue-wait measurement).
    enqueued: Instant,
    reply: Arc<FlightSlot>,
}

#[derive(Default)]
struct JobQueue {
    jobs: Mutex<VecDeque<Job>>,
    ready: Condvar,
}

#[derive(Default)]
struct Stats {
    requests: AtomicU64,
    errors: AtomicU64,
    queue_depth: AtomicU64,
    shed: AtomicU64,
    coalesced: AtomicU64,
    batch_merged: AtomicU64,
}

/// The solve server. See the module docs for the threading model.
pub struct Server {
    listener: TcpListener,
    metrics_listener: Option<TcpListener>,
    workers: usize,
    default_deadline_ms: u64,
    queue_limit: usize,
    batch_max: usize,
    cache: Box<dyn CacheStore>,
    /// Entries replayed from the persistent segment at bind time.
    cache_replayed: u64,
    queue: JobQueue,
    /// In-flight solves by cache key; the singleflight map.
    inflight: Mutex<HashMap<u64, Arc<FlightSlot>>>,
    stats: Stats,
    telemetry: Telemetry,
    access_log: Option<AccessLog>,
    shutdown: AtomicBool,
    solver: SolverOptions,
}

impl Server {
    /// Bind the listen socket (and the metrics socket, when configured)
    /// and prepare (but do not start) the server.
    ///
    /// With `cache_path` set, the persistent segment is replayed here —
    /// a restarted server comes up warm.
    pub fn bind(opts: &ServeConfig) -> std::io::Result<Server> {
        let (cache, replayed): (Box<dyn CacheStore>, u64) = match &opts.cache_path {
            Some(path) => {
                let store = PersistentLru::open(path, opts.cache_capacity)?;
                let replayed = store.replayed() as u64;
                (Box::new(store), replayed)
            }
            None => (Box::new(MemoryLru::new(opts.cache_capacity)), 0),
        };
        Self::bind_with_store(opts, cache, replayed)
    }

    /// [`Server::bind`] with a caller-provided cache store.
    ///
    /// This is the seam tests use to inject failing or instrumented
    /// stores; `replayed` is reported as `cache_replayed` in stats.
    pub fn bind_with_store(
        opts: &ServeConfig,
        cache: Box<dyn CacheStore>,
        replayed: u64,
    ) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&opts.addr)?;
        listener.set_nonblocking(true)?;
        let metrics_listener = match &opts.metrics_addr {
            Some(addr) => {
                let l = TcpListener::bind(addr)?;
                l.set_nonblocking(true)?;
                Some(l)
            }
            None => None,
        };
        let access_log = match &opts.access_log {
            Some(path) => Some(AccessLog::open(path, opts.access_log_max_bytes)?),
            None => None,
        };
        let workers = if opts.workers > 0 {
            opts.workers
        } else {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        };
        obs::gauge_set(obs::names::SERVICE_CACHE_REPLAYED, replayed as f64);
        Ok(Server {
            listener,
            metrics_listener,
            workers,
            default_deadline_ms: opts.default_deadline_ms,
            queue_limit: opts.queue_limit,
            batch_max: opts.batch_max,
            cache,
            cache_replayed: replayed,
            queue: JobQueue::default(),
            inflight: Mutex::new(HashMap::new()),
            stats: Stats::default(),
            telemetry: Telemetry::new(),
            access_log,
            shutdown: AtomicBool::new(false),
            // The same defaults `gsched solve` uses, so served results are
            // byte-identical to local solves; only the kernel backend is
            // taken from the configuration.
            solver: {
                let mut solver = SolverOptions::default();
                solver.qbd.backend = opts.backend;
                solver
            },
        })
    }

    /// The bound address (useful after binding port `0`).
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// The bound metrics address, when `metrics_addr` was configured.
    pub fn metrics_local_addr(&self) -> Option<SocketAddr> {
        self.metrics_listener
            .as_ref()
            .and_then(|l| l.local_addr().ok())
    }

    /// Worker threads the pool will run.
    pub fn worker_count(&self) -> usize {
        self.workers
    }

    /// Entries replayed from the persistent segment at bind time.
    pub fn cache_replayed(&self) -> u64 {
        self.cache_replayed
    }

    /// Ask the server to stop: the accept loop closes, queued work drains,
    /// and [`Server::run`] returns. Callable from any thread.
    pub fn request_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
    }

    fn shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst) || SIGINT_RECEIVED.load(Ordering::SeqCst)
    }

    /// Serve until shutdown is requested (frame, [`Server::request_shutdown`],
    /// or SIGINT). Blocks the calling thread; workers and connection
    /// handlers run on scoped threads and are all joined before this
    /// returns.
    pub fn run(&self) -> std::io::Result<()> {
        let _span = obs::span("service.run");
        crossbeam::scope(|s| {
            for _ in 0..self.workers {
                s.spawn(|_| self.worker_loop());
            }
            if self.metrics_listener.is_some() {
                s.spawn(|_| self.metrics_loop());
            }
            loop {
                if self.shutting_down() {
                    break;
                }
                match self.listener.accept() {
                    Ok((stream, _)) => {
                        obs::counter_add(obs::names::SERVICE_CONNECTIONS, 1);
                        self.telemetry.record_connection();
                        s.spawn(move |_| self.handle_connection(stream));
                    }
                    Err(e)
                        if e.kind() == IoErrorKind::WouldBlock
                            || e.kind() == IoErrorKind::TimedOut =>
                    {
                        std::thread::sleep(POLL_INTERVAL);
                    }
                    // Transient accept errors (e.g. aborted handshakes)
                    // must not kill the server.
                    Err(_) => std::thread::sleep(POLL_INTERVAL),
                }
            }
            self.queue.ready.notify_all();
        })
        .expect("service threads join cleanly");
        Ok(())
    }

    // ---- worker side ----

    /// Pop the next job, draining compatible queued sweeps behind it into
    /// one batch. `None` means shutdown with an empty queue.
    fn next_batch(&self) -> Option<Vec<Job>> {
        let mut jobs = self.queue.jobs.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if let Some(first) = jobs.pop_front() {
                let mut batch = vec![first];
                if batch[0].op == Op::Sweep && self.batch_max > 1 {
                    // Pull further sweeps from anywhere in the queue;
                    // non-sweep jobs keep their relative order.
                    let mut i = 0;
                    while i < jobs.len() && batch.len() < self.batch_max {
                        if jobs[i].op == Op::Sweep {
                            if let Some(job) = jobs.remove(i) {
                                batch.push(job);
                            }
                        } else {
                            i += 1;
                        }
                    }
                }
                return Some(batch);
            }
            if self.shutting_down() {
                return None;
            }
            let (guard, _) = self
                .queue
                .ready
                .wait_timeout(jobs, POLL_INTERVAL)
                .unwrap_or_else(|e| e.into_inner());
            jobs = guard;
        }
    }

    fn worker_loop(&self) {
        loop {
            let Some(batch) = self.next_batch() else {
                return;
            };
            let mut queue_waits = Vec::with_capacity(batch.len());
            for job in &batch {
                let depth = self.stats.queue_depth.fetch_sub(1, Ordering::Relaxed) - 1;
                obs::gauge_set(obs::names::SERVICE_QUEUE_DEPTH, depth as f64);
                let queue_wait_ms = job.enqueued.elapsed().as_secs_f64() * 1e3;
                self.telemetry.record_queue_wait(queue_wait_ms);
                obs::observe(obs::names::SERVICE_QUEUE_WAIT_MS, queue_wait_ms);
                queue_waits.push(queue_wait_ms);
            }
            if batch.len() > 1 {
                let merged = (batch.len() - 1) as u64;
                self.stats.batch_merged.fetch_add(merged, Ordering::Relaxed);
                obs::counter_add(obs::names::SERVICE_BATCH_MERGED, merged);
            }
            let _busy = self.telemetry.worker_busy();
            let t0 = Instant::now();
            // A panic inside numerical code must degrade to error frames,
            // never take the whole server down.
            let results: Vec<Result<Arc<String>, ServiceError>> = if batch.len() == 1 {
                let job = &batch[0];
                // Re-enter the originating request's context so every span
                // the solve opens here (service.solve, engine.sweep.*,
                // core/qbd internals) carries its request_id in the trace
                // export.
                let _ctx = obs::context_enter(job.ctx);
                vec![
                    catch_unwind(AssertUnwindSafe(|| self.process_job(job))).unwrap_or_else(|_| {
                        Err(ServiceError::new(
                            ErrorKind::Internal,
                            "worker panicked while processing the request",
                        ))
                    }),
                ]
            } else {
                catch_unwind(AssertUnwindSafe(|| self.process_batch(&batch))).unwrap_or_else(|_| {
                    batch
                        .iter()
                        .map(|_| {
                            Err(ServiceError::new(
                                ErrorKind::Internal,
                                "worker panicked while processing the batch",
                            ))
                        })
                        .collect()
                })
            };
            // Batched jobs all report the batch wall clock: the work was
            // genuinely shared and no finer attribution exists.
            let solve_ms = t0.elapsed().as_secs_f64() * 1e3;
            for ((job, result), queue_wait_ms) in batch.iter().zip(results).zip(queue_waits) {
                self.telemetry.record_solve(solve_ms);
                obs::observe(obs::names::SERVICE_SOLVE_MS, solve_ms);
                self.publish(
                    job.cache_key,
                    &job.reply,
                    FlightResult {
                        result,
                        queue_wait_ms: Some(queue_wait_ms),
                        solve_ms: Some(solve_ms),
                    },
                );
            }
        }
    }

    /// Publish a flight's outcome to every waiter and retire the flight.
    ///
    /// The map entry is removed only if it still points at this slot — a
    /// fresh flight for the same key (created after every earlier waiter
    /// departed) must not be disturbed.
    fn publish(&self, key: u64, slot: &Arc<FlightSlot>, outcome: FlightResult) {
        {
            let mut published = slot.outcome.lock().unwrap_or_else(|e| e.into_inner());
            *published = Some(outcome);
        }
        slot.done.store(true, Ordering::SeqCst);
        slot.ready.notify_all();
        let mut map = self.inflight.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(entry) = map.get(&key) {
            if Arc::ptr_eq(entry, slot) {
                map.remove(&key);
            }
        }
    }

    fn process_job(&self, job: &Job) -> Result<Arc<String>, ServiceError> {
        if job.cancel.is_cancelled() {
            return Err(cancel_error(&job.cancel));
        }
        let _span = obs::span(format!("service.{}", job.op.as_str()));
        let rendered =
            match job.op {
                Op::Solve => {
                    let model = job.scenario.build_model().map_err(|e| {
                        ServiceError::new(ErrorKind::InvalidScenario, e.to_string())
                    })?;
                    let sol = solve(&model, &self.solver)
                        .map_err(|e| ServiceError::new(ErrorKind::SolveFailed, e.to_string()))?;
                    render::solution_json(&sol)
                }
                Op::Sweep => {
                    let req = job.scenario.sweep_request(job.quick).map_err(|e| {
                        ServiceError::new(ErrorKind::InvalidScenario, e.to_string())
                    })?;
                    let classes = job.scenario.machine.classes.len();
                    // One core per request: concurrency comes from the worker
                    // pool, cancellation from the shared token.
                    let opts = SweepOptions::default()
                        .with_jobs(1)
                        .with_solver(self.solver.clone())
                        .with_cancel(job.cancel.clone());
                    let report = run_sweep(&req, &opts);
                    if job.cancel.is_cancelled() {
                        return Err(cancel_error(&job.cancel));
                    }
                    format!(
                        "[{}]",
                        render::sweep_report_json(&job.scenario.name, &report, classes)
                    )
                }
                // Stats/shutdown never reach the queue.
                Op::Stats | Op::Shutdown => {
                    return Err(ServiceError::new(
                        ErrorKind::Internal,
                        "control operation routed to a worker",
                    ))
                }
            };
        let rendered = Arc::new(rendered);
        // Cache even when the deadline has passed: the work is done and
        // the next caller should benefit.
        self.cache.insert(job.cache_key, rendered.clone());
        if job.cancel.is_cancelled() {
            return Err(cancel_error(&job.cancel));
        }
        Ok(rendered)
    }

    /// Evaluate a drained batch of sweep jobs through the engine's shared
    /// batch pool. Per-job failures (validation, cancellation) degrade to
    /// per-job error outcomes; the rest still batch.
    fn process_batch(&self, jobs: &[Job]) -> Vec<Result<Arc<String>, ServiceError>> {
        let _span = obs::span("service.sweep");
        let mut out: Vec<Result<Arc<String>, ServiceError>> = jobs
            .iter()
            .map(|_| {
                Err(ServiceError::new(
                    ErrorKind::Internal,
                    "batch slot was not filled",
                ))
            })
            .collect();
        let mut requests = Vec::with_capacity(jobs.len());
        for (i, job) in jobs.iter().enumerate() {
            if job.cancel.is_cancelled() {
                out[i] = Err(cancel_error(&job.cancel));
                continue;
            }
            match job.scenario.sweep_request(job.quick) {
                Ok(req) => requests.push((i, req)),
                Err(e) => {
                    out[i] = Err(ServiceError::new(ErrorKind::InvalidScenario, e.to_string()))
                }
            }
        }
        let items: Vec<BatchItem<'_>> = requests
            .iter()
            .map(|(i, req)| {
                BatchItem::new(req)
                    .with_cancel(jobs[*i].cancel.clone())
                    .with_ctx(jobs[*i].ctx)
            })
            .collect();
        let opts = SweepOptions::default()
            .with_jobs(items.len())
            .with_solver(self.solver.clone());
        let reports = run_batch(&items, &opts);
        for ((i, _), report) in requests.iter().zip(reports) {
            let job = &jobs[*i];
            if job.cancel.is_cancelled() {
                out[*i] = Err(cancel_error(&job.cancel));
                continue;
            }
            let classes = job.scenario.machine.classes.len();
            let rendered = Arc::new(format!(
                "[{}]",
                render::sweep_report_json(&job.scenario.name, &report, classes)
            ));
            self.cache.insert(job.cache_key, rendered.clone());
            out[*i] = Ok(rendered);
        }
        out
    }

    // ---- connection side ----

    fn handle_connection(&self, stream: TcpStream) {
        let _ = stream.set_nodelay(true);
        let _ = stream.set_read_timeout(Some(POLL_INTERVAL));
        let Ok(read_half) = stream.try_clone() else {
            return;
        };
        let mut reader = BufReader::new(read_half);
        let mut writer = stream;
        let mut buf: Vec<u8> = Vec::new();
        loop {
            if self.shutting_down() {
                return;
            }
            match reader.read_until(b'\n', &mut buf) {
                Ok(0) => return, // client closed
                Ok(_) => {
                    let line = String::from_utf8_lossy(&buf).into_owned();
                    buf.clear();
                    let line = line.trim();
                    if line.is_empty() {
                        continue;
                    }
                    let Some(reply) = self.handle_request(&writer, line) else {
                        return; // client vanished mid-request
                    };
                    if writer
                        .write_all(reply.as_bytes())
                        .and_then(|()| writer.write_all(b"\n"))
                        .is_err()
                    {
                        return;
                    }
                }
                // Timeout with a partial line: the bytes read so far stay
                // in `buf`; keep accumulating.
                Err(e)
                    if e.kind() == IoErrorKind::WouldBlock || e.kind() == IoErrorKind::TimedOut =>
                {
                    continue;
                }
                Err(_) => return,
            }
        }
    }

    /// Process one request line; `None` means the client disconnected and
    /// no reply can be delivered.
    ///
    /// Allocates the request's trace context (its `request_id`), times the
    /// request end to end, updates per-op telemetry, and appends the
    /// access-log line — for every outcome, including dropped clients.
    fn handle_request(&self, stream: &TcpStream, line: &str) -> Option<String> {
        let ctx = NEXT_REQUEST_CTX.fetch_add(1, Ordering::Relaxed);
        let _ctx_guard = obs::context_enter(ctx);
        let t0 = Instant::now();
        let _span = obs::span("service.request");
        self.stats.requests.fetch_add(1, Ordering::Relaxed);
        obs::counter_add(obs::names::SERVICE_REQUESTS, 1);
        let mut access = AccessRecord::new(ctx);
        let reply = self.dispatch(stream, line, &mut access);
        let latency_ms = t0.elapsed().as_secs_f64() * 1e3;
        access.latency_ms = latency_ms;
        if reply.is_none() {
            access.outcome = "dropped".to_string();
        }
        let errored = access.outcome.starts_with("error:");
        self.telemetry
            .record_request(access.op_idx(), latency_ms, errored);
        obs::observe(obs::names::SERVICE_REQUEST_LATENCY_MS, latency_ms);
        if let Some(log) = &self.access_log {
            // Log failures must not take down request handling.
            let _ = log.append(&access.to_json());
        }
        reply
    }

    /// The op dispatch behind [`Server::handle_request`], filling `access`
    /// as facts about the request become known.
    ///
    /// Every reply is rendered at the request's own protocol version:
    /// v1 requests get the legacy frame layout, v2 requests get frames
    /// carrying `proto`. Unparseable requests (version unknowable) are
    /// answered in v1, which every client understands.
    fn dispatch(
        &self,
        stream: &TcpStream,
        line: &str,
        access: &mut AccessRecord,
    ) -> Option<String> {
        let req = match parse_request(line) {
            Ok(req) => req,
            Err(e) => {
                access.outcome = format!("error:{}", e.kind.as_str());
                return Some(self.error_reply(1, None, e));
            }
        };
        access.op = req.op.as_str();
        access.client_id = req.id.clone();
        let id = req.id.clone();
        match req.op {
            Op::Stats => Some(
                Response::ok(req.proto, id, Op::Stats, false, Arc::new(self.stats_json())).render(),
            ),
            Op::Shutdown => {
                self.request_shutdown();
                self.queue.ready.notify_all();
                Some(
                    Response::ok(
                        req.proto,
                        id,
                        Op::Shutdown,
                        false,
                        Arc::new(r#"{"stopping":true}"#.to_string()),
                    )
                    .render(),
                )
            }
            Op::Solve | Op::Sweep => {
                if self.shutting_down() {
                    let e = ServiceError::new(ErrorKind::ShuttingDown, "server is shutting down");
                    access.outcome = format!("error:{}", e.kind.as_str());
                    return Some(self.error_reply(req.proto, id, e));
                }
                let scenario = match resolve_scenario(req.scenario.as_ref()) {
                    Ok(sc) => sc,
                    Err(e) => {
                        access.outcome = format!("error:{}", e.kind.as_str());
                        return Some(self.error_reply(req.proto, id, e));
                    }
                };
                if !scenario.name.is_empty() {
                    access.scenario = Some(scenario.name.clone());
                }
                let content_hash = scenario.content_hash();
                access.scenario_hash = Some(content_hash);
                let key = cache_key(req.op, req.quick, content_hash);
                if let Some(hit) = self.cache.get(key) {
                    obs::counter_add(obs::names::SERVICE_CACHE_HITS, 1);
                    access.cached = true;
                    return Some(Response::ok(req.proto, id, req.op, true, hit).render());
                }
                obs::counter_add(obs::names::SERVICE_CACHE_MISSES, 1);
                let outcome = self.dispatch_and_wait(stream, &req, scenario, key, access)?;
                Some(match outcome {
                    Ok(result) => Response::ok(req.proto, id, req.op, false, result).render(),
                    Err(e) => {
                        access.outcome = format!("error:{}", e.kind.as_str());
                        self.error_reply(req.proto, id, e)
                    }
                })
            }
        }
    }

    /// Join (or lead) the singleflight for `key` and wait for its result,
    /// watching for client disconnects. `None` means the client is gone.
    /// Queue-wait and solve times measured by the worker are copied into
    /// `access`.
    #[allow(clippy::type_complexity)]
    fn dispatch_and_wait(
        &self,
        stream: &TcpStream,
        req: &Request,
        scenario: Scenario,
        key: u64,
        access: &mut AccessRecord,
    ) -> Option<Result<Arc<String>, ServiceError>> {
        let deadline_ms = req.deadline_ms.unwrap_or(self.default_deadline_ms);
        let deadline =
            (deadline_ms > 0).then(|| Instant::now() + Duration::from_millis(deadline_ms));
        // Join an identical in-flight solve, or lead a new one.
        let (slot, leader) = {
            let mut map = self.inflight.lock().unwrap_or_else(|e| e.into_inner());
            match map.get(&key) {
                Some(existing) => {
                    existing.waiters.fetch_add(1, Ordering::SeqCst);
                    (existing.clone(), false)
                }
                None => {
                    let slot = Arc::new(FlightSlot::new());
                    map.insert(key, slot.clone());
                    (slot, true)
                }
            }
        };
        if leader {
            if let Err(e) = self.try_enqueue(req, scenario, key, &slot, access.ctx) {
                // Publish the shed to the slot (not just this caller) so
                // followers that raced in behind us see the same outcome.
                self.publish(
                    key,
                    &slot,
                    FlightResult {
                        result: Err(e),
                        queue_wait_ms: None,
                        solve_ms: None,
                    },
                );
            }
        } else {
            self.stats.coalesced.fetch_add(1, Ordering::Relaxed);
            obs::counter_add(obs::names::SERVICE_SINGLEFLIGHT_COALESCED, 1);
        }
        self.wait_for_flight(stream, &slot, key, deadline, access)
    }

    /// Enqueue the leader's job, shedding instead when the queue is at
    /// its configured limit. Admission is decided under the queue lock so
    /// the limit is exact.
    fn try_enqueue(
        &self,
        req: &Request,
        scenario: Scenario,
        key: u64,
        slot: &Arc<FlightSlot>,
        ctx: u64,
    ) -> Result<(), ServiceError> {
        let mut jobs = self.queue.jobs.lock().unwrap_or_else(|e| e.into_inner());
        if self.queue_limit > 0 && jobs.len() >= self.queue_limit {
            self.stats.shed.fetch_add(1, Ordering::Relaxed);
            obs::counter_add(obs::names::SERVICE_SHED, 1);
            return Err(ServiceError::new(
                ErrorKind::Overloaded,
                format!(
                    "queue is full ({} of {} jobs); retry later",
                    jobs.len(),
                    self.queue_limit
                ),
            ));
        }
        // Count the job before it becomes visible to workers, so their
        // decrement can never underflow the gauge.
        let depth = self.stats.queue_depth.fetch_add(1, Ordering::Relaxed) + 1;
        obs::gauge_set(obs::names::SERVICE_QUEUE_DEPTH, depth as f64);
        jobs.push_back(Job {
            scenario,
            op: req.op,
            quick: req.quick,
            cache_key: key,
            cancel: slot.cancel.clone(),
            ctx,
            enqueued: Instant::now(),
            reply: slot.clone(),
        });
        drop(jobs);
        self.queue.ready.notify_one();
        Ok(())
    }

    /// Block on a flight until its outcome is published, this waiter's
    /// own deadline passes, or the client hangs up. Departing waiters
    /// cancel the solve only when they are the last one still interested.
    fn wait_for_flight(
        &self,
        stream: &TcpStream,
        slot: &Arc<FlightSlot>,
        key: u64,
        deadline: Option<Instant>,
        access: &mut AccessRecord,
    ) -> Option<Result<Arc<String>, ServiceError>> {
        let mut outcome = slot.outcome.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if let Some(published) = outcome.as_ref() {
                access.queue_wait_ms = published.queue_wait_ms;
                access.solve_ms = published.solve_ms;
                return Some(published.result.clone());
            }
            let (guard, _) = slot
                .ready
                .wait_timeout(outcome, POLL_INTERVAL)
                .unwrap_or_else(|e| e.into_inner());
            outcome = guard;
            if outcome.is_some() {
                continue;
            }
            if client_gone(stream) {
                // Nobody is listening on this connection; leave the
                // flight (the solve continues if others still wait).
                drop(outcome);
                self.depart(key, slot);
                obs::counter_add(obs::names::SERVICE_CANCELLED_DISCONNECTS, 1);
                return None;
            }
            if let Some(d) = deadline {
                if Instant::now() >= d {
                    drop(outcome);
                    self.depart(key, slot);
                    return Some(Err(ServiceError::new(
                        ErrorKind::DeadlineExceeded,
                        "request exceeded its deadline",
                    )));
                }
            }
            if self.shutting_down() {
                // Bound shutdown latency: abandon between points. The
                // worker still publishes (a cancelled error), so waiters
                // drain normally.
                slot.cancel.cancel();
            }
        }
    }

    /// Remove one waiter from a flight. The last waiter to leave an
    /// unfinished flight cancels the solve and retires the map entry so a
    /// later identical request starts fresh.
    fn depart(&self, key: u64, slot: &Arc<FlightSlot>) {
        let mut map = self.inflight.lock().unwrap_or_else(|e| e.into_inner());
        if slot.waiters.fetch_sub(1, Ordering::SeqCst) == 1 {
            if !slot.done.load(Ordering::SeqCst) {
                slot.cancel.cancel();
            }
            if let Some(entry) = map.get(&key) {
                if Arc::ptr_eq(entry, slot) {
                    map.remove(&key);
                }
            }
        }
    }

    fn error_reply(&self, proto: u8, id: Option<String>, error: ServiceError) -> String {
        self.stats.errors.fetch_add(1, Ordering::Relaxed);
        obs::counter_add(obs::names::SERVICE_ERRORS, 1);
        Response::error(proto, id, error).render()
    }

    /// Server-owned counters the telemetry reports fold in.
    fn external_stats(&self) -> ExternalStats {
        let cache = self.cache.stats();
        ExternalStats {
            workers: self.workers,
            queue_depth: self.stats.queue_depth.load(Ordering::Relaxed),
            queue_limit: self.queue_limit,
            requests: self.stats.requests.load(Ordering::Relaxed),
            errors: self.stats.errors.load(Ordering::Relaxed),
            shed: self.stats.shed.load(Ordering::Relaxed),
            coalesced: self.stats.coalesced.load(Ordering::Relaxed),
            batch_merged: self.stats.batch_merged.load(Ordering::Relaxed),
            cache_hits: cache.hits,
            cache_misses: cache.misses,
            cache_entries: cache.entries,
            cache_capacity: cache.capacity,
            cache_replayed: self.cache_replayed,
            backend: self.solver.qbd.backend.as_str(),
            r_solver: self.solver.qbd.method.as_str(),
        }
    }

    /// The `stats` result document (see [`Telemetry::stats_json`]).
    fn stats_json(&self) -> String {
        self.telemetry.stats_json(&self.external_stats())
    }

    // ---- metrics exposition side ----

    /// Accept loop of the `--metrics-addr` listener. Each connection gets
    /// one HTTP response and is closed; scrapers reconnect per scrape.
    fn metrics_loop(&self) {
        let listener = self
            .metrics_listener
            .as_ref()
            .expect("metrics loop requires a bound listener");
        loop {
            if self.shutting_down() {
                return;
            }
            match listener.accept() {
                Ok((stream, _)) => {
                    // A misbehaving scraper only loses its own response.
                    let _ = self.serve_metrics_connection(stream);
                }
                Err(e)
                    if e.kind() == IoErrorKind::WouldBlock || e.kind() == IoErrorKind::TimedOut =>
                {
                    std::thread::sleep(POLL_INTERVAL)
                }
                Err(_) => std::thread::sleep(POLL_INTERVAL),
            }
        }
    }

    /// Answer one HTTP request on the metrics socket with Prometheus text
    /// exposition (`GET /metrics`, with `/` accepted as an alias).
    fn serve_metrics_connection(&self, mut stream: TcpStream) -> std::io::Result<()> {
        stream.set_read_timeout(Some(Duration::from_millis(500)))?;
        let mut head = Vec::new();
        let mut buf = [0u8; 1024];
        // Read until the end of the request head; the body (none is
        // expected for GET) is ignored.
        loop {
            match stream.read(&mut buf) {
                Ok(0) => break,
                Ok(n) => {
                    head.extend_from_slice(&buf[..n]);
                    if head.windows(4).any(|w| w == b"\r\n\r\n")
                        || head.windows(2).any(|w| w == b"\n\n")
                        || head.len() > 8192
                    {
                        break;
                    }
                }
                Err(e)
                    if e.kind() == IoErrorKind::WouldBlock || e.kind() == IoErrorKind::TimedOut =>
                {
                    break
                }
                Err(e) => return Err(e),
            }
        }
        let head = String::from_utf8_lossy(&head);
        let path = head.split_whitespace().nth(1).unwrap_or("/");
        let (status, body) = if path == "/metrics" || path == "/" {
            ("200 OK", self.telemetry.prometheus(&self.external_stats()))
        } else {
            ("404 Not Found", "not found\n".to_string())
        };
        let response = format!(
            "HTTP/1.0 {status}\r\nContent-Type: text/plain; version=0.0.4; charset=utf-8\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
            body.len(),
        );
        stream.write_all(response.as_bytes())
    }
}

/// Map a fired token to the right error: deadline if one was set and has
/// passed, explicit cancellation otherwise.
fn cancel_error(token: &CancelToken) -> ServiceError {
    match token.deadline() {
        Some(deadline) if Instant::now() >= deadline => {
            ServiceError::new(ErrorKind::DeadlineExceeded, "request exceeded its deadline")
        }
        _ => ServiceError::new(ErrorKind::Cancelled, "request was cancelled"),
    }
}

/// Resolve the request's scenario reference against the registry.
fn resolve_scenario(sref: Option<&ScenarioRef>) -> Result<Scenario, ServiceError> {
    match sref {
        Some(ScenarioRef::Name(name)) => registry::lookup(name).ok_or_else(|| {
            ServiceError::new(
                ErrorKind::UnknownScenario,
                format!(
                    "unknown scenario {name:?} (registry: {})",
                    registry::NAMES.join(", ")
                ),
            )
        }),
        Some(ScenarioRef::Inline(sc)) => Ok((**sc).clone()),
        // parse_request guarantees a scenario for solve/sweep.
        None => Err(ServiceError::new(ErrorKind::BadRequest, "missing scenario")),
    }
}

/// Fold the operation and grid flavour into the scenario's content hash
/// (splitmix64 finalizer, so shard selection sees well-mixed bits).
fn cache_key(op: Op, quick: bool, content_hash: u64) -> u64 {
    let tag: u64 = match (op, quick) {
        (Op::Sweep, false) => 2,
        (Op::Sweep, true) => 3,
        _ => 1, // solve has no grid; quick is irrelevant
    };
    let mut x = content_hash ^ tag.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^= x >> 31;
    x
}

/// True when the peer of `stream` has hung up (without consuming data a
/// pipelined client may already have sent).
fn client_gone(stream: &TcpStream) -> bool {
    if stream.set_nonblocking(true).is_err() {
        return true;
    }
    let mut probe = [0u8; 1];
    let gone = match stream.peek(&mut probe) {
        Ok(0) => true,  // orderly shutdown
        Ok(_) => false, // next pipelined request waiting
        Err(e) => !matches!(e.kind(), IoErrorKind::WouldBlock | IoErrorKind::TimedOut),
    };
    // Back to blocking mode; the configured read timeout still applies.
    let _ = stream.set_nonblocking(false);
    gone
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cache_key_separates_ops_and_grids() {
        let h = 0xDEADBEEFu64;
        let solve = cache_key(Op::Solve, false, h);
        assert_eq!(solve, cache_key(Op::Solve, true, h));
        let sweep = cache_key(Op::Sweep, false, h);
        let sweep_quick = cache_key(Op::Sweep, true, h);
        assert_ne!(solve, sweep);
        assert_ne!(sweep, sweep_quick);
        assert_ne!(cache_key(Op::Solve, false, h + 1), solve);
    }

    #[test]
    fn bind_on_port_zero_reports_addr() {
        let config = ServeConfig::builder()
            .addr("127.0.0.1:0")
            .workers(2)
            .build()
            .unwrap();
        let server = Server::bind(&config).unwrap();
        let addr = server.local_addr().unwrap();
        assert_ne!(addr.port(), 0);
        assert_eq!(server.worker_count(), 2);
        assert_eq!(server.cache_replayed(), 0);
    }

    #[test]
    fn builder_defaults_match_default() {
        let built = ServeConfig::builder().build().unwrap();
        let defaults = ServeConfig::default();
        assert_eq!(built.addr, defaults.addr);
        assert_eq!(built.cache_capacity, defaults.cache_capacity);
        assert_eq!(built.queue_limit, defaults.queue_limit);
        assert_eq!(built.batch_max, defaults.batch_max);
    }

    #[test]
    fn builder_rejects_misconfiguration_with_bad_request() {
        let cases = [
            ServeConfig::builder().addr(""),
            ServeConfig::builder().metrics_addr(""),
            ServeConfig::builder().batch_max(0),
            ServeConfig::builder()
                .cache_path("/tmp/seg")
                .cache_capacity(0),
        ];
        for builder in cases {
            let err = builder.build().unwrap_err();
            assert_eq!(err.kind, ErrorKind::BadRequest, "{}", err.message);
        }
    }

    #[test]
    fn builder_accepts_full_configuration() {
        let config = ServeConfig::builder()
            .addr("127.0.0.1:0")
            .workers(4)
            .cache_capacity(64)
            .cache_path("/tmp/gsched-cache.ndjson")
            .default_deadline_ms(5_000)
            .queue_limit(32)
            .batch_max(4)
            .metrics_addr("127.0.0.1:0")
            .access_log("/tmp/access.ndjson")
            .access_log_max_bytes(1024)
            .build()
            .unwrap();
        assert_eq!(config.workers, 4);
        assert_eq!(config.queue_limit, 32);
        assert_eq!(config.batch_max, 4);
        assert_eq!(
            config.cache_path.as_deref(),
            Some(std::path::Path::new("/tmp/gsched-cache.ndjson"))
        );
    }
}
