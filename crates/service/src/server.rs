//! The long-running solve server.
//!
//! A [`Server`] owns a `TcpListener`, a fixed pool of solver worker
//! threads, and a sharded [`ResultCache`]. Connection threads parse
//! request frames, serve cache hits immediately, and enqueue misses for
//! the worker pool; workers solve, render, cache, and reply. All threads
//! are scoped (`crossbeam::scope`) so `run` cannot return with work still
//! borrowing the server.
//!
//! # Lifecycle and degradation
//!
//! * **Deadlines** — each request carries (or inherits) a deadline; the
//!   engine's [`CancelToken`] enforces it between sweep points and the
//!   worker checks it around whole solves. An exceeded deadline yields a
//!   `deadline_exceeded` error frame; if the result happened to complete
//!   it is still cached for the next caller.
//! * **Client disconnects** — while a request is in flight its connection
//!   thread polls the socket; a hangup cancels the token so workers stop
//!   early instead of solving for nobody.
//! * **Failures** — validation and solver errors (and even worker panics)
//!   become structured error frames; the server itself never dies with a
//!   request.
//! * **Shutdown** — a `shutdown` frame, [`Server::request_shutdown`], or
//!   SIGINT (when [`install_ctrl_c_handler`] was called) stops the accept
//!   loop, drains queued jobs, joins every thread, and returns from `run`.

use crate::cache::ResultCache;
use crate::protocol::{
    error_frame, ok_frame, parse_request, ErrorKind, Op, Request, ScenarioRef, ServiceError,
};
use crate::render;
use crate::telemetry::{AccessRecord, ExternalStats, Telemetry};
use gsched_core::{solve, SolverOptions};
use gsched_engine::{run_sweep, CancelToken, SweepOptions};
use gsched_obs as obs;
use gsched_obs::AccessLog;
use gsched_scenario::{registry, Scenario};
use std::collections::VecDeque;
use std::io::{BufRead, BufReader, ErrorKind as IoErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

/// Configuration for [`Server::bind`].
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Listen address, e.g. `127.0.0.1:7070` (port `0` picks a free port).
    pub addr: String,
    /// Solver worker threads; `0` uses the machine's available parallelism.
    pub workers: usize,
    /// Result-cache capacity in entries; `0` disables caching.
    pub cache_capacity: usize,
    /// Default per-request deadline in milliseconds, applied when a
    /// request does not carry `deadline_ms`; `0` means no default.
    pub default_deadline_ms: u64,
    /// Bind an HTTP listener serving Prometheus text exposition at this
    /// address (e.g. `127.0.0.1:9090`); `None` disables the scraper.
    pub metrics_addr: Option<String>,
    /// Write one NDJSON access-log line per request to this file; `None`
    /// disables the log.
    pub access_log: Option<std::path::PathBuf>,
    /// Rotate the access log (atomically, to `<path>.1`) once the live
    /// file exceeds this many bytes; `0` never rotates.
    pub access_log_max_bytes: u64,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            addr: "127.0.0.1:7070".to_string(),
            workers: 0,
            cache_capacity: 256,
            default_deadline_ms: 30_000,
            metrics_addr: None,
            access_log: None,
            access_log_max_bytes: 8 * 1024 * 1024,
        }
    }
}

/// How often blocked threads re-check the shutdown flag.
const POLL_INTERVAL: Duration = Duration::from_millis(50);

/// Set by the SIGINT handler; observed by every running server.
static SIGINT_RECEIVED: AtomicBool = AtomicBool::new(false);

/// Install a process-wide SIGINT (ctrl-c) handler that asks running
/// servers to shut down cleanly. Safe to call more than once. On
/// non-Unix platforms this is a no-op and SIGINT falls back to the
/// platform default.
pub fn install_ctrl_c_handler() {
    #[cfg(unix)]
    {
        extern "C" fn on_sigint(_signum: i32) {
            SIGINT_RECEIVED.store(true, Ordering::SeqCst);
        }
        extern "C" {
            fn signal(signum: i32, handler: usize) -> usize;
        }
        const SIGINT: i32 = 2;
        unsafe {
            signal(SIGINT, on_sigint as extern "C" fn(i32) as usize);
        }
    }
}

/// Source of process-unique request context ids (`0` is reserved for
/// "no context"). Process-wide, not per-server, so parallel test servers
/// sharing the global recorder never collide.
static NEXT_REQUEST_CTX: AtomicU64 = AtomicU64::new(1);

/// One queued unit of solver work.
struct Job {
    scenario: Scenario,
    op: Op,
    quick: bool,
    cache_key: u64,
    cancel: CancelToken,
    /// Request context of the originating connection; the worker re-enters
    /// it so solver spans stay attributed to the request.
    ctx: u64,
    /// When the job entered the queue (queue-wait measurement).
    enqueued: Instant,
    reply: mpsc::Sender<JobOutcome>,
}

/// What a worker sends back for one job.
struct JobOutcome {
    result: Result<std::sync::Arc<String>, ServiceError>,
    /// Milliseconds the job sat in the queue.
    queue_wait_ms: f64,
    /// Milliseconds the worker spent solving and rendering.
    solve_ms: f64,
}

#[derive(Default)]
struct JobQueue {
    jobs: Mutex<VecDeque<Job>>,
    ready: Condvar,
}

#[derive(Default)]
struct Stats {
    requests: AtomicU64,
    errors: AtomicU64,
    queue_depth: AtomicU64,
}

/// The solve server. See the module docs for the threading model.
pub struct Server {
    listener: TcpListener,
    metrics_listener: Option<TcpListener>,
    workers: usize,
    default_deadline_ms: u64,
    cache: ResultCache,
    queue: JobQueue,
    stats: Stats,
    telemetry: Telemetry,
    access_log: Option<AccessLog>,
    shutdown: AtomicBool,
    solver: SolverOptions,
}

impl Server {
    /// Bind the listen socket (and the metrics socket, when configured)
    /// and prepare (but do not start) the server.
    pub fn bind(opts: &ServeOptions) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&opts.addr)?;
        listener.set_nonblocking(true)?;
        let metrics_listener = match &opts.metrics_addr {
            Some(addr) => {
                let l = TcpListener::bind(addr)?;
                l.set_nonblocking(true)?;
                Some(l)
            }
            None => None,
        };
        let access_log = match &opts.access_log {
            Some(path) => Some(AccessLog::open(path, opts.access_log_max_bytes)?),
            None => None,
        };
        let workers = if opts.workers > 0 {
            opts.workers
        } else {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        };
        Ok(Server {
            listener,
            metrics_listener,
            workers,
            default_deadline_ms: opts.default_deadline_ms,
            cache: ResultCache::new(opts.cache_capacity),
            queue: JobQueue::default(),
            stats: Stats::default(),
            telemetry: Telemetry::new(),
            access_log,
            shutdown: AtomicBool::new(false),
            // The same defaults `gsched solve` uses, so served results are
            // byte-identical to local solves.
            solver: SolverOptions::default(),
        })
    }

    /// The bound address (useful after binding port `0`).
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// The bound metrics address, when `metrics_addr` was configured.
    pub fn metrics_local_addr(&self) -> Option<SocketAddr> {
        self.metrics_listener
            .as_ref()
            .and_then(|l| l.local_addr().ok())
    }

    /// Worker threads the pool will run.
    pub fn worker_count(&self) -> usize {
        self.workers
    }

    /// Ask the server to stop: the accept loop closes, queued work drains,
    /// and [`Server::run`] returns. Callable from any thread.
    pub fn request_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
    }

    fn shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst) || SIGINT_RECEIVED.load(Ordering::SeqCst)
    }

    /// Serve until shutdown is requested (frame, [`Server::request_shutdown`],
    /// or SIGINT). Blocks the calling thread; workers and connection
    /// handlers run on scoped threads and are all joined before this
    /// returns.
    pub fn run(&self) -> std::io::Result<()> {
        let _span = obs::span("service.run");
        crossbeam::scope(|s| {
            for _ in 0..self.workers {
                s.spawn(|_| self.worker_loop());
            }
            if self.metrics_listener.is_some() {
                s.spawn(|_| self.metrics_loop());
            }
            loop {
                if self.shutting_down() {
                    break;
                }
                match self.listener.accept() {
                    Ok((stream, _)) => {
                        obs::counter_add(obs::names::SERVICE_CONNECTIONS, 1);
                        self.telemetry.record_connection();
                        s.spawn(move |_| self.handle_connection(stream));
                    }
                    Err(e)
                        if e.kind() == IoErrorKind::WouldBlock
                            || e.kind() == IoErrorKind::TimedOut =>
                    {
                        std::thread::sleep(POLL_INTERVAL);
                    }
                    // Transient accept errors (e.g. aborted handshakes)
                    // must not kill the server.
                    Err(_) => std::thread::sleep(POLL_INTERVAL),
                }
            }
            self.queue.ready.notify_all();
        })
        .expect("service threads join cleanly");
        Ok(())
    }

    // ---- worker side ----

    fn worker_loop(&self) {
        loop {
            let job = {
                let mut jobs = self.queue.jobs.lock().unwrap_or_else(|e| e.into_inner());
                loop {
                    if let Some(job) = jobs.pop_front() {
                        break Some(job);
                    }
                    if self.shutting_down() {
                        break None;
                    }
                    let (guard, _) = self
                        .queue
                        .ready
                        .wait_timeout(jobs, POLL_INTERVAL)
                        .unwrap_or_else(|e| e.into_inner());
                    jobs = guard;
                }
            };
            let Some(job) = job else { return };
            let depth = self.stats.queue_depth.fetch_sub(1, Ordering::Relaxed) - 1;
            obs::gauge_set(obs::names::SERVICE_QUEUE_DEPTH, depth as f64);
            let queue_wait_ms = job.enqueued.elapsed().as_secs_f64() * 1e3;
            self.telemetry.record_queue_wait(queue_wait_ms);
            obs::observe(obs::names::SERVICE_QUEUE_WAIT_MS, queue_wait_ms);
            let _busy = self.telemetry.worker_busy();
            // Re-enter the originating request's context so every span the
            // solve opens here (service.solve, engine.sweep.*, core/qbd
            // internals) carries its request_id in the trace export.
            let _ctx = obs::context_enter(job.ctx);
            let t0 = Instant::now();
            // A panic inside numerical code must degrade to an error
            // frame, never take the whole server down.
            let result =
                catch_unwind(AssertUnwindSafe(|| self.process_job(&job))).unwrap_or_else(|_| {
                    Err(ServiceError::new(
                        ErrorKind::Internal,
                        "worker panicked while processing the request",
                    ))
                });
            let solve_ms = t0.elapsed().as_secs_f64() * 1e3;
            self.telemetry.record_solve(solve_ms);
            obs::observe(obs::names::SERVICE_SOLVE_MS, solve_ms);
            // The requesting connection may be gone; that is fine.
            let _ = job.reply.send(JobOutcome {
                result,
                queue_wait_ms,
                solve_ms,
            });
        }
    }

    fn process_job(&self, job: &Job) -> Result<std::sync::Arc<String>, ServiceError> {
        if job.cancel.is_cancelled() {
            return Err(cancel_error(&job.cancel));
        }
        let _span = obs::span(format!("service.{}", job.op.as_str()));
        let rendered =
            match job.op {
                Op::Solve => {
                    let model = job.scenario.build_model().map_err(|e| {
                        ServiceError::new(ErrorKind::InvalidScenario, e.to_string())
                    })?;
                    let sol = solve(&model, &self.solver)
                        .map_err(|e| ServiceError::new(ErrorKind::SolveFailed, e.to_string()))?;
                    render::solution_json(&sol)
                }
                Op::Sweep => {
                    let req = job.scenario.sweep_request(job.quick).map_err(|e| {
                        ServiceError::new(ErrorKind::InvalidScenario, e.to_string())
                    })?;
                    let classes = job.scenario.machine.classes.len();
                    // One core per request: concurrency comes from the worker
                    // pool, cancellation from the shared token.
                    let opts = SweepOptions::default()
                        .with_jobs(1)
                        .with_solver(self.solver.clone())
                        .with_cancel(job.cancel.clone());
                    let report = run_sweep(&req, &opts);
                    if job.cancel.is_cancelled() {
                        return Err(cancel_error(&job.cancel));
                    }
                    format!(
                        "[{}]",
                        render::sweep_report_json(&job.scenario.name, &report, classes)
                    )
                }
                // Stats/shutdown never reach the queue.
                Op::Stats | Op::Shutdown => {
                    return Err(ServiceError::new(
                        ErrorKind::Internal,
                        "control operation routed to a worker",
                    ))
                }
            };
        let rendered = std::sync::Arc::new(rendered);
        // Cache even when the deadline has passed: the work is done and
        // the next caller should benefit.
        self.cache.insert(job.cache_key, rendered.clone());
        if job.cancel.is_cancelled() {
            return Err(cancel_error(&job.cancel));
        }
        Ok(rendered)
    }

    // ---- connection side ----

    fn handle_connection(&self, stream: TcpStream) {
        let _ = stream.set_nodelay(true);
        let _ = stream.set_read_timeout(Some(POLL_INTERVAL));
        let Ok(read_half) = stream.try_clone() else {
            return;
        };
        let mut reader = BufReader::new(read_half);
        let mut writer = stream;
        let mut buf: Vec<u8> = Vec::new();
        loop {
            if self.shutting_down() {
                return;
            }
            match reader.read_until(b'\n', &mut buf) {
                Ok(0) => return, // client closed
                Ok(_) => {
                    let line = String::from_utf8_lossy(&buf).into_owned();
                    buf.clear();
                    let line = line.trim();
                    if line.is_empty() {
                        continue;
                    }
                    let Some(reply) = self.handle_request(&writer, line) else {
                        return; // client vanished mid-request
                    };
                    if writer
                        .write_all(reply.as_bytes())
                        .and_then(|()| writer.write_all(b"\n"))
                        .is_err()
                    {
                        return;
                    }
                }
                // Timeout with a partial line: the bytes read so far stay
                // in `buf`; keep accumulating.
                Err(e)
                    if e.kind() == IoErrorKind::WouldBlock || e.kind() == IoErrorKind::TimedOut =>
                {
                    continue;
                }
                Err(_) => return,
            }
        }
    }

    /// Process one request line; `None` means the client disconnected and
    /// no reply can be delivered.
    ///
    /// Allocates the request's trace context (its `request_id`), times the
    /// request end to end, updates per-op telemetry, and appends the
    /// access-log line — for every outcome, including dropped clients.
    fn handle_request(&self, stream: &TcpStream, line: &str) -> Option<String> {
        let ctx = NEXT_REQUEST_CTX.fetch_add(1, Ordering::Relaxed);
        let _ctx_guard = obs::context_enter(ctx);
        let t0 = Instant::now();
        let _span = obs::span("service.request");
        self.stats.requests.fetch_add(1, Ordering::Relaxed);
        obs::counter_add(obs::names::SERVICE_REQUESTS, 1);
        let mut access = AccessRecord::new(ctx);
        let reply = self.dispatch(stream, line, &mut access);
        let latency_ms = t0.elapsed().as_secs_f64() * 1e3;
        access.latency_ms = latency_ms;
        if reply.is_none() {
            access.outcome = "dropped".to_string();
        }
        let errored = access.outcome.starts_with("error:");
        self.telemetry
            .record_request(access.op_idx(), latency_ms, errored);
        obs::observe(obs::names::SERVICE_REQUEST_LATENCY_MS, latency_ms);
        if let Some(log) = &self.access_log {
            // Log failures must not take down request handling.
            let _ = log.append(&access.to_json());
        }
        reply
    }

    /// The op dispatch behind [`Server::handle_request`], filling `access`
    /// as facts about the request become known.
    fn dispatch(
        &self,
        stream: &TcpStream,
        line: &str,
        access: &mut AccessRecord,
    ) -> Option<String> {
        let req = match parse_request(line) {
            Ok(req) => req,
            Err(e) => {
                access.outcome = format!("error:{}", e.kind.as_str());
                return Some(self.error_reply(None, e));
            }
        };
        access.op = req.op.as_str();
        access.client_id = req.id.clone();
        let id = req.id.clone();
        match req.op {
            Op::Stats => Some(ok_frame(
                id.as_deref(),
                Op::Stats,
                false,
                &self.stats_json(),
            )),
            Op::Shutdown => {
                self.request_shutdown();
                self.queue.ready.notify_all();
                Some(ok_frame(
                    id.as_deref(),
                    Op::Shutdown,
                    false,
                    r#"{"stopping":true}"#,
                ))
            }
            Op::Solve | Op::Sweep => {
                if self.shutting_down() {
                    let e = ServiceError::new(ErrorKind::ShuttingDown, "server is shutting down");
                    access.outcome = format!("error:{}", e.kind.as_str());
                    return Some(self.error_reply(id, e));
                }
                let scenario = match resolve_scenario(req.scenario.as_ref()) {
                    Ok(sc) => sc,
                    Err(e) => {
                        access.outcome = format!("error:{}", e.kind.as_str());
                        return Some(self.error_reply(id, e));
                    }
                };
                if !scenario.name.is_empty() {
                    access.scenario = Some(scenario.name.clone());
                }
                let content_hash = scenario.content_hash();
                access.scenario_hash = Some(content_hash);
                let key = cache_key(req.op, req.quick, content_hash);
                if let Some(hit) = self.cache.get(key) {
                    obs::counter_add(obs::names::SERVICE_CACHE_HITS, 1);
                    access.cached = true;
                    return Some(ok_frame(id.as_deref(), req.op, true, &hit));
                }
                obs::counter_add(obs::names::SERVICE_CACHE_MISSES, 1);
                let outcome = self.dispatch_and_wait(stream, &req, scenario, key, access)?;
                Some(match outcome {
                    Ok(result) => ok_frame(id.as_deref(), req.op, false, &result),
                    Err(e) => {
                        access.outcome = format!("error:{}", e.kind.as_str());
                        self.error_reply(id, e)
                    }
                })
            }
        }
    }

    /// Enqueue a solver job and wait for its reply, watching for client
    /// disconnects. `None` means the client is gone. Queue-wait and solve
    /// times measured by the worker are copied into `access`.
    #[allow(clippy::type_complexity)]
    fn dispatch_and_wait(
        &self,
        stream: &TcpStream,
        req: &Request,
        scenario: Scenario,
        key: u64,
        access: &mut AccessRecord,
    ) -> Option<Result<std::sync::Arc<String>, ServiceError>> {
        let deadline_ms = req.deadline_ms.unwrap_or(self.default_deadline_ms);
        let cancel = if deadline_ms > 0 {
            CancelToken::with_deadline(Instant::now() + Duration::from_millis(deadline_ms))
        } else {
            CancelToken::new()
        };
        let (tx, rx) = mpsc::channel();
        // Count the job before it becomes visible to workers, so their
        // decrement can never underflow the gauge.
        let depth = self.stats.queue_depth.fetch_add(1, Ordering::Relaxed) + 1;
        obs::gauge_set(obs::names::SERVICE_QUEUE_DEPTH, depth as f64);
        {
            let mut jobs = self.queue.jobs.lock().unwrap_or_else(|e| e.into_inner());
            jobs.push_back(Job {
                scenario,
                op: req.op,
                quick: req.quick,
                cache_key: key,
                cancel: cancel.clone(),
                ctx: access.ctx,
                enqueued: Instant::now(),
                reply: tx,
            });
        }
        self.queue.ready.notify_one();
        loop {
            match rx.recv_timeout(POLL_INTERVAL) {
                Ok(outcome) => {
                    access.queue_wait_ms = Some(outcome.queue_wait_ms);
                    access.solve_ms = Some(outcome.solve_ms);
                    return Some(outcome.result);
                }
                Err(mpsc::RecvTimeoutError::Timeout) => {
                    if client_gone(stream) {
                        // Nobody is listening: stop the work, drop the job.
                        cancel.cancel();
                        obs::counter_add(obs::names::SERVICE_CANCELLED_DISCONNECTS, 1);
                        return None;
                    }
                    if self.shutting_down() {
                        // Bound shutdown latency: abandon between points.
                        cancel.cancel();
                    }
                }
                Err(mpsc::RecvTimeoutError::Disconnected) => {
                    return Some(Err(ServiceError::new(
                        ErrorKind::Internal,
                        "worker pool dropped the request",
                    )))
                }
            }
        }
    }

    fn error_reply(&self, id: Option<String>, error: ServiceError) -> String {
        self.stats.errors.fetch_add(1, Ordering::Relaxed);
        obs::counter_add(obs::names::SERVICE_ERRORS, 1);
        error_frame(id.as_deref(), &error)
    }

    /// Server-owned counters the telemetry reports fold in.
    fn external_stats(&self) -> ExternalStats {
        ExternalStats {
            workers: self.workers,
            queue_depth: self.stats.queue_depth.load(Ordering::Relaxed),
            requests: self.stats.requests.load(Ordering::Relaxed),
            errors: self.stats.errors.load(Ordering::Relaxed),
            cache_hits: self.cache.hits(),
            cache_misses: self.cache.misses(),
            cache_entries: self.cache.len(),
            cache_capacity: self.cache.capacity(),
        }
    }

    /// The `stats` result document (see [`Telemetry::stats_json`]).
    fn stats_json(&self) -> String {
        self.telemetry.stats_json(&self.external_stats())
    }

    // ---- metrics exposition side ----

    /// Accept loop of the `--metrics-addr` listener. Each connection gets
    /// one HTTP response and is closed; scrapers reconnect per scrape.
    fn metrics_loop(&self) {
        let listener = self
            .metrics_listener
            .as_ref()
            .expect("metrics loop requires a bound listener");
        loop {
            if self.shutting_down() {
                return;
            }
            match listener.accept() {
                Ok((stream, _)) => {
                    // A misbehaving scraper only loses its own response.
                    let _ = self.serve_metrics_connection(stream);
                }
                Err(e)
                    if e.kind() == IoErrorKind::WouldBlock || e.kind() == IoErrorKind::TimedOut =>
                {
                    std::thread::sleep(POLL_INTERVAL)
                }
                Err(_) => std::thread::sleep(POLL_INTERVAL),
            }
        }
    }

    /// Answer one HTTP request on the metrics socket with Prometheus text
    /// exposition (`GET /metrics`, with `/` accepted as an alias).
    fn serve_metrics_connection(&self, mut stream: TcpStream) -> std::io::Result<()> {
        stream.set_read_timeout(Some(Duration::from_millis(500)))?;
        let mut head = Vec::new();
        let mut buf = [0u8; 1024];
        // Read until the end of the request head; the body (none is
        // expected for GET) is ignored.
        loop {
            match stream.read(&mut buf) {
                Ok(0) => break,
                Ok(n) => {
                    head.extend_from_slice(&buf[..n]);
                    if head.windows(4).any(|w| w == b"\r\n\r\n")
                        || head.windows(2).any(|w| w == b"\n\n")
                        || head.len() > 8192
                    {
                        break;
                    }
                }
                Err(e)
                    if e.kind() == IoErrorKind::WouldBlock || e.kind() == IoErrorKind::TimedOut =>
                {
                    break
                }
                Err(e) => return Err(e),
            }
        }
        let head = String::from_utf8_lossy(&head);
        let path = head.split_whitespace().nth(1).unwrap_or("/");
        let (status, body) = if path == "/metrics" || path == "/" {
            ("200 OK", self.telemetry.prometheus(&self.external_stats()))
        } else {
            ("404 Not Found", "not found\n".to_string())
        };
        let response = format!(
            "HTTP/1.0 {status}\r\nContent-Type: text/plain; version=0.0.4; charset=utf-8\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
            body.len(),
        );
        stream.write_all(response.as_bytes())
    }
}

/// Map a fired token to the right error: deadline if one was set and has
/// passed, explicit cancellation otherwise.
fn cancel_error(token: &CancelToken) -> ServiceError {
    match token.deadline() {
        Some(deadline) if Instant::now() >= deadline => {
            ServiceError::new(ErrorKind::DeadlineExceeded, "request exceeded its deadline")
        }
        _ => ServiceError::new(ErrorKind::Cancelled, "request was cancelled"),
    }
}

/// Resolve the request's scenario reference against the registry.
fn resolve_scenario(sref: Option<&ScenarioRef>) -> Result<Scenario, ServiceError> {
    match sref {
        Some(ScenarioRef::Name(name)) => registry::lookup(name).ok_or_else(|| {
            ServiceError::new(
                ErrorKind::UnknownScenario,
                format!(
                    "unknown scenario {name:?} (registry: {})",
                    registry::NAMES.join(", ")
                ),
            )
        }),
        Some(ScenarioRef::Inline(sc)) => Ok((**sc).clone()),
        // parse_request guarantees a scenario for solve/sweep.
        None => Err(ServiceError::new(ErrorKind::BadRequest, "missing scenario")),
    }
}

/// Fold the operation and grid flavour into the scenario's content hash
/// (splitmix64 finalizer, so shard selection sees well-mixed bits).
fn cache_key(op: Op, quick: bool, content_hash: u64) -> u64 {
    let tag: u64 = match (op, quick) {
        (Op::Sweep, false) => 2,
        (Op::Sweep, true) => 3,
        _ => 1, // solve has no grid; quick is irrelevant
    };
    let mut x = content_hash ^ tag.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^= x >> 31;
    x
}

/// True when the peer of `stream` has hung up (without consuming data a
/// pipelined client may already have sent).
fn client_gone(stream: &TcpStream) -> bool {
    if stream.set_nonblocking(true).is_err() {
        return true;
    }
    let mut probe = [0u8; 1];
    let gone = match stream.peek(&mut probe) {
        Ok(0) => true,  // orderly shutdown
        Ok(_) => false, // next pipelined request waiting
        Err(e) => !matches!(e.kind(), IoErrorKind::WouldBlock | IoErrorKind::TimedOut),
    };
    // Back to blocking mode; the configured read timeout still applies.
    let _ = stream.set_nonblocking(false);
    gone
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cache_key_separates_ops_and_grids() {
        let h = 0xDEADBEEFu64;
        let solve = cache_key(Op::Solve, false, h);
        assert_eq!(solve, cache_key(Op::Solve, true, h));
        let sweep = cache_key(Op::Sweep, false, h);
        let sweep_quick = cache_key(Op::Sweep, true, h);
        assert_ne!(solve, sweep);
        assert_ne!(sweep, sweep_quick);
        assert_ne!(cache_key(Op::Solve, false, h + 1), solve);
    }

    #[test]
    fn bind_on_port_zero_reports_addr() {
        let server = Server::bind(&ServeOptions {
            addr: "127.0.0.1:0".to_string(),
            workers: 2,
            ..ServeOptions::default()
        })
        .unwrap();
        let addr = server.local_addr().unwrap();
        assert_ne!(addr.port(), 0);
        assert_eq!(server.worker_count(), 2);
    }
}
