//! Solve-as-a-service: a cached, concurrent scenario server.
//!
//! `gsched-service` turns the workspace's batch pipeline (scenario →
//! engine → solver) into a long-running server: clients submit
//! [`Scenario`](gsched_scenario::Scenario) requests over TCP and get
//! rendered results back, with repeated questions answered from a sharded
//! LRU cache keyed by the scenario's canonical
//! [content hash](gsched_scenario::hash). The CLI front-ends are
//! `gsched serve` and `gsched request`.
//!
//! Three guarantees shape the design:
//!
//! 1. **Byte identity** — a served result is byte-for-byte identical to
//!    running `gsched solve --json` locally. The [`render`] module is the
//!    single implementation of the result JSON (the CLI re-exports it),
//!    the cache stores rendered text, and the frame layout lets clients
//!    splice result bytes out verbatim ([`protocol::extract_result`]).
//! 2. **Graceful degradation** — malformed frames, unknown scenarios,
//!    solver failures, exceeded deadlines, and even worker panics become
//!    structured error frames on the offending connection; the server
//!    never dies with a request.
//! 3. **Cooperative cancellation** — deadlines and client disconnects
//!    fire an engine [`CancelToken`](gsched_engine::CancelToken), which
//!    the sweep pool polls between points; numerical code is never
//!    unwound from outside.
//!
//! Under concurrent traffic the server additionally **coalesces**
//! identical cache misses onto one in-flight solve (singleflight),
//! **batches** queued sweeps through the engine's shared batch pool, and
//! **sheds** load with `overloaded` errors once the bounded queue is
//! full — see [`server`] for the mechanics. With a persistent cache path
//! configured, results survive restarts: the cache is replayed from an
//! append-only segment file at bind time.
//!
//! # Wire protocol
//!
//! Newline-delimited JSON ("NDJSON") over TCP: one request frame per
//! line, one response frame per line, answered in order. Any tool that
//! can write a line and read a line is a client (`nc` works).
//!
//! Two protocol versions are live. **v2** (current) adds an explicit
//! `proto` field to requests and responses; **v1** (legacy, the default
//! when `proto` is absent) keeps the original frame layout. Requests are
//! answered *in kind*: a v1 request gets byte-identical v1 frames, a v2
//! request gets v2 frames. Everything else — field meanings, error
//! schema, the `result`-last splice contract — is shared.
//!
//! ## Request frames
//!
//! ```json
//! {"proto":2,"id":"r-1","op":"solve","scenario":"fig2"}
//! {"op":"sweep","scenario":"fig3","quick":true,"deadline_ms":5000}
//! {"op":"solve","scenario":{"name":"custom","machine":{...},"solver":{...}}}
//! {"proto":2,"op":"stats"}
//! {"op":"shutdown"}
//! ```
//!
//! | field         | type                    | meaning                                            |
//! |---------------|-------------------------|----------------------------------------------------|
//! | `proto`       | integer, default `1`    | protocol version (`1` or `2`); replies match it    |
//! | `id`          | string, optional        | correlation id, echoed in the response             |
//! | `op`          | string, default `solve` | `solve`, `sweep`, `stats`, or `shutdown`           |
//! | `scenario`    | string or object        | registry name, or a full inline scenario document  |
//! | `quick`       | bool, default `false`   | sweep only: use the reduced quick grid             |
//! | `deadline_ms` | integer, optional       | per-request deadline; omitted = server default     |
//!
//! Unknown fields are rejected (`bad_request`) rather than ignored, so
//! typos fail loudly. Inline scenarios are fully validated before any
//! work is queued.
//!
//! ## Response frames
//!
//! Success (`result` is always the **last** field; for `op:"solve"` it is
//! exactly the `gsched solve --json` document). v2 frames carry `proto`
//! right after `status`; v1 frames omit it:
//!
//! ```json
//! {"status":"ok","proto":2,"id":"r-1","op":"solve","cached":false,"result":{...}}
//! {"status":"ok","id":"r-1","op":"solve","cached":false,"result":{...}}
//! ```
//!
//! Error:
//!
//! ```json
//! {"status":"error","proto":2,"id":"r-1","error":{"kind":"unknown_scenario","message":"..."}}
//! ```
//!
//! Error kinds: `bad_request`, `unknown_scenario`, `invalid_scenario`,
//! `solve_failed`, `validation_failed`, `deadline_exceeded`, `cancelled`,
//! `overloaded`, `shutting_down`, `internal`. The same frame shape is
//! emitted by `gsched validate --json` and `gsched xval --json` on
//! failure (`validation_failed`), so scripted callers parse one error
//! schema everywhere.
//!
//! # Observability
//!
//! Live telemetry is always on and exposed three ways (the repository's
//! `docs/ARCHITECTURE.md` diagrams the request lifecycle):
//!
//! * **`{"op":"stats"}`** returns the full telemetry report: the flat
//!   counters (`requests`, `errors`, `cache_hits`, `cache_misses`,
//!   `queue_depth`, `uptime_ms`, …) plus `workers_busy`, `connections`,
//!   `cache_hit_ratio`, `queue_wait_ms` / `solve_ms` histograms, and a
//!   per-op `ops` object with cumulative and recent (last 60 s) latency
//!   percentiles (p50/p90/p95/p99). Statistics of empty histograms are
//!   `null`, never `NaN`.
//! * **`--metrics-addr HOST:PORT`** serves Prometheus text exposition
//!   (`GET /metrics`): `gsched_requests_total{op=…}`,
//!   `gsched_request_latency_ms{op=…,quantile=…}` summaries,
//!   `gsched_queue_depth`, cache counters, and friends.
//! * **`--access-log PATH`** appends one NDJSON line per request —
//!   `request_id`, client `id`, `op`, `scenario` + content hash, `cached`,
//!   `queue_wait_ms`, `solve_ms`, `latency_ms`, `outcome` — rotating
//!   atomically to `PATH.1` past `--access-log-max-bytes`.
//!
//! Every request is additionally assigned a trace context: with
//! `gsched serve --diag`/`--trace`, all spans recorded while serving it —
//! `service.request`, `service.solve`, the engine's sweep/point spans, and
//! the qbd/core solver spans below them — carry the same `request_id`
//! (`r-<n>`) that the access log records, and the Chrome-trace export
//! tags each event with it (`args.request_id`). The `--diag` snapshot
//! includes `service.requests`, `service.cache.hits` /
//! `service.cache.misses`, `service.errors`, the `service.queue.depth`
//! gauge, and the `service.request.latency_ms` / `service.queue.wait_ms` /
//! `service.solve_ms` histograms, alongside the usual solver counters —
//! `core.solver.solves` stays flat across cache hits, which is how the
//! tests pin down that hits never re-solve.

pub mod cache;
pub mod client;
pub mod protocol;
pub mod render;
pub mod server;
mod telemetry;

pub use cache::{CacheStats, CacheStore, MemoryLru, PersistentLru};
pub use client::Client;
pub use protocol::{
    error_frame, extract_result, frame_is_ok, ok_frame, parse_request, ErrorKind, Op, Request,
    Response, ResponseBody, ScenarioRef, ServiceError, PROTO_VERSION,
};
pub use server::{install_ctrl_c_handler, ServeConfig, ServeConfigBuilder, Server};
