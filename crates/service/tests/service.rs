//! End-to-end tests over a real TCP socket: server in a background
//! thread, blocking client in the test, shutdown via protocol frame.

use gsched_service::client::{control_frame, frame_for_name, frame_for_scenario, RequestSpec};
use gsched_service::{extract_result, frame_is_ok, Client, Op, ServeOptions, Server};
use serde_json::Value;
use std::sync::Arc;
use std::thread::JoinHandle;

struct TestServer {
    server: Arc<Server>,
    addr: String,
    thread: Option<JoinHandle<()>>,
}

impl TestServer {
    fn start(workers: usize, cache_capacity: usize) -> TestServer {
        let server = Arc::new(
            Server::bind(&ServeOptions {
                addr: "127.0.0.1:0".to_string(),
                workers,
                cache_capacity,
                default_deadline_ms: 30_000,
                ..ServeOptions::default()
            })
            .expect("bind"),
        );
        let addr = server.local_addr().expect("addr").to_string();
        let runner = Arc::clone(&server);
        let thread = std::thread::spawn(move || {
            runner.run().expect("server run");
        });
        TestServer {
            server,
            addr,
            thread: Some(thread),
        }
    }

    fn client(&self) -> Client {
        Client::connect(&self.addr).expect("connect")
    }
}

impl Drop for TestServer {
    fn drop(&mut self) {
        self.server.request_shutdown();
        if let Some(thread) = self.thread.take() {
            thread.join().expect("server thread");
        }
    }
}

fn field<'v>(frame: &'v Value, name: &str) -> &'v Value {
    frame
        .get(name)
        .unwrap_or_else(|| panic!("frame has {name}"))
}

#[test]
fn repeat_request_is_served_from_cache_with_identical_bytes() {
    let ts = TestServer::start(2, 64);
    let mut client = ts.client();

    let line = frame_for_name("fig2", &RequestSpec::default());
    let first = client.request_line(&line).unwrap();
    let second = client.request_line(&line).unwrap();

    assert!(frame_is_ok(&first), "{first}");
    assert!(frame_is_ok(&second), "{second}");
    let first_doc: Value = serde_json::from_str(&first).unwrap();
    let second_doc: Value = serde_json::from_str(&second).unwrap();
    assert_eq!(field(&first_doc, "cached").as_bool(), Some(false));
    assert_eq!(field(&second_doc, "cached").as_bool(), Some(true));

    let first_result = extract_result(&first).expect("result in first frame");
    let second_result = extract_result(&second).expect("result in second frame");
    assert_eq!(first_result, second_result, "cache must replay exact bytes");
    assert!(
        first_result.starts_with(r#"{"iterations":"#),
        "{first_result}"
    );

    let stats = client
        .request_line(&control_frame(Op::Stats, None))
        .unwrap();
    let stats_doc: Value = serde_json::from_str(&stats).unwrap();
    let result = field(&stats_doc, "result");
    assert_eq!(field(result, "cache_hits").as_u64(), Some(1));
    assert_eq!(field(result, "cache_misses").as_u64(), Some(1));
    assert_eq!(field(result, "errors").as_u64(), Some(0));
    assert_eq!(field(result, "requests").as_u64(), Some(3));
}

#[test]
fn inline_scenario_hits_the_cache_entry_of_its_name() {
    let ts = TestServer::start(2, 64);
    let mut client = ts.client();

    let by_name = client
        .request_line(&frame_for_name("fig4", &RequestSpec::default()))
        .unwrap();
    assert!(frame_is_ok(&by_name), "{by_name}");

    // The same scenario sent as a full inline document — and, thanks to
    // the canonical content hash, even with its JSON keys in a different
    // order — must land on the same cache entry.
    let scenario = gsched_scenario::registry::lookup("fig4").unwrap();
    let inline_line = frame_for_scenario(&scenario, &RequestSpec::default());
    let reordered: Value = serde_json::from_str(&inline_line).unwrap();
    let inline = client
        .request_line(&serde_json::to_string(&reordered).unwrap())
        .unwrap();
    let inline_doc: Value = serde_json::from_str(&inline).unwrap();
    assert_eq!(
        field(&inline_doc, "cached").as_bool(),
        Some(true),
        "{inline}"
    );
    assert_eq!(extract_result(&by_name), extract_result(&inline));
}

#[test]
fn structured_errors_keep_the_connection_and_server_alive() {
    let ts = TestServer::start(1, 8);
    let mut client = ts.client();

    for (line, kind) in [
        ("this is not json", "bad_request"),
        (r#"{"op":"solve"}"#, "bad_request"),
        (r#"{"scenario":"no_such_scenario"}"#, "unknown_scenario"),
        (r#"{"scenario":"fig2","surprise":1}"#, "bad_request"),
    ] {
        let reply = client.request_line(line).unwrap();
        assert!(!frame_is_ok(&reply), "{reply}");
        let doc: Value = serde_json::from_str(&reply).unwrap();
        assert_eq!(
            field(field(&doc, "error"), "kind").as_str(),
            Some(kind),
            "{reply}"
        );
    }

    // The same connection still serves good requests afterwards.
    let ok = client
        .request_line(&frame_for_name("fig2", &RequestSpec::default()))
        .unwrap();
    assert!(frame_is_ok(&ok), "{ok}");
}

#[test]
fn expired_deadline_returns_deadline_exceeded() {
    let ts = TestServer::start(1, 8);
    let mut client = ts.client();
    let spec = RequestSpec {
        op: Some(Op::Sweep),
        deadline_ms: Some(1),
        ..RequestSpec::default()
    };
    let reply = client.request_line(&frame_for_name("fig3", &spec)).unwrap();
    let doc: Value = serde_json::from_str(&reply).unwrap();
    assert_eq!(
        field(field(&doc, "error"), "kind").as_str(),
        Some("deadline_exceeded"),
        "{reply}"
    );
}

#[test]
fn request_ids_are_echoed_and_sweeps_render_reports() {
    let ts = TestServer::start(2, 64);
    let mut client = ts.client();
    let spec = RequestSpec {
        id: Some("sweep-7".to_string()),
        op: Some(Op::Sweep),
        quick: true,
        ..RequestSpec::default()
    };
    let reply = client.request_line(&frame_for_name("fig2", &spec)).unwrap();
    assert!(frame_is_ok(&reply), "{reply}");
    let doc: Value = serde_json::from_str(&reply).unwrap();
    assert_eq!(field(&doc, "id").as_str(), Some("sweep-7"));
    assert_eq!(field(&doc, "op").as_str(), Some("sweep"));
    let result = field(&doc, "result");
    let reports = result.as_array().expect("sweep result is an array");
    assert_eq!(reports.len(), 1);
    assert_eq!(field(&reports[0], "figure").as_str(), Some("fig2"));
    assert!(field(&reports[0], "points").as_array().is_some());
}

#[test]
fn shutdown_frame_stops_the_server() {
    let server = Arc::new(
        Server::bind(&ServeOptions {
            addr: "127.0.0.1:0".to_string(),
            workers: 1,
            cache_capacity: 8,
            default_deadline_ms: 0,
            ..ServeOptions::default()
        })
        .unwrap(),
    );
    let addr = server.local_addr().unwrap().to_string();
    let runner = Arc::clone(&server);
    let thread = std::thread::spawn(move || runner.run().unwrap());

    let mut client = Client::connect(&addr).unwrap();
    let reply = client
        .request_line(&control_frame(Op::Shutdown, Some("bye")))
        .unwrap();
    assert!(frame_is_ok(&reply), "{reply}");
    assert_eq!(extract_result(&reply), Some(r#"{"stopping":true}"#));

    // run() must return on its own once the frame is processed.
    thread.join().expect("server stopped cleanly");
}

#[test]
fn zero_cache_capacity_disables_caching() {
    let ts = TestServer::start(1, 0);
    let mut client = ts.client();
    let line = frame_for_name("fig2", &RequestSpec::default());
    let first = client.request_line(&line).unwrap();
    let second = client.request_line(&line).unwrap();
    let second_doc: Value = serde_json::from_str(&second).unwrap();
    assert_eq!(field(&second_doc, "cached").as_bool(), Some(false));
    // Both solved fresh, still byte-identical (same solver, same render).
    assert_eq!(extract_result(&first), extract_result(&second));
}
