//! End-to-end tests over a real TCP socket: server in a background
//! thread, blocking client in the test, shutdown via protocol frame.

use gsched_service::client::{control_frame, frame_for_name, frame_for_scenario, RequestSpec};
use gsched_service::{
    extract_result, frame_is_ok, CacheStats, CacheStore, Client, Op, ServeConfig, Server,
};
use serde_json::Value;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Barrier};
use std::thread::JoinHandle;

struct TestServer {
    server: Arc<Server>,
    addr: String,
    thread: Option<JoinHandle<()>>,
}

impl TestServer {
    fn start(workers: usize, cache_capacity: usize) -> TestServer {
        let config = ServeConfig::builder()
            .addr("127.0.0.1:0")
            .workers(workers)
            .cache_capacity(cache_capacity)
            .default_deadline_ms(30_000)
            .build()
            .expect("valid test config");
        Self::start_bound(Server::bind(&config).expect("bind"))
    }

    fn start_with(config: ServeConfig) -> TestServer {
        Self::start_bound(Server::bind(&config).expect("bind"))
    }

    fn start_bound(server: Server) -> TestServer {
        let server = Arc::new(server);
        let addr = server.local_addr().expect("addr").to_string();
        let runner = Arc::clone(&server);
        let thread = std::thread::spawn(move || {
            runner.run().expect("server run");
        });
        TestServer {
            server,
            addr,
            thread: Some(thread),
        }
    }

    fn client(&self) -> Client {
        Client::connect(&self.addr).expect("connect")
    }

    fn stop(mut self) {
        self.server.request_shutdown();
        if let Some(thread) = self.thread.take() {
            thread.join().expect("server thread");
        }
    }
}

impl Drop for TestServer {
    fn drop(&mut self) {
        self.server.request_shutdown();
        if let Some(thread) = self.thread.take() {
            thread.join().expect("server thread");
        }
    }
}

fn field<'v>(frame: &'v Value, name: &str) -> &'v Value {
    frame
        .get(name)
        .unwrap_or_else(|| panic!("frame has {name}"))
}

fn stats_doc(client: &mut Client) -> Value {
    let reply = client
        .request_line(&control_frame(Op::Stats, None))
        .expect("stats reply");
    let frame: Value = serde_json::from_str(&reply).expect("stats frame parses");
    assert_eq!(frame["status"].as_str(), Some("ok"), "{reply}");
    frame["result"].clone()
}

/// A process-unique scratch path (the container runs tests in parallel).
fn temp_path(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!(
        "gsched-service-{}-{tag}.ndjson",
        std::process::id()
    ))
}

#[test]
fn repeat_request_is_served_from_cache_with_identical_bytes() {
    let ts = TestServer::start(2, 64);
    let mut client = ts.client();

    let line = frame_for_name("fig2", &RequestSpec::default());
    let first = client.request_line(&line).unwrap();
    let second = client.request_line(&line).unwrap();

    assert!(frame_is_ok(&first), "{first}");
    assert!(frame_is_ok(&second), "{second}");
    let first_doc: Value = serde_json::from_str(&first).unwrap();
    let second_doc: Value = serde_json::from_str(&second).unwrap();
    assert_eq!(field(&first_doc, "cached").as_bool(), Some(false));
    assert_eq!(field(&second_doc, "cached").as_bool(), Some(true));

    let first_result = extract_result(&first).expect("result in first frame");
    let second_result = extract_result(&second).expect("result in second frame");
    assert_eq!(first_result, second_result, "cache must replay exact bytes");
    assert!(
        first_result.starts_with(r#"{"iterations":"#),
        "{first_result}"
    );

    let stats = client
        .request_line(&control_frame(Op::Stats, None))
        .unwrap();
    let stats_doc: Value = serde_json::from_str(&stats).unwrap();
    let result = field(&stats_doc, "result");
    assert_eq!(field(result, "cache_hits").as_u64(), Some(1));
    assert_eq!(field(result, "cache_misses").as_u64(), Some(1));
    assert_eq!(field(result, "errors").as_u64(), Some(0));
    assert_eq!(field(result, "requests").as_u64(), Some(3));
    // No concurrency pressure in this test: nothing coalesced, batched,
    // shed, or replayed.
    assert_eq!(field(result, "coalesced").as_u64(), Some(0));
    assert_eq!(field(result, "shed").as_u64(), Some(0));
    assert_eq!(field(result, "cache_replayed").as_u64(), Some(0));
}

#[test]
fn inline_scenario_hits_the_cache_entry_of_its_name() {
    let ts = TestServer::start(2, 64);
    let mut client = ts.client();

    let by_name = client
        .request_line(&frame_for_name("fig4", &RequestSpec::default()))
        .unwrap();
    assert!(frame_is_ok(&by_name), "{by_name}");

    // The same scenario sent as a full inline document — and, thanks to
    // the canonical content hash, even with its JSON keys in a different
    // order — must land on the same cache entry.
    let scenario = gsched_scenario::registry::lookup("fig4").unwrap();
    let inline_line = frame_for_scenario(&scenario, &RequestSpec::default());
    let reordered: Value = serde_json::from_str(&inline_line).unwrap();
    let inline = client
        .request_line(&serde_json::to_string(&reordered).unwrap())
        .unwrap();
    let inline_doc: Value = serde_json::from_str(&inline).unwrap();
    assert_eq!(
        field(&inline_doc, "cached").as_bool(),
        Some(true),
        "{inline}"
    );
    assert_eq!(extract_result(&by_name), extract_result(&inline));
}

#[test]
fn structured_errors_keep_the_connection_and_server_alive() {
    let ts = TestServer::start(1, 8);
    let mut client = ts.client();

    for (line, kind) in [
        ("this is not json", "bad_request"),
        (r#"{"op":"solve"}"#, "bad_request"),
        (r#"{"scenario":"no_such_scenario"}"#, "unknown_scenario"),
        (r#"{"scenario":"fig2","surprise":1}"#, "bad_request"),
        (r#"{"proto":3,"scenario":"fig2"}"#, "bad_request"),
    ] {
        let reply = client.request_line(line).unwrap();
        assert!(!frame_is_ok(&reply), "{reply}");
        let doc: Value = serde_json::from_str(&reply).unwrap();
        assert_eq!(
            field(field(&doc, "error"), "kind").as_str(),
            Some(kind),
            "{reply}"
        );
    }

    // The same connection still serves good requests afterwards.
    let ok = client
        .request_line(&frame_for_name("fig2", &RequestSpec::default()))
        .unwrap();
    assert!(frame_is_ok(&ok), "{ok}");
}

/// Requests are answered in the protocol version they speak: v2 frames
/// carry `proto` right after `status`, v1 frames keep the legacy layout
/// byte-for-byte — and both splice out identical result documents.
#[test]
fn protocol_versions_are_answered_in_kind() {
    let ts = TestServer::start(1, 8);
    let mut client = ts.client();

    let v2 = client
        .request_line(&frame_for_name("fig2", &RequestSpec::default()))
        .unwrap();
    assert!(
        v2.starts_with(r#"{"status":"ok","proto":2,"#),
        "v2 reply carries proto: {v2}"
    );

    let v1_spec = RequestSpec {
        proto: 1,
        id: Some("legacy".to_string()),
        ..RequestSpec::default()
    };
    let v1 = client
        .request_line(&frame_for_name("fig2", &v1_spec))
        .unwrap();
    assert!(
        v1.starts_with(r#"{"status":"ok","id":"legacy","op":"solve""#),
        "v1 reply keeps the legacy layout: {v1}"
    );
    let v1_doc: Value = serde_json::from_str(&v1).unwrap();
    assert!(v1_doc.get("proto").is_none(), "{v1}");

    assert_eq!(
        extract_result(&v1),
        extract_result(&v2),
        "both versions serve identical result bytes"
    );

    // v1 errors keep the legacy error frame shape, too.
    let bad = client.request_line("this is not json").unwrap();
    let bad_doc: Value = serde_json::from_str(&bad).unwrap();
    assert!(bad_doc.get("proto").is_none(), "{bad}");
}

/// M identical concurrent cache misses must run exactly one engine
/// solve: the leader enqueues, the rest coalesce onto the same flight,
/// and everyone shares the published bytes.
#[test]
fn singleflight_coalesces_identical_concurrent_misses() {
    const M: usize = 4;
    let ts = TestServer::start(2, 64);
    let barrier = Arc::new(Barrier::new(M));
    let mut handles = Vec::new();
    for _ in 0..M {
        let addr = ts.addr.clone();
        let barrier = Arc::clone(&barrier);
        handles.push(std::thread::spawn(move || {
            let mut client = Client::connect(&addr).expect("connect");
            barrier.wait();
            client
                .request_line(&frame_for_name("fig2", &RequestSpec::default()))
                .expect("reply")
        }));
    }
    let replies: Vec<String> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    for reply in &replies {
        assert!(frame_is_ok(reply), "{reply}");
    }
    let results: Vec<&str> = replies
        .iter()
        .map(|r| extract_result(r).expect("result"))
        .collect();
    for r in &results[1..] {
        assert_eq!(*r, results[0], "all waiters share identical bytes");
    }

    let mut client = ts.client();
    let stats = stats_doc(&mut client);
    // The proof of exactly one engine solve: one job crossed the queue,
    // one worker solve happened.
    assert_eq!(
        field(&stats, "queue_wait_ms")["count"].as_u64(),
        Some(1),
        "{stats}"
    );
    assert_eq!(
        field(&stats, "solve_ms")["count"].as_u64(),
        Some(1),
        "{stats}"
    );
    assert_eq!(field(&stats, "coalesced").as_u64(), Some((M - 1) as u64));
    assert_eq!(field(&stats, "errors").as_u64(), Some(0));
}

/// With one worker and a queue bounded at one job, a burst of distinct
/// requests must shed the overflow with `overloaded` errors while the
/// admitted requests still succeed.
#[test]
fn bounded_queue_sheds_overflow_with_overloaded_errors() {
    const BURST: usize = 6;
    let config = ServeConfig::builder()
        .addr("127.0.0.1:0")
        .workers(1)
        .cache_capacity(64)
        .queue_limit(1)
        .build()
        .unwrap();
    let ts = TestServer::start_with(config);
    let names = ["fig2", "fig3", "fig3_heavy", "fig4", "fig5", "sp2"];
    let barrier = Arc::new(Barrier::new(BURST));
    let mut handles = Vec::new();
    for name in names.iter().take(BURST) {
        let addr = ts.addr.clone();
        let barrier = Arc::clone(&barrier);
        let name = name.to_string();
        handles.push(std::thread::spawn(move || {
            let mut client = Client::connect(&addr).expect("connect");
            barrier.wait();
            client
                .request_line(&frame_for_name(&name, &RequestSpec::default()))
                .expect("reply")
        }));
    }
    let replies: Vec<String> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    let mut oks = 0usize;
    let mut sheds = 0usize;
    for reply in &replies {
        let doc: Value = serde_json::from_str(reply).unwrap();
        if frame_is_ok(reply) {
            oks += 1;
        } else {
            assert_eq!(
                field(field(&doc, "error"), "kind").as_str(),
                Some("overloaded"),
                "only shed errors expected: {reply}"
            );
            sheds += 1;
        }
    }
    assert_eq!(oks + sheds, BURST);
    assert!(oks >= 1, "at least the running job succeeds");
    assert!(sheds >= 1, "a burst past the queue limit must shed");

    let mut client = ts.client();
    let stats = stats_doc(&mut client);
    assert_eq!(field(&stats, "shed").as_u64(), Some(sheds as u64));
    assert_eq!(field(&stats, "queue_limit").as_u64(), Some(1));
}

/// A restarted server with a persistent cache answers previously solved
/// scenarios from the replayed segment without re-solving — even when a
/// crash tore the segment's final line.
#[test]
fn persistent_cache_survives_restart_and_torn_tail() {
    let path = temp_path("segment");
    let _ = std::fs::remove_file(&path);
    let config = ServeConfig::builder()
        .addr("127.0.0.1:0")
        .workers(1)
        .cache_capacity(16)
        .cache_path(&path)
        .build()
        .unwrap();

    let first_bytes;
    {
        let ts = TestServer::start_with(config.clone());
        let mut client = ts.client();
        let reply = client
            .request_line(&frame_for_name("fig4", &RequestSpec::default()))
            .unwrap();
        assert!(frame_is_ok(&reply), "{reply}");
        let doc: Value = serde_json::from_str(&reply).unwrap();
        assert_eq!(field(&doc, "cached").as_bool(), Some(false));
        first_bytes = extract_result(&reply).expect("result").to_string();
        drop(client);
        ts.stop();
    }

    // Simulate a crash mid-append: a torn, newline-less final line.
    {
        use std::io::Write;
        let mut f = std::fs::OpenOptions::new()
            .append(true)
            .open(&path)
            .unwrap();
        f.write_all(br#"{"v":1,"key":"00ab"#).unwrap();
    }

    let ts = TestServer::start_with(config);
    let mut client = ts.client();
    let reply = client
        .request_line(&frame_for_name("fig4", &RequestSpec::default()))
        .unwrap();
    let doc: Value = serde_json::from_str(&reply).unwrap();
    assert_eq!(
        field(&doc, "cached").as_bool(),
        Some(true),
        "restart must answer from the replayed cache: {reply}"
    );
    assert_eq!(
        extract_result(&reply),
        Some(first_bytes.as_str()),
        "replayed bytes are identical"
    );
    let stats = stats_doc(&mut client);
    assert_eq!(field(&stats, "cache_replayed").as_u64(), Some(1));
    assert_eq!(field(&stats, "cache_misses").as_u64(), Some(0));
    let _ = std::fs::remove_file(&path);
}

/// A store that drops every insert and misses every get: the server must
/// keep serving (solving fresh each time), never crash, and report the
/// store's own counters.
struct FailingStore {
    gets: AtomicU64,
    inserts: AtomicU64,
}

impl CacheStore for FailingStore {
    fn get(&self, _key: u64) -> Option<std::sync::Arc<String>> {
        self.gets.fetch_add(1, Ordering::Relaxed);
        None
    }

    fn insert(&self, _key: u64, _value: std::sync::Arc<String>) {
        self.inserts.fetch_add(1, Ordering::Relaxed);
    }

    fn stats(&self) -> CacheStats {
        CacheStats {
            hits: 0,
            misses: self.gets.load(Ordering::Relaxed),
            entries: 0,
            capacity: 0,
        }
    }
}

#[test]
fn server_survives_a_failing_cache_store() {
    let config = ServeConfig::builder()
        .addr("127.0.0.1:0")
        .workers(1)
        .build()
        .unwrap();
    let store = Box::new(FailingStore {
        gets: AtomicU64::new(0),
        inserts: AtomicU64::new(0),
    });
    let ts = TestServer::start_bound(Server::bind_with_store(&config, store, 0).expect("bind"));
    let mut client = ts.client();
    let line = frame_for_name("fig2", &RequestSpec::default());
    let first = client.request_line(&line).unwrap();
    let second = client.request_line(&line).unwrap();
    for reply in [&first, &second] {
        assert!(frame_is_ok(reply), "{reply}");
        let doc: Value = serde_json::from_str(reply).unwrap();
        assert_eq!(
            field(&doc, "cached").as_bool(),
            Some(false),
            "a store that drops inserts can never serve a hit: {reply}"
        );
    }
    assert_eq!(
        extract_result(&first),
        extract_result(&second),
        "fresh solves still render identical bytes"
    );
    let stats = stats_doc(&mut client);
    assert_eq!(field(&stats, "cache_misses").as_u64(), Some(2));
    assert_eq!(field(&stats, "cache_hits").as_u64(), Some(0));
}

#[test]
fn expired_deadline_returns_deadline_exceeded() {
    let ts = TestServer::start(1, 8);
    let mut client = ts.client();
    let spec = RequestSpec {
        op: Some(Op::Sweep),
        deadline_ms: Some(1),
        ..RequestSpec::default()
    };
    let reply = client.request_line(&frame_for_name("fig3", &spec)).unwrap();
    let doc: Value = serde_json::from_str(&reply).unwrap();
    assert_eq!(
        field(field(&doc, "error"), "kind").as_str(),
        Some("deadline_exceeded"),
        "{reply}"
    );
}

#[test]
fn request_ids_are_echoed_and_sweeps_render_reports() {
    let ts = TestServer::start(2, 64);
    let mut client = ts.client();
    let spec = RequestSpec {
        id: Some("sweep-7".to_string()),
        op: Some(Op::Sweep),
        quick: true,
        ..RequestSpec::default()
    };
    let reply = client.request_line(&frame_for_name("fig2", &spec)).unwrap();
    assert!(frame_is_ok(&reply), "{reply}");
    let doc: Value = serde_json::from_str(&reply).unwrap();
    assert_eq!(field(&doc, "id").as_str(), Some("sweep-7"));
    assert_eq!(field(&doc, "op").as_str(), Some("sweep"));
    let result = field(&doc, "result");
    let reports = result.as_array().expect("sweep result is an array");
    assert_eq!(reports.len(), 1);
    assert_eq!(field(&reports[0], "figure").as_str(), Some("fig2"));
    assert!(field(&reports[0], "points").as_array().is_some());
}

#[test]
fn shutdown_frame_stops_the_server() {
    let config = ServeConfig::builder()
        .addr("127.0.0.1:0")
        .workers(1)
        .cache_capacity(8)
        .default_deadline_ms(0)
        .build()
        .unwrap();
    let server = Arc::new(Server::bind(&config).unwrap());
    let addr = server.local_addr().unwrap().to_string();
    let runner = Arc::clone(&server);
    let thread = std::thread::spawn(move || runner.run().unwrap());

    let mut client = Client::connect(&addr).unwrap();
    let reply = client
        .request_line(&control_frame(Op::Shutdown, Some("bye")))
        .unwrap();
    assert!(frame_is_ok(&reply), "{reply}");
    assert_eq!(extract_result(&reply), Some(r#"{"stopping":true}"#));

    // run() must return on its own once the frame is processed.
    thread.join().expect("server stopped cleanly");
}

#[test]
fn zero_cache_capacity_disables_caching() {
    let ts = TestServer::start(1, 0);
    let mut client = ts.client();
    let line = frame_for_name("fig2", &RequestSpec::default());
    let first = client.request_line(&line).unwrap();
    let second = client.request_line(&line).unwrap();
    let second_doc: Value = serde_json::from_str(&second).unwrap();
    assert_eq!(field(&second_doc, "cached").as_bool(), Some(false));
    // Both solved fresh, still byte-identical (same solver, same render).
    assert_eq!(extract_result(&first), extract_result(&second));
}
