//! Telemetry integration tests: the expanded `stats` report under real
//! concurrent traffic, the Prometheus scrape endpoint, and the link
//! between access-log `request_id`s and exported span trees.

use gsched_service::client::{control_frame, frame_for_name, RequestSpec};
use gsched_service::{Client, Op, ServeConfig, Server};
use serde_json::Value;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::sync::Arc;
use std::thread::JoinHandle;

struct TestServer {
    server: Arc<Server>,
    addr: String,
    thread: Option<JoinHandle<()>>,
}

impl TestServer {
    fn start(opts: ServeConfig) -> TestServer {
        let server = Arc::new(Server::bind(&opts).expect("bind"));
        let addr = server.local_addr().expect("addr").to_string();
        let runner = Arc::clone(&server);
        let thread = std::thread::spawn(move || {
            runner.run().expect("server run");
        });
        TestServer {
            server,
            addr,
            thread: Some(thread),
        }
    }

    fn client(&self) -> Client {
        Client::connect(&self.addr).expect("connect")
    }

    /// Shut down and join, so the access log is complete before reading it.
    fn stop(mut self) {
        self.server.request_shutdown();
        if let Some(thread) = self.thread.take() {
            thread.join().expect("server thread");
        }
    }
}

impl Drop for TestServer {
    fn drop(&mut self) {
        self.server.request_shutdown();
        if let Some(thread) = self.thread.take() {
            thread.join().expect("server thread");
        }
    }
}

/// A process-unique scratch path (the container runs tests in parallel).
fn temp_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "gsched-telemetry-{}-{tag}.ndjson",
        std::process::id()
    ))
}

fn opts_with(access_log: Option<PathBuf>, metrics: bool) -> ServeConfig {
    let mut builder = ServeConfig::builder()
        .addr("127.0.0.1:0")
        .workers(2)
        .cache_capacity(64)
        .default_deadline_ms(30_000);
    if metrics {
        builder = builder.metrics_addr("127.0.0.1:0");
    }
    if let Some(path) = access_log {
        builder = builder.access_log(path);
    }
    builder.build().expect("valid test config")
}

fn read_ndjson(path: &PathBuf) -> Vec<Value> {
    let text = std::fs::read_to_string(path).expect("access log exists");
    text.lines()
        .map(|line| serde_json::from_str(line).unwrap_or_else(|e| panic!("bad line {line}: {e}")))
        .collect()
}

fn stats_doc(client: &mut Client) -> Value {
    let reply = client
        .request_line(&control_frame(Op::Stats, None))
        .expect("stats reply");
    let frame: Value = serde_json::from_str(&reply).expect("stats frame parses");
    assert_eq!(frame["status"].as_str(), Some("ok"), "{reply}");
    frame["result"].clone()
}

/// Drive concurrent solve traffic with deterministic cache behaviour (each
/// thread owns one scenario, so per-thread repeats are guaranteed hits),
/// then check the stats report and the access log agree with each other.
#[test]
fn stats_and_access_log_agree_under_concurrent_traffic() {
    let log_path = temp_path("stats");
    let _ = std::fs::remove_file(&log_path);
    let ts = TestServer::start(opts_with(Some(log_path.clone()), false));

    let mut handles = Vec::new();
    for name in ["fig2", "fig4"] {
        let addr = ts.addr.clone();
        handles.push(std::thread::spawn(move || {
            let mut client = Client::connect(&addr).expect("connect");
            for _ in 0..3 {
                let reply = client
                    .request_line(&frame_for_name(name, &RequestSpec::default()))
                    .expect("solve reply");
                let doc: Value = serde_json::from_str(&reply).unwrap();
                assert_eq!(doc["status"].as_str(), Some("ok"), "{reply}");
            }
        }));
    }
    for h in handles {
        h.join().expect("traffic thread");
    }

    let mut client = ts.client();
    let first = stats_doc(&mut client);
    let second = stats_doc(&mut client);

    // Two scenarios, three requests each: one miss + two hits per scenario.
    assert_eq!(first["cache_hits"].as_u64(), Some(4), "{first}");
    assert_eq!(first["cache_misses"].as_u64(), Some(2), "{first}");
    assert_eq!(first["errors"].as_u64(), Some(0), "{first}");
    // 6 solves + the stats request being answered.
    assert_eq!(first["requests"].as_u64(), Some(7), "{first}");
    let ratio = first["cache_hit_ratio"].as_f64().expect("ratio defined");
    assert!((ratio - 4.0 / 6.0).abs() < 1e-12, "ratio={ratio}");

    // Per-op breakdown: all six solves, with live percentiles.
    let solve = &first["ops"]["solve"];
    assert_eq!(solve["requests"].as_u64(), Some(6), "{first}");
    assert_eq!(solve["errors"].as_u64(), Some(0));
    assert_eq!(solve["latency_ms"]["count"].as_u64(), Some(6));
    let p50 = solve["latency_ms"]["p50"].as_f64().expect("p50 non-null");
    let p95 = solve["latency_ms"]["p95"].as_f64().expect("p95 non-null");
    let p99 = solve["latency_ms"]["p99"].as_f64().expect("p99 non-null");
    assert!(
        p50 > 0.0 && p95 >= p50 && p99 >= p95,
        "p50={p50} p95={p95} p99={p99}"
    );
    assert_eq!(solve["recent_latency_ms"]["count"].as_u64(), Some(6));

    // Only the two misses reached the worker pool.
    assert_eq!(first["queue_wait_ms"]["count"].as_u64(), Some(2), "{first}");
    assert_eq!(first["solve_ms"]["count"].as_u64(), Some(2), "{first}");
    assert!(first["solve_ms"]["p50"].as_f64().expect("solve p50") > 0.0);
    assert_eq!(first["queue_depth"].as_u64(), Some(0));
    assert_eq!(first["workers"].as_u64(), Some(2));
    assert_eq!(first["workers_busy"].as_u64(), Some(0));
    // Two traffic connections plus this stats client.
    assert_eq!(first["connections"].as_u64(), Some(3));

    // Counters are monotone between polls; the sweep op stayed untouched
    // and its empty percentiles stay null (never NaN).
    assert_eq!(second["requests"].as_u64(), Some(8));
    assert!(second["uptime_ms"].as_u64() >= first["uptime_ms"].as_u64());
    // Per-op telemetry is recorded after the reply renders, so a stats
    // report never includes the request that produced it: the second poll
    // sees exactly the first one.
    assert_eq!(second["ops"]["stats"]["requests"].as_u64(), Some(1));
    assert_eq!(
        second["ops"]["sweep"]["latency_ms"]["count"].as_u64(),
        Some(0)
    );
    assert!(
        second["ops"]["sweep"]["latency_ms"]["p95"].is_null(),
        "{second}"
    );

    ts.stop();

    // The access log tells the same story, one line per request.
    let lines = read_ndjson(&log_path);
    let solves: Vec<&Value> = lines
        .iter()
        .filter(|l| l["op"].as_str() == Some("solve"))
        .collect();
    assert_eq!(solves.len(), 6, "one access line per solve");
    assert_eq!(
        solves
            .iter()
            .filter(|l| l["cached"].as_bool() == Some(true))
            .count(),
        4
    );
    assert_eq!(
        lines
            .iter()
            .filter(|l| l["op"].as_str() == Some("stats"))
            .count(),
        2
    );
    let mut ids: Vec<&str> = lines
        .iter()
        .map(|l| l["request_id"].as_str().expect("request_id present"))
        .collect();
    assert!(ids.iter().all(|id| {
        id.strip_prefix("r-")
            .is_some_and(|n| n.parse::<u64>().is_ok())
    }));
    ids.sort_unstable();
    let unique = ids.len();
    ids.dedup();
    assert_eq!(ids.len(), unique, "request ids are unique");
    for line in &solves {
        assert_eq!(line["outcome"].as_str(), Some("ok"), "{line}");
        assert!(line["scenario_hash"].as_str().is_some(), "{line}");
        let cached = line["cached"].as_bool().unwrap();
        // Misses went through the queue and a worker; hits never did.
        assert_eq!(line["queue_wait_ms"].is_null(), cached, "{line}");
        assert_eq!(line["solve_ms"].is_null(), cached, "{line}");
        assert!(line["latency_ms"].as_f64().unwrap() > 0.0);
    }
    let _ = std::fs::remove_file(&log_path);
}

/// One raw HTTP exchange against the metrics socket.
fn scrape(addr: &std::net::SocketAddr, path: &str) -> (String, String) {
    let mut stream = TcpStream::connect(addr).expect("connect metrics");
    stream
        .write_all(format!("GET {path} HTTP/1.0\r\nHost: test\r\n\r\n").as_bytes())
        .expect("write request");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read response");
    let (head, body) = response
        .split_once("\r\n\r\n")
        .expect("response has a header/body split");
    (head.to_string(), body.to_string())
}

#[test]
fn metrics_endpoint_serves_valid_prometheus_text() {
    let ts = TestServer::start(opts_with(None, true));
    let metrics_addr = ts.server.metrics_local_addr().expect("metrics bound");

    let mut client = ts.client();
    let reply = client
        .request_line(&frame_for_name("fig2", &RequestSpec::default()))
        .unwrap();
    assert!(reply.contains(r#""status":"ok""#), "{reply}");

    let (head, body) = scrape(&metrics_addr, "/metrics");
    assert!(head.starts_with("HTTP/1.0 200"), "{head}");
    assert!(
        head.contains("text/plain; version=0.0.4"),
        "exposition content type: {head}"
    );
    assert!(!body.contains("NaN"), "{body}");
    for family in [
        "gsched_uptime_seconds",
        "gsched_workers",
        "gsched_workers_busy",
        "gsched_queue_depth",
        "gsched_queue_limit",
        "gsched_shed_total",
        "gsched_coalesced_total",
        "gsched_batch_merged_total",
        "gsched_cache_replayed",
        "gsched_connections_total",
        "gsched_requests_total",
        "gsched_errors_total",
        "gsched_cache_hits_total",
        "gsched_cache_misses_total",
        "gsched_cache_entries",
        "gsched_cache_capacity",
        "gsched_cache_hit_ratio",
        "gsched_request_latency_ms",
        "gsched_queue_wait_ms",
        "gsched_solve_ms",
    ] {
        assert!(
            body.contains(&format!("# TYPE {family} ")),
            "missing family {family}:\n{body}"
        );
    }
    assert!(
        body.contains(r#"gsched_requests_total{op="solve"} 1"#),
        "{body}"
    );
    assert!(body.contains("gsched_cache_misses_total 1"), "{body}");
    assert!(
        body.contains(r#"gsched_request_latency_ms{op="solve",quantile="0.5"}"#),
        "{body}"
    );
    // Every sample line ends in a value Prometheus can parse.
    for line in body.lines() {
        if line.starts_with('#') || line.is_empty() {
            continue;
        }
        let (_, value) = line.rsplit_once(' ').expect("sample has a value");
        assert!(
            value.parse::<f64>().is_ok() || value == "+Inf" || value == "-Inf",
            "bad sample value in {line:?}"
        );
    }

    let (head, _) = scrape(&metrics_addr, "/no-such-path");
    assert!(head.starts_with("HTTP/1.0 404"), "{head}");
    ts.stop();
}

/// The `request_id` written to the access log is the same context label the
/// span tree carries, all the way into the Chrome-trace export.
#[test]
fn access_log_request_ids_match_exported_span_trees() {
    let recorder = gsched_obs::install_memory();
    let log_path = temp_path("trace");
    let _ = std::fs::remove_file(&log_path);
    let ts = TestServer::start(opts_with(Some(log_path.clone()), false));
    let mut client = ts.client();
    let reply = client
        .request_line(&frame_for_name("fig2", &RequestSpec::default()))
        .unwrap();
    assert!(reply.contains(r#""status":"ok""#), "{reply}");
    drop(client);
    ts.stop();
    gsched_obs::uninstall();

    let lines = read_ndjson(&log_path);
    let solve_line = lines
        .iter()
        .find(|l| l["op"].as_str() == Some("solve"))
        .expect("solve line logged");
    let request_id = solve_line["request_id"]
        .as_str()
        .expect("request_id")
        .to_string();

    // Other tests in this binary share the global recorder; filter to the
    // spans carrying exactly this request's context.
    let snapshot = recorder.snapshot();
    let ours: Vec<_> = snapshot
        .span_intervals
        .iter()
        .filter(|s| s.ctx != 0 && gsched_obs::context_label(s.ctx) == request_id)
        .collect();
    assert!(
        ours.iter().any(|s| s.path == "service.request"),
        "connection-side span tagged: {ours:?}"
    );
    assert!(
        ours.iter().any(|s| s.path.starts_with("service.solve")),
        "worker-side span tree tagged: {ours:?}"
    );

    let trace: Value = serde_json::from_str(&snapshot.to_chrome_trace()).expect("valid trace");
    let tagged: Vec<&Value> = trace["traceEvents"]
        .as_array()
        .unwrap()
        .iter()
        .filter(|e| e["args"]["request_id"].as_str() == Some(&request_id))
        .collect();
    assert!(
        tagged
            .iter()
            .any(|e| e["args"]["path"].as_str() == Some("service.request")),
        "trace export carries the request id"
    );
    let _ = std::fs::remove_file(&log_path);
}
