//! The level-structured QBD generator and its validation.

use crate::{QbdError, Result};
use gsched_linalg::Matrix;
use gsched_markov::scc::is_strongly_connected;

/// A continuous-time QBD process with a finite, possibly inhomogeneous
/// boundary — the structure of the paper's eq. (20):
///
/// ```text
///        ⎡ L₀   U₀                                  ⎤
///        ⎢ D₁   L₁   U₁                             ⎥
///        ⎢      D₂   L₂  U₂                         ⎥
///    Q = ⎢           …   …    …                     ⎥
///        ⎢           D_c  L_c  A₀                   ⎥   ← level c (= B̂₁₁ row)
///        ⎢                A₂   A₁   A₀              ⎥
///        ⎣                     A₂   A₁   A₀   …     ⎦
/// ```
///
/// Levels `0..=c` form the *boundary* (sizes `d₀, …, d_c` with `d_c = D`);
/// levels `c+1, c+2, …` repeat with the `D × D` blocks `A₀` (up), `A₁`
/// (local) and `A₂` (down).
#[derive(Debug, Clone)]
pub struct QbdProcess {
    /// `up[i]`: level `i → i+1`, shape `dᵢ × dᵢ₊₁`, for `i ∈ 0..c`.
    pub boundary_up: Vec<Matrix>,
    /// `local[i]`: level `i → i` (with diagonal), shape `dᵢ × dᵢ`, `i ∈ 0..=c`.
    pub boundary_local: Vec<Matrix>,
    /// `down[i]`: level `i → i−1`, shape `dᵢ × dᵢ₋₁`, for `i ∈ 1..=c`.
    pub boundary_down: Vec<Matrix>,
    /// Repeating up block `A₀` (`D × D`), also used from level `c`.
    pub a0: Matrix,
    /// Repeating local block `A₁` (`D × D`), levels `> c`.
    pub a1: Matrix,
    /// Repeating down block `A₂` (`D × D`), levels `> c` (down to `c` too).
    pub a2: Matrix,
}

/// Numerical slack for generator validation.
const VTOL: f64 = 1e-7;

impl QbdProcess {
    /// Validate shapes, sign structure, and zero row sums of the implied
    /// infinite generator.
    pub fn new(
        boundary_up: Vec<Matrix>,
        boundary_local: Vec<Matrix>,
        boundary_down: Vec<Matrix>,
        a0: Matrix,
        a1: Matrix,
        a2: Matrix,
    ) -> Result<QbdProcess> {
        let c = boundary_local.len().checked_sub(1).ok_or_else(|| {
            QbdError::Shape("at least one boundary level (level 0) required".to_string())
        })?;
        if boundary_up.len() != c {
            return Err(QbdError::Shape(format!(
                "expected {} up blocks for {} boundary levels, got {}",
                c,
                c + 1,
                boundary_up.len()
            )));
        }
        if boundary_down.len() != c {
            return Err(QbdError::Shape(format!(
                "expected {} down blocks for {} boundary levels, got {}",
                c,
                c + 1,
                boundary_down.len()
            )));
        }
        let d = a1.rows();
        for (name, m) in [("A0", &a0), ("A1", &a1), ("A2", &a2)] {
            if m.shape() != (d, d) {
                return Err(QbdError::Shape(format!(
                    "{name} must be {d}x{d}, got {}x{}",
                    m.rows(),
                    m.cols()
                )));
            }
        }
        // Level sizes.
        let dims: Vec<usize> = boundary_local.iter().map(|m| m.rows()).collect();
        if dims[c] != d {
            return Err(QbdError::Shape(format!(
                "level c={c} must have the repeating dimension {d}, got {}",
                dims[c]
            )));
        }
        for (i, m) in boundary_local.iter().enumerate() {
            if !m.is_square() {
                return Err(QbdError::Shape(format!("local[{i}] is not square")));
            }
        }
        for (i, m) in boundary_up.iter().enumerate() {
            if m.shape() != (dims[i], dims[i + 1]) {
                return Err(QbdError::Shape(format!(
                    "up[{i}] must be {}x{}, got {}x{}",
                    dims[i],
                    dims[i + 1],
                    m.rows(),
                    m.cols()
                )));
            }
        }
        for (i, m) in boundary_down.iter().enumerate() {
            // boundary_down[i] is the down block out of level i+1.
            if m.shape() != (dims[i + 1], dims[i]) {
                return Err(QbdError::Shape(format!(
                    "down[{}] must be {}x{}, got {}x{}",
                    i + 1,
                    dims[i + 1],
                    dims[i],
                    m.rows(),
                    m.cols()
                )));
            }
        }

        let proc = QbdProcess {
            boundary_up,
            boundary_local,
            boundary_down,
            a0,
            a1,
            a2,
        };
        proc.validate_generator()?;
        Ok(proc)
    }

    /// Index of the first repeating level, `c`.
    pub fn c(&self) -> usize {
        self.boundary_local.len() - 1
    }

    /// Dimension of the repeating levels, `D`.
    pub fn repeating_dim(&self) -> usize {
        self.a1.rows()
    }

    /// Dimension of boundary level `i`.
    pub fn level_dim(&self, i: usize) -> usize {
        if i <= self.c() {
            self.boundary_local[i].rows()
        } else {
            self.repeating_dim()
        }
    }

    /// Check sign structure and zero row sums level by level.
    fn validate_generator(&self) -> Result<()> {
        let c = self.c();
        let check_nonneg = |name: String, m: &Matrix, skip_diag: bool| -> Result<()> {
            for i in 0..m.rows() {
                for j in 0..m.cols() {
                    if skip_diag && i == j {
                        continue;
                    }
                    if m[(i, j)] < -VTOL {
                        return Err(QbdError::NotGenerator(format!(
                            "{name}[{i},{j}] = {} is negative",
                            m[(i, j)]
                        )));
                    }
                }
            }
            Ok(())
        };
        for (i, m) in self.boundary_local.iter().enumerate() {
            check_nonneg(format!("local[{i}]"), m, true)?;
        }
        for (i, m) in self.boundary_up.iter().enumerate() {
            check_nonneg(format!("up[{i}]"), m, false)?;
        }
        for (i, m) in self.boundary_down.iter().enumerate() {
            check_nonneg(format!("down[{}]", i + 1), m, false)?;
        }
        check_nonneg("A0".to_string(), &self.a0, false)?;
        check_nonneg("A1".to_string(), &self.a1, true)?;
        check_nonneg("A2".to_string(), &self.a2, false)?;

        // Row sums per level.
        let row_sum_check = |level: String, parts: Vec<&Matrix>| -> Result<()> {
            let rows = parts[0].rows();
            for r in 0..rows {
                let total: f64 = parts.iter().map(|m| m.row(r).iter().sum::<f64>()).sum();
                let scale: f64 = parts
                    .iter()
                    .map(|m| m.row(r).iter().map(|v| v.abs()).sum::<f64>())
                    .sum();
                if total.abs() > VTOL * (1.0 + scale) {
                    return Err(QbdError::NotGenerator(format!(
                        "row {r} of {level} sums to {total}"
                    )));
                }
            }
            Ok(())
        };
        if c == 0 {
            row_sum_check(
                "level 0".to_string(),
                vec![&self.boundary_local[0], &self.a0],
            )?;
        } else {
            row_sum_check(
                "level 0".to_string(),
                vec![&self.boundary_local[0], &self.boundary_up[0]],
            )?;
            for i in 1..c {
                row_sum_check(
                    format!("level {i}"),
                    vec![
                        &self.boundary_down[i - 1],
                        &self.boundary_local[i],
                        &self.boundary_up[i],
                    ],
                )?;
            }
            row_sum_check(
                format!("level {c}"),
                vec![
                    &self.boundary_down[c - 1],
                    &self.boundary_local[c],
                    &self.a0,
                ],
            )?;
        }
        row_sum_check(
            "repeating level".to_string(),
            vec![&self.a2, &self.a1, &self.a0],
        )?;
        Ok(())
    }

    /// The frozen-capacity truncation of this process at boundary level `m`.
    ///
    /// The result is a QBD whose boundary is levels `0..=m` of this process
    /// and whose repeating blocks are the level-`m` boundary blocks:
    /// `A₀' = up[m]`, `A₁' = local[m+1]`, `A₂' = down out of m+1`. Above
    /// level `m` the truncated chain keeps the level-`m+1` dynamics forever —
    /// in particular its service capacity is frozen at `m+1` busy partitions
    /// instead of growing to `c`. Fewer departures mean stochastically *more*
    /// jobs: the truncated chain dominates the original, so every tail
    /// probability it reports is an upper bound on the true one. That is the
    /// direction a certified truncation needs (see
    /// [`solution::LevelTruncation`](crate::solution::LevelTruncation)).
    ///
    /// Requires `1 ≤ m < c` and `level_dim(m) == level_dim(m+1)` (the level
    /// sizes must have saturated — true below `c` only when the service
    /// distribution has a single phase). Returns [`QbdError::Shape`]
    /// otherwise; callers using automatic truncation fall back to the full
    /// solve on that error.
    pub fn truncated(&self, m: usize) -> Result<QbdProcess> {
        let c = self.c();
        if m == 0 || m >= c {
            return Err(QbdError::Shape(format!(
                "truncation level {m} must satisfy 1 <= m < c = {c}"
            )));
        }
        if self.level_dim(m) != self.level_dim(m + 1) {
            return Err(QbdError::Shape(format!(
                "levels {m} and {} differ in size ({} vs {}): cannot truncate",
                m + 1,
                self.level_dim(m),
                self.level_dim(m + 1)
            )));
        }
        QbdProcess::new(
            self.boundary_up[..m].to_vec(),
            self.boundary_local[..=m].to_vec(),
            self.boundary_down[..m].to_vec(),
            self.boundary_up[m].clone(),
            self.boundary_local[m + 1].clone(),
            self.boundary_down[m].clone(),
        )
    }

    /// The phase-process generator `A = A₀ + A₁ + A₂` of Theorem 4.4.
    pub fn phase_generator(&self) -> Matrix {
        &(&self.a0 + &self.a1) + &self.a2
    }

    /// §4.4 irreducibility check: the finite chain made of the boundary plus
    /// the first two repeating levels must be strongly connected (transitions
    /// above the truncation are dropped; by the repeating structure this is
    /// sufficient).
    pub fn is_irreducible(&self) -> bool {
        let c = self.c();
        // Global indices: levels 0..=c+2.
        let dims: Vec<usize> = (0..=c + 2).map(|i| self.level_dim(i)).collect();
        let offsets: Vec<usize> = dims
            .iter()
            .scan(0usize, |acc, &d| {
                let o = *acc;
                *acc += d;
                Some(o)
            })
            .collect();
        let n: usize = dims.iter().sum();
        let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
        let mut add_block = |from_level: usize, to_level: usize, m: &Matrix| {
            for i in 0..m.rows() {
                for j in 0..m.cols() {
                    if m[(i, j)] > 0.0 {
                        let u = offsets[from_level] + i;
                        let v = offsets[to_level] + j;
                        if u != v {
                            adj[u].push(v);
                        }
                    }
                }
            }
        };
        for (i, m) in self.boundary_local.iter().enumerate() {
            add_block(i, i, m);
        }
        for (i, m) in self.boundary_up.iter().enumerate() {
            add_block(i, i + 1, m);
        }
        for (i, m) in self.boundary_down.iter().enumerate() {
            add_block(i + 1, i, m);
        }
        // Level c up, c+1 and c+2 blocks (truncate up-transitions from c+2).
        add_block(c, c + 1, &self.a0);
        add_block(c + 1, c + 1, &self.a1);
        add_block(c + 1, c, &self.a2);
        add_block(c + 1, c + 2, &self.a0);
        add_block(c + 2, c + 2, &self.a1);
        add_block(c + 2, c + 1, &self.a2);
        is_strongly_connected(&adj)
    }

    /// Build the generator of the chain truncated at `max_level` (transitions
    /// above are redirected nowhere; the top level keeps its up-rates on the
    /// diagonal as a reflecting approximation). Used for cross-validation
    /// against direct CTMC solves in tests.
    pub fn truncated_generator(&self, max_level: usize) -> Matrix {
        let c = self.c();
        assert!(max_level > c, "truncate above the boundary");
        let dims: Vec<usize> = (0..=max_level).map(|i| self.level_dim(i)).collect();
        let offsets: Vec<usize> = dims
            .iter()
            .scan(0usize, |acc, &d| {
                let o = *acc;
                *acc += d;
                Some(o)
            })
            .collect();
        let n: usize = dims.iter().sum();
        let mut q = Matrix::zeros(n, n);
        let put = |q: &mut Matrix, from: usize, to: usize, m: &Matrix| {
            q.set_block(offsets[from], offsets[to], m);
        };
        for (i, m) in self.boundary_local.iter().enumerate() {
            put(&mut q, i, i, m);
        }
        for (i, m) in self.boundary_up.iter().enumerate() {
            put(&mut q, i, i + 1, m);
        }
        for (i, m) in self.boundary_down.iter().enumerate() {
            put(&mut q, i + 1, i, m);
        }
        for lvl in c..=max_level {
            if lvl > c {
                put(&mut q, lvl, lvl, &self.a1);
                put(&mut q, lvl, lvl - 1, &self.a2);
            }
            if lvl < max_level {
                put(&mut q, lvl, lvl + 1, &self.a0);
            }
        }
        // Reflect: fold the dropped up-rates of the top level into its
        // diagonal so rows still sum to zero (equivalent to rejecting
        // arrivals at the truncation level).
        let top = offsets[max_level];
        let d = dims[max_level];
        for i in 0..d {
            let up_rate: f64 = self.a0.row(i).iter().sum();
            q[(top + i, top + i)] += up_rate;
        }
        q
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// M/M/1 queue as a trivial QBD: one phase, boundary level 0 only.
    pub(crate) fn mm1(lambda: f64, mu: f64) -> QbdProcess {
        QbdProcess::new(
            vec![],
            vec![Matrix::from_rows(&[&[-lambda]])],
            vec![],
            Matrix::from_rows(&[&[lambda]]),
            Matrix::from_rows(&[&[-(lambda + mu)]]),
            Matrix::from_rows(&[&[mu]]),
        )
        .unwrap()
    }

    /// M/M/2 queue: levels 0,1 boundary (c=2 would be natural; use c=2).
    pub(crate) fn mm2(lambda: f64, mu: f64) -> QbdProcess {
        // Levels: 0 (empty), 1 (one busy), 2+ (both busy). All dims 1.
        QbdProcess::new(
            vec![
                Matrix::from_rows(&[&[lambda]]),
                Matrix::from_rows(&[&[lambda]]),
            ],
            vec![
                Matrix::from_rows(&[&[-lambda]]),
                Matrix::from_rows(&[&[-(lambda + mu)]]),
                Matrix::from_rows(&[&[-(lambda + 2.0 * mu)]]),
            ],
            vec![
                Matrix::from_rows(&[&[mu]]),
                Matrix::from_rows(&[&[2.0 * mu]]),
            ],
            Matrix::from_rows(&[&[lambda]]),
            Matrix::from_rows(&[&[-(lambda + 2.0 * mu)]]),
            Matrix::from_rows(&[&[2.0 * mu]]),
        )
        .unwrap()
    }

    #[test]
    fn mm1_valid() {
        let q = mm1(0.5, 1.0);
        assert_eq!(q.c(), 0);
        assert_eq!(q.repeating_dim(), 1);
        assert!(q.is_irreducible());
    }

    #[test]
    fn mm2_valid() {
        let q = mm2(0.5, 1.0);
        assert_eq!(q.c(), 2);
        assert!(q.is_irreducible());
    }

    #[test]
    fn shape_errors_detected() {
        // Wrong up-block count.
        let e = QbdProcess::new(
            vec![Matrix::zeros(1, 1)],
            vec![Matrix::from_rows(&[&[-1.0]])],
            vec![],
            Matrix::from_rows(&[&[1.0]]),
            Matrix::from_rows(&[&[-2.0]]),
            Matrix::from_rows(&[&[1.0]]),
        );
        assert!(matches!(e, Err(QbdError::Shape(_))));
    }

    #[test]
    fn row_sum_violation_detected() {
        let e = QbdProcess::new(
            vec![],
            vec![Matrix::from_rows(&[&[-1.0]])], // level 0: -1 + A0(=2) = 1 ≠ 0
            vec![],
            Matrix::from_rows(&[&[2.0]]),
            Matrix::from_rows(&[&[-3.0]]),
            Matrix::from_rows(&[&[1.0]]),
        );
        assert!(matches!(e, Err(QbdError::NotGenerator(_))));
    }

    #[test]
    fn negative_rate_detected() {
        let e = QbdProcess::new(
            vec![],
            vec![Matrix::from_rows(&[&[1.0]])], // positive "diagonal" is fine
            vec![],
            Matrix::from_rows(&[&[-1.0]]), // negative up rate
            Matrix::from_rows(&[&[-1.0]]),
            Matrix::from_rows(&[&[1.0]]),
        );
        assert!(matches!(e, Err(QbdError::NotGenerator(_))));
    }

    #[test]
    fn phase_generator_rows_sum_zero() {
        let q = mm2(0.7, 1.0);
        let a = q.phase_generator();
        for rs in a.row_sums() {
            assert!(rs.abs() < 1e-12);
        }
    }

    #[test]
    fn truncated_generator_is_generator() {
        let q = mm2(0.7, 1.0);
        let t = q.truncated_generator(6);
        assert_eq!(t.rows(), 7); // levels 0..=6, one state each
        for rs in t.row_sums() {
            assert!(rs.abs() < 1e-12);
        }
    }

    #[test]
    fn reducible_detected() {
        // Up rate zero: can never leave level 0 upward -> truncated graph
        // not strongly connected.
        let q = QbdProcess::new(
            vec![],
            vec![Matrix::from_rows(&[&[0.0]])],
            vec![],
            Matrix::from_rows(&[&[0.0]]),
            Matrix::from_rows(&[&[-1.0]]),
            Matrix::from_rows(&[&[1.0]]),
        )
        .unwrap();
        assert!(!q.is_irreducible());
    }
}
