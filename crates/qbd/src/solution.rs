//! Boundary solve and the stationary solution object (Theorem 4.2, eq. 37).

use crate::process::QbdProcess;
use crate::rmatrix::{r_residual_with, solve_r_warm_with, solve_r_with, RSolverMethod};
use crate::stability::drift_condition;
use crate::{QbdError, Result};
use gsched_linalg::{solve_left_nullspace, BackendKind, Matrix};
use gsched_obs as obs;

/// Options controlling the QBD solve.
#[derive(Debug, Clone)]
pub struct SolveOptions {
    /// Algorithm for the rate matrix `R`.
    pub method: RSolverMethod,
    /// Convergence tolerance for the `R` iteration.
    pub tol: f64,
    /// Iteration budget for the `R` iteration.
    pub max_iter: usize,
    /// If true (default), fail with [`QbdError::NotIrreducible`] when the
    /// §4.4 strong-connectivity check fails; if false, skip the check
    /// (useful when the caller has already verified it).
    pub check_irreducible: bool,
    /// Warm-start iterate for `R`, typically the converged `R` of a nearby
    /// parameter point (continuation solves along a sweep axis). When set
    /// and dimension-compatible, a bounded iteration honouring `method` is
    /// run from it first; if that stalls or fails validation the solve falls
    /// back to the cold `method` transparently. Hits and fallbacks are
    /// counted under `qbd.rmatrix.warm_hits` / `qbd.rmatrix.warm_misses`.
    pub initial_r: Option<Matrix>,
    /// Iteration budget for the warm-started `R` attempt before falling
    /// back to the cold solve. Kept small: a useful warm start converges in
    /// a handful of contractive steps.
    pub warm_max_iter: usize,
    /// Kernel backend for all dense linear algebra performed by the solve
    /// (products, factorizations, triangular/spectral work).
    pub backend: BackendKind,
}

impl Default for SolveOptions {
    fn default() -> Self {
        SolveOptions {
            method: RSolverMethod::default(),
            tol: 1e-12,
            max_iter: 10_000,
            check_irreducible: true,
            initial_r: None,
            warm_max_iter: 200,
            backend: BackendKind::default(),
        }
    }
}

/// The stationary distribution of a positive-recurrent QBD.
///
/// Stores the boundary vectors `π_0, …, π_c` and the rate matrix `R`; all
/// higher levels follow from `π_{c+n} = π_c Rⁿ` (paper eq. 22).
#[derive(Debug, Clone)]
pub struct QbdSolution {
    boundary: Vec<Vec<f64>>,
    r: Matrix,
    /// Cached `(I − R)⁻¹`.
    i_minus_r_inv: Matrix,
    /// Spectral radius of `R`.
    sp_r: f64,
    /// Kernel backend the solve ran under; post-solve matrix work
    /// (moments, tail sums) keeps using it.
    backend: BackendKind,
}

impl QbdProcess {
    /// Compute `R`, honouring a warm-start iterate when one is supplied.
    ///
    /// A dimension-compatible `opts.initial_r` triggers a bounded warm
    /// attempt honouring `opts.method` first; any failure (stall, residual
    /// above tolerance, negative entries) falls back to the cold
    /// `opts.method` solve so the result is always as trustworthy as a
    /// cold solve.
    fn solve_r_with_options(&self, opts: &SolveOptions) -> Result<Matrix> {
        if let Some(r0) = &opts.initial_r {
            let d = self.repeating_dim();
            if r0.rows() == d && r0.cols() == d {
                let budget = opts.warm_max_iter.min(opts.max_iter).max(1);
                match solve_r_warm_with(
                    &self.a0,
                    &self.a1,
                    &self.a2,
                    r0,
                    opts.method,
                    opts.tol,
                    budget,
                    1e-8,
                    opts.backend,
                ) {
                    Ok(r) => {
                        obs::counter_add(obs::names::QBD_RMATRIX_WARM_HITS, 1);
                        return Ok(r);
                    }
                    Err(_) => obs::counter_add(obs::names::QBD_RMATRIX_WARM_MISSES, 1),
                }
            } else {
                obs::counter_add(obs::names::QBD_RMATRIX_WARM_MISSES, 1);
            }
        }
        solve_r_with(
            &self.a0,
            &self.a1,
            &self.a2,
            opts.method,
            opts.tol,
            opts.max_iter,
            opts.backend,
        )
    }

    /// Solve for the stationary distribution (Theorem 4.2).
    ///
    /// Steps: §4.4 irreducibility check → drift condition (Theorem 4.4) →
    /// `R` from eq. (23) → boundary system eqs. (21)/(24) → assemble.
    pub fn solve(&self, opts: &SolveOptions) -> Result<QbdSolution> {
        let _span = obs::span("qbd.solve");
        if opts.check_irreducible && !self.is_irreducible() {
            return Err(QbdError::NotIrreducible);
        }
        let drift = drift_condition(&self.a0, &self.a1, &self.a2)?;
        if !drift.is_stable() {
            return Err(QbdError::Unstable(drift));
        }
        let be = opts.backend.instance();
        let r = self.solve_r_with_options(opts)?;
        debug_assert!(
            r_residual_with(&self.a0, &self.a1, &self.a2, &r, opts.backend) < 1e-6,
            "R residual too large"
        );
        let d = self.repeating_dim();
        let sp_r = be.spectral_radius(&r, 1e-12, 200_000).unwrap_or(1.0);
        if obs::enabled() {
            obs::observe(obs::names::QBD_SPECTRAL_RADIUS, sp_r);
            obs::observe(obs::names::QBD_DRIFT_MARGIN, drift.margin());
        }
        if sp_r >= 1.0 {
            return Err(QbdError::Unstable(drift));
        }
        let i_minus_r = &Matrix::identity(d) - &r;
        let i_minus_r_inv = be.inverse(&i_minus_r)?;

        // ---- Boundary linear system (eqs. 21/25/26 + 24) ----
        let c = self.c();
        let dims: Vec<usize> = (0..=c).map(|i| self.level_dim(i)).collect();
        let offsets: Vec<usize> = dims
            .iter()
            .scan(0usize, |acc, &x| {
                let o = *acc;
                *acc += x;
                Some(o)
            })
            .collect();
        let nb: usize = dims.iter().sum();
        let boundary_span = obs::span("qbd.boundary_solve");
        obs::event(
            "qbd.boundary",
            &[
                ("size", obs::FieldValue::U64(nb as u64)),
                ("levels", obs::FieldValue::U64((c + 1) as u64)),
            ],
        );
        let mut m = Matrix::zeros(nb, nb);

        // Column block j collects flow-balance contributions into level j.
        // Row block i = unknown π_i.
        for j in 0..=c {
            // local contribution (π_j · local[j]); for j = c add R·A2.
            if j < c {
                m.set_block(offsets[j], offsets[j], &self.boundary_local[j]);
            } else {
                let ra2 = be.matmul(&r, &self.a2)?;
                let block = &self.boundary_local[c] + &ra2;
                m.set_block(offsets[c], offsets[c], &block);
            }
            // up contribution from level j-1 (π_{j-1} · up[j-1]).
            if j >= 1 {
                m.set_block(offsets[j - 1], offsets[j], &self.boundary_up[j - 1]);
            }
            // down contribution from level j+1 when j+1 <= c.
            if j < c {
                m.set_block(offsets[j + 1], offsets[j], &self.boundary_down[j]);
            }
        }

        // Normalization weights: 1 for levels < c, (I−R)⁻¹e for level c.
        let mut w = vec![1.0; nb];
        let tail = i_minus_r_inv.row_sums();
        w[offsets[c]..offsets[c] + dims[c]].copy_from_slice(&tail);

        let x = solve_left_nullspace(&m, &w)?;
        // Clamp tiny negative round-off and split into levels.
        let mut boundary = Vec::with_capacity(c + 1);
        for j in 0..=c {
            let seg: Vec<f64> = x[offsets[j]..offsets[j] + dims[j]]
                .iter()
                .map(|&v| if v < 0.0 && v > -1e-9 { 0.0 } else { v })
                .collect();
            if seg.iter().any(|&v| v < 0.0) {
                return Err(QbdError::NotGenerator(format!(
                    "boundary solve produced negative probability at level {j}"
                )));
            }
            boundary.push(seg);
        }
        drop(boundary_span);

        Ok(QbdSolution {
            boundary,
            r,
            i_minus_r_inv,
            sp_r,
            backend: opts.backend,
        })
    }
}

impl QbdSolution {
    /// Index of the first repeating level.
    pub fn c(&self) -> usize {
        self.boundary.len() - 1
    }

    /// The rate matrix `R`.
    pub fn r(&self) -> &Matrix {
        &self.r
    }

    /// Spectral radius of `R` (strictly below 1 for a solved system).
    pub fn spectral_radius(&self) -> f64 {
        self.sp_r
    }

    /// Kernel backend the solve ran under.
    pub fn backend(&self) -> BackendKind {
        self.backend
    }

    /// Stationary sub-vector of level `n` (computed as `π_c R^{n−c}` above
    /// the boundary).
    pub fn level_vector(&self, n: usize) -> Vec<f64> {
        let c = self.c();
        if n <= c {
            return self.boundary[n].clone();
        }
        let mut v = self.boundary[c].clone();
        for _ in c..n {
            v = self.r.left_mul_vec(&v).expect("dimension");
        }
        v
    }

    /// Total stationary probability of level `n`.
    pub fn level_prob(&self, n: usize) -> f64 {
        self.level_vector(n).iter().sum()
    }

    /// `P(level ≥ n)`.
    pub fn tail_prob(&self, n: usize) -> f64 {
        let c = self.c();
        if n <= c {
            let below: f64 = (0..n).map(|i| self.level_prob(i)).sum();
            return (1.0 - below).clamp(0.0, 1.0);
        }
        // π_c R^{n-c} (I−R)⁻¹ e
        let mut v = self.boundary[c].clone();
        for _ in c..n {
            v = self.r.left_mul_vec(&v).expect("dimension");
        }
        let tail = self.i_minus_r_inv.row_sums();
        v.iter().zip(tail.iter()).map(|(a, b)| a * b).sum()
    }

    /// Mean level — the paper's eq. (37):
    ///
    /// `N = Σ_{i=1}^{c−1} i·π_i·e + c·π_c(I−R)⁻¹e + π_c(I−R)⁻²Re`.
    pub fn mean_level(&self) -> f64 {
        let c = self.c();
        let mut n = 0.0;
        for i in 1..c {
            n += i as f64 * self.level_prob(i);
        }
        let pi_c = &self.boundary[c];
        // c · π_c (I−R)⁻¹ e
        let inv_e = self.i_minus_r_inv.row_sums();
        n += c as f64
            * pi_c
                .iter()
                .zip(inv_e.iter())
                .map(|(a, b)| a * b)
                .sum::<f64>();
        // π_c (I−R)⁻² R e
        let be = self.backend.instance();
        let inv2 = be
            .matmul(&self.i_minus_r_inv, &self.i_minus_r_inv)
            .expect("square");
        let inv2_r = be.matmul(&inv2, &self.r).expect("square");
        let v = inv2_r.row_sums();
        n += pi_c.iter().zip(v.iter()).map(|(a, b)| a * b).sum::<f64>();
        n
    }

    /// Second raw moment of the level, `E[level²]`, via
    /// `Σ n Rⁿ = R(I−R)⁻²` and `Σ n² Rⁿ = R(I+R)(I−R)⁻³`.
    pub fn second_moment_level(&self) -> f64 {
        let c = self.c();
        let mut m2 = 0.0;
        for i in 1..c {
            m2 += (i * i) as f64 * self.level_prob(i);
        }
        let pi_c = &self.boundary[c];
        let d = self.r.rows();
        let be = self.backend.instance();
        let inv = &self.i_minus_r_inv;
        let inv2 = be.matmul(inv, inv).expect("square");
        let inv3 = be.matmul(&inv2, inv).expect("square");
        // Σ_{n≥0} (c+n)² π_c Rⁿ e
        //   = c² π_c(I−R)⁻¹e + 2c π_c R(I−R)⁻²e + π_c R(I+R)(I−R)⁻³e
        let t1 = inv.row_sums();
        let r_inv2 = be.matmul(&self.r, &inv2).expect("square");
        let t2 = r_inv2.row_sums();
        let i_plus_r = &Matrix::identity(d) + &self.r;
        let r_ipr_inv3 = be
            .matmul(&self.r, &i_plus_r)
            .and_then(|m| be.matmul(&m, &inv3))
            .expect("square");
        let t3 = r_ipr_inv3.row_sums();
        let cf = c as f64;
        let dot = |v: &[f64]| -> f64 { pi_c.iter().zip(v.iter()).map(|(a, b)| a * b).sum() };
        m2 + cf * cf * dot(&t1) + 2.0 * cf * dot(&t2) + dot(&t3)
    }

    /// Variance of the level.
    pub fn variance_level(&self) -> f64 {
        let m = self.mean_level();
        (self.second_moment_level() - m * m).max(0.0)
    }

    /// Aggregated stationary phase vector over all levels `≥ c`:
    /// `π_c (I−R)⁻¹`. Together with the boundary vectors this is the full
    /// marginal over phases.
    pub fn tail_phase_vector(&self) -> Vec<f64> {
        self.i_minus_r_inv
            .transpose()
            .mul_vec(&self.boundary[self.c()])
            .expect("dimension")
    }

    /// Total probability mass (should be 1; exposed for diagnostics).
    pub fn total_mass(&self) -> f64 {
        let c = self.c();
        let mut s = 0.0;
        for i in 0..c {
            s += self.level_prob(i);
        }
        s + self.tail_phase_vector().iter().sum::<f64>()
    }

    /// Borrow the boundary vectors `π_0..=π_c`.
    pub fn boundary(&self) -> &[Vec<f64>] {
        &self.boundary
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mm1(lambda: f64, mu: f64) -> QbdProcess {
        QbdProcess::new(
            vec![],
            vec![Matrix::from_rows(&[&[-lambda]])],
            vec![],
            Matrix::from_rows(&[&[lambda]]),
            Matrix::from_rows(&[&[-(lambda + mu)]]),
            Matrix::from_rows(&[&[mu]]),
        )
        .unwrap()
    }

    fn mmc(lambda: f64, mu: f64, servers: usize) -> QbdProcess {
        // M/M/c: level i <= servers has service rate i*mu; dims all 1.
        let c = servers;
        let mut up = Vec::new();
        let mut local = Vec::new();
        let mut down = Vec::new();
        for i in 0..=c {
            let svc = (i as f64) * mu;
            if i < c {
                up.push(Matrix::from_rows(&[&[lambda]]));
            }
            local.push(Matrix::from_rows(&[&[-(lambda + svc)]]));
            if i >= 1 {
                down.push(Matrix::from_rows(&[&[(i as f64) * mu]]));
            }
        }
        QbdProcess::new(
            up,
            local,
            down,
            Matrix::from_rows(&[&[lambda]]),
            Matrix::from_rows(&[&[-(lambda + c as f64 * mu)]]),
            Matrix::from_rows(&[&[c as f64 * mu]]),
        )
        .unwrap()
    }

    #[test]
    fn mm1_geometric_solution() {
        let rho: f64 = 0.6;
        let q = mm1(rho, 1.0);
        let sol = q.solve(&SolveOptions::default()).unwrap();
        for n in 0..12 {
            let want = (1.0 - rho) * rho.powi(n as i32);
            assert!(
                (sol.level_prob(n) - want).abs() < 1e-10,
                "n={n}: {} vs {want}",
                sol.level_prob(n)
            );
        }
        assert!((sol.mean_level() - rho / (1.0 - rho)).abs() < 1e-10);
        assert!((sol.total_mass() - 1.0).abs() < 1e-10);
    }

    #[test]
    fn mm1_variance_closed_form() {
        let rho: f64 = 0.5;
        let q = mm1(rho, 1.0);
        let sol = q.solve(&SolveOptions::default()).unwrap();
        let var_want = rho / ((1.0 - rho) * (1.0 - rho));
        assert!(
            (sol.variance_level() - var_want).abs() < 1e-9,
            "{} vs {var_want}",
            sol.variance_level()
        );
    }

    #[test]
    fn mm2_erlang_c_mean() {
        // M/M/2 with lambda=1.2, mu=1: rho = 0.6.
        let (lambda, mu, s) = (1.2, 1.0, 2usize);
        let q = mmc(lambda, mu, s);
        let sol = q.solve(&SolveOptions::default()).unwrap();
        // Closed form M/M/2: p0 = (1-rho)/(1+rho), Lq = 2rho^3/(1-rho^2)... use
        // standard Erlang-C: a = lambda/mu = 1.2, rho = a/2 = 0.6.
        let a = lambda / mu;
        let rho = a / s as f64;
        // p0 for c=2: 1 / (1 + a + a^2/(2(1-rho)))
        let p0 = 1.0 / (1.0 + a + a * a / (2.0 * (1.0 - rho)));
        let erlang_c = (a * a / 2.0) * p0 / (1.0 - rho);
        let lq = erlang_c * rho / (1.0 - rho);
        let l = lq + a;
        assert!(
            (sol.mean_level() - l).abs() < 1e-9,
            "{} vs {l}",
            sol.mean_level()
        );
        assert!((sol.level_prob(0) - p0).abs() < 1e-10);
    }

    #[test]
    fn mm5_matches_erlang_formulas() {
        let (lambda, mu, s) = (3.0, 1.0, 5usize);
        let q = mmc(lambda, mu, s);
        let sol = q.solve(&SolveOptions::default()).unwrap();
        let a: f64 = lambda / mu;
        let rho = a / s as f64;
        let mut p0_inv = 0.0;
        for k in 0..s {
            p0_inv += a.powi(k as i32) / factorial(k);
        }
        p0_inv += a.powi(s as i32) / (factorial(s) * (1.0 - rho));
        let p0 = 1.0 / p0_inv;
        let erlang_c = a.powi(s as i32) / (factorial(s) * (1.0 - rho)) * p0;
        let l = erlang_c * rho / (1.0 - rho) + a;
        assert!(
            (sol.mean_level() - l).abs() < 1e-8,
            "{} vs {l}",
            sol.mean_level()
        );
        fn factorial(n: usize) -> f64 {
            (1..=n).map(|i| i as f64).product::<f64>().max(1.0)
        }
    }

    #[test]
    fn unstable_rejected() {
        let q = mm1(1.5, 1.0);
        assert!(matches!(
            q.solve(&SolveOptions::default()),
            Err(QbdError::Unstable(_))
        ));
    }

    #[test]
    fn tail_probabilities_consistent() {
        let q = mm1(0.4, 1.0);
        let sol = q.solve(&SolveOptions::default()).unwrap();
        for n in 0..8 {
            let direct: f64 = (n..60).map(|k| sol.level_prob(k)).sum();
            assert!(
                (sol.tail_prob(n) - direct).abs() < 1e-10,
                "n={n}: {} vs {direct}",
                sol.tail_prob(n)
            );
        }
    }

    #[test]
    fn solution_matches_truncated_ctmc() {
        use gsched_markov::Ctmc;
        let q = mmc(1.0, 0.8, 3);
        let sol = q.solve(&SolveOptions::default()).unwrap();
        // Direct solve of the truncated chain at a high level.
        let t = q.truncated_generator(60);
        let pi = Ctmc::new(t).unwrap().stationary_gth().unwrap();
        for (n, &pi_n) in pi.iter().enumerate().take(10) {
            assert!(
                (sol.level_prob(n) - pi_n).abs() < 1e-8,
                "n={n}: {} vs {}",
                sol.level_prob(n),
                pi_n
            );
        }
    }

    #[test]
    fn mean_level_matches_series() {
        let q = mm1(0.7, 1.0);
        let sol = q.solve(&SolveOptions::default()).unwrap();
        let series: f64 = (1..500).map(|n| n as f64 * sol.level_prob(n)).sum();
        assert!((sol.mean_level() - series).abs() < 1e-8);
    }

    #[test]
    fn warm_start_reproduces_cold_solution() {
        let rho: f64 = 0.6;
        let q = mm1(rho, 1.0);
        let cold = q.solve(&SolveOptions::default()).unwrap();
        // Perturb the converged R slightly, as a neighbouring sweep point
        // would, and re-solve warm.
        let mut r0 = cold.r().clone();
        r0[(0, 0)] += 1e-3;
        let warm_opts = SolveOptions {
            initial_r: Some(r0),
            ..Default::default()
        };
        let warm = q.solve(&warm_opts).unwrap();
        assert!((warm.r()[(0, 0)] - rho).abs() < 1e-10, "R should be rho");
        assert!((warm.mean_level() - cold.mean_level()).abs() < 1e-10);
    }

    #[test]
    fn warm_start_bad_iterate_falls_back() {
        let q = mm1(0.5, 1.0);
        // Nonsensical warm start (wrong magnitude): the warm attempt must
        // fail validation and the cold path must still deliver R = rho.
        let r0 = Matrix::from_rows(&[&[50.0]]);
        let opts = SolveOptions {
            initial_r: Some(r0),
            warm_max_iter: 5,
            ..Default::default()
        };
        let sol = q.solve(&opts).unwrap();
        assert!((sol.r()[(0, 0)] - 0.5).abs() < 1e-10);
    }

    #[test]
    fn warm_start_wrong_dims_falls_back() {
        let q = mm1(0.5, 1.0);
        let opts = SolveOptions {
            initial_r: Some(Matrix::zeros(2, 2)),
            ..Default::default()
        };
        let sol = q.solve(&opts).unwrap();
        assert!((sol.r()[(0, 0)] - 0.5).abs() < 1e-10);
    }

    #[test]
    fn warm_start_honors_newton_method() {
        // Same warm-start scenario as above but with the Newton method
        // requested: the warm path must use it (and still land on rho).
        let rho: f64 = 0.6;
        let q = mm1(rho, 1.0);
        let cold = q.solve(&SolveOptions::default()).unwrap();
        let mut r0 = cold.r().clone();
        r0[(0, 0)] += 1e-3;
        let warm_opts = SolveOptions {
            method: RSolverMethod::Newton,
            initial_r: Some(r0),
            ..Default::default()
        };
        let warm = q.solve(&warm_opts).unwrap();
        assert!((warm.r()[(0, 0)] - rho).abs() < 1e-10, "R should be rho");
        assert!((warm.mean_level() - cold.mean_level()).abs() < 1e-10);
    }

    #[test]
    fn backends_and_methods_agree_on_solution() {
        let q = mmc(1.2, 1.0, 2);
        let want = q.solve(&SolveOptions::default()).unwrap();
        for backend in BackendKind::ALL {
            for method in [
                RSolverMethod::LogarithmicReduction,
                RSolverMethod::SuccessiveSubstitution,
                RSolverMethod::Newton,
            ] {
                let opts = SolveOptions {
                    method,
                    backend,
                    ..Default::default()
                };
                let sol = q.solve(&opts).unwrap();
                assert_eq!(sol.backend(), backend);
                assert!(
                    (sol.mean_level() - want.mean_level()).abs() < 1e-9,
                    "{backend}/{method}: {} vs {}",
                    sol.mean_level(),
                    want.mean_level()
                );
                assert!((sol.total_mass() - 1.0).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn skip_irreducibility_check_option() {
        let q = mm1(0.5, 1.0);
        let opts = SolveOptions {
            check_irreducible: false,
            ..Default::default()
        };
        assert!(q.solve(&opts).is_ok());
    }
}
